"""Ablation: view-cache size sweep on the RSS stream (Section 5 / Algorithm 5).

Caching ``RL`` slices keyed on string value avoids recomputing the
previous-document side of the value join for every incoming document; the
sweep quantifies the benefit as the cache grows from nothing to effectively
unbounded.
"""

import pytest

from repro.bench.harness import run_rss_throughput
from repro.workloads.rss import RssStreamConfig, generate_rss_queries, generate_rss_stream


@pytest.mark.parametrize("cache_size", [None, 16, 256, 4096])
def bench_ablation_view_cache(benchmark, cache_size):
    documents = list(generate_rss_stream(RssStreamConfig(num_items=150)))
    queries = generate_rss_queries(300)

    def run_once():
        return run_rss_throughput(queries, documents, "mmqjp-vm", view_cache_size=cache_size)

    result = benchmark.pedantic(run_once, rounds=1, iterations=1)
    benchmark.extra_info["ablation"] = "view_cache"
    benchmark.extra_info["cache_size"] = cache_size if cache_size is not None else 0
    benchmark.extra_info["events_per_second"] = result.extra["events_per_second"]
