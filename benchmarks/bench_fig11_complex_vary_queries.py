"""Figure 11: complex (three-level) schema, time vs. #queries.

Expected shape: like Figure 8 but with more query templates; MMQJP still
wins by orders of magnitude at the top of the sweep.
"""

import pytest

from benchmarks.conftest import query_sweep
from benchmarks.workloads import complex_schema, make_queries, prepare


@pytest.mark.parametrize("num_queries", query_sweep())
@pytest.mark.parametrize("approach", ["mmqjp", "sequential"])
def bench_fig11(benchmark, approach, num_queries):
    schema = complex_schema()
    queries = make_queries(schema, num_queries, max_value_joins=4)
    workload = prepare(approach, schema, queries)
    matches = benchmark.pedantic(workload.run, rounds=2, iterations=1)
    benchmark.extra_info["figure"] = "fig11"
    benchmark.extra_info["approach"] = approach
    benchmark.extra_info["num_queries"] = num_queries
    benchmark.extra_info["num_matches"] = len(matches)
    if workload.num_templates is not None:
        benchmark.extra_info["num_templates"] = workload.num_templates
