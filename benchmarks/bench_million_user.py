"""Million-user stress: latency tails at 10⁵ live subscriptions.

The timed experiment drives :func:`repro.stress.run_stress` through the
four lifecycle phases (ramp, steady, burst, churn) of the DBLP-style
workload and reports, per phase, p50/p95/p99/max publish latency and
delivery lag from the broker's metrics registry.  Two correctness gates
ride along:

* ``bench_million_user_overhead`` — enabling ``RuntimeConfig(metrics=True)``
  must cost ≤ 5% wall time on a fixed publish workload (min-of-N on both
  sides to dampen scheduler noise);
* ``bench_million_user_equivalence`` — metrics on/off must produce
  byte-identical match sets (and, per configuration, identical delivery
  order) across both engines, the serial/threads/processes executors and
  1/2/4 shards.

Results land in ``BENCH_million_user.json`` (repo root, or
``$REPRO_BENCH_JSON_DIR``).  Set ``REPRO_BENCH_TINY=1`` for the CI smoke
scale; the full run ramps to 100 000 live subscriptions.
"""

import os
import time

import pytest

from repro import RuntimeConfig, open_broker
from repro.bench.reporting import rows_to_json
from repro.stress import StressConfig, run_stress
from repro.workloads.dblp import (
    DblpWorkloadConfig,
    generate_dblp_stream,
    generate_dblp_subscriptions,
)

TINY = os.environ.get("REPRO_BENCH_TINY") == "1"

#: Retraction cost at 30k live subscriptions, measured on this workload
#: before/after the in-PR fixes (incremental window-horizon refcounts,
#: O(1) swap-delete RT retraction, membership checks instead of row-list
#: copies).  Kept in the bench meta so the perf trajectory is documented.
CANCEL_NOTE = (
    "cancel at 30k live subscriptions: 36734us/op before -> 63us/op after "
    "(~580x; was O(live subscriptions) per cancel from the window-horizon "
    "rescan plus O(RT rows) list removal, now O(1) amortized)"
)

STRESS = StressConfig(
    subscriptions=1_500 if TINY else 100_000,
    # At smoke scale the default corpus (50 venues, 5000 authors) is too
    # sparse for joins to fire within 30 documents; densify it so every
    # phase still reports delivery-lag tails.
    workload=(
        DblpWorkloadConfig(num_venues=10, num_authors=200)
        if TINY
        else DblpWorkloadConfig()
    ),
    ramp_chunk=500 if TINY else 10_000,
    ramp_probe_documents=5 if TINY else 10,
    steady_documents=30 if TINY else 300,
    burst_count=3 if TINY else 10,
    burst_size=20 if TINY else 100,
    churn_cycles=60 if TINY else 500,
    churn_publish_every=20 if TINY else 25,
)

_ROWS: list[dict] = []
_EXTRA_META: dict = {}


@pytest.fixture(scope="session", autouse=True)
def _emit_json():
    """Write the collected rows as BENCH_million_user.json after the run."""
    yield
    if not _ROWS:
        return
    out_dir = os.environ.get(
        "REPRO_BENCH_JSON_DIR", os.path.dirname(os.path.dirname(__file__))
    )
    meta = {
        "experiment": "million_user",
        "tiny": TINY,
        "subscriptions": STRESS.subscriptions,
        "num_venues": STRESS.workload.num_venues,
        "num_authors": STRESS.workload.num_authors,
        "window": STRESS.workload.window,
        "cancel_cost_note": CANCEL_NOTE,
    }
    meta.update(_EXTRA_META)
    rows_to_json(
        _ROWS,
        path=os.path.join(out_dir, "BENCH_million_user.json"),
        meta=meta,
    )


def _tail_columns(row: dict, prefix: str, tails) -> None:
    if tails is None:
        return
    for key in ("count", "mean_ms", "p50_ms", "p95_ms", "p99_ms", "max_ms"):
        row[f"{prefix}_{key}"] = tails[key]


def bench_million_user_stress(benchmark):
    """Ramp to the target population and report per-phase latency tails."""
    report = benchmark.pedantic(
        lambda: run_stress(STRESS), rounds=1, iterations=1
    )

    assert report["live_subscriptions"] == STRESS.subscriptions
    phases = report["phases"]
    assert set(phases) == {"ramp", "steady", "burst", "churn"}
    # The interactive path must report full latency tails...
    assert phases["steady"]["publish_latency"] is not None
    assert phases["steady"]["delivery_lag"] is not None
    # ...the ingestion path batch tails...
    assert phases["burst"]["publish_batch_latency"] is not None
    # ...and churn must have exercised the retraction path with publishes.
    assert phases["churn"]["documents_published"] > 0

    # Per-subscribe cost must stay flat while the population grows: the
    # last ramp chunk may not take disproportionately longer than the
    # first (each chunk subscribes the same number of queries).
    chunks = phases["ramp"]["chunk_seconds"]
    if not TINY and len(chunks) >= 3 and chunks[0] > 0:
        assert chunks[-1] <= 3.0 * chunks[0], (
            f"per-subscribe cost grew with the live population: "
            f"ramp chunks {chunks}"
        )

    for phase_name, summary in phases.items():
        row = {
            "figure": "million_user",
            "phase": phase_name,
            "live_subscriptions": report["live_subscriptions"],
            "seconds": summary["seconds"],
            "documents_published": summary["documents_published"],
            "results_delivered": summary["results_delivered"],
        }
        _tail_columns(row, "publish", summary["publish_latency"])
        _tail_columns(row, "publish_batch", summary["publish_batch_latency"])
        _tail_columns(row, "delivery_lag", summary["delivery_lag"])
        if phase_name == "ramp":
            row["chunk_seconds"] = summary["chunk_seconds"]
        _ROWS.append(row)

    _EXTRA_META["num_templates"] = report["num_templates"]
    _EXTRA_META["documents_published"] = report["documents_published"]
    benchmark.extra_info.update(
        {
            "figure": "million_user",
            "live_subscriptions": report["live_subscriptions"],
            "num_templates": report["num_templates"],
        }
    )


# --------------------------------------------------------------------------
# Metrics-overhead gate


def _overhead_workload():
    # Fixed size even at smoke scale: a 5% wall-clock gate needs runs long
    # enough (~1s) that min-of-N converges below the gate's resolution.
    config = DblpWorkloadConfig(num_venues=6, num_authors=80, seed=5)
    queries = list(generate_dblp_subscriptions(200, config, seed=11))
    documents = list(generate_dblp_stream(config, 200, seed=12))
    return queries, documents


def _publish_seconds(metrics: bool, queries, documents) -> float:
    """Wall time of the publish loop alone (subscribe excluded)."""
    broker = open_broker(
        RuntimeConfig(construct_outputs=False, metrics=metrics)
    )
    try:
        for i, query in enumerate(queries):
            broker.subscribe(query, subscription_id=f"q{i}")
        start = time.perf_counter()
        broker.publish_many(documents)
        return time.perf_counter() - start
    finally:
        broker.close()


def bench_million_user_overhead(benchmark):
    """Metrics must cost ≤ 5% on the publish path (min-of-N both sides)."""
    queries, documents = _overhead_workload()
    rounds = 9

    def measure():
        # Interleave the off/on runs so slow phases of the host (GC, CPU
        # contention) hit both sides equally; min-of-N is the noise floor.
        offs, ons = [], []
        for _ in range(rounds):
            offs.append(_publish_seconds(False, queries, documents))
            ons.append(_publish_seconds(True, queries, documents))
        return min(offs), min(ons)

    off_seconds, on_seconds = benchmark.pedantic(measure, rounds=1, iterations=1)
    overhead = (on_seconds - off_seconds) / off_seconds if off_seconds else 0.0
    _ROWS.append(
        {
            "figure": "metrics_overhead",
            "phase": "overhead_gate",
            "metrics_off_seconds": round(off_seconds, 4),
            "metrics_on_seconds": round(on_seconds, 4),
            "overhead_pct": round(overhead * 100.0, 2),
        }
    )
    benchmark.extra_info.update(
        {
            "figure": "metrics_overhead",
            "overhead_pct": round(overhead * 100.0, 2),
        }
    )
    assert overhead <= 0.05, (
        f"metrics=True costs {overhead * 100.0:.1f}% on the publish path "
        f"(off={off_seconds * 1e3:.1f}ms on={on_seconds * 1e3:.1f}ms); gate is 5%"
    )


# --------------------------------------------------------------------------
# Metrics on/off equivalence across engines, executors and shard counts


def _delivery_log(config: RuntimeConfig, queries, documents):
    """Ordered (subscription, match-key) log plus the match-key set."""
    broker = open_broker(config)
    try:
        for i, query in enumerate(queries):
            broker.subscribe(query, subscription_id=f"q{i}")
        ordered = []
        for delivery in broker.publish_many(documents):
            if delivery.match is not None:
                ordered.append((delivery.subscription_id, delivery.match.key()))
        return ordered, frozenset(ordered)
    finally:
        broker.close()


def _normalized(keys):
    """Match keys with canonical variable *names* stripped.

    Template sharing renames query variables per template, and template
    composition depends on how queries partition across shards — so the
    names inside ``Match.key()`` are topology-dependent even though the
    matches (documents and witness values) are identical.  For the
    cross-topology comparison, keep the values and drop the names.
    """

    def strip(part):
        if (
            isinstance(part, tuple)
            and part
            and all(isinstance(b, tuple) and len(b) == 2 for b in part)
        ):
            return tuple(sorted(value for _, value in part))
        return part

    return frozenset(
        (sid, tuple(strip(part) for part in key)) for sid, key in keys
    )


def bench_million_user_equivalence(benchmark):
    """Metrics on/off: byte-identical match sets, identical delivery order.

    Runs at smoke scale regardless of ``REPRO_BENCH_TINY`` — it gates
    correctness, not speed.
    """
    config = DblpWorkloadConfig(
        num_venues=3, num_authors=12, title_pool_size=6, seed=9
    )
    queries = list(generate_dblp_subscriptions(24, config, seed=21))
    documents = list(generate_dblp_stream(config, 40, seed=22))
    topologies = (
        (1, "serial"),
        (2, "serial"),
        (4, "serial"),
        (2, "threads"),
        (4, "threads"),
        (2, "processes"),
        (4, "processes"),
    )

    def sweep():
        reference = None
        for engine in ("mmqjp", "sequential"):
            for shards, executor in topologies:
                logs, keysets = {}, {}
                for metrics in (False, True):
                    logs[metrics], keysets[metrics] = _delivery_log(
                        RuntimeConfig(
                            engine=engine,
                            construct_outputs=False,
                            shards=shards,
                            executor=executor,
                            metrics=metrics,
                        ),
                        queries,
                        documents,
                    )
                # The ISSUE's gate: metrics on/off byte-identical — same
                # match set AND same delivery order for this configuration.
                assert keysets[False] == keysets[True], (
                    f"metrics=True changed the match set: engine={engine!r} "
                    f"shards={shards} executor={executor!r}"
                )
                assert logs[False] == logs[True], (
                    f"metrics=True changed delivery order: engine={engine!r} "
                    f"shards={shards} executor={executor!r}"
                )
                # Across topologies, canonical variable names inside the
                # keys shift with template composition; compare the
                # name-normalized match sets instead.
                normalized = _normalized(keysets[False])
                if reference is None:
                    reference = normalized
                assert normalized == reference, (
                    f"match-set mismatch vs reference topology: "
                    f"engine={engine!r} shards={shards} executor={executor!r}"
                )
        return len(reference)

    num_matches = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["figure"] = "million_user_equivalence"
    benchmark.extra_info["num_matches"] = num_matches
    assert num_matches > 0
