"""Columnar storage: interned-id column vectors vs. the row-at-a-time path.

The workload reuses the delta-scaling generator
(:func:`repro.workloads.synthetic.build_delta_scaling_data`): the retained
Stage-2 join state grows while the delta-connected slice stays fixed.  The
timed quantity is per-document Stage 2 cost with the ``columnar`` knob on
and off, in two join regimes:

* ``delta_join=False`` (full-state probing) — every probe scans/reduces the
  whole retained state, so the vectorized kernels dominate and the columnar
  win grows with state size.  **This is the gated configuration.**
* ``delta_join=True`` (the PR-5 delta-driven path) — the semi-join
  reduction already shrinks the touched state to the alive slice, so the
  columnar win is bounded (reported, not gated).

Asserted acceptance criteria (CI gates):

* exact match-set equivalence between ``columnar`` on/off at every state
  size and in both join regimes;
* at the largest measured state, ``columnar=on`` is ≥ 3× faster than
  ``columnar=off`` on the full-state path (skipped at smoke scale);
* match-set equivalence across the ``columnar`` × ``delta_join`` ×
  ``plan_cache`` knob matrix on both engines with 1/2/4 shards, and across
  the serial / threads / processes shard executors.

Results are also written to ``BENCH_columnar.json`` (repo root, or
``$REPRO_BENCH_JSON_DIR``) through :func:`repro.bench.reporting.rows_to_json`.

Set ``REPRO_BENCH_TINY=1`` to run the whole file at smoke scale (CI).
"""

import functools
import os
import random

import pytest

from repro import RuntimeConfig, open_broker
from repro.bench.harness import register_mmqjp, run_delta_scaling
from repro.bench.reporting import rows_to_json
from repro.relational import columnar as columnar_mod
from repro.workloads.querygen import generate_query
from repro.workloads.synthetic import build_delta_scaling_data, build_document
from repro.xmlmodel.schema import two_level_schema

TINY = os.environ.get("REPRO_BENCH_TINY") == "1"

SCHEMA = two_level_schema(6)
NUM_QUERIES = 24 if TINY else 120
STATE_SIZES = (16, 48) if TINY else (100, 400, 1600)
NUM_ALIVE = 8 if TINY else 16
NUM_PROBES = 3 if TINY else 12
VALUE_POOL = 6 if TINY else 16

#: The columnar speedup gate over the row path, applied to the full-state
#: join (``delta_join=False``) at the largest measured state.
GATE_SPEEDUP = 3.0

_ROWS: list[dict] = []


@pytest.fixture(scope="session", autouse=True)
def _emit_json():
    """Write the collected rows as BENCH_columnar.json after the run."""
    yield
    if not _ROWS:
        return
    out_dir = os.environ.get(
        "REPRO_BENCH_JSON_DIR", os.path.dirname(os.path.dirname(__file__))
    )
    rows_to_json(
        _ROWS,
        path=os.path.join(out_dir, "BENCH_columnar.json"),
        meta={
            "experiment": "columnar",
            "tiny": TINY,
            "numpy": columnar_mod.HAVE_NUMPY,
            "num_queries": NUM_QUERIES,
            "state_sizes": list(STATE_SIZES),
            "num_alive_docs": NUM_ALIVE,
            "num_probe_docs": NUM_PROBES,
            "value_pool": VALUE_POOL,
            "gate": (
                f"columnar >= {GATE_SPEEDUP}x vs row path on the full-state "
                "join (delta_join=off) at the largest state size; "
                "delta_join=on rows are informational (the delta reduction "
                "already bounds the touched state)"
            ),
        },
    )


@functools.lru_cache(maxsize=None)
def _queries_and_registry():
    rng = random.Random(7)
    queries = tuple(
        generate_query(SCHEMA, (i % 2) + 1, rng, window=float("inf"))
        for i in range(NUM_QUERIES)
    )
    return queries, register_mmqjp(queries)


@functools.lru_cache(maxsize=None)
def _workload(num_state_docs):
    return build_delta_scaling_data(
        SCHEMA,
        num_state_docs,
        num_alive_docs=NUM_ALIVE,
        num_probe_docs=NUM_PROBES,
        value_pool=VALUE_POOL,
    )


@functools.lru_cache(maxsize=None)
def _row_baseline(num_state_docs, delta_join):
    """The row path (columnar=False) in the same join regime."""
    queries, registry = _queries_and_registry()
    return run_delta_scaling(
        queries,
        _workload(num_state_docs),
        delta_join=delta_join,
        columnar=False,
        registry=registry,
    )


@pytest.mark.parametrize("num_state_docs", STATE_SIZES)
@pytest.mark.parametrize("delta_join", (False, True), ids=("fullstate", "delta"))
@pytest.mark.parametrize("columnar", (False, True), ids=("col0", "col1"))
def bench_columnar_scaling(benchmark, columnar, delta_join, num_state_docs):
    queries, registry = _queries_and_registry()
    data = _workload(num_state_docs)

    def run_once():
        return run_delta_scaling(
            queries,
            data,
            delta_join=delta_join,
            columnar=columnar,
            registry=registry,
        )

    result, keys = benchmark.pedantic(run_once, rounds=1, iterations=1)
    baseline, baseline_keys = _row_baseline(num_state_docs, delta_join)
    assert keys == baseline_keys, (
        f"columnar path lost match-equivalence: columnar={columnar} "
        f"delta_join={delta_join} at {num_state_docs} state docs"
    )
    ms = result.extra["ms_per_doc"]
    baseline_ms = baseline.extra["ms_per_doc"]
    speedup = baseline_ms / ms if ms else 0.0
    gated = columnar and not delta_join and num_state_docs >= max(STATE_SIZES)
    if gated and not TINY and columnar_mod.HAVE_NUMPY:
        assert speedup >= GATE_SPEEDUP, (
            f"columnar only {speedup:.2f}x over the row path on the "
            f"full-state join at {num_state_docs} state docs"
        )
    row = result.as_row()
    row["figure"] = "columnar"
    row["delta_join"] = delta_join
    row["num_state_docs"] = num_state_docs
    row["speedup_vs_row_path"] = round(speedup, 2)
    row["gated"] = bool(gated)
    _ROWS.append(row)
    benchmark.extra_info.update(
        {
            "figure": "columnar",
            "columnar": columnar,
            "delta_join": delta_join,
            "num_state_docs": num_state_docs,
            "num_queries": NUM_QUERIES,
            "ms_per_doc": ms,
            "speedup_vs_row_path": round(speedup, 2),
            "num_matches": result.num_matches,
        }
    )


# --------------------------------------------------------------------------- #
# equivalence matrix
# --------------------------------------------------------------------------- #
def _equivalence_documents(num_docs):
    """Small XML documents with colliding leaf values (joins actually fire)."""
    documents = []
    for i in range(num_docs):
        value = f"v{i % 3}"
        documents.append(
            build_document(
                SCHEMA,
                docid=f"doc{i}",
                timestamp=float(i + 1),
                leaf_values=[value] * SCHEMA.num_leaves,
                internal_marker=f"doc{i}",
            )
        )
    return documents


def _stream_match_keys(broker, queries, documents):
    try:
        for i, query in enumerate(queries):
            broker.subscribe(query, subscription_id=f"q{i}")
        keys = set()
        for delivery in broker.publish_many(documents):
            if delivery.match is not None:
                keys.add(delivery.match.key())
        return keys
    finally:
        broker.close()


def bench_columnar_equivalence(benchmark):
    """Byte-identical match sets across knobs, engines, executors, shards.

    Runs at smoke scale regardless of ``REPRO_BENCH_TINY`` — it gates
    correctness, not speed.
    """
    num_docs = 10 if TINY else 16
    rng = random.Random(3)
    queries = [
        generate_query(SCHEMA, (i % 2) + 1, rng, window=float("inf"))
        for i in range(16)
    ]
    documents = _equivalence_documents(num_docs)

    configs = []
    # Knob matrix: columnar x delta_join x plan_cache on both engines with
    # 1/2/4 shards (serial executor).
    for engine in ("mmqjp", "sequential"):
        for columnar in (False, True):
            for delta_join in (False, True):
                for plan_cache in (False, True):
                    for shards in (1, 2, 4):
                        configs.append(
                            RuntimeConfig(
                                engine=engine,
                                construct_outputs=False,
                                columnar=columnar,
                                delta_join=delta_join,
                                plan_cache=plan_cache,
                                shards=shards,
                            )
                        )
    # Executor matrix: the columnar wire format must not change results on
    # any shard executor.
    for executor in ("threads", "processes"):
        for columnar in (False, True):
            for shards in (2, 4):
                configs.append(
                    RuntimeConfig(
                        construct_outputs=False,
                        columnar=columnar,
                        executor=executor,
                        shards=shards,
                    )
                )

    def sweep():
        reference = None
        for config in configs:
            keys = _stream_match_keys(open_broker(config), queries, documents)
            if reference is None:
                reference = keys
            assert keys == reference, (
                f"match-set mismatch for engine={config.engine!r} "
                f"columnar={config.columnar} delta_join={config.delta_join} "
                f"plan_cache={config.plan_cache} executor={config.executor!r} "
                f"shards={config.shards}"
            )
        return len(reference)

    num_matches = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["figure"] = "columnar_equivalence"
    benchmark.extra_info["num_configs"] = len(configs)
    benchmark.extra_info["num_matches"] = num_matches
    assert num_matches > 0
