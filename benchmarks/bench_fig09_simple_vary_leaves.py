"""Figure 9: simple schema, conjunctive-query time vs. #leaves in the schema.

Expected shape: both approaches slow down as the schema grows (the paper
reports roughly 6x from 4 to 12 leaves); MMQJP stays well below Sequential.
"""

import pytest

from benchmarks.workloads import make_queries, prepare, simple_schema


@pytest.mark.parametrize("num_leaves", [4, 6, 8, 10, 12])
@pytest.mark.parametrize("approach", ["mmqjp", "sequential"])
def bench_fig09(benchmark, approach, num_leaves):
    schema = simple_schema(num_leaves)
    queries = make_queries(schema, 1000)
    workload = prepare(approach, schema, queries)
    matches = benchmark.pedantic(workload.run, rounds=2, iterations=1)
    benchmark.extra_info["figure"] = "fig09"
    benchmark.extra_info["approach"] = approach
    benchmark.extra_info["num_leaves"] = num_leaves
    benchmark.extra_info["num_matches"] = len(matches)
