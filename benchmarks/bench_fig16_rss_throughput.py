"""Figure 16: join-processing throughput on the (simulated) RSS feed stream.

Expected shape: MMQJP — and MMQJP with view materialization — sustain far
higher event throughput than Sequential once the number of subscriptions is
large; the MMQJP curves flatten as additional generated queries become
duplicates of existing ones.
"""

import pytest

from repro.bench.harness import run_rss_throughput
from repro.workloads.rss import RssStreamConfig, generate_rss_queries, generate_rss_stream

NUM_ITEMS = 200
QUERY_SWEEP = (10, 100, 1000)


@pytest.mark.parametrize("num_queries", QUERY_SWEEP)
@pytest.mark.parametrize("approach", ["mmqjp-vm", "mmqjp", "sequential"])
def bench_fig16(benchmark, approach, num_queries):
    if approach == "sequential" and num_queries > 100:
        pytest.skip("sequential baseline is run only at small query counts (it is the slow side)")
    documents = list(generate_rss_stream(RssStreamConfig(num_items=NUM_ITEMS)))
    queries = generate_rss_queries(num_queries)

    def run_once():
        return run_rss_throughput(queries, documents, approach)

    result = benchmark.pedantic(run_once, rounds=1, iterations=1)
    benchmark.extra_info["figure"] = "fig16"
    benchmark.extra_info["approach"] = approach
    benchmark.extra_info["num_queries"] = num_queries
    benchmark.extra_info["num_events"] = NUM_ITEMS
    benchmark.extra_info["events_per_second"] = result.extra["events_per_second"]
    benchmark.extra_info["num_matches"] = result.num_matches
