"""Durability overhead and crash-recovery time of the storage subsystem.

Measures the per-document ingest cost of each storage backend on the same
workload — ``memory`` (no store attached; the pre-storage hot path),
``sqlite-epoch`` (one durable transaction per document) and
``sqlite-relaxed`` (write-behind commits) — plus the time to rebuild a
session from its stores via ``open_broker(resume_from=...)``.

Asserted acceptance criteria (CI gates):

* exact match-set equivalence across all three backends;
* the recovered broker is match-equivalent to a never-restarted one on the
  documents published after the restart.

Results are written to ``BENCH_durability.json`` (repo root, or
``$REPRO_BENCH_JSON_DIR``): one row per backend with ``ms_per_doc`` and
``overhead_pct`` relative to the in-run memory baseline, and one recovery
row with ``recovery_ms``.

Set ``REPRO_BENCH_TINY=1`` to run the whole file at smoke scale (CI).
"""

import functools
import os
import random
import tempfile
import time

import pytest

from repro import RuntimeConfig, open_broker
from repro.bench.reporting import rows_to_json
from repro.workloads.querygen import generate_query
from repro.workloads.synthetic import build_document
from repro.xmlmodel.schema import two_level_schema

TINY = os.environ.get("REPRO_BENCH_TINY") == "1"

SCHEMA = two_level_schema(6)
NUM_QUERIES = 4 if TINY else 16
NUM_DOCS = 10 if TINY else 48
NUM_EXTRA_DOCS = 4 if TINY else 8

#: backend keyword -> (storage, durability)
BACKENDS = {
    "memory": ("memory", "epoch"),
    "sqlite-epoch": ("sqlite", "epoch"),
    "sqlite-relaxed": ("sqlite", "relaxed"),
}

_ROWS: list[dict] = []
_MS_PER_DOC: dict[str, float] = {}
_MATCH_KEYS: dict[str, frozenset] = {}


@pytest.fixture(scope="session", autouse=True)
def _emit_json():
    """Write the collected rows as BENCH_durability.json after the run."""
    yield
    if not _ROWS:
        return
    baseline = _MS_PER_DOC.get("memory")
    for row in _ROWS:
        if baseline and "ms_per_doc" in row:
            row["overhead_pct"] = round(
                (row["ms_per_doc"] / baseline - 1.0) * 100.0, 1
            )
    out_dir = os.environ.get(
        "REPRO_BENCH_JSON_DIR", os.path.dirname(os.path.dirname(__file__))
    )
    rows_to_json(
        _ROWS,
        path=os.path.join(out_dir, "BENCH_durability.json"),
        meta={
            "experiment": "durability",
            "tiny": TINY,
            "num_queries": NUM_QUERIES,
            "num_docs": NUM_DOCS,
        },
    )


@functools.lru_cache(maxsize=None)
def _queries():
    rng = random.Random(11)
    return tuple(
        generate_query(SCHEMA, (i % 2) + 1, rng, window=float("inf"))
        for i in range(NUM_QUERIES)
    )


@functools.lru_cache(maxsize=None)
def _documents(num_docs, start=0):
    documents = []
    for i in range(start, start + num_docs):
        documents.append(
            build_document(
                SCHEMA,
                docid=f"doc{i}",
                timestamp=float(i + 1),
                leaf_values=[f"v{i % 3}"] * SCHEMA.num_leaves,
                internal_marker=f"doc{i}",
            )
        )
    return documents


def _config(backend, path=None):
    storage, durability = BACKENDS[backend]
    return RuntimeConfig(
        storage=storage,
        durability=durability,
        storage_path=path,
        construct_outputs=False,
        auto_timestamp=False,
    )


def _ingest(backend, path=None):
    """Subscribe + publish the workload; returns (ms_per_doc, match keys)."""
    broker = open_broker(_config(backend, path))
    try:
        for i, query in enumerate(_queries()):
            broker.subscribe(query, subscription_id=f"q{i}")
        documents = _documents(NUM_DOCS)
        t0 = time.perf_counter()
        deliveries = broker.publish_many(documents)
        elapsed_ms = (time.perf_counter() - t0) * 1000.0
        keys = frozenset(
            d.match.key() for d in deliveries if d.match is not None
        )
        return elapsed_ms / len(documents), keys
    finally:
        broker.close()


@pytest.mark.parametrize("backend", list(BACKENDS))
def bench_durability_ingest(benchmark, backend):
    path = tempfile.mkdtemp(prefix="bench-durability-") if backend != "memory" else None
    ms_per_doc, keys = benchmark.pedantic(
        lambda: _ingest(backend, path), rounds=1, iterations=1
    )
    _MS_PER_DOC[backend] = ms_per_doc
    _MATCH_KEYS[backend] = keys
    reference = _MATCH_KEYS.get("memory")
    if reference is not None:
        assert keys == reference, f"{backend} lost match-equivalence"
    assert keys, "the workload produced no matches — the benchmark is vacuous"
    _ROWS.append(
        {
            "approach": backend,
            "storage": BACKENDS[backend][0],
            "durability": BACKENDS[backend][1],
            "num_queries": NUM_QUERIES,
            "num_docs": NUM_DOCS,
            "ms_per_doc": round(ms_per_doc, 4),
            "num_matches": len(keys),
            "figure": "durability_ingest",
        }
    )
    benchmark.extra_info.update(
        {"figure": "durability_ingest", "backend": backend, "ms_per_doc": ms_per_doc}
    )


def bench_durability_recovery(benchmark):
    """Time ``open_broker(resume_from=...)`` on a populated store set."""
    path = tempfile.mkdtemp(prefix="bench-durability-rec-")
    extra = _documents(NUM_EXTRA_DOCS, start=NUM_DOCS)

    # the uninterrupted reference for the post-restart documents
    reference_broker = open_broker(_config("memory"))
    for i, query in enumerate(_queries()):
        reference_broker.subscribe(query, subscription_id=f"q{i}")
    reference_broker.publish_many(_documents(NUM_DOCS))
    reference = frozenset(
        d.match.key()
        for d in reference_broker.publish_many(extra)
        if d.match is not None
    )
    reference_broker.close()

    # the crashed session
    broker = open_broker(_config("sqlite-epoch", path))
    for i, query in enumerate(_queries()):
        broker.subscribe(query, subscription_id=f"q{i}")
    broker.publish_many(_documents(NUM_DOCS))
    broker.close()

    def recover():
        t0 = time.perf_counter()
        resumed = open_broker(resume_from=path)
        recovery_ms = (time.perf_counter() - t0) * 1000.0
        return resumed, recovery_ms

    resumed, recovery_ms = benchmark.pedantic(recover, rounds=1, iterations=1)
    try:
        keys = frozenset(
            d.match.key()
            for d in resumed.publish_many(extra)
            if d.match is not None
        )
    finally:
        resumed.close()
    assert keys == reference, "recovered broker lost match-equivalence"
    _ROWS.append(
        {
            "approach": "recovery",
            "num_queries": NUM_QUERIES,
            "num_docs": NUM_DOCS,
            "recovery_ms": round(recovery_ms, 3),
            "num_matches": len(keys),
            "figure": "durability_recovery",
        }
    )
    benchmark.extra_info.update(
        {"figure": "durability_recovery", "recovery_ms": recovery_ms}
    )
