"""Ablation: window length (join-state size) vs. stream throughput.

The paper's RSS experiment keeps an infinite window (nothing is ever pruned
from the join state).  This ablation sweeps finite windows to show how
state pruning trades recall horizon against sustained throughput.
"""

import pytest

from repro.bench.harness import run_rss_throughput
from repro.workloads.rss import RssStreamConfig, generate_rss_queries, generate_rss_stream


@pytest.mark.parametrize("window", [5.0, 20.0, 80.0, float("inf")])
def bench_ablation_window(benchmark, window):
    documents = list(generate_rss_stream(RssStreamConfig(num_items=150)))
    queries = generate_rss_queries(300, window=window)

    def run_once():
        return run_rss_throughput(queries, documents, "mmqjp")

    result = benchmark.pedantic(run_once, rounds=1, iterations=1)
    benchmark.extra_info["ablation"] = "window"
    benchmark.extra_info["window"] = window
    benchmark.extra_info["events_per_second"] = result.extra["events_per_second"]
    benchmark.extra_info["num_matches"] = result.num_matches
