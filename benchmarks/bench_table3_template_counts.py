"""Table 3: number of query templates vs. number of value joins.

The measured quantity is the exhaustive enumeration itself; the benchmark's
``extra_info`` records the counts so they can be compared against the
paper's 1/1, 3/3, 6/16, 16/<230.
"""

import pytest

from repro.templates.enumerate import count_templates


@pytest.mark.parametrize("num_value_joins", [1, 2, 3])
@pytest.mark.parametrize("schema_kind", ["flat", "complex"])
def bench_template_enumeration(benchmark, num_value_joins, schema_kind):
    count = benchmark.pedantic(
        count_templates, args=(num_value_joins, schema_kind), rounds=1, iterations=1
    )
    benchmark.extra_info["num_value_joins"] = num_value_joins
    benchmark.extra_info["schema"] = schema_kind
    benchmark.extra_info["templates"] = count
    expected = {("flat", 1): 1, ("flat", 2): 3, ("flat", 3): 6,
                ("complex", 1): 1, ("complex", 2): 3, ("complex", 3): 16}
    assert count == expected[(schema_kind, num_value_joins)]


def bench_template_enumeration_four_value_joins_flat(benchmark):
    count = benchmark.pedantic(count_templates, args=(4, "flat"), rounds=1, iterations=1)
    benchmark.extra_info["templates"] = count
    assert count == 16
