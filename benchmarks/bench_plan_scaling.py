"""Plan scaling: compiled plans + relevance-pruned dispatch vs. the PR-2 path.

The workload is *topic-sharded*: the registry splits into topics with
disjoint variable namespaces and distinct template shapes, and every
document carries the witnesses of exactly one topic — so a document is
relevant to ≈ ``1 / num_topics`` of the registered templates.  The timed
quantity is the per-document Stage 2 cost against a preloaded state, under
the four combinations of ``plan_cache`` × ``prune_dispatch``;
``False/False`` reproduces the pre-compiled-plan behavior (the PR-2
baseline).  Expected shape: at 1000 registered queries over 10 topics (10%
of templates relevant per document) the full path beats the baseline by
well over 5× per-document throughput.

Every timed configuration is checked for exact match-set equivalence
against the baseline, and a cross-engine / cross-shard sweep (both engines;
1, 2 and 4 shards; plan cache and relevance pruning on/off) asserts the
same — the CI correctness gate for the compiled-plan path.

Results are also written to ``BENCH_plan_scaling.json`` (repo root, or
``$REPRO_BENCH_JSON_DIR``) through :func:`repro.bench.reporting.rows_to_json`
so the perf trajectory is tracked from this PR onward.

Set ``REPRO_BENCH_TINY=1`` to run the whole file at smoke scale (CI).
"""

import functools
import os

import pytest

from repro.bench.harness import register_mmqjp, run_plan_scaling
from repro.bench.reporting import rows_to_json
from repro import RuntimeConfig, open_broker
from repro.workloads.querygen import generate_topic_queries
from repro.workloads.synthetic import (
    build_document,
    build_plan_scaling_data,
    topic_schemas,
)

TINY = os.environ.get("REPRO_BENCH_TINY") == "1"

NUM_QUERIES = 40 if TINY else 1000
TOPIC_COUNTS = (3,) if TINY else (4, 10)
NUM_STATE_DOCS = 24 if TINY else 200
# Enough probes that every topic is probed repeatedly, so cached plans get
# reused rather than compiled once and abandoned.
NUM_PROBES = 3 if TINY else 20

#: (plan_cache, prune_dispatch) knob combinations; False/False is the
#: PR-2 baseline every other combination is compared against.
MODES = ((False, False), (True, False), (False, True), (True, True))

_ROWS: list[dict] = []


@pytest.fixture(scope="session", autouse=True)
def _emit_json():
    """Write the collected rows as BENCH_plan_scaling.json after the run."""
    yield
    if not _ROWS:
        return
    out_dir = os.environ.get(
        "REPRO_BENCH_JSON_DIR", os.path.dirname(os.path.dirname(__file__))
    )
    rows_to_json(
        _ROWS,
        path=os.path.join(out_dir, "BENCH_plan_scaling.json"),
        meta={
            "experiment": "plan_scaling",
            "tiny": TINY,
            "num_queries": NUM_QUERIES,
            "num_state_docs": NUM_STATE_DOCS,
            "num_probe_docs": NUM_PROBES,
        },
    )


@functools.lru_cache(maxsize=None)
def _workload(num_topics):
    schemas = topic_schemas(num_topics)
    queries = tuple(
        generate_topic_queries(schemas, NUM_QUERIES, window=float("inf"), seed=7)
    )
    data = build_plan_scaling_data(
        schemas, NUM_STATE_DOCS, num_probe_docs=NUM_PROBES
    )
    # Registration (template isomorphism matching) is excluded from the
    # timing; share it across the knob configurations.
    registry = register_mmqjp(queries)
    return queries, data, registry


@functools.lru_cache(maxsize=None)
def _baseline(num_topics):
    """The PR-2 path (no compiled plans, no pruning): (dps, match keys)."""
    queries, data, registry = _workload(num_topics)
    result, keys = run_plan_scaling(
        queries, data, plan_cache=False, prune_dispatch=False, registry=registry
    )
    return result.extra["docs_per_second"], keys


@pytest.mark.parametrize("num_topics", TOPIC_COUNTS)
@pytest.mark.parametrize("mode", MODES, ids=lambda m: f"plan{int(m[0])}-prune{int(m[1])}")
def bench_plan_scaling(benchmark, mode, num_topics):
    plan_cache, prune_dispatch = mode
    queries, data, registry = _workload(num_topics)

    def run_once():
        return run_plan_scaling(
            queries,
            data,
            plan_cache=plan_cache,
            prune_dispatch=prune_dispatch,
            registry=registry,
        )

    result, keys = benchmark.pedantic(run_once, rounds=1, iterations=1)
    baseline_dps, baseline_keys = _baseline(num_topics)
    assert keys == baseline_keys, (
        f"compiled/pruned path lost match-equivalence: plan_cache={plan_cache} "
        f"prune_dispatch={prune_dispatch} at {num_topics} topics"
    )
    speedup = result.extra["docs_per_second"] / baseline_dps if baseline_dps else 0.0
    if plan_cache and prune_dispatch and not TINY and num_topics >= 10:
        # The acceptance bar: ≥ 5× over the PR-2 path at 1000 registered
        # queries with ≤ 10% of templates relevant per document.
        assert speedup >= 5.0, f"compiled+pruned only {speedup:.2f}x over baseline"
    row = result.as_row()
    row["figure"] = "plan_scaling"
    row["relevance_fraction"] = round(1.0 / num_topics, 3)
    row["speedup_vs_baseline"] = round(speedup, 2)
    _ROWS.append(row)
    benchmark.extra_info.update(
        {
            "figure": "plan_scaling",
            "plan_cache": plan_cache,
            "prune_dispatch": prune_dispatch,
            "num_topics": num_topics,
            "num_queries": NUM_QUERIES,
            "docs_per_second": result.extra["docs_per_second"],
            "speedup_vs_baseline": round(speedup, 2),
            "num_matches": result.num_matches,
        }
    )


def _topic_documents(num_topics, num_docs, values_per_topic=2):
    """One-topic XML documents with a shared per-document leaf value."""
    schemas = topic_schemas(num_topics)
    documents = []
    for i in range(num_docs):
        schema = schemas[i % num_topics]
        value = f"t{i % num_topics}v{(i // num_topics) % values_per_topic}"
        documents.append(
            build_document(
                schema,
                docid=f"doc{i}",
                timestamp=float(i + 1),
                leaf_values=[value] * schema.num_leaves,
                internal_marker=f"doc{i}",
            )
        )
    return documents


def _stream_match_keys(broker, queries, documents):
    try:
        for i, query in enumerate(queries):
            broker.subscribe(query, subscription_id=f"q{i}")
        keys = set()
        for document in documents:
            for delivery in broker.publish(document):
                if delivery.match is not None:
                    keys.add(delivery.match.key())
        return keys
    finally:
        if hasattr(broker, "close"):
            broker.close()


def bench_plan_scaling_equivalence(benchmark):
    """Match-set equivalence across engines, shard counts and plan knobs.

    Runs at smoke scale regardless of ``REPRO_BENCH_TINY`` — it gates
    correctness, not speed.
    """
    num_topics = 3
    num_docs = 12 if TINY else 24
    schemas = topic_schemas(num_topics)
    queries = generate_topic_queries(schemas, 24, window=float("inf"), seed=3)

    def sweep():
        reference = None
        for engine in ("mmqjp", "sequential"):
            for plan_cache, prune_dispatch in MODES:
                for shards in (1, 2, 4):
                    documents = _topic_documents(num_topics, num_docs)
                    broker = open_broker(
                        RuntimeConfig(
                            engine=engine,
                            construct_outputs=False,
                            plan_cache=plan_cache,
                            prune_dispatch=prune_dispatch,
                            shards=shards,
                        )
                    )
                    keys = _stream_match_keys(broker, queries, documents)
                    if reference is None:
                        reference = keys
                    assert keys == reference, (
                        f"match-set mismatch for engine={engine!r} "
                        f"plan_cache={plan_cache} prune_dispatch={prune_dispatch} "
                        f"shards={shards}"
                    )
        return len(reference)

    num_matches = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["figure"] = "plan_scaling_equivalence"
    benchmark.extra_info["num_matches"] = num_matches
    assert num_matches > 0
