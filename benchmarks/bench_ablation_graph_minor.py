"""Ablation: template sharing with vs. without the graph-minor reduction.

Without the Section 4.2 reduction, templates are isomorphism classes of the
*full* join graphs, so far fewer queries share one and more conjunctive
queries must be evaluated per document.
"""

import pytest

from repro.core.processor import MMQJPJoinProcessor
from repro.templates.registry import TemplateRegistry
from benchmarks.workloads import complex_schema, make_queries
from repro.workloads.synthetic import build_technical_benchmark_data


@pytest.mark.parametrize("use_graph_minor", [True, False])
def bench_ablation_graph_minor(benchmark, use_graph_minor):
    schema = complex_schema()
    queries = make_queries(schema, 2000, max_value_joins=4)
    data = build_technical_benchmark_data(schema)
    registry = TemplateRegistry(use_graph_minor=use_graph_minor)
    for i, query in enumerate(queries):
        registry.add_query(f"q{i}", query)
    processor = MMQJPJoinProcessor(registry, state=data.fresh_state())
    matches = benchmark.pedantic(lambda: processor.process(data.witness), rounds=2, iterations=1)
    benchmark.extra_info["ablation"] = "graph_minor"
    benchmark.extra_info["use_graph_minor"] = use_graph_minor
    benchmark.extra_info["num_templates"] = registry.num_templates
    benchmark.extra_info["num_matches"] = len(matches)
