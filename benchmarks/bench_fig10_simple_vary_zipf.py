"""Figure 10: simple schema, conjunctive-query time vs. the Zipf parameter.

Expected shape: the Zipf parameter barely affects MMQJP (the template count
is unchanged); Sequential speeds up roughly 2x as queries get simpler.
"""

import pytest

from benchmarks.workloads import make_queries, prepare, simple_schema


@pytest.mark.parametrize("zipf", [0.0, 0.4, 0.8, 1.2, 1.6])
@pytest.mark.parametrize("approach", ["mmqjp", "sequential"])
def bench_fig10(benchmark, approach, zipf):
    schema = simple_schema(6)
    queries = make_queries(schema, 1000, zipf=zipf)
    workload = prepare(approach, schema, queries)
    matches = benchmark.pedantic(workload.run, rounds=2, iterations=1)
    benchmark.extra_info["figure"] = "fig10"
    benchmark.extra_info["approach"] = approach
    benchmark.extra_info["zipf"] = zipf
    benchmark.extra_info["num_matches"] = len(matches)
