"""Ingest fast path: streaming parse vs. tree-building publish throughput.

The workload is a citation-dense DBLP article stream
(:mod:`repro.workloads.dblp` with ``citations_per_article`` set): documents
are element-heavy while the coauthor subscriptions cover a handful of
venues, so publish cost is parse-bound — exactly the regime the streaming
ingest path (``ingest="stream"``) is built for.  The timed quantity is
end-to-end ``Broker.publish`` throughput over the same text workload with
``ingest="stream"`` vs ``ingest="tree"``, interleaved and reported as
best-of-N CPU time so the box's scheduling noise cancels.

Asserted acceptance criteria (CI gates):

* the streaming ingest path is ≥ 2× the tree path's publish throughput on
  this workload (skipped at smoke scale);
* the structural ``rename_variables`` is ≥ 5× the historical deepcopy
  rename (the subscribe constant);
* exact match-set equivalence across ``ingest`` × serial/threads/processes
  × 1/2/4 shards;
* the process transport encodes each published document exactly once,
  regardless of shard count (encode-once fan-out).

Results are also written to ``BENCH_ingest.json`` (repo root, or
``$REPRO_BENCH_JSON_DIR``) through :func:`repro.bench.reporting.rows_to_json`;
``meta.regression_metrics`` carries the two headline speedups for
``benchmarks/check_bench_regression.py``.

Set ``REPRO_BENCH_TINY=1`` to run the whole file at smoke scale (CI).
"""

import functools
import os
import random
import time

import pytest

from repro import RuntimeConfig, open_broker
from repro.bench.reporting import rows_to_json
from repro.pubsub.broker import Broker
from repro.workloads.dblp import DblpWorkloadConfig, generate_dblp_stream
from repro.workloads.querygen import generate_query
from repro.xmlmodel import to_xml
from repro.xmlmodel.schema import two_level_schema
from repro.xscl.ast import rename_variables_deepcopy

# The throughput comparison sets `ingest` per broker; a leftover
# REPRO_INGEST override (e.g. from the suite-replay CI job) would silently
# collapse both sides onto one path, so it is dropped for this process.
os.environ.pop("REPRO_INGEST", None)

TINY = os.environ.get("REPRO_BENCH_TINY") == "1"

# The tiny scale stays parse-bound (enough articles and citations that
# the measured speedup is meaningful as a regression baseline) while
# keeping the whole file a few seconds of CI smoke.
NUM_ARTICLES = 80 if TINY else 250
CITATIONS = 60 if TINY else 120
BEST_OF = 3 if TINY else 5
#: Venues carrying a coauthor-alert subscription: the hottest venue plus a
#: spread of tail venues, so witness extraction and Stage-2 state run on
#: real traffic while most documents only need validation.
SUBSCRIBED_VENUES = (0, 10, 20, 30, 40, 45)
RENAME_ROUNDS = 50 if TINY else 400

_ROWS: list[dict] = []
_METRICS: dict[str, float] = {}


@pytest.fixture(scope="session", autouse=True)
def _emit_json():
    """Write the collected rows as BENCH_ingest.json after the run."""
    yield
    if not _ROWS:
        return
    out_dir = os.environ.get(
        "REPRO_BENCH_JSON_DIR", os.path.dirname(os.path.dirname(__file__))
    )
    rows_to_json(
        _ROWS,
        path=os.path.join(out_dir, "BENCH_ingest.json"),
        meta={
            "experiment": "ingest",
            "tiny": TINY,
            "num_articles": NUM_ARTICLES,
            "citations_per_article": CITATIONS,
            "best_of": BEST_OF,
            "subscribed_venues": list(SUBSCRIBED_VENUES),
            "regression_metrics": dict(_METRICS),
        },
    )


def _workload_config():
    return DblpWorkloadConfig(
        num_venues=50,
        num_authors=5000,
        title_pool_size=2000,
        max_authors_per_article=2,
        citations_per_article=CITATIONS,
        window=200.0,
    )


@functools.lru_cache(maxsize=None)
def _article_texts():
    """The serialized article stream: (text, timestamp, stream) triples."""
    docs = generate_dblp_stream(_workload_config(), NUM_ARTICLES, seed=11)
    return tuple((to_xml(d, pretty=False), d.timestamp, d.stream) for d in docs)


def _coauthor_queries(venues=SUBSCRIBED_VENUES):
    return [
        f"venue{v}//article->x1[.//author->x2] "
        f"FOLLOWED BY{{x2=x4, 200.0}} "
        f"venue{v}//article->x3[.//author->x4]"
        for v in venues
    ]


def _throughput_config(ingest, **changes):
    return RuntimeConfig(
        ingest=ingest, store_documents=False, construct_outputs=False, **changes
    )


def _publish_all(ingest):
    """One full publish pass; returns (cpu seconds, matches delivered)."""
    broker = Broker(_throughput_config(ingest))
    for query in _coauthor_queries():
        broker.subscribe(query)
    texts = _article_texts()
    matches = 0
    start = time.process_time()
    for text, timestamp, stream in texts:
        matches += len(broker.publish(text, timestamp=timestamp, stream=stream))
    return time.process_time() - start, matches


def bench_ingest_throughput(benchmark):
    """End-to-end publish throughput, stream vs tree, interleaved best-of-N."""

    def run_once():
        best = {"stream": float("inf"), "tree": float("inf")}
        matches = {}
        for _ in range(BEST_OF):
            for ingest in ("stream", "tree"):
                elapsed, delivered = _publish_all(ingest)
                best[ingest] = min(best[ingest], elapsed)
                matches[ingest] = delivered
        return best, matches

    best, matches = benchmark.pedantic(run_once, rounds=1, iterations=1)
    assert matches["stream"] == matches["tree"], (
        f"fast path lost deliveries: {matches}"
    )
    speedup = best["tree"] / best["stream"] if best["stream"] else 0.0
    _METRICS["stream_speedup"] = round(speedup, 3)
    if not TINY:
        # The acceptance bar: streaming ingest at least doubles publish
        # throughput on a parse-bound workload.
        assert speedup >= 2.0, (
            f"stream ingest only {speedup:.2f}x over tree ingest"
        )
    for ingest in ("tree", "stream"):
        seconds = best[ingest]
        row = {
            "figure": "ingest_throughput",
            "ingest": ingest,
            "num_articles": NUM_ARTICLES,
            "citations_per_article": CITATIONS,
            "docs_per_s": round(NUM_ARTICLES / seconds, 1) if seconds else 0.0,
            "ms_per_doc": round(seconds * 1000.0 / NUM_ARTICLES, 4),
            "num_matches": matches[ingest],
        }
        if ingest == "stream":
            row["speedup_vs_tree"] = round(speedup, 2)
        _ROWS.append(row)
    benchmark.extra_info.update(
        {
            "figure": "ingest_throughput",
            "stream_ms_per_doc": round(best["stream"] * 1000.0 / NUM_ARTICLES, 4),
            "tree_ms_per_doc": round(best["tree"] * 1000.0 / NUM_ARTICLES, 4),
            "speedup_vs_tree": round(speedup, 2),
            "num_matches": matches["stream"],
        }
    )


def bench_ingest_subscribe_constant(benchmark):
    """The canonicalization rename: structural copy vs the deepcopy baseline."""
    rng = random.Random(7)
    schema = two_level_schema(4)
    queries = [
        generate_query(schema, (i % 2) + 1, rng, window=9.0) for i in range(8)
    ]
    mappings = [
        {var: f"x{i + 1}" for i, var in enumerate(query.all_variables())}
        for query in queries
    ]

    def time_variant(rename):
        best = float("inf")
        for _ in range(BEST_OF):
            start = time.process_time()
            for _ in range(RENAME_ROUNDS):
                for query, mapping in zip(queries, mappings):
                    rename(query, mapping)
            best = min(best, time.process_time() - start)
        return best / (RENAME_ROUNDS * len(queries))

    def run_once():
        return {
            "structural": time_variant(lambda q, m: q.rename_variables(m)),
            "deepcopy": time_variant(rename_variables_deepcopy),
        }

    per_call = benchmark.pedantic(run_once, rounds=1, iterations=1)
    speedup = (
        per_call["deepcopy"] / per_call["structural"]
        if per_call["structural"]
        else 0.0
    )
    _METRICS["subscribe_speedup"] = round(speedup, 3)
    if not TINY:
        # The acceptance bar: the subscribe constant drops ≥ 5×.
        assert speedup >= 5.0, (
            f"structural rename only {speedup:.2f}x over deepcopy"
        )
    for variant in ("deepcopy", "structural"):
        row = {
            "figure": "ingest_subscribe",
            "variant": variant,
            "us_per_rename": round(per_call[variant] * 1e6, 3),
        }
        if variant == "structural":
            row["speedup_vs_deepcopy"] = round(speedup, 2)
        _ROWS.append(row)
    benchmark.extra_info.update(
        {
            "figure": "ingest_subscribe",
            "structural_us": round(per_call["structural"] * 1e6, 3),
            "deepcopy_us": round(per_call["deepcopy"] * 1e6, 3),
            "speedup_vs_deepcopy": round(speedup, 2),
        }
    )


def _match_keys(deliveries):
    """Normalized match keys: text publishes draw fresh auto docids per
    broker, so keys compare timestamps and bindings instead."""
    keys = []
    for result in deliveries:
        if result.match is None:
            continue
        match = result.match
        keys.append(
            (
                result.subscription_id,
                match.lhs_timestamp,
                match.rhs_timestamp,
                tuple(sorted(match.lhs_bindings.items())),
                tuple(sorted(match.rhs_bindings.items())),
            )
        )
    return sorted(keys)


@functools.lru_cache(maxsize=None)
def _equivalence_texts():
    """A small, match-dense article stream: few venues and authors, so
    coauthor alerts actually fire."""
    config = DblpWorkloadConfig(
        num_venues=3,
        num_authors=6,
        title_pool_size=4,
        max_authors_per_article=2,
        citations_per_article=3,
        window=500.0,
    )
    num_docs = 8 if TINY else 12
    docs = generate_dblp_stream(config, num_docs, seed=5)
    return tuple((to_xml(d, pretty=False), d.timestamp, d.stream) for d in docs)


def bench_ingest_equivalence(benchmark):
    """Match-set equivalence across ingest × executor × shards.

    Runs at smoke scale regardless of ``REPRO_BENCH_TINY`` — it gates
    correctness, not speed.
    """
    queries = _coauthor_queries(venues=(0, 1, 2))

    def sweep():
        reference = None
        combinations = 0
        for ingest in ("stream", "tree"):
            for executor in ("serial", "threads", "processes"):
                for shards in (1, 2, 4):
                    config = _throughput_config(
                        ingest, executor=executor, shards=shards, max_workers=2
                    )
                    with open_broker(config) as broker:
                        for i, query in enumerate(queries):
                            broker.subscribe(query, subscription_id=f"q{i}")
                        deliveries = []
                        for text, timestamp, stream in _equivalence_texts():
                            deliveries.extend(
                                broker.publish(
                                    text, timestamp=timestamp, stream=stream
                                )
                            )
                    keys = _match_keys(deliveries)
                    combinations += 1
                    if reference is None:
                        reference = keys
                    assert keys == reference, (
                        f"match-set mismatch for ingest={ingest!r} "
                        f"executor={executor!r} shards={shards}"
                    )
        return combinations, len(reference)

    combinations, num_matches = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert num_matches > 0
    _ROWS.append(
        {
            "figure": "ingest_equivalence",
            "combinations": combinations,
            "num_matches": num_matches,
        }
    )
    benchmark.extra_info.update(
        {
            "figure": "ingest_equivalence",
            "combinations": combinations,
            "num_matches": num_matches,
        }
    )


def bench_ingest_wire_encode_once(benchmark):
    """Encode-once fan-out: one wire encode per publish at every shard count."""
    texts = _equivalence_texts()
    queries = _coauthor_queries(venues=(0, 1, 2))

    def sweep():
        transports = {}
        # shards=1 resolves to the in-process broker (no wire at all), so
        # the O(1)-encode claim is pinned across the sharded fan-out widths.
        for shards in (2, 4, 8):
            config = _throughput_config(
                "stream", executor="processes", shards=shards, max_workers=2
            )
            with open_broker(config) as broker:
                for i, query in enumerate(queries):
                    broker.subscribe(query, subscription_id=f"q{i}")
                for text, timestamp, stream in texts:
                    broker.publish(text, timestamp=timestamp, stream=stream)
                transports[shards] = broker.stats()["transport"]
        return transports

    transports = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for shards, transport in transports.items():
        # Every venue is subscribed, so no publish is dropped by routing:
        # encodes per document is exactly 1 no matter how wide the fan-out.
        assert transport["encodes"] == len(texts), (
            f"{transport['encodes']} encodes for {len(texts)} publishes "
            f"at {shards} shards"
        )
        assert transport["documents_encoded"] == len(texts)
        assert transport["shard_sends"] >= transport["encodes"]
        assert transport["shipped_bytes"] >= transport["wire_bytes"] > 0
        _ROWS.append(
            {
                "figure": "ingest_wire",
                "shards": shards,
                "publishes": len(texts),
                "encodes": transport["encodes"],
                "wire_bytes": transport["wire_bytes"],
                "shard_sends": transport["shard_sends"],
                "shipped_bytes": transport["shipped_bytes"],
            }
        )
    benchmark.extra_info.update(
        {
            "figure": "ingest_wire",
            "encodes_per_publish": 1,
            "shard_counts": sorted(transports),
        }
    )
