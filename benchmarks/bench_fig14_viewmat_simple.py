"""Figure 14: view-materialization cost breakdown, simple schema.

Two bars: MMQJP without and with the Section 5 view materialization.  The
per-phase breakdown (computing Rvj / RL / RR vs. conjunctive-query time) is
reported through ``extra_info``; expected shape: the materialized variant's
total is lower, with a small share spent building the views.
"""

import pytest

from benchmarks.conftest import breakdown_queries
from benchmarks.workloads import make_queries, prepare, simple_schema


@pytest.mark.parametrize("approach", ["mmqjp", "mmqjp-vm"])
def bench_fig14(benchmark, approach):
    schema = simple_schema(6)
    queries = make_queries(schema, breakdown_queries())
    workload = prepare(approach, schema, queries)
    matches = benchmark.pedantic(workload.run, rounds=2, iterations=1)
    benchmark.extra_info["figure"] = "fig14"
    benchmark.extra_info["approach"] = approach
    benchmark.extra_info["num_queries"] = breakdown_queries()
    benchmark.extra_info["num_matches"] = len(matches)
    benchmark.extra_info["breakdown_ms"] = workload.processor.costs.as_milliseconds()
