"""Figure 15: view-materialization cost breakdown, complex schema.

Expected shape: the benefit of materialization is larger than on the simple
schema because many more query templates share the materialized RL/RR views.
"""

import pytest

from benchmarks.conftest import breakdown_queries
from benchmarks.workloads import complex_schema, make_queries, prepare


@pytest.mark.parametrize("approach", ["mmqjp", "mmqjp-vm"])
def bench_fig15(benchmark, approach):
    schema = complex_schema()
    queries = make_queries(schema, breakdown_queries(), max_value_joins=4)
    workload = prepare(approach, schema, queries)
    matches = benchmark.pedantic(workload.run, rounds=2, iterations=1)
    benchmark.extra_info["figure"] = "fig15"
    benchmark.extra_info["approach"] = approach
    benchmark.extra_info["num_queries"] = breakdown_queries()
    benchmark.extra_info["num_matches"] = len(matches)
    benchmark.extra_info["breakdown_ms"] = workload.processor.costs.as_milliseconds()
