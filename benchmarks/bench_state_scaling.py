"""State scaling: per-document join cost vs. retained state × indexing mode.

The incremental indexed join pipeline maintains persistent hash indexes over
the docid-partitioned state relations, so the per-document Stage 2 work
scales with the *matching* witnesses; ``indexing="off"`` reproduces the old
snapshot-rehashing behavior (per-document cost O(templates × total state))
as the baseline.  Expected shape: at 1000 retained state documents with 200
queries, ``eager`` beats ``off`` by well over 3× per-document throughput
(``extra_info["docs_per_second"]``), with ``lazy`` in between.

Every timed configuration is checked for exact match-set equivalence
against the ``off`` baseline, and a small cross-engine / cross-shard sweep
(both engines; 1, 2 and 4 shards; all indexing modes) asserts the same —
this is the CI correctness gate for the indexed path.

Set ``REPRO_BENCH_TINY=1`` to run the whole file at smoke scale (CI).
"""

import functools
import os

import pytest

from repro.bench.harness import run_state_scaling
from repro import RuntimeConfig, open_broker
from repro.workloads.querygen import QueryWorkloadConfig, generate_queries
from repro.workloads.rss import RssStreamConfig, generate_rss_queries, generate_rss_stream
from repro.workloads.synthetic import build_state_scaling_data
from repro.xmlmodel.schema import three_level_schema

TINY = os.environ.get("REPRO_BENCH_TINY") == "1"

STATE_SIZES = (40,) if TINY else (250, 1000)
NUM_QUERIES = 30 if TINY else 200
NUM_PROBES = 3 if TINY else 5
INDEXING_MODES = ("eager", "lazy", "off")

SCHEMA = three_level_schema(branching=4)


@functools.lru_cache(maxsize=None)
def _workload(num_state_docs):
    queries = tuple(
        generate_queries(
            QueryWorkloadConfig(
                schema=SCHEMA,
                num_queries=NUM_QUERIES,
                zipf_theta=0.8,
                max_value_joins=4,
                window=float("inf"),
                seed=7,
            )
        )
    )
    data = build_state_scaling_data(SCHEMA, num_state_docs, num_probe_docs=NUM_PROBES)
    return queries, data


@functools.lru_cache(maxsize=None)
def _off_reference(num_state_docs):
    """The unindexed baseline: (docs_per_second, match keys) per state size."""
    queries, data = _workload(num_state_docs)
    result, keys = run_state_scaling(queries, data, indexing="off")
    return result.extra["docs_per_second"], keys


@pytest.mark.parametrize("num_state_docs", STATE_SIZES)
@pytest.mark.parametrize("indexing", INDEXING_MODES)
def bench_state_scaling(benchmark, indexing, num_state_docs):
    queries, data = _workload(num_state_docs)

    def run_once():
        return run_state_scaling(queries, data, indexing=indexing)

    result, keys = benchmark.pedantic(run_once, rounds=1, iterations=1)
    baseline_dps, baseline_keys = _off_reference(num_state_docs)
    assert keys == baseline_keys, (
        f"indexed path lost match-equivalence: indexing={indexing!r} at "
        f"{num_state_docs} state docs"
    )
    speedup = result.extra["docs_per_second"] / baseline_dps if baseline_dps else 0.0
    if indexing == "eager" and not TINY and num_state_docs >= 1000:
        # The acceptance bar for the incremental pipeline (measured margin
        # is far larger; 3× tolerates machine noise).
        assert speedup >= 3.0, f"eager indexing only {speedup:.2f}x over 'off'"
    benchmark.extra_info["figure"] = "state_scaling"
    benchmark.extra_info["indexing"] = indexing
    benchmark.extra_info["num_state_docs"] = num_state_docs
    benchmark.extra_info["num_queries"] = NUM_QUERIES
    benchmark.extra_info["num_templates"] = result.num_templates
    benchmark.extra_info["docs_per_second"] = result.extra["docs_per_second"]
    benchmark.extra_info["speedup_vs_off"] = round(speedup, 2)
    benchmark.extra_info["num_matches"] = result.num_matches


def _stream_match_keys(broker, queries, documents):
    try:
        for i, query in enumerate(queries):
            broker.subscribe(query, subscription_id=f"q{i}")
        keys = set()
        for document in documents:
            # Documents carry the generator's timestamps; every broker
            # configuration must see identical ones.
            for delivery in broker.publish(document):
                if delivery.match is not None:
                    keys.add(delivery.match.key())
        return keys
    finally:
        if hasattr(broker, "close"):
            broker.close()


def bench_state_scaling_equivalence(benchmark):
    """Match-set equivalence across engines, shard counts and indexing modes.

    Runs at smoke scale regardless of ``REPRO_BENCH_TINY`` — it gates
    correctness, not speed.
    """
    num_docs = 12 if TINY else 30
    # One hand-written subscription guaranteed to fire (two items from the
    # same channel) plus a generated workload.  Variable names match the
    # generator's so canonicalization is identical on every shard layout.
    same_channel = (
        "S//item->v_item[.//channel_url->v_channel_url] "
        "FOLLOWED BY{v_channel_url=v_channel_url, INF} "
        "S//item->v_item[.//channel_url->v_channel_url]"
    )
    queries = [same_channel] + generate_rss_queries(40, seed=3)

    def sweep():
        reference = None
        for engine in ("mmqjp", "sequential"):
            for indexing in INDEXING_MODES:
                for shards in (1, 2, 4):
                    documents = list(
                        generate_rss_stream(
                            RssStreamConfig(num_items=num_docs, num_channels=4, seed=2)
                        )
                    )
                    broker = open_broker(
                        RuntimeConfig(
                            engine=engine,
                            construct_outputs=False,
                            indexing=indexing,
                            shards=shards,
                        )
                    )
                    keys = _stream_match_keys(broker, queries, documents)
                    if reference is None:
                        reference = keys
                    assert keys == reference, (
                        f"match-set mismatch for engine={engine!r} "
                        f"indexing={indexing!r} shards={shards}"
                    )
        return len(reference)

    num_matches = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["figure"] = "state_scaling_equivalence"
    benchmark.extra_info["num_matches"] = num_matches
    assert num_matches > 0
