"""Delta scaling: delta-driven Stage-2 joins vs. the full-state join path.

The workload (:func:`repro.workloads.synthetic.build_delta_scaling_data`)
grows the retained join state while holding the *delta-connected* state
fixed: a constant slice of alive documents can actually join with a probe,
and a growing tail of dead documents matches every value join (shared value
pool) but carries decoy variable names no registered query binds.  The
timed quantity is the per-document Stage 2 cost, with ``delta_join`` on and
off; off reproduces the PR-4 behavior (full-state probing), on runs the
semi-join reduction pass first, so per-document cost tracks the alive slice
instead of the total state.

Asserted acceptance criteria (CI gates):

* exact match-set equivalence between ``delta_join`` on/off at every state
  size, and across the full ``delta_join`` × ``plan_cache`` ×
  ``prune_dispatch`` knob matrix on both engines with 1, 2 and 4 shards;
* at the largest measured state, ``delta_join=on`` is ≥ 5× faster than
  ``delta_join=off`` (skipped at smoke scale);
* the ``delta_join=on`` per-document time grows sub-linearly in state size.

Results are also written to ``BENCH_delta_scaling.json`` (repo root, or
``$REPRO_BENCH_JSON_DIR``) through :func:`repro.bench.reporting.rows_to_json`.

Set ``REPRO_BENCH_TINY=1`` to run the whole file at smoke scale (CI).
"""

import functools
import os
import random

import pytest

from repro import RuntimeConfig, open_broker
from repro.bench.harness import register_mmqjp, run_delta_scaling
from repro.bench.reporting import rows_to_json
from repro.workloads.querygen import generate_query
from repro.workloads.synthetic import build_delta_scaling_data, build_document
from repro.xmlmodel.schema import two_level_schema

TINY = os.environ.get("REPRO_BENCH_TINY") == "1"

SCHEMA = two_level_schema(6)
NUM_QUERIES = 24 if TINY else 120
STATE_SIZES = (16, 48) if TINY else (100, 400, 1600)
NUM_ALIVE = 8 if TINY else 16
NUM_PROBES = 3 if TINY else 8
VALUE_POOL = 6 if TINY else 16

#: (delta_join, plan_cache, prune_dispatch) combinations for the
#: equivalence sweep; the timed matrix only toggles delta_join (the other
#: knobs stay at their defaults).
KNOB_MATRIX = tuple(
    (delta, plan, prune)
    for delta in (False, True)
    for plan in (False, True)
    for prune in (False, True)
)

_ROWS: list[dict] = []
_ON_MS_PER_DOC: dict[int, float] = {}
_METRICS: dict[str, float] = {}


@pytest.fixture(scope="session", autouse=True)
def _emit_json():
    """Write the collected rows as BENCH_delta_scaling.json after the run."""
    yield
    if not _ROWS:
        return
    out_dir = os.environ.get(
        "REPRO_BENCH_JSON_DIR", os.path.dirname(os.path.dirname(__file__))
    )
    rows_to_json(
        _ROWS,
        path=os.path.join(out_dir, "BENCH_delta_scaling.json"),
        meta={
            "experiment": "delta_scaling",
            "tiny": TINY,
            "num_queries": NUM_QUERIES,
            "state_sizes": list(STATE_SIZES),
            "num_alive_docs": NUM_ALIVE,
            "num_probe_docs": NUM_PROBES,
            "value_pool": VALUE_POOL,
            "regression_metrics": dict(_METRICS),
        },
    )


@functools.lru_cache(maxsize=None)
def _queries_and_registry():
    rng = random.Random(7)
    queries = tuple(
        generate_query(SCHEMA, (i % 2) + 1, rng, window=float("inf"))
        for i in range(NUM_QUERIES)
    )
    return queries, register_mmqjp(queries)


@functools.lru_cache(maxsize=None)
def _workload(num_state_docs):
    return build_delta_scaling_data(
        SCHEMA,
        num_state_docs,
        num_alive_docs=NUM_ALIVE,
        num_probe_docs=NUM_PROBES,
        value_pool=VALUE_POOL,
    )


@functools.lru_cache(maxsize=None)
def _baseline(num_state_docs):
    """The full-state path (delta_join=False): (ms/doc, match keys)."""
    queries, registry = _queries_and_registry()
    result, keys = run_delta_scaling(
        queries, _workload(num_state_docs), delta_join=False, registry=registry
    )
    return result, keys


@pytest.mark.parametrize("num_state_docs", STATE_SIZES)
@pytest.mark.parametrize("delta_join", (False, True), ids=("delta0", "delta1"))
def bench_delta_scaling(benchmark, delta_join, num_state_docs):
    queries, registry = _queries_and_registry()
    data = _workload(num_state_docs)

    def run_once():
        return run_delta_scaling(
            queries, data, delta_join=delta_join, registry=registry
        )

    result, keys = benchmark.pedantic(run_once, rounds=1, iterations=1)
    baseline, baseline_keys = _baseline(num_state_docs)
    assert keys == baseline_keys, (
        f"delta-driven path lost match-equivalence: delta_join={delta_join} "
        f"at {num_state_docs} state docs"
    )
    baseline_ms = baseline.extra["ms_per_doc"]
    speedup = baseline_ms / result.extra["ms_per_doc"] if result.extra["ms_per_doc"] else 0.0
    if delta_join:
        _ON_MS_PER_DOC[num_state_docs] = result.extra["ms_per_doc"]
        if num_state_docs >= max(STATE_SIZES):
            # Machine-portable ratio for check_bench_regression.py.
            _METRICS["delta_speedup"] = round(speedup, 3)
        if not TINY and num_state_docs >= max(STATE_SIZES):
            # The acceptance bar: ≥ 5× over the full-state join at the
            # largest measured state.
            assert speedup >= 5.0, (
                f"delta_join only {speedup:.2f}x over full-state at "
                f"{num_state_docs} state docs"
            )
        if not TINY and len(_ON_MS_PER_DOC) == len(STATE_SIZES):
            # Sub-linearity: while the state grew by size_ratio, the
            # delta-driven per-document time must grow by at most half that
            # (in practice it is near-flat — the delta-connected slice is
            # constant by construction).
            smallest = min(STATE_SIZES)
            size_ratio = max(STATE_SIZES) / smallest
            time_ratio = _ON_MS_PER_DOC[max(STATE_SIZES)] / _ON_MS_PER_DOC[smallest]
            assert time_ratio <= size_ratio / 2.0, (
                f"delta_join per-document time grew {time_ratio:.2f}x over a "
                f"{size_ratio:.0f}x state growth — not sub-linear"
            )
    row = result.as_row()
    row["figure"] = "delta_scaling"
    row["speedup_vs_full_state"] = round(speedup, 2)
    _ROWS.append(row)
    benchmark.extra_info.update(
        {
            "figure": "delta_scaling",
            "delta_join": delta_join,
            "num_state_docs": num_state_docs,
            "num_queries": NUM_QUERIES,
            "ms_per_doc": result.extra["ms_per_doc"],
            "speedup_vs_full_state": round(speedup, 2),
            "num_matches": result.num_matches,
        }
    )


def _equivalence_documents(num_docs):
    """Small XML documents with colliding leaf values (joins actually fire)."""
    documents = []
    for i in range(num_docs):
        value = f"v{i % 3}"
        documents.append(
            build_document(
                SCHEMA,
                docid=f"doc{i}",
                timestamp=float(i + 1),
                leaf_values=[value] * SCHEMA.num_leaves,
                internal_marker=f"doc{i}",
            )
        )
    return documents


def _stream_match_keys(broker, queries, documents):
    try:
        for i, query in enumerate(queries):
            broker.subscribe(query, subscription_id=f"q{i}")
        keys = set()
        for delivery in broker.publish_many(documents):
            if delivery.match is not None:
                keys.add(delivery.match.key())
        return keys
    finally:
        broker.close()


def bench_delta_scaling_equivalence(benchmark):
    """Match-set equivalence across the knob matrix, engines and shards.

    Runs at smoke scale regardless of ``REPRO_BENCH_TINY`` — it gates
    correctness, not speed.
    """
    num_docs = 10 if TINY else 16
    rng = random.Random(3)
    queries = [
        generate_query(SCHEMA, (i % 2) + 1, rng, window=float("inf"))
        for i in range(16)
    ]

    def sweep():
        reference = None
        for engine in ("mmqjp", "sequential"):
            for delta_join, plan_cache, prune_dispatch in KNOB_MATRIX:
                for shards in (1, 2, 4):
                    broker = open_broker(
                        RuntimeConfig(
                            engine=engine,
                            construct_outputs=False,
                            delta_join=delta_join,
                            plan_cache=plan_cache,
                            prune_dispatch=prune_dispatch,
                            shards=shards,
                        )
                    )
                    keys = _stream_match_keys(
                        broker, queries, _equivalence_documents(num_docs)
                    )
                    if reference is None:
                        reference = keys
                    assert keys == reference, (
                        f"match-set mismatch for engine={engine!r} "
                        f"delta_join={delta_join} plan_cache={plan_cache} "
                        f"prune_dispatch={prune_dispatch} shards={shards}"
                    )
        return len(reference)

    num_matches = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["figure"] = "delta_scaling_equivalence"
    benchmark.extra_info["num_matches"] = num_matches
    assert num_matches > 0
