"""Workload construction helpers shared by the benchmark files.

Each helper prepares everything *except* the measured call (registration,
state loading, witness construction), so the timed quantity is exactly what
the paper times: the join processing for one incoming document.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.harness import register_mmqjp, register_sequential
from repro.core.materialize import ViewCache
from repro.core.processor import MMQJPJoinProcessor, SequentialJoinProcessor
from repro.workloads.querygen import QueryWorkloadConfig, generate_queries
from repro.workloads.synthetic import TechnicalBenchmarkData, build_technical_benchmark_data
from repro.xmlmodel.schema import three_level_schema, two_level_schema


@dataclass
class PreparedWorkload:
    """A fully registered workload ready for one timed ``process`` call."""

    data: TechnicalBenchmarkData
    processor: object
    num_templates: int | None = None

    def run(self):
        """The measured call: join the current document against the state."""
        return self.processor.process(self.data.witness)


def simple_schema(num_leaves: int = 6):
    """The two-level (simple) schema of Section 6.1."""
    return two_level_schema(num_leaves)


def complex_schema():
    """The three-level (complex) schema of Section 6.1."""
    return three_level_schema(branching=4)


def make_queries(schema, num_queries: int, zipf: float = 0.8, max_value_joins=None, seed: int = 7):
    """Figure 17 random queries over ``schema``."""
    return generate_queries(
        QueryWorkloadConfig(
            schema=schema,
            num_queries=num_queries,
            zipf_theta=zipf,
            max_value_joins=max_value_joins,
            seed=seed,
        )
    )


def prepare(approach: str, schema, queries, view_cache_size=None) -> PreparedWorkload:
    """Register ``queries`` under ``approach`` and load the benchmark documents."""
    data = build_technical_benchmark_data(schema)
    if approach == "sequential":
        processor = register_sequential(queries, state=data.fresh_state())
        return PreparedWorkload(data=data, processor=processor)
    registry = register_mmqjp(queries)
    view_cache = ViewCache(max_entries=view_cache_size) if view_cache_size else None
    processor = MMQJPJoinProcessor(
        registry,
        state=data.fresh_state(),
        use_view_materialization=(approach == "mmqjp-vm"),
        view_cache=view_cache,
    )
    return PreparedWorkload(data=data, processor=processor, num_templates=registry.num_templates)
