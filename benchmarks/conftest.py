"""Shared fixtures and helpers for the paper-reproduction benchmarks.

Every ``bench_*`` file regenerates one table or figure of the paper's
evaluation section (see DESIGN.md for the experiment index).  The benchmarks
run at a laptop-friendly scale by default; set the environment variable
``REPRO_BENCH_SCALE=paper`` to use query counts closer to the paper's
(substantially slower under the pure-Python engine).
"""

from __future__ import annotations

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

#: Query-count sweep used by the "vary number of queries" figures.
SMALL_QUERY_SWEEP = (10, 100, 1000, 5000)
PAPER_QUERY_SWEEP = (10, 100, 1000, 10000, 100000)


def query_sweep() -> tuple[int, ...]:
    """The query-count sweep for the current scale."""
    if os.environ.get("REPRO_BENCH_SCALE", "small") == "paper":
        return PAPER_QUERY_SWEEP
    return SMALL_QUERY_SWEEP


def breakdown_queries() -> int:
    """Query count for the view-materialization breakdown figures (14/15)."""
    return 100000 if os.environ.get("REPRO_BENCH_SCALE") == "paper" else 10000


@pytest.fixture(scope="session")
def bench_scale() -> str:
    """The active benchmark scale (``small`` or ``paper``)."""
    return os.environ.get("REPRO_BENCH_SCALE", "small")
