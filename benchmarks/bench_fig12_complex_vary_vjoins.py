"""Figure 12: complex schema, time vs. maximum number of value joins per query.

Expected shape: MMQJP's cost grows faster with K than Sequential's because
the number of query templates grows (paper: 2, 6, 20, 39 templates for
K = 2, 3, 4, 5), while remaining far below Sequential in absolute terms.
"""

import pytest

from benchmarks.workloads import complex_schema, make_queries, prepare


@pytest.mark.parametrize("max_value_joins", [2, 3, 4, 5])
@pytest.mark.parametrize("approach", ["mmqjp", "sequential"])
def bench_fig12(benchmark, approach, max_value_joins):
    schema = complex_schema()
    queries = make_queries(schema, 1000, max_value_joins=max_value_joins)
    workload = prepare(approach, schema, queries)
    matches = benchmark.pedantic(workload.run, rounds=2, iterations=1)
    benchmark.extra_info["figure"] = "fig12"
    benchmark.extra_info["approach"] = approach
    benchmark.extra_info["max_value_joins"] = max_value_joins
    benchmark.extra_info["num_matches"] = len(matches)
    if workload.num_templates is not None:
        benchmark.extra_info["num_templates"] = workload.num_templates
