"""Sharded-runtime throughput and parallel scaling.

Two experiments share this file:

* ``bench_sharded_throughput`` — events/second vs. shard count on the RSS
  stream (the original sharded-runtime measurement; the unsharded engine in
  ``bench_fig16_rss_throughput.py`` is its baseline).
* ``bench_parallel_scaling`` — the process-parallel runtime and the
  relevance-aware fan-out router, swept over executors (serial / threads /
  processes) × shard counts × routing on/off on the topic-sharded document
  workload (:func:`repro.workloads.synthetic.build_topic_documents`): each
  topic owns a template shape no other topic produces, so templates spread
  across shards and a document is relevant to ≈ ``1 / num_topics`` of them
  — the regime where routing skips most shards and process shards divide
  the CPU work.

Asserted acceptance criteria (CI gates):

* exact match-set equivalence across every executor × shards × routing
  cell (the serial replicate-everywhere cell is the reference);
* with routing on and templates on ≥ 2 shards, the router must actually
  skip dispatches (``pct_shards_skipped > 0``);
* on a multi-core machine (≥ 4 CPUs reported by ``os.cpu_count()``), the
  process executor must beat the serial one at 4 shards.  The speedup is
  *recorded* on every machine, but only *gated* where the hardware can
  deliver it — a single-CPU container pays the IPC overhead with no
  parallelism to buy back.

Results are also written to ``BENCH_parallel_scaling.json`` (repo root, or
``$REPRO_BENCH_JSON_DIR``) through :func:`repro.bench.reporting.rows_to_json`,
with ``meta.cpus`` recording the machine the numbers came from.

Set ``REPRO_BENCH_TINY=1`` to run the whole file at smoke scale (CI).
"""

import functools
import os

import pytest

from repro.bench.harness import run_parallel_topic_throughput, run_sharded_rss_throughput
from repro.bench.reporting import rows_to_json
from repro.workloads.querygen import generate_topic_queries
from repro.workloads.rss import RssStreamConfig, generate_rss_queries, generate_rss_stream
from repro.workloads.synthetic import build_topic_documents, topic_schemas

TINY = os.environ.get("REPRO_BENCH_TINY") == "1"

NUM_ITEMS = 150
NUM_QUERIES = 400
SHARD_SWEEP = (1, 2, 4)

NUM_TOPICS = 8
PARALLEL_NUM_QUERIES = 16 if TINY else 64
PARALLEL_NUM_DOCS = 64 if TINY else 240
PARALLEL_SHARD_SWEEP = (1, 2, 4) if TINY else (1, 2, 4, 8, 16)
PARALLEL_WINDOW = 1000.0

_ROWS: list[dict] = []
_SERIAL_MS: dict[tuple[int, bool], float] = {}


@pytest.fixture(scope="session", autouse=True)
def _emit_json():
    """Write the collected rows as BENCH_parallel_scaling.json after the run."""
    yield
    if not _ROWS:
        return
    out_dir = os.environ.get(
        "REPRO_BENCH_JSON_DIR", os.path.dirname(os.path.dirname(__file__))
    )
    rows_to_json(
        _ROWS,
        path=os.path.join(out_dir, "BENCH_parallel_scaling.json"),
        meta={
            "experiment": "parallel_scaling",
            "tiny": TINY,
            "cpus": os.cpu_count(),
            "num_topics": NUM_TOPICS,
            "num_queries": PARALLEL_NUM_QUERIES,
            "num_documents": PARALLEL_NUM_DOCS,
            "shard_sweep": list(PARALLEL_SHARD_SWEEP),
            "wire_format": (
                "process shards return match batches as a shared interned "
                "value table plus packed id rows (one encode per batch, one "
                "table entry per distinct value) instead of per-match pickled "
                "tuples; numbers before this change paid per-match "
                "serialization of repeated qids/docids/bindings on the pipe"
            ),
        },
    )


@pytest.mark.parametrize("shards", SHARD_SWEEP)
@pytest.mark.parametrize("executor", ["serial", "threads"])
def bench_sharded_throughput(benchmark, executor, shards):
    documents = list(generate_rss_stream(RssStreamConfig(num_items=NUM_ITEMS)))
    queries = generate_rss_queries(NUM_QUERIES)

    def run_once():
        return run_sharded_rss_throughput(
            queries, documents, shards=shards, partitioner="hash", executor=executor
        )

    result = benchmark.pedantic(run_once, rounds=1, iterations=1)
    benchmark.extra_info["figure"] = "sharded_throughput"
    benchmark.extra_info["shards"] = shards
    benchmark.extra_info["executor"] = executor
    benchmark.extra_info["num_queries"] = NUM_QUERIES
    benchmark.extra_info["num_events"] = NUM_ITEMS
    benchmark.extra_info["events_per_second"] = result.extra["events_per_second"]
    benchmark.extra_info["num_matches"] = result.num_matches


@functools.lru_cache(maxsize=None)
def _topic_workload():
    schemas = topic_schemas(NUM_TOPICS)
    queries = tuple(
        generate_topic_queries(schemas, PARALLEL_NUM_QUERIES, window=PARALLEL_WINDOW)
    )
    documents = tuple(build_topic_documents(schemas, PARALLEL_NUM_DOCS))
    return queries, documents


@functools.lru_cache(maxsize=None)
def _parallel_reference():
    """The serial replicate-to-every-shard run: the match-key oracle."""
    queries, documents = _topic_workload()
    _, keys = run_parallel_topic_throughput(
        queries, documents, shards=2, executor="serial", route_dispatch=False
    )
    assert keys, "the topic workload must produce matches"
    return keys


@pytest.mark.parametrize("shards", PARALLEL_SHARD_SWEEP)
@pytest.mark.parametrize("routing", [True, False], ids=["routed", "replicated"])
@pytest.mark.parametrize("executor", ["serial", "threads", "processes"])
def bench_parallel_scaling(benchmark, executor, routing, shards):
    queries, documents = _topic_workload()

    def run_once():
        return run_parallel_topic_throughput(
            queries,
            documents,
            shards=shards,
            executor=executor,
            route_dispatch=routing,
        )

    result, keys = benchmark.pedantic(run_once, rounds=1, iterations=1)
    assert keys == _parallel_reference(), (
        f"match-set mismatch for executor={executor!r} shards={shards} "
        f"routing={routing}"
    )
    if routing and result.extra["num_active_shards"] > 1:
        assert result.extra["pct_shards_skipped"] > 0, (
            f"templates on {result.extra['num_active_shards']} shards but the "
            f"router skipped nothing (shards={shards})"
        )

    ms_per_doc = result.extra["ms_per_doc"]
    if executor == "serial":
        _SERIAL_MS[(shards, routing)] = ms_per_doc
    serial_ms = _SERIAL_MS.get((shards, routing))
    speedup = round(serial_ms / ms_per_doc, 3) if serial_ms and ms_per_doc else None
    if (
        executor == "processes"
        and shards == 4
        and routing
        and speedup is not None
        and (os.cpu_count() or 1) >= 4
    ):
        assert speedup >= 1.0, (
            f"processes ran {speedup}x vs serial at 4 shards on a "
            f"{os.cpu_count()}-CPU machine"
        )

    row = result.as_row()
    row["figure"] = "parallel_scaling"
    row["speedup_vs_serial"] = speedup
    _ROWS.append(row)
    benchmark.extra_info.update(
        {
            "figure": "parallel_scaling",
            "executor": executor,
            "shards": shards,
            "routing": routing,
            "ms_per_doc": ms_per_doc,
            "pct_shards_skipped": result.extra.get("pct_shards_skipped"),
            "speedup_vs_serial": speedup,
            "num_matches": result.num_matches,
        }
    )
