"""Sharded-runtime throughput: events/second vs. shard count on the RSS stream.

Goes beyond the paper: the ShardedBroker partitions the subscription
workload template-cohesively across independent engine shards and fans each
feed item out to all of them.  Expected shape: per-shard work shrinks with
the shard's share of templates, so the serial executor already shows the
work-partitioning effect; the threads executor additionally exercises
concurrent dispatch (with little wall-clock gain under the GIL for the
pure-Python engines — the shape to watch is shards, not threads).

The unsharded engine (``bench_fig16_rss_throughput.py``, approach
``mmqjp``) is the single-engine baseline for these numbers.
"""

import pytest

from repro.bench.harness import run_sharded_rss_throughput
from repro.workloads.rss import RssStreamConfig, generate_rss_queries, generate_rss_stream

NUM_ITEMS = 150
NUM_QUERIES = 400
SHARD_SWEEP = (1, 2, 4)


@pytest.mark.parametrize("shards", SHARD_SWEEP)
@pytest.mark.parametrize("executor", ["serial", "threads"])
def bench_sharded_throughput(benchmark, executor, shards):
    documents = list(generate_rss_stream(RssStreamConfig(num_items=NUM_ITEMS)))
    queries = generate_rss_queries(NUM_QUERIES)

    def run_once():
        return run_sharded_rss_throughput(
            queries, documents, shards=shards, partitioner="hash", executor=executor
        )

    result = benchmark.pedantic(run_once, rounds=1, iterations=1)
    benchmark.extra_info["figure"] = "sharded_throughput"
    benchmark.extra_info["shards"] = shards
    benchmark.extra_info["executor"] = executor
    benchmark.extra_info["num_queries"] = NUM_QUERIES
    benchmark.extra_info["num_events"] = NUM_ITEMS
    benchmark.extra_info["events_per_second"] = result.extra["events_per_second"]
    benchmark.extra_info["num_matches"] = result.num_matches
