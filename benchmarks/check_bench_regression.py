#!/usr/bin/env python3
"""Compare fresh benchmark JSON against committed baselines.

Each ``BENCH_<name>.json`` file carries ``meta.regression_metrics`` — a
small dict of machine-portable ratios (speedups), not absolute
throughputs, so a fresh CI run on unknown hardware can be compared
against baselines committed from another machine.  A metric regresses
when::

    fresh < baseline * (1 - threshold)

Usage::

    python benchmarks/check_bench_regression.py --fresh /tmp/fresh
    python benchmarks/check_bench_regression.py --fresh /tmp/fresh \
        --baseline-dir benchmarks/baselines --threshold 0.30 ingest

Bench names default to every ``BENCH_*.json`` present in the baseline
directory.  A missing fresh file, a missing baseline, or a ``meta.tiny``
mismatch (tiny results are only comparable to tiny baselines) is a
warning and a skip, not a failure; a regressed metric exits non-zero.
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def load_metrics(path: str) -> tuple[dict, bool] | None:
    """Return (regression_metrics, tiny) from a bench JSON, or None."""
    try:
        with open(path) as handle:
            document = json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"warning: cannot read {path}: {exc}")
        return None
    meta = document.get("meta", {})
    metrics = meta.get("regression_metrics") or {}
    return metrics, bool(meta.get("tiny"))


def check_bench(name: str, fresh_dir: str, baseline_dir: str, threshold: float) -> int:
    """Check one bench; returns the number of regressed metrics."""
    filename = f"BENCH_{name}.json"
    baseline = load_metrics(os.path.join(baseline_dir, filename))
    if baseline is None:
        print(f"warning: no baseline for {name} — skipped")
        return 0
    fresh = load_metrics(os.path.join(fresh_dir, filename))
    if fresh is None:
        print(f"warning: no fresh results for {name} — skipped")
        return 0
    baseline_metrics, baseline_tiny = baseline
    fresh_metrics, fresh_tiny = fresh
    if baseline_tiny != fresh_tiny:
        print(
            f"warning: {name}: tiny={fresh_tiny} results vs tiny={baseline_tiny} "
            "baseline are not comparable — skipped"
        )
        return 0
    if not baseline_metrics:
        print(f"warning: {name}: baseline has no regression_metrics — skipped")
        return 0
    regressed = 0
    for metric, reference in sorted(baseline_metrics.items()):
        value = fresh_metrics.get(metric)
        if value is None:
            print(f"warning: {name}: metric {metric!r} missing from fresh run")
            continue
        floor = reference * (1.0 - threshold)
        verdict = "REGRESSED" if value < floor else "ok"
        print(
            f"{name}.{metric}: fresh={value:.3f} baseline={reference:.3f} "
            f"floor={floor:.3f} [{verdict}]"
        )
        if value < floor:
            regressed += 1
    return regressed


def main(argv: list[str] | None = None) -> int:
    here = os.path.dirname(os.path.abspath(__file__))
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fresh", required=True, help="directory holding fresh BENCH_*.json files"
    )
    parser.add_argument(
        "--baseline-dir",
        default=os.path.join(here, "baselines"),
        help="directory holding committed baseline BENCH_*.json files",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="allowed fractional drop below the baseline (default 0.30)",
    )
    parser.add_argument(
        "benches",
        nargs="*",
        help="bench names (e.g. 'ingest'); default: every baseline present",
    )
    args = parser.parse_args(argv)

    names = args.benches
    if not names:
        try:
            names = sorted(
                entry[len("BENCH_") : -len(".json")]
                for entry in os.listdir(args.baseline_dir)
                if entry.startswith("BENCH_") and entry.endswith(".json")
            )
        except OSError as exc:
            print(f"error: cannot list baselines: {exc}")
            return 2
    if not names:
        print(f"warning: no baselines under {args.baseline_dir} — nothing checked")
        return 0

    regressed = sum(
        check_bench(name, args.fresh, args.baseline_dir, args.threshold)
        for name in names
    )
    if regressed:
        print(f"{regressed} metric(s) regressed more than {args.threshold:.0%}")
        return 1
    print("no benchmark regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
