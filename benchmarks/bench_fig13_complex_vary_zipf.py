"""Figure 13: complex schema, time vs. the Zipf parameter.

Expected shape: as in Figure 10, Sequential benefits from higher skew
(simpler queries) while MMQJP is largely insensitive.
"""

import pytest

from benchmarks.workloads import complex_schema, make_queries, prepare


@pytest.mark.parametrize("zipf", [0.0, 0.4, 0.8, 1.2, 1.6])
@pytest.mark.parametrize("approach", ["mmqjp", "sequential"])
def bench_fig13(benchmark, approach, zipf):
    schema = complex_schema()
    queries = make_queries(schema, 1000, zipf=zipf, max_value_joins=4)
    workload = prepare(approach, schema, queries)
    matches = benchmark.pedantic(workload.run, rounds=2, iterations=1)
    benchmark.extra_info["figure"] = "fig13"
    benchmark.extra_info["approach"] = approach
    benchmark.extra_info["zipf"] = zipf
    benchmark.extra_info["num_matches"] = len(matches)
