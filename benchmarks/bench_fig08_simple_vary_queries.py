"""Figure 8: simple (two-level) schema, conjunctive-query time vs. #queries.

Expected shape: MMQJP and Sequential are comparable at 10 queries; MMQJP is
one to two orders of magnitude faster at the top of the sweep.
"""

import pytest

from benchmarks.conftest import query_sweep
from benchmarks.workloads import make_queries, prepare, simple_schema


@pytest.mark.parametrize("num_queries", query_sweep())
@pytest.mark.parametrize("approach", ["mmqjp", "sequential"])
def bench_fig08(benchmark, approach, num_queries):
    schema = simple_schema(6)
    queries = make_queries(schema, num_queries)
    workload = prepare(approach, schema, queries)
    matches = benchmark.pedantic(workload.run, rounds=2, iterations=1)
    benchmark.extra_info["figure"] = "fig08"
    benchmark.extra_info["approach"] = approach
    benchmark.extra_info["num_queries"] = num_queries
    benchmark.extra_info["num_matches"] = len(matches)
    if workload.num_templates is not None:
        benchmark.extra_info["num_templates"] = workload.num_templates
