"""Columnar wire encoding for the process-parallel shard pipe.

Match batches cross the worker pipe as a shared value table plus packed id
rows instead of per-match pickled tuples.  These tests pin the round-trip
semantics of :func:`encode_match_batch` / :func:`decode_match_batch`
(type-exact interning, unhashable values, batch splitting) and check the
processes executor end-to-end against the serial one.
"""

from __future__ import annotations

import pytest

from repro import RuntimeConfig, open_broker
from repro.core.results import Match
from repro.runtime.process import (
    decode_match,
    decode_match_batch,
    encode_match,
    encode_match_batch,
)
from tests.conftest import (
    PAPER_Q1,
    PAPER_Q2,
    PAPER_WINDOWS,
    make_blog_article,
    make_book_announcement,
)


def _match(i: int, **overrides) -> Match:
    fields = dict(
        qid=f"q{i}",
        lhs_docid=f"d{i}",
        rhs_docid=f"d{i + 1}",
        lhs_timestamp=float(i),
        rhs_timestamp=float(i) + 0.5,
        lhs_bindings={"a": i, "b": i + 1},
        rhs_bindings={"c": i + 2},
        window=10.0,
    )
    fields.update(overrides)
    return Match(**fields)


def _assert_same(a: Match, b: Match) -> None:
    assert a.key() == b.key()
    assert a.lhs_timestamp == b.lhs_timestamp
    assert a.rhs_timestamp == b.rhs_timestamp
    assert a.window == b.window
    assert a.lhs_bindings == b.lhs_bindings
    assert a.rhs_bindings == b.rhs_bindings


def test_batch_round_trip_preserves_structure():
    batches = [
        [_match(0), _match(1)],
        [],
        [_match(2)],
    ]
    decoded = decode_match_batch(encode_match_batch(batches))
    assert [len(b) for b in decoded] == [2, 0, 1]
    for got, want in zip(decoded, batches):
        for g, w in zip(got, want):
            _assert_same(g, w)


def test_empty_batch_list_round_trips():
    assert decode_match_batch(encode_match_batch([])) == []
    assert decode_match_batch(encode_match_batch([[], []])) == [[], []]


def test_shared_values_are_interned_once():
    # Twenty matches of the same query against the same lhs document: the
    # repeated qid/docid/window values appear once in the value table.
    matches = [
        _match(0, rhs_docid=f"r{i}", lhs_bindings={"a": 7}, rhs_bindings={})
        for i in range(20)
    ]
    table, counts, rows, stamps = encode_match_batch([matches])
    assert counts == (20,)
    assert len(rows) == 20
    assert stamps is None  # no publish stamps -> no per-document column
    assert table.count("q0") == 1
    assert table.count("d0") == 1
    assert table.count(7) == 1


def test_interning_is_type_exact():
    # 1, 1.0 and True are ==/hash-equal but must round-trip with their
    # original types (docids and bindings are compared type-sensitively
    # downstream).
    m = _match(
        0,
        lhs_bindings={"x": 1, "y": True},
        rhs_bindings={"z": 1.0},
    )
    (got,) = decode_match_batch(encode_match_batch([[m]]))[0]
    assert got.lhs_bindings["x"] == 1 and type(got.lhs_bindings["x"]) is int
    assert got.lhs_bindings["y"] is True
    assert got.rhs_bindings["z"] == 1.0 and type(got.rhs_bindings["z"]) is float


def test_unhashable_values_survive_without_dedup():
    m = _match(0, lhs_bindings={"nodes": [1, 2, 3]})
    (got,) = decode_match_batch(encode_match_batch([[m]]))[0]
    assert got.lhs_bindings["nodes"] == [1, 2, 3]


def test_publish_stamps_ride_the_wire():
    # Metrics mode: per-document publish stamps cross the pipe alongside the
    # match rows and reattach to every decoded match of that document.
    batches = [[_match(0), _match(1)], [], [_match(2)]]
    decoded = decode_match_batch(
        encode_match_batch(batches, publish_stamps=[10.0, 11.0, 12.0])
    )
    assert [m.publish_stamp for m in decoded[0]] == [10.0, 10.0]
    assert [m.publish_stamp for m in decoded[2]] == [12.0]
    # Stamps are excluded from match identity/equality.
    assert decoded[0][0].key() == _match(0).key()


def test_single_match_codec_still_round_trips():
    m = _match(3)
    _assert_same(decode_match(encode_match(m)), m)


def test_infinite_window_round_trips():
    m = _match(0, window=float("inf"))
    (got,) = decode_match_batch(encode_match_batch([[m]]))[0]
    assert got.window == float("inf")


# --------------------------------------------------------------------------- #
# end to end: processes executor over the columnar wire
# --------------------------------------------------------------------------- #
def _collect_keys(config: RuntimeConfig) -> list[tuple]:
    broker = open_broker(config)
    try:
        broker.subscribe(PAPER_Q1, subscription_id="Q1", window_symbols=PAPER_WINDOWS)
        broker.subscribe(PAPER_Q2, subscription_id="Q2", window_symbols=PAPER_WINDOWS)
        documents = [
            make_book_announcement("d1", 1.0),
            make_blog_article("d2", 2.0),
            make_book_announcement("d3", 3.0),
            make_blog_article("d4", 4.0),
        ]
        keys = []
        for delivery in broker.publish_many(documents):
            if delivery.match is not None:
                keys.append(delivery.match.key())
        return keys
    finally:
        broker.close()


@pytest.mark.slow
def test_processes_executor_matches_serial_over_wire():
    serial = _collect_keys(
        RuntimeConfig(shards=2, executor="serial", construct_outputs=False)
    )
    processes = _collect_keys(
        RuntimeConfig(shards=2, executor="processes", construct_outputs=False)
    )
    assert sorted(serial) == sorted(processes)
    assert serial  # the workload must actually produce matches
