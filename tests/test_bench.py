"""Tests for the benchmark harness and experiment functions (tiny scales)."""

import pytest

import json

from repro.bench import (
    format_table,
    rows_to_csv,
    rows_to_json,
    run_rss_throughput,
    run_technical_benchmark,
)
from repro.bench import experiments
from repro.bench.harness import APPROACH_MMQJP, APPROACH_MMQJP_VM, APPROACH_SEQUENTIAL
from repro.core.costs import CostBreakdown
from repro.workloads.querygen import QueryWorkloadConfig, generate_queries
from repro.workloads.rss import RssStreamConfig, generate_rss_queries, generate_rss_stream
from repro.xmlmodel.schema import two_level_schema


@pytest.fixture(scope="module")
def small_workload():
    schema = two_level_schema(4)
    queries = generate_queries(QueryWorkloadConfig(schema=schema, num_queries=60, seed=21))
    return schema, queries


def test_run_technical_benchmark_all_approaches(small_workload):
    schema, queries = small_workload
    results = run_technical_benchmark(
        schema, queries, approaches=(APPROACH_MMQJP, APPROACH_MMQJP_VM, APPROACH_SEQUENTIAL)
    )
    assert [r.approach for r in results] == [
        APPROACH_MMQJP,
        APPROACH_MMQJP_VM,
        APPROACH_SEQUENTIAL,
    ]
    match_counts = {r.num_matches for r in results}
    assert len(match_counts) == 1  # every approach finds the same matches
    assert all(r.elapsed_ms > 0 for r in results)
    assert results[0].num_templates is not None
    row = results[0].as_row()
    assert row["approach"] == APPROACH_MMQJP
    assert "elapsed_ms" in row


def test_run_technical_benchmark_unknown_approach(small_workload):
    schema, queries = small_workload
    with pytest.raises(ValueError):
        run_technical_benchmark(schema, queries, approaches=("quantum",))


def test_run_rss_throughput_reports_events_per_second():
    queries = generate_rss_queries(10, seed=2)
    documents = list(generate_rss_stream(RssStreamConfig(num_items=15, num_channels=3)))
    result = run_rss_throughput(queries, documents, APPROACH_MMQJP)
    assert result.extra["num_events"] == 15
    assert result.extra["events_per_second"] > 0
    assert result.num_templates is not None


def test_cost_breakdown_merge_and_reset():
    a = CostBreakdown()
    with a.measure("phase1"):
        pass
    b = CostBreakdown()
    b.add("phase2", 0.5)
    a.merge(b)
    assert set(a.seconds) == {"phase1", "phase2"}
    assert a.total >= 0.5
    assert a.as_milliseconds()["phase2"] == 500.0
    a.reset()
    assert a.total == 0.0


def test_experiment_table3_small():
    rows = experiments.table3(max_value_joins=2)
    assert rows == [
        {"value_joins": 1, "templates_flat": 1, "templates_complex": 1},
        {"value_joins": 2, "templates_flat": 3, "templates_complex": 3},
    ]


def test_experiment_fig08_tiny():
    rows = experiments.fig08(num_queries_list=(5, 20), num_leaves=4)
    assert len(rows) == 4  # two sizes x two approaches
    assert {row["approach"] for row in rows} == {"mmqjp", "sequential"}
    assert all(row["figure"] == "fig08" for row in rows)


def test_experiment_fig12_tiny():
    rows = experiments.fig12(max_value_joins_list=(2, 3), num_queries=20)
    assert {row["max_value_joins"] for row in rows} == {2, 3}


def test_experiment_fig14_tiny():
    rows = experiments.fig14(num_queries=50)
    approaches = {row["approach"] for row in rows}
    assert approaches == {"mmqjp", "mmqjp-vm"}
    vm_row = next(row for row in rows if row["approach"] == "mmqjp-vm")
    assert {"rvj_ms", "rl_ms", "rr_ms", "conjunctive_query_ms"} <= set(vm_row)


def test_experiment_fig16_tiny():
    rows = experiments.fig16(num_queries_list=(5,), num_items=12)
    assert {row["approach"] for row in rows} == {"mmqjp", "mmqjp-vm", "sequential"}
    assert all(row["events_per_second"] > 0 for row in rows)


def test_experiment_sharded_throughput_tiny():
    rows = experiments.sharded_throughput(
        shard_counts=(1, 2), executors=("serial",), num_queries=30, num_items=20
    )
    assert [row["approach"] for row in rows] == [
        "mmqjp",
        "mmqjp-sharded1-serial",
        "mmqjp-sharded2-serial",
    ]
    # Sharding must not change the match set (the acceptance criterion).
    assert len({row["num_matches"] for row in rows}) == 1
    assert all(row["events_per_second"] > 0 for row in rows)


def test_run_parallel_topic_throughput_tiny():
    from repro.bench import run_parallel_topic_throughput
    from repro.workloads.querygen import generate_topic_queries
    from repro.workloads.synthetic import build_topic_documents, topic_schemas

    schemas = topic_schemas(4)
    queries = generate_topic_queries(schemas, 8, window=1000.0)
    documents = build_topic_documents(schemas, 24)

    result, routed_keys = run_parallel_topic_throughput(
        queries, documents, shards=4, executor="serial", route_dispatch=True
    )
    _, replicated_keys = run_parallel_topic_throughput(
        queries, documents, shards=4, executor="serial", route_dispatch=False
    )
    # Routing changes which shards see a document, never the match set.
    assert routed_keys == replicated_keys
    assert routed_keys
    assert result.approach == "mmqjp-parallel4-serial"
    assert result.extra["ms_per_doc"] > 0
    assert result.extra["route_dispatch"] is True
    if result.extra["num_active_shards"] > 1:
        assert result.extra["pct_shards_skipped"] > 0


def test_experiment_ablation_graph_minor_tiny():
    rows = experiments.ablation_graph_minor(num_queries=40)
    by_flag = {row["graph_minor"]: row for row in rows}
    assert by_flag[True]["num_templates"] <= by_flag[False]["num_templates"]
    assert by_flag[True]["num_matches"] == by_flag[False]["num_matches"]


def test_experiment_ablation_witness_tiny():
    rows = experiments.ablation_witness_representation(num_queries_list=(10, 50))
    assert rows[0]["shared_rows"] == rows[1]["shared_rows"]
    assert rows[1]["flat_rows"] > rows[0]["flat_rows"]


def test_experiment_ablation_view_cache_tiny():
    rows = experiments.ablation_view_cache(cache_sizes=(None, 8), num_queries=10, num_items=10)
    assert len(rows) == 2
    assert {row["cache_size"] for row in rows} == {0, 8}


def test_experiment_plan_scaling_tiny(tmp_path):
    path = tmp_path / "BENCH_plan_scaling.json"
    rows = experiments.plan_scaling(
        num_queries_list=(20,),
        num_topics_list=(3,),
        num_state_docs=12,
        num_probe_docs=3,
        json_path=str(path),
    )
    assert len(rows) == 4  # the plan_cache x prune_dispatch knob matrix
    assert {(row["plan_cache"], row["prune_dispatch"]) for row in rows} == {
        (False, False), (True, False), (False, True), (True, True)
    }
    # Equivalence is asserted inside the experiment; the baseline row is 1x.
    baseline = next(
        row for row in rows if not row["plan_cache"] and not row["prune_dispatch"]
    )
    assert baseline["speedup_vs_baseline"] == 1.0
    assert len({row["num_matches"] for row in rows}) == 1
    document = json.loads(path.read_text())
    assert document["meta"]["experiment"] == "plan_scaling"
    assert len(document["rows"]) == 4


def test_run_all_selected_subset():
    out = experiments.run_all(["table3"])
    assert set(out) == {"table3"}


def test_reporting_format_table_and_csv(tmp_path):
    rows = [{"a": 1, "b": "x"}, {"a": 22, "c": 3.5}]
    text = format_table(rows, title="demo")
    assert text.splitlines()[0] == "demo"
    assert "a" in text and "b" in text and "c" in text
    assert format_table([], title="t").endswith("(no rows)")

    path = tmp_path / "rows.csv"
    csv_text = rows_to_csv(rows, str(path))
    assert path.read_text() == csv_text
    assert csv_text.splitlines()[0] == "a,b,c"


def test_reporting_rows_to_json(tmp_path):
    rows = [{"a": 1, "window": float("inf")}, {"a": 2, "window": 5.0}]
    path = tmp_path / "rows.json"
    text = rows_to_json(rows, str(path), meta={"experiment": "demo"})
    assert path.read_text() == text
    document = json.loads(text)  # strict JSON: inf rendered as a string
    assert document["meta"] == {"experiment": "demo"}
    assert document["rows"][0]["window"] == "inf"
    assert document["rows"][1]["window"] == 5.0
