"""Encode-once document transport (`repro.runtime.wire`).

The outbound counterpart of the columnar match wire format: a published
batch is flattened into one value table plus per-document columns, packed
into a reusable pickle buffer, and the *same* bytes are shipped to every
routed shard.  These tests pin the codec round trip, the buffer-reuse
semantics, and the parent/worker transport counters surfaced under
``stats()["transport"]``.
"""

from __future__ import annotations

import pickle

import pytest

from repro import RuntimeConfig, open_broker
from repro.runtime.wire import WireBuffer, decode_document_batch, encode_document_batch
from repro.xmlmodel import parse_document, to_xml
from tests.conftest import (
    PAPER_Q1,
    PAPER_Q2,
    PAPER_WINDOWS,
    make_blog_article,
    make_book_announcement,
)

CROSS_POST = (
    "S//blog->b[.//author->a][.//title->t] "
    "FOLLOWED BY{a=a AND t=t, 100} "
    "S//blog->b[.//author->a][.//title->t]"
)


def _attr_doc():
    doc = parse_document(
        '<feed lang="en"><entry id="1">first</entry><entry id="2"/>'
        "<meta><tag>rss</tag></meta></feed>",
        docid="attr-doc",
        timestamp=3.5,
        stream="T",
    )
    doc.publish_stamp = 123.25
    return doc


def _assert_same_tree(left, right):
    assert left.tag == right.tag
    assert left.text == right.text
    assert left.attributes == right.attributes
    assert (left.node_id, left.post_id, left.depth) == (
        right.node_id,
        right.post_id,
        right.depth,
    )
    assert len(left.children) == len(right.children)
    for a, b in zip(left.children, right.children):
        _assert_same_tree(a, b)


# --------------------------------------------------------------------------- #
# codec round trip
# --------------------------------------------------------------------------- #
def test_document_batch_roundtrip():
    originals = [make_book_announcement(), make_blog_article(), _attr_doc()]
    decoded = decode_document_batch(encode_document_batch(originals))
    assert len(decoded) == len(originals)
    for original, copy in zip(originals, decoded):
        assert copy is not original
        assert copy.docid == original.docid
        assert copy.timestamp == original.timestamp
        assert copy.stream == original.stream
        assert copy.publish_stamp == original.publish_stamp
        assert len(copy) == len(original)
        _assert_same_tree(copy.root, original.root)
        # The pre-order index must be rebuilt too, not just the tree.
        for i in range(len(original)):
            assert copy.node(i).tag == original.node(i).tag


def test_decode_indices_selects_documents():
    batch = [make_book_announcement(docid="a"), make_blog_article(docid="b")]
    payload = encode_document_batch(batch)
    only_blog = decode_document_batch(payload, indices=[1])
    assert [d.docid for d in only_blog] == ["b"]
    both = decode_document_batch(payload, indices=[1, 0])
    assert [d.docid for d in both] == ["b", "a"]


def test_batch_value_table_is_shared():
    doc = make_blog_article()
    table_one, _ = encode_document_batch([doc])
    table_two, entries = encode_document_batch([doc, make_blog_article()])
    # Identical documents add no new table values, only new column tuples.
    assert len(table_two) == len(table_one)
    assert len(entries) == 2


def test_roundtrip_survives_pickle():
    # The wire payload crosses a pipe as pickled bytes: decode after a
    # real pickle round trip, exactly as the worker sees it.
    payload = pickle.loads(pickle.dumps(encode_document_batch([_attr_doc()])))
    (copy,) = decode_document_batch(payload)
    assert copy.root.attributes == {"lang": "en"}
    assert copy.root.children[0].text == "first"


# --------------------------------------------------------------------------- #
# the reusable buffer
# --------------------------------------------------------------------------- #
def test_wire_buffer_roundtrip_and_reuse():
    buffer = WireBuffer()
    first = buffer.pack(("hello", 1))
    assert pickle.loads(bytes(first)) == ("hello", 1)
    first.release()
    second = buffer.pack(["smaller"])
    assert pickle.loads(bytes(second)) == ["smaller"]
    second.release()


def test_wire_buffer_unreleased_view_falls_back():
    buffer = WireBuffer()
    held = buffer.pack(("payload", "one"))
    # Packing again while the previous view is still exported must not
    # corrupt it: the buffer falls back to a fresh allocation.
    fresh = buffer.pack(("payload", "two"))
    assert pickle.loads(bytes(held)) == ("payload", "one")
    assert pickle.loads(bytes(fresh)) == ("payload", "two")
    held.release()
    fresh.release()


# --------------------------------------------------------------------------- #
# transport counters
# --------------------------------------------------------------------------- #
_TRANSPORT_KEYS = {
    "encodes",
    "documents_encoded",
    "encode_ms",
    "wire_bytes",
    "shard_sends",
    "shipped_bytes",
    "decodes",
    "decode_ms",
    "payload_loads",
    "payload_bytes",
}


def _subscribe_all(broker):
    broker.subscribe(PAPER_Q1, window_symbols=PAPER_WINDOWS, subscription_id="q1")
    broker.subscribe(PAPER_Q2, window_symbols=PAPER_WINDOWS, subscription_id="q2")
    broker.subscribe(CROSS_POST, subscription_id="q3")


def _texts(n=6):
    docs = []
    for i in range(n):
        doc = (
            make_book_announcement(docid=f"d{i}")
            if i % 2
            else make_blog_article(docid=f"d{i}")
        )
        docs.append(to_xml(doc, pretty=False))
    return docs


@pytest.mark.parametrize("executor", ["serial", "threads"])
def test_in_process_executors_report_zero_transport(executor):
    with open_broker(
        RuntimeConfig(shards=2, executor=executor, construct_outputs=False)
    ) as broker:
        _subscribe_all(broker)
        for text in _texts():
            broker.publish(text)
        transport = broker.stats()["transport"]
    assert set(transport) == _TRANSPORT_KEYS
    assert all(value == 0 for value in transport.values())


@pytest.mark.slow
def test_process_transport_encodes_once_per_publish():
    with open_broker(
        RuntimeConfig(
            shards=4, executor="processes", max_workers=1, construct_outputs=False
        )
    ) as broker:
        _subscribe_all(broker)
        texts = _texts()
        for text in texts:
            broker.publish(text)
        transport = broker.stats()["transport"]
    assert set(transport) == _TRANSPORT_KEYS
    # One encode per routed publish — never one per shard; documents the
    # doc routed to zero shards simply skip the wire.
    assert 0 < transport["encodes"] <= len(texts)
    assert transport["documents_encoded"] == transport["encodes"]
    assert transport["shard_sends"] >= transport["encodes"]
    assert transport["shipped_bytes"] >= transport["wire_bytes"] > 0
    # All shards live on one worker: every distinct payload is decoded
    # exactly once and re-served from the one-slot cache to co-hosted
    # shards, so decodes tracks encodes, not shard fan-out.
    assert transport["payload_loads"] == transport["shard_sends"]
    assert transport["decodes"] == transport["encodes"]
    assert transport["payload_bytes"] == transport["shipped_bytes"]


@pytest.mark.slow
def test_process_transport_batches_encode_once():
    with open_broker(
        RuntimeConfig(
            shards=4, executor="processes", max_workers=2, construct_outputs=False
        )
    ) as broker:
        _subscribe_all(broker)
        broker.publish_many(_texts())
        transport = broker.stats()["transport"]
    # The whole batch crosses the wire as a single encode, regardless of
    # how many shard/worker assignments it fans out to.
    assert transport["encodes"] == 1
    assert transport["documents_encoded"] == len(_texts())
    assert transport["shard_sends"] >= 1
    assert transport["decodes"] <= transport["payload_loads"]


@pytest.mark.slow
def test_process_wire_matches_serial():
    keys = {}
    for executor in ("serial", "processes"):
        with open_broker(
            RuntimeConfig(shards=4, executor=executor, construct_outputs=False)
        ) as broker:
            _subscribe_all(broker)
            deliveries = broker.publish_many(_texts(10))
            # Text publishes draw fresh auto docids per broker, so the
            # comparison keys use timestamps + bindings instead.
            keys[executor] = sorted(
                (
                    r.subscription_id,
                    r.match.lhs_timestamp,
                    r.match.rhs_timestamp,
                    tuple(sorted(r.match.lhs_bindings.items())),
                    tuple(sorted(r.match.rhs_bindings.items())),
                )
                for r in deliveries
                if r.match is not None
            )
    assert keys["processes"] == keys["serial"]
    assert keys["serial"]
