"""publish_stream vs publish_many: same matches, same delivery order.

The two ingestion paths (one-document-at-a-time vs batched with the
columnar wire format) must be observationally identical — including while
subscriptions churn between publish calls, which exercises template
retirement, RT retraction and resubscription against warm join state.
"""

from __future__ import annotations

import random

import pytest

from repro import RuntimeConfig, open_broker
from repro.workloads.dblp import (
    DblpWorkloadConfig,
    generate_dblp_stream,
    generate_dblp_subscriptions,
)

CONFIG = DblpWorkloadConfig(num_venues=3, num_authors=10, title_pool_size=5, seed=3)
NUM_SUBSCRIPTIONS = 18
NUM_DOCS_PER_PHASE = 12
CHURN_ROUNDS = 3


def _workload():
    queries = list(generate_dblp_subscriptions(NUM_SUBSCRIPTIONS * 2, CONFIG, seed=31))
    documents = list(
        generate_dblp_stream(CONFIG, NUM_DOCS_PER_PHASE * (CHURN_ROUNDS + 1), seed=32)
    )
    return queries, documents


def _run(engine: str, shards: int, batched: bool):
    """Publish with churn between phases; return the ordered delivery log."""
    queries, documents = _workload()
    rng = random.Random(41)
    log: list = []

    def publish_phase(broker, docs):
        deliveries = broker.publish_many(docs) if batched else broker.publish_stream(docs)
        for delivery in deliveries:
            if delivery.match is not None:
                log.append((delivery.subscription_id, delivery.match.key()))

    with open_broker(
        RuntimeConfig(engine=engine, shards=shards, construct_outputs=False)
    ) as broker:
        live = []
        fresh = iter(queries)
        for _ in range(NUM_SUBSCRIPTIONS):
            sid = f"s{len(live)}"
            broker.subscribe(next(fresh), subscription_id=sid)
            live.append(sid)
        next_sid = NUM_SUBSCRIPTIONS
        position = 0
        for _ in range(CHURN_ROUNDS):
            publish_phase(broker, documents[position : position + NUM_DOCS_PER_PHASE])
            position += NUM_DOCS_PER_PHASE
            # Cancel a few random live subscriptions and subscribe fresh
            # ones — same rng seed on both paths, so the churn schedule is
            # identical.
            for _ in range(4):
                victim = live.pop(rng.randrange(len(live)))
                assert broker.cancel(victim)
                sid = f"s{next_sid}"
                next_sid += 1
                broker.subscribe(next(fresh), subscription_id=sid)
                live.append(sid)
        publish_phase(broker, documents[position : position + NUM_DOCS_PER_PHASE])
    return log


@pytest.mark.parametrize("shards", [1, 2])
@pytest.mark.parametrize("engine", ["mmqjp", "sequential"])
def test_stream_and_batch_publish_agree_under_churn(engine, shards):
    streamed = _run(engine, shards, batched=False)
    batched = _run(engine, shards, batched=True)
    assert streamed, "workload produced no matches — test is vacuous"
    assert set(streamed) == set(batched)
    assert streamed == batched, "delivery order diverged between paths"
