"""Tests for the sharded parallel runtime (`repro.runtime`).

The central property mirrors the engine-equivalence suite: partitioning the
subscription workload across shards — any shard count, any partitioner, any
executor — must not change the match set produced for a document stream.
"""

from __future__ import annotations

import pytest

from repro.core import EngineStats, CostBreakdown, SequentialEngine, merge_engine_stats
from repro.pubsub import Broker
from repro.runtime import (
    EngineShard,
    HashTemplatePartitioner,
    LeastLoadedPartitioner,
    SerialExecutor,
    ShardedBroker,
    ThreadedExecutor,
    make_executor,
    make_partitioner,
    template_key,
)
from repro.workloads.querygen import QueryWorkloadConfig, generate_queries
from repro.workloads.rss import RssStreamConfig, generate_rss_queries, generate_rss_stream
from repro.xmlmodel.schema import two_level_schema
from repro.xscl import parse_query
from tests.conftest import make_blog_article, PAPER_Q1, PAPER_WINDOWS

CROSS_POST = (
    "S//blog->b[.//author->a][.//title->t] "
    "FOLLOWED BY{a=a AND t=t, 10} "
    "S//blog->b[.//author->a][.//title->t]"
)


# --------------------------------------------------------------------------- #
# workloads shared by the equivalence tests
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def rss_workload():
    queries = generate_rss_queries(60, seed=5)
    documents = list(
        generate_rss_stream(
            RssStreamConfig(num_items=40, num_channels=4, title_pool_size=12)
        )
    )
    return queries, documents


@pytest.fixture(scope="module")
def synthetic_workload():
    schema = two_level_schema(4)
    queries = generate_queries(
        QueryWorkloadConfig(schema=schema, num_queries=40, zipf_theta=0.8, window=6.0, seed=3)
    )
    from tests.test_engine_equivalence import _random_documents

    return queries, lambda: _random_documents(schema, 10, 3, seed=3)


def _broker_match_keys(broker, queries, documents):
    for i, query in enumerate(queries):
        broker.subscribe(query, subscription_id=f"q{i}")
    deliveries = broker.publish_many(list(documents))
    return sorted(r.match.key() for r in deliveries if r.match is not None)


# --------------------------------------------------------------------------- #
# partitioners
# --------------------------------------------------------------------------- #
def test_template_key_invariant_under_variable_renaming():
    a = parse_query(
        "S//item->i[.//title->t] FOLLOWED BY{t=t, 5} S//item->i[.//title->t]"
    )
    b = parse_query(
        "S//item->x[.//title->y] FOLLOWED BY{y=y, 5} S//item->x[.//title->y]"
    )
    assert template_key(a) == template_key(b)


@pytest.mark.parametrize("strategy", ["hash", "least-loaded"])
def test_partitioners_keep_templates_together(strategy, rss_workload):
    queries, _ = rss_workload
    partitioner = make_partitioner(strategy, 4)
    by_key: dict[tuple, set[int]] = {}
    for query in queries:
        shard = partitioner.shard_for(query)
        by_key.setdefault(template_key(query), set()).add(shard)
    assert by_key  # the workload produced join queries
    for shards in by_key.values():
        assert len(shards) == 1  # template cohesion
    assert sum(partitioner.loads) == len(queries)
    assert partitioner.num_template_keys == len(by_key)


def test_hash_partitioner_is_deterministic(rss_workload):
    queries, _ = rss_workload
    a = HashTemplatePartitioner(4)
    b = HashTemplatePartitioner(4)
    assert [a.shard_for(q) for q in queries] == [b.shard_for(q) for q in queries]


def test_least_loaded_partitioner_balances():
    partitioner = LeastLoadedPartitioner(3)
    # Three structurally different RSS queries -> three distinct templates.
    texts = [
        "S//item->i[.//title->t] FOLLOWED BY{t=t, 5} S//item->i[.//title->t]",
        "S//item->i[.//title->t][.//channel_url->c] FOLLOWED BY{t=t AND c=c, 5} "
        "S//item->i[.//title->t][.//channel_url->c]",
        "S//item->i[.//title->t][.//channel_url->c][.//description->d] "
        "FOLLOWED BY{t=t AND c=c AND d=d, 5} "
        "S//item->i[.//title->t][.//channel_url->c][.//description->d]",
    ]
    shards = [partitioner.shard_for(parse_query(t)) for t in texts]
    assert sorted(shards) == [0, 1, 2]  # one new template per empty shard
    assert partitioner.loads == [1, 1, 1]


def test_make_partitioner_validation():
    with pytest.raises(ValueError):
        make_partitioner("round-robin", 2)
    with pytest.raises(ValueError):
        make_partitioner(HashTemplatePartitioner(2), 4)  # shard-count mismatch
    inst = LeastLoadedPartitioner(2)
    assert make_partitioner(inst, 2) is inst


# --------------------------------------------------------------------------- #
# executors
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("spec", ["serial", "threads", "processes"])
def test_executors_preserve_order(spec):
    # ProcessExecutor.map is its in-parent fallback path (worker processes
    # only serve the invoke() shard-call plane), so the lambda is fine here.
    with make_executor(spec) as executor:
        assert executor.map(lambda x: x * x, list(range(8))) == [x * x for x in range(8)]


def test_threaded_executor_propagates_exceptions():
    def boom(x):
        raise RuntimeError(f"task {x}")

    with ThreadedExecutor(max_workers=2) as executor:
        with pytest.raises(RuntimeError):
            executor.map(boom, [1, 2])


def test_make_executor_validation():
    with pytest.raises(ValueError):
        make_executor("fibers")
    inst = SerialExecutor()
    assert make_executor(inst) is inst


# --------------------------------------------------------------------------- #
# result equivalence: sharded vs. unsharded, on the RSS workload
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def rss_baseline(rss_workload):
    queries, documents = rss_workload
    keys = _broker_match_keys(
        Broker(engine="mmqjp", construct_outputs=False), queries, documents
    )
    assert keys  # the workload is dense enough that something matches
    return keys


@pytest.mark.parametrize("executor", ["serial", "threads"])
@pytest.mark.parametrize("partitioner", ["hash", "least-loaded"])
@pytest.mark.parametrize("shards", [1, 2, 4])
def test_sharded_equivalence_on_rss(shards, partitioner, executor, rss_workload, rss_baseline):
    queries, documents = rss_workload
    with ShardedBroker(
        engine="mmqjp",
        construct_outputs=False,
        shards=shards,
        partitioner=partitioner,
        executor=executor,
    ) as broker:
        keys = _broker_match_keys(broker, queries, documents)
    assert keys == rss_baseline


def test_sharded_equivalence_vs_sequential_on_rss(rss_workload, rss_baseline):
    queries, documents = rss_workload
    engine = SequentialEngine(store_documents=False, auto_timestamp=False)
    for i, query in enumerate(queries):
        engine.register_query(query, qid=f"q{i}")
    keys = sorted(
        m.key() for document in documents for m in engine.process_document(document)
    )
    assert keys == rss_baseline


# --------------------------------------------------------------------------- #
# result equivalence on the synthetic workload (finite windows -> pruning on)
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("engine", ["mmqjp", "sequential"])
@pytest.mark.parametrize("shards", [2, 4])
def test_sharded_equivalence_on_synthetic(shards, engine, synthetic_workload):
    queries, make_documents = synthetic_workload
    baseline = _broker_match_keys(
        Broker(engine=engine, construct_outputs=False), queries, make_documents()
    )
    with ShardedBroker(
        engine=engine, construct_outputs=False, shards=shards, executor="threads"
    ) as broker:
        keys = _broker_match_keys(broker, queries, make_documents())
    assert keys == baseline
    assert keys


def test_publish_many_equals_publish_loop(rss_workload):
    queries, documents = rss_workload
    batched = ShardedBroker(engine="mmqjp", construct_outputs=False, shards=3)
    looped = ShardedBroker(engine="mmqjp", construct_outputs=False, shards=3)
    for i, query in enumerate(queries):
        batched.subscribe(query, subscription_id=f"q{i}")
        looped.subscribe(query, subscription_id=f"q{i}")
    many = [r.match.key() for r in batched.publish_many(documents)]
    one_by_one = [r.match.key() for d in documents for r in looped.publish(d)]
    assert many == one_by_one


# --------------------------------------------------------------------------- #
# broker behaviour: escape hatch, outputs, filters, timestamps
# --------------------------------------------------------------------------- #
def test_broker_shards_escape_hatch():
    broker = Broker(engine="mmqjp", shards=3, executor="serial")
    assert isinstance(broker, ShardedBroker)
    assert broker.num_shards == 3
    assert broker.engine_name == "mmqjp"
    # shards=1 (or omitted) stays a plain Broker
    assert isinstance(Broker(shards=1), Broker)
    assert isinstance(Broker(), Broker)
    with pytest.raises(ValueError):
        Broker(shards=0)

    # Subclasses don't get rerouted by __new__; they must fail loudly rather
    # than silently dropping shards=N onto a single engine.
    class MyBroker(Broker):
        pass

    with pytest.raises(ValueError):
        MyBroker(shards=4)


def test_sharded_broker_constructs_outputs():
    with ShardedBroker(shards=2) as broker:
        broker.subscribe(PAPER_Q1, window_symbols=PAPER_WINDOWS, subscription_id="q1")
        from tests.conftest import make_book_announcement

        assert broker.publish(make_book_announcement()) == []
        deliveries = broker.publish(make_blog_article())
        assert len(deliveries) == 1
        assert deliveries[0].output is not None
        assert deliveries[0].output.root.tag == "result"


def test_sharded_broker_filter_subscriptions():
    with ShardedBroker(shards=2) as broker:
        hits = []
        broker.subscribe("S//blog->b[.//author->a]", callback=hits.append)
        broker.subscribe(CROSS_POST, subscription_id="join")
        broker.publish(make_blog_article(docid="b1", timestamp=1.0))
        assert len(hits) == 1
        assert broker.shard_of("join") is not None
        assert broker.shard_of(hits[0].subscription_id) is None


def test_sharded_broker_unsubscribe_and_lookup():
    with ShardedBroker(shards=2) as broker:
        sub = broker.subscribe(CROSS_POST)
        assert broker.subscription(sub.subscription_id) is sub
        assert broker.subscriptions == [sub]
        broker.publish(make_blog_article(docid="b1", timestamp=1.0))
        broker.unsubscribe(sub.subscription_id)
        broker.publish(make_blog_article(docid="b2", timestamp=2.0))
        assert sub.num_results == 0
        with pytest.raises(ValueError):
            broker.subscribe(CROSS_POST, subscription_id=sub.subscription_id)


def test_sharded_broker_central_auto_timestamping():
    with ShardedBroker(shards=2) as broker:
        broker.subscribe(CROSS_POST)
        broker.publish("<blog><author>A</author><title>T</title></blog>")
        deliveries = broker.publish("<blog><author>A</author><title>T</title></blog>")
        assert len(deliveries) == 1
        match = deliveries[0].match
        assert (match.lhs_timestamp, match.rhs_timestamp) == (1.0, 2.0)


def test_sharded_broker_validation():
    with pytest.raises(ValueError):
        ShardedBroker(shards=0)
    with pytest.raises(ValueError):
        ShardedBroker(construct_outputs=True, store_documents=False)
    with pytest.raises(ValueError):
        ShardedBroker(engine="turbo")


# --------------------------------------------------------------------------- #
# pruning (satellite: window-based pruning on the publish path, opt-out)
# --------------------------------------------------------------------------- #
def _publish_windowed_stream(broker, n=30):
    broker.subscribe(CROSS_POST)  # window 10
    for i in range(n):
        broker.publish(make_blog_article(docid=f"b{i}", timestamp=float(i + 1)))


def test_broker_auto_prunes_finite_window_state():
    broker = Broker(engine="mmqjp", construct_outputs=False)
    _publish_windowed_stream(broker)
    # Horizon is 10 time units; the state must not retain all 30 documents.
    assert broker.stats()["engine_stats"]["state_documents"] <= 12


def test_broker_auto_prune_opt_out_and_manual_prune():
    broker = Broker(engine="mmqjp", construct_outputs=False, auto_prune=False)
    _publish_windowed_stream(broker)
    assert broker.stats()["engine_stats"]["state_documents"] == 30
    removed = broker.prune(min_timestamp=21.0)
    assert removed == 20
    assert broker.stats()["engine_stats"]["state_documents"] == 10


def test_sharded_broker_prunes_like_unsharded():
    with ShardedBroker(engine="mmqjp", construct_outputs=False, shards=2) as broker:
        _publish_windowed_stream(broker)
        merged = broker.merged_engine_stats()
        assert merged.state_documents <= 12

    with ShardedBroker(
        engine="mmqjp", construct_outputs=False, shards=2, auto_prune=False
    ) as broker:
        _publish_windowed_stream(broker)
        assert broker.merged_engine_stats().state_documents == 30
        assert broker.prune(min_timestamp=21.0) > 0
        assert broker.merged_engine_stats().state_documents == 10


# --------------------------------------------------------------------------- #
# stats aggregation (satellite)
# --------------------------------------------------------------------------- #
def test_merge_engine_stats():
    a = EngineStats(2, 1, 10, 4, 10, {"conjunctive_query": 1.0})
    b = EngineStats(3, 2, 10, 6, 8, {"conjunctive_query": 2.5, "rvj": 0.5})
    merged = merge_engine_stats([a, b])
    assert merged.num_queries == 5
    assert merged.num_templates == 3
    assert merged.num_documents_processed == 10  # fan-out: max, not sum
    assert merged.num_matches == 10
    assert merged.state_documents == 10
    assert merged.costs == {"conjunctive_query": 3.5, "rvj": 0.5}
    empty = merge_engine_stats([])
    assert empty.num_queries == 0 and empty.num_templates is None


def test_cost_breakdown_combined():
    a = CostBreakdown({"x": 1.0})
    b = CostBreakdown({"x": 0.5, "y": 2.0})
    combined = CostBreakdown.combined([a, b])
    assert combined.seconds == {"x": 1.5, "y": 2.0}
    assert a.seconds == {"x": 1.0}  # inputs untouched


def test_sharded_broker_stats_shape(rss_workload):
    queries, documents = rss_workload
    with ShardedBroker(engine="mmqjp", construct_outputs=False, shards=4) as broker:
        for i, query in enumerate(queries):
            broker.subscribe(query, subscription_id=f"q{i}")
        broker.publish_many(documents)
        stats = broker.stats()
    assert stats["shards"] == 4
    assert stats["streams"] == {"S": len(documents)}
    assert stats["num_documents_published"] == len(documents)
    assert stats["num_subscriptions"] == len(queries)
    assert len(stats["per_shard"]) == 4
    assert sum(s["num_queries"] for s in stats["per_shard"]) == len(queries)
    # Every shard with subscriptions saw every document (empty shards skip).
    assert all(
        s["num_documents_processed"] == len(documents)
        for s in stats["per_shard"]
        if s["num_queries"]
    )
    merged = stats["engine_stats"]
    assert merged["num_queries"] == len(queries)
    assert merged["num_matches"] == sum(s["num_matches"] for s in stats["per_shard"])
    assert stats["partition"]["partitioner"] == "hash"
    assert sum(stats["partition"]["loads"]) == len(queries)


def test_engine_shard_repr_and_counts():
    from repro.core import MMQJPEngine

    shard = EngineShard(1, MMQJPEngine(store_documents=False))
    shard.register("q0", parse_query(CROSS_POST))
    assert shard.num_queries == 1
    assert "queries=1" in repr(shard)
