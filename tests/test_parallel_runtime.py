"""Process-parallel shards and relevance-aware routing.

The oracle throughout is *dispatch equivalence*: the match set a document
stream produces must be byte-identical across executors (serial / threads /
processes), shard counts, partitioners, the default/ablation knob matrix,
and routing on/off — routing and process placement change which shards see
a document and where its engine lives, never what matches.

The workload is the topic-sharded one of the plan-scaling benchmark
(:func:`repro.workloads.synthetic.topic_schemas`): topic ``t`` has ``t+1``
leaves, so each topic's queries reduce to a template shape no other topic
produces — templates spread across shards, and a document of one topic is
irrelevant to every other topic's shard, which is exactly the regime the
router prunes.  All documents carry explicit docids: auto-docids come from
a process-global counter, which would make match keys differ between the
compared runs.
"""

from __future__ import annotations

import os

import pytest

from repro import RuntimeConfig, open_broker
from repro.pubsub import Broker
from repro.runtime import (
    SerialExecutor,
    ShardRouter,
    ShardWorkerError,
    ShardedBroker,
    ThreadedExecutor,
    executor_env_override,
)
from repro.workloads.querygen import generate_topic_queries
from repro.workloads.synthetic import build_document, topic_schemas
from tests.conftest import (
    PAPER_Q1,
    PAPER_WINDOWS,
    make_blog_article,
    make_book_announcement,
)

NUM_TOPICS = 4
WINDOW = 200.0


def _executor(spec):
    """Resolve an executor parameter, pinning "serial" to an instance.

    ``REPRO_EXECUTOR`` overrides the *default keyword* ``"serial"``; the
    runs here compare executors against each other, so the serial leg must
    stay serial even when the whole suite replays under another executor.
    """
    return SerialExecutor() if spec == "serial" else spec


@pytest.fixture(scope="module")
def topic_workload():
    schemas = topic_schemas(NUM_TOPICS)
    queries = generate_topic_queries(schemas, 2 * NUM_TOPICS, window=WINDOW)
    documents = []
    n = 0
    for rnd in range(6):
        for t, schema in enumerate(schemas):
            documents.append(
                build_document(
                    schema,
                    docid=f"d{n}",
                    timestamp=float(n + 1),
                    leaf_values=[f"t{t}v{rnd % 2}"] * schema.num_leaves,
                )
            )
            n += 1
    return schemas, queries, documents


def _subscribe_all(broker, queries):
    for i, query in enumerate(queries):
        broker.subscribe(query, subscription_id=f"q{i}")


def _keys(deliveries):
    return sorted((d.subscription_id,) + d.match.key() for d in deliveries)


def _run(config, queries, documents, batched=False):
    with open_broker(config) as broker:
        _subscribe_all(broker, queries)
        if batched:
            deliveries = broker.publish_many(documents)
        else:
            deliveries = [d for doc in documents for d in broker.publish(doc)]
        stats = broker.stats() if isinstance(broker, ShardedBroker) else None
    return _keys(deliveries), stats


@pytest.fixture(scope="module")
def topic_baseline(topic_workload):
    _, queries, documents = topic_workload
    keys, _ = _run(
        RuntimeConfig(construct_outputs=False, auto_timestamp=False),
        queries,
        documents,
    )
    assert keys, "the topic workload must produce matches"
    return keys


# --------------------------------------------------------------------------- #
# equivalence matrix
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("executor", ["serial", "threads", "processes"])
@pytest.mark.parametrize("shards", [1, 2, 4, 8])
def test_executor_equivalence(executor, shards, topic_workload, topic_baseline):
    _, queries, documents = topic_workload
    config = RuntimeConfig(
        construct_outputs=False,
        auto_timestamp=False,
        shards=shards,
        executor=_executor(executor),
        # two workers co-locate shards, exercising the grouped channels
        max_workers=2 if executor == "processes" and shards > 2 else None,
    )
    keys, stats = _run(config, queries, documents)
    assert keys == topic_baseline
    if executor == "processes" and shards > 1:  # shards=1 is a plain Broker
        assert stats["executor"] == "processes"
        assert stats["workers"] == min(shards, 2 if shards > 2 else shards)


@pytest.mark.parametrize("partitioner", ["hash", "least-loaded"])
@pytest.mark.parametrize("base", ["default", "ablation"], ids=["default", "ablation"])
def test_process_equivalence_config_matrix(
    partitioner, base, topic_workload, topic_baseline
):
    _, queries, documents = topic_workload
    make = RuntimeConfig.ablation if base == "ablation" else RuntimeConfig
    config = make(
        construct_outputs=False,
        auto_timestamp=False,
        shards=4,
        partitioner=partitioner,
        executor="processes",
    )
    keys, _ = _run(config, queries, documents)
    assert keys == topic_baseline


@pytest.mark.parametrize("executor", ["serial", "processes"])
@pytest.mark.parametrize("route", [True, False], ids=["routed", "replicated"])
@pytest.mark.parametrize("batched", [False, True], ids=["publish", "publish_many"])
def test_routing_equivalence(
    executor, route, batched, topic_workload, topic_baseline
):
    _, queries, documents = topic_workload
    config = RuntimeConfig(
        construct_outputs=False,
        auto_timestamp=False,
        shards=4,
        executor=_executor(executor),
        route_dispatch=route,
    )
    keys, stats = _run(config, queries, documents, batched=batched)
    assert keys == topic_baseline
    if route:
        routing = stats["routing"]
        assert routing["documents_routed"] == len(documents)
        assert routing["shards_skipped"] > 0, (
            "distinct topic templates must spread over shards, so routing "
            "must skip the off-topic ones"
        )
    else:
        assert stats["routing"] is None


# --------------------------------------------------------------------------- #
# register -> publish -> cancel -> publish interleavings
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("executor", ["serial", "threads", "processes"])
def test_cancel_unroutes_retracted_templates(executor, topic_workload):
    schemas, queries, documents = topic_workload
    half = len(documents) // 2
    base = RuntimeConfig(construct_outputs=False, auto_timestamp=False, shards=4)
    cancelled = [f"q{i}" for i, q in enumerate(queries) if i % NUM_TOPICS == 0]

    with open_broker(base.replace(executor=_executor(executor))) as broker:
        _subscribe_all(broker, queries)
        for doc in documents[:half]:
            broker.publish(doc)
        for sid in cancelled:
            assert broker.cancel(sid)
        before = broker.stats()["routing"]
        churned = _keys(
            [d for doc in documents[half:] for d in broker.publish(doc)]
        )
        after = broker.stats()["routing"]
        assert broker._router.num_queries == len(queries) - len(cancelled)

    # Topic-0 documents in the second half can no longer bind any query, so
    # the router must skip *every* candidate shard for them.
    topic0_docs = sum(
        1 for i in range(half, len(documents)) if i % NUM_TOPICS == 0
    )
    assert topic0_docs > 0
    skipped = after["shards_skipped"] - before["shards_skipped"]
    dispatched = after["shards_dispatched"] - before["shards_dispatched"]
    assert skipped > 0
    assert dispatched + skipped >= after["documents_routed"] - before["documents_routed"]
    assert all(sid not in {k[0] for k in churned} for sid in cancelled)

    # A broker that never had the cancelled queries sees the same stream.
    with open_broker(base) as fresh:
        for i, query in enumerate(queries):
            if f"q{i}" not in cancelled:
                fresh.subscribe(query, subscription_id=f"q{i}")
        for doc in documents[:half]:
            fresh.publish(doc)
        reference = _keys(
            [d for doc in documents[half:] for d in fresh.publish(doc)]
        )
    assert churned == reference


# --------------------------------------------------------------------------- #
# process runtime: parent-side delivery, pruning, crash safety
# --------------------------------------------------------------------------- #
def test_outputs_callbacks_and_sinks_fire_in_parent():
    from repro.pubsub import CollectingSink

    received = []
    sink = CollectingSink()
    with ShardedBroker(RuntimeConfig(shards=2, executor="processes")) as broker:
        broker.subscribe(
            PAPER_Q1,
            callback=received.append,
            window_symbols=PAPER_WINDOWS,
            subscription_id="q1",
            sink=sink,
        )
        assert broker.publish(make_book_announcement(docid="bk0", timestamp=1.0)) == []
        deliveries = broker.publish(make_blog_article(docid="bl0", timestamp=2.0))
        assert len(deliveries) == 1
        assert deliveries[0].output is not None
        assert deliveries[0].output.root.tag == "result"
        assert [d.subscription_id for d in received] == ["q1"]
        assert len(sink.results) == 1
        # output construction round-trips through the owning worker
        again = broker.output_document(deliveries[0].match)
        assert again.root.tag == "result"


def test_prune_reaches_worker_engines(topic_workload):
    _, queries, documents = topic_workload
    config = RuntimeConfig(
        construct_outputs=False, auto_timestamp=False, shards=2, executor="processes"
    )
    with open_broker(config) as broker:
        _subscribe_all(broker, queries)
        for doc in documents:
            broker.publish(doc)
        assert broker.prune(float(len(documents) + WINDOW + 1)) > 0
        assert broker.merged_engine_stats().num_documents_processed > 0


def test_worker_death_raises_cleanly_and_close_does_not_hang(topic_workload):
    _, queries, documents = topic_workload
    config = RuntimeConfig(
        construct_outputs=False,
        auto_timestamp=False,
        shards=2,
        executor="processes",
        route_dispatch=False,
    )
    broker = ShardedBroker(config)
    try:
        _subscribe_all(broker, queries)
        broker.publish(documents[0])
        victim = broker._shard_of["q0"].channel
        victim.process.kill()
        victim.process.join(timeout=10)
        with pytest.raises(ShardWorkerError):
            for doc in documents[1:]:
                broker.publish(doc)
    finally:
        broker.close()  # must return promptly despite the dead worker


def test_unpicklable_config_rejected_with_clear_error():
    # Worker engines are built from the pickled config; a config that
    # cannot cross the process boundary must fail loudly at construction
    # (a locally-defined class never pickles).
    class Unpicklable(str):
        pass

    config = RuntimeConfig(shards=2, executor="processes", engine=Unpicklable("mmqjp"))
    with pytest.raises(ValueError, match="picklable"):
        ShardedBroker(config)


# --------------------------------------------------------------------------- #
# recovery under the process runtime
# --------------------------------------------------------------------------- #
def test_restart_equivalence_under_processes(tmp_path, topic_workload):
    _, queries, documents = topic_workload
    half = len(documents) // 2
    durable = RuntimeConfig(
        construct_outputs=False,
        auto_timestamp=False,
        shards=2,
        executor="processes",
        storage="sqlite",
        storage_path=str(tmp_path),
    )
    reference, _ = _run(
        durable.replace(storage="memory", storage_path=None), queries, documents
    )

    broker = open_broker(durable)
    _subscribe_all(broker, queries)
    out = [d for doc in documents[:half] for d in broker.publish(doc)]
    broker.close()

    resumed = open_broker(resume_from=str(tmp_path))
    assert isinstance(resumed, ShardedBroker)
    assert resumed.stats()["executor"] == "processes"
    out.extend(d for doc in documents[half:] for d in resumed.publish(doc))
    resumed.close()
    assert _keys(out) == reference


# --------------------------------------------------------------------------- #
# executor plumbing (satellites)
# --------------------------------------------------------------------------- #
def test_threaded_pool_sizes_from_configured_shard_count():
    # Regression: the pool used to freeze at len(items) of the *first* map;
    # with routing, that first dispatch may touch a single shard, and every
    # later full fan-out would serialize on a one-thread pool.
    with ThreadedExecutor() as executor:
        executor.configure(6)
        assert executor.map(len, [()]) == [0]  # first map: one task
        assert executor._pool._max_workers == 6
    with ThreadedExecutor(max_workers=3) as executor:
        executor.configure(6)
        executor.map(len, [()])
        assert executor._pool._max_workers == 3  # explicit cap wins
    with ThreadedExecutor() as executor:
        executor.map(len, [(), ()])  # unconfigured: size from the task list
        assert executor._pool._max_workers == 2


def test_repro_executor_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_EXECUTOR", "processes")
    assert executor_env_override("serial") == "processes"
    # explicit instances are never overridden (fault-injection opt-out)
    inst = SerialExecutor()
    assert executor_env_override(inst) is inst
    with ShardedBroker(RuntimeConfig(shards=2, construct_outputs=False)) as broker:
        assert broker.stats()["executor"] == "processes"
        assert broker.stats()["workers"] == 2
    monkeypatch.setenv("REPRO_EXECUTOR", "fibers")
    with pytest.raises(ValueError, match="REPRO_EXECUTOR"):
        executor_env_override("serial")
    monkeypatch.delenv("REPRO_EXECUTOR")
    assert executor_env_override("serial") == "serial"


def test_config_knobs():
    assert RuntimeConfig(executor="processes").executor == "processes"
    assert RuntimeConfig.ablation().route_dispatch is False
    assert RuntimeConfig().route_dispatch is True
    with pytest.raises(ValueError):
        RuntimeConfig(route_dispatch="yes")


# --------------------------------------------------------------------------- #
# router unit tests
# --------------------------------------------------------------------------- #
def test_router_routes_by_topic_and_unroutes_on_cancel(topic_workload):
    schemas, queries, documents = topic_workload
    router = ShardRouter()
    for i, query in enumerate(queries):
        router.register(f"q{i}", query, shard_id=i % NUM_TOPICS)
    assert router.num_queries == len(queries)
    assert router.stats()["variables"] > 0

    for i, doc in enumerate(documents[:NUM_TOPICS]):
        assert router.route(doc) == {i % NUM_TOPICS}

    # an off-stream document binds nothing and routes nowhere
    foreign = make_book_announcement(docid="bk-x", timestamp=1.0)
    foreign.stream = "other-stream"
    assert router.route(foreign) == set()

    # cancelling every topic-0 query stops topic-0 documents entirely
    for i in range(len(queries)):
        if i % NUM_TOPICS == 0:
            assert router.cancel(f"q{i}")
    assert not router.cancel("q0"), "cancel is idempotent"
    assert router.route(documents[0]) == set()
    assert router.route(documents[1]) == {1}
    assert router.num_queries == len(queries) - len(queries) // NUM_TOPICS


def test_router_edge_widening_keeps_paper_queries_routable():
    # PAPER_Q1's reduced graph keeps structural edges whose descendants the
    # NFA binds through their ancestors; the widened bound set must keep the
    # owning shard reachable for both sides of the join.
    router = ShardRouter()
    from repro.xscl.parser import parse_query

    router.register("q1", parse_query(PAPER_Q1, window_symbols=PAPER_WINDOWS), 0)
    assert router.route(make_book_announcement(docid="b", timestamp=1.0)) == {0}
    assert router.route(make_blog_article(docid="a", timestamp=2.0)) == {0}
