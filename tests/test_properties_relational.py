"""Property-based tests (hypothesis) for the relational substrate.

These check algebraic laws of the operators and the equivalence of the
conjunctive-query evaluator with a brute-force nested-loop reference
implementation on random instances.
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings, strategies as st

from repro.relational import ConjunctiveQuery, Relation, Var, evaluate_conjunctive
from repro.relational import operators as ops

# Small value domains keep the instances interesting (collisions happen).
values = st.integers(min_value=0, max_value=4)
rows2 = st.lists(st.tuples(values, values), max_size=12)
rows3 = st.lists(st.tuples(values, values, values), max_size=12)


def _rel(schema, rows, name="r"):
    return Relation(schema, rows=rows, name=name)


@given(rows2, rows2)
def test_union_is_commutative_up_to_multiset(a_rows, b_rows):
    a, b = _rel(["x", "y"], a_rows), _rel(["x", "y"], b_rows)
    assert sorted(ops.union(a, b).rows) == sorted(ops.union(b, a).rows)


@given(rows2, rows2)
def test_difference_then_intersection_disjoint(a_rows, b_rows):
    a, b = _rel(["x", "y"], a_rows), _rel(["x", "y"], b_rows)
    diff = set(ops.difference(a, b).rows)
    inter = set(ops.intersection(a, b).rows)
    assert diff.isdisjoint(inter)
    assert diff | inter == set(a.rows)


@given(rows2)
def test_project_distinct_idempotent(a_rows):
    a = _rel(["x", "y"], a_rows)
    once = ops.project(a, ["y"], distinct=True)
    twice = ops.project(once, ["y"], distinct=True)
    assert sorted(once.rows) == sorted(twice.rows)
    assert len(once) <= len(a)


@given(rows2, rows3)
def test_equi_join_matches_nested_loop(a_rows, b_rows):
    a = _rel(["x", "y"], a_rows, "a")
    b = _rel(["u", "v", "w"], b_rows, "b")
    joined = ops.equi_join(a, b, on=[("y", "u")])
    expected = sorted(ar + br for ar in a_rows for br in b_rows if ar[1] == br[0])
    assert sorted(joined.rows) == expected


@given(rows2, rows3)
def test_semijoin_antijoin_partition_left(a_rows, b_rows):
    a = _rel(["x", "y"], a_rows, "a")
    b = _rel(["u", "v", "w"], b_rows, "b")
    semi = ops.semijoin(a, b, on=[("y", "u")])
    anti = ops.antijoin(a, b, on=[("y", "u")])
    assert sorted(semi.rows + anti.rows) == sorted(a.rows)


@given(rows2, rows3)
def test_natural_join_consistent_with_equi_join(a_rows, b_rows):
    a = _rel(["x", "k"], a_rows, "a")
    b = _rel(["k", "v", "w"], b_rows, "b")
    natural = ops.natural_join(a, b)
    expected = sorted(
        ar + br[1:] for ar in a_rows for br in b_rows if ar[1] == br[0]
    )
    assert sorted(natural.rows) == expected


def _brute_force_two_hop(edge_rows):
    return sorted({(a, c) for a, b in edge_rows for b2, c in edge_rows if b == b2})


@given(rows2)
@settings(max_examples=60)
def test_conjunctive_query_matches_brute_force(edge_rows):
    edges = _rel(["src", "dst"], edge_rows, "edge")
    cq = ConjunctiveQuery("out", ["a", "c"], [Var("a"), Var("c")])
    cq.add_atom("edge", [Var("a"), Var("b")])
    cq.add_atom("edge", [Var("b"), Var("c")])
    result = evaluate_conjunctive(cq, {"edge": edges})
    assert sorted(result.rows) == _brute_force_two_hop(edge_rows)


@given(rows2, rows2)
@settings(max_examples=60)
def test_conjunctive_query_order_invariance(a_rows, b_rows):
    """Greedy and given join orders must produce identical results."""
    a = _rel(["x", "y"], a_rows, "a")
    b = _rel(["y", "z"], b_rows, "b")
    cq = ConjunctiveQuery("out", ["x", "z"], [Var("x"), Var("z")])
    cq.add_atom("a", [Var("x"), Var("y")])
    cq.add_atom("b", [Var("y"), Var("z")])
    env = {"a": a, "b": b}
    greedy = evaluate_conjunctive(cq, env, order="greedy")
    given_order = evaluate_conjunctive(cq, env, order="given")
    assert sorted(greedy.rows) == sorted(given_order.rows)


@given(rows3)
def test_distinct_count_matches_set_semantics(rows):
    rel = _rel(["a", "b", "c"], rows)
    for column in range(3):
        assert rel.distinct_count(column) == len({r[column] for r in rows})
    # Cache stays correct after inserting more rows.
    rel.insert((9, 9, 9))
    assert rel.distinct_count(0) == len({r[0] for r in rel.rows})
