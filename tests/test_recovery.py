"""Crash recovery: ``open_broker(resume_from=path)`` rebuilds a session.

The oracle throughout is *restart equivalence*: a broker that publishes,
closes (or crashes), and resumes must produce exactly the same match set on
the remaining documents as a broker that never restarted — across engines,
shard counts, and the default/ablation knob matrix.  The PR-4 retraction
machinery supplies the adversarial case: cancel-before-crash leaves a
registry whose naive replay would re-derive *different* canonical variable
names than the persisted state rows use.
"""

from __future__ import annotations

import pytest

from repro import RecoveryError, RuntimeConfig, open_broker, to_xml
from repro.pubsub import Broker
from repro.runtime import ShardedBroker
from tests.conftest import make_blog_article, make_book_announcement

Q_AUTHOR = (
    "S//book->x1[.//author->x2] "
    "FOLLOWED BY{x2=x5, 100} "
    "S//blog->x4[.//author->x5]"
)
Q_CAT = (
    "S//book->x1[.//category->x7] "
    "FOLLOWED BY{x7=x8, 100} "
    "S//blog->x4[.//category->x8]"
)
#: Single-pattern query: registered as a Stage-1 filter, not a join.
Q_FILTER = "S//book->x1[.//publisher->x9]"

CONFIG_MATRIX = [
    RuntimeConfig(construct_outputs=False, auto_timestamp=False),
    RuntimeConfig.ablation(construct_outputs=False, auto_timestamp=False, shards=1),
]


def _docs(n, start=0):
    out = []
    for i in range(start, start + n):
        out.append(make_book_announcement(docid=f"bk{i}", timestamp=float(2 * i + 1)))
        out.append(make_blog_article(docid=f"bl{i}", timestamp=float(2 * i + 2)))
    return out


def _keys(deliveries):
    """Order-insensitive delivery identity: join matches and filter hits."""
    return sorted(
        (d.subscription_id, d.match.key() if d.match is not None else d.document.docid)
        for d in deliveries
    )


def _publish_all(broker, documents):
    out = []
    for document in documents:
        out.extend(broker.publish(document))
    return out


def _reference_run(config, documents, queries):
    broker = open_broker(config)
    for sid, query in queries:
        broker.subscribe(query, subscription_id=sid)
    out = _publish_all(broker, documents)
    broker.close()
    return _keys(out)


@pytest.mark.parametrize("engine", ["mmqjp", "mmqjp-vm", "sequential"])
@pytest.mark.parametrize("shards", [1, 2])
@pytest.mark.parametrize("base", CONFIG_MATRIX, ids=["default", "ablation"])
def test_restart_equivalence(engine, shards, base, tmp_path):
    config = base.replace(engine=engine, shards=shards)
    queries = [("qa", Q_AUTHOR), ("qc", Q_CAT)]
    documents = _docs(4)
    reference = _reference_run(config, documents, queries)

    durable = config.replace(storage="sqlite", storage_path=str(tmp_path))
    first = open_broker(durable)
    for sid, query in queries:
        first.subscribe(query, subscription_id=sid)
    out = _publish_all(first, documents[:4])
    first.close()

    resumed = open_broker(resume_from=str(tmp_path))
    assert type(resumed) is (ShardedBroker if shards > 1 else Broker)
    out.extend(_publish_all(resumed, documents[4:]))
    resumed.close()

    assert _keys(out) == reference


def test_recovery_after_cancellation_churn(tmp_path):
    """Replay of only the *surviving* registry must not drift canonical names.

    The cancelled subscription claimed canonical names first; the state rows
    persisted for the survivor were written under the collision-suffixed
    names a naive from-scratch replay would not re-derive.
    """
    config = RuntimeConfig(construct_outputs=False, auto_timestamp=False)
    documents = _docs(4)

    reference_broker = open_broker(config)
    doomed = reference_broker.subscribe(Q_CAT, subscription_id="doomed")
    reference_broker.subscribe(Q_AUTHOR, subscription_id="qa")
    ref_out = _publish_all(reference_broker, documents[:4])
    doomed.cancel()
    ref_out.extend(_publish_all(reference_broker, documents[4:]))
    reference_broker.close()
    reference = _keys(d for d in ref_out if d.subscription_id == "qa")

    durable = config.replace(storage="sqlite", storage_path=str(tmp_path))
    first = open_broker(durable)
    doomed = first.subscribe(Q_CAT, subscription_id="doomed")
    first.subscribe(Q_AUTHOR, subscription_id="qa")
    out = _publish_all(first, documents[:4])
    doomed.cancel()
    first.close()

    resumed = open_broker(resume_from=str(tmp_path))
    assert [s.subscription_id for s in resumed.subscriptions] == ["qa"]
    out.extend(_publish_all(resumed, documents[4:]))
    resumed.close()
    assert _keys(d for d in out if d.subscription_id == "qa") == reference


@pytest.mark.parametrize("shards", [1, 2])
def test_filter_subscriptions_recover(shards, tmp_path):
    config = RuntimeConfig(
        shards=shards, construct_outputs=False, auto_timestamp=False
    )
    queries = [("qf", Q_FILTER), ("qa", Q_AUTHOR)]
    documents = _docs(3)
    reference = _reference_run(config, documents, queries)

    durable = config.replace(storage="sqlite", storage_path=str(tmp_path))
    first = open_broker(durable)
    for sid, query in queries:
        first.subscribe(query, subscription_id=sid)
    out = _publish_all(first, documents[:2])
    first.close()

    resumed = open_broker(resume_from=str(tmp_path))
    out.extend(_publish_all(resumed, documents[2:]))
    resumed.close()
    assert _keys(out) == reference
    assert any(sid == "qf" for sid, _ in _keys(out))


def test_auto_timestamp_clock_continues(tmp_path):
    """The stamp clock resumes where it stopped, keeping windows consistent."""
    config = RuntimeConfig(
        storage="sqlite",
        storage_path=str(tmp_path),
        construct_outputs=False,
        auto_timestamp=True,
    )
    first = open_broker(config)
    first.subscribe(Q_AUTHOR, subscription_id="qa")
    docs = _docs(3)
    for d in docs:
        d.timestamp = 0.0  # unstamped: the engine's clock assigns 1.0, 2.0, ...
    first.publish(docs[0])
    first.publish(docs[1])
    first.close()

    resumed = open_broker(resume_from=str(tmp_path))
    out = resumed.publish(docs[3])  # the second blog article
    # documents 1/2 were stamped 1.0/2.0; the resumed clock must continue at 3.0
    assert docs[3].timestamp == 3.0
    resumed.close()
    # bk0 (ts 1.0) joins bl1 (ts 3.0): the window spans the restart
    assert any(d.match is not None for d in out)


def test_resumed_counters_and_ids(tmp_path):
    config = RuntimeConfig(
        storage="sqlite",
        storage_path=str(tmp_path),
        construct_outputs=False,
        auto_timestamp=False,
    )
    first = open_broker(config)
    auto_sid = first.subscribe(Q_AUTHOR).subscription_id
    _publish_all(first, _docs(2))
    first_stats = first.stats()
    first.close()

    resumed = open_broker(resume_from=str(tmp_path))
    stats = resumed.stats()
    assert stats["engine_stats"]["num_documents_processed"] == 4
    assert (
        stats["engine_stats"]["num_matches"]
        == first_stats["engine_stats"]["num_matches"]
    )
    # auto-generated subscription ids continue, no collision with the old one
    fresh_sid = resumed.subscribe(Q_CAT).subscription_id
    assert fresh_sid != auto_sid
    resumed.close()


def test_resume_with_engine_override(tmp_path):
    """An explicit engine name reuses the stored config but swaps the engine."""
    config = RuntimeConfig(
        engine="mmqjp",
        storage="sqlite",
        storage_path=str(tmp_path),
        construct_outputs=False,
        auto_timestamp=False,
    )
    documents = _docs(3)
    reference = _reference_run(
        config.replace(engine="sequential", storage="memory", storage_path=None),
        documents,
        [("qa", Q_AUTHOR)],
    )
    first = open_broker(config)
    first.subscribe(Q_AUTHOR, subscription_id="qa")
    out = _publish_all(first, documents[:2])
    first.close()

    resumed = open_broker("sequential", resume_from=str(tmp_path))
    assert resumed.engine_name == "sequential"
    out.extend(_publish_all(resumed, documents[2:]))
    resumed.close()
    assert _keys(out) == reference


def test_resume_missing_store_raises(tmp_path):
    with pytest.raises(RecoveryError, match="no broker store"):
        open_broker(resume_from=str(tmp_path / "nowhere"))


def test_resume_shard_mismatch_raises(tmp_path):
    config = RuntimeConfig(shards=2, storage="sqlite", storage_path=str(tmp_path))
    broker = open_broker(config)
    broker.subscribe(Q_AUTHOR, subscription_id="qa")
    broker.close()
    with pytest.raises(RecoveryError, match="shard"):
        open_broker(resume_from=str(tmp_path), shards=4)


def test_auto_docids_do_not_collide_after_restart(tmp_path, monkeypatch):
    """A fresh process restarts the auto-docid counter at doc0; recovery must
    advance it past every persisted docid or new documents would silently
    replace recovered state partitions."""
    import itertools

    from repro.xmlmodel import document as document_module
    from repro.xmlmodel.parser import parse_document

    config = RuntimeConfig(
        storage="sqlite",
        storage_path=str(tmp_path),
        construct_outputs=False,
        auto_timestamp=False,
    )
    first = open_broker(config)
    first.subscribe(Q_AUTHOR, subscription_id="qa")
    # auto-docid documents (docN from the process-global counter)
    book = parse_document(to_xml(make_book_announcement()), timestamp=1.0)
    blog = parse_document(to_xml(make_blog_article()), timestamp=2.0)
    first.publish(book)
    first.publish(blog)
    first.close()

    # simulate a process restart: the counter begins again at 0
    monkeypatch.setattr(document_module, "_doc_counter", itertools.count())

    resumed = open_broker(resume_from=str(tmp_path))
    fresh = parse_document(to_xml(make_blog_article()), timestamp=3.0)
    assert fresh.docid not in {book.docid, blog.docid}
    out = resumed.publish(fresh)
    resumed.close()
    # the recovered book still joins the new blog — nothing was replaced
    assert any(d.match is not None and book.docid in d.match.key() for d in out)


# --------------------------------------------------------------------- #
# crash mid-batch (fault injection)
# --------------------------------------------------------------------- #
class _CrashPoint(RuntimeError):
    """The injected failure: 'the process died right here'."""


def _crash_at_commit(n):
    commits = 0

    def hook(point):
        nonlocal commits
        if point == "commit_epoch":
            commits += 1
            if commits == n:
                raise _CrashPoint

    return hook


def test_crash_mid_batch_leaves_no_torn_state(tmp_path):
    """A publish_many killed mid-epoch: committed prefix intact, crashed
    document traceless, and replaying the batch restores exact equivalence."""
    from repro.storage import SQLiteStore

    config = RuntimeConfig(
        storage="sqlite",
        storage_path=str(tmp_path),
        construct_outputs=False,
        auto_timestamp=False,
    )
    queries = [("qa", Q_AUTHOR), ("qc", Q_CAT)]
    documents = _docs(4)
    reference = _reference_run(
        config.replace(storage="memory", storage_path=None), documents, queries
    )

    broker = open_broker(config)
    for sid, query in queries:
        broker.subscribe(query, subscription_id=sid)
    out = _publish_all(broker, documents[:3])

    # die at the commit of the batch's third document (documents[5])
    broker.engine.store.fault_hook = _crash_at_commit(3)
    with pytest.raises(_CrashPoint):
        broker.publish_many(documents[3:])

    # inspect the durable file directly, as a post-mortem would: the two
    # batch documents that committed are whole, the crashed one left no
    # trace in any of the four relations
    inspect = SQLiteStore(str(tmp_path / "shard-0.sqlite3"))
    try:
        assert inspect.state_docids() == {d.docid for d in documents[:5]}
    finally:
        inspect.close()
    broker.close()  # release connections/sinks; the durable state is fixed

    resumed = open_broker(resume_from=str(tmp_path))
    # replay the whole failed batch: partition-replace upserts make the
    # already-committed prefix idempotent
    out.extend(_publish_all(resumed, documents[3:]))
    resumed.close()
    assert _keys(out) == reference


def test_crash_on_one_shard_recovers(tmp_path):
    # fault injection pokes shard.engine.store directly, which only exists
    # with in-process shards: pin a SerialExecutor *instance* so a
    # REPRO_EXECUTOR=processes replay leaves this test in-process
    from repro.runtime import SerialExecutor

    config = RuntimeConfig(
        shards=2,
        executor=SerialExecutor(),
        storage="sqlite",
        storage_path=str(tmp_path),
        construct_outputs=False,
        auto_timestamp=False,
    )
    queries = [("qa", Q_AUTHOR), ("qc", Q_CAT)]
    documents = _docs(4)
    reference = _reference_run(
        config.replace(storage="memory", storage_path=None), documents, queries
    )

    broker = open_broker(config)
    for sid, query in queries:
        broker.subscribe(query, subscription_id=sid)
    out = _publish_all(broker, documents[:3])

    # crash the shard that actually owns the join subscriptions (an empty
    # shard short-circuits its batch and never opens an epoch)
    owning_shard = broker._shard_of["qa"]
    owning_shard.engine.store.fault_hook = _crash_at_commit(2)
    with pytest.raises(_CrashPoint):
        broker.publish_many(documents[3:])
    broker.close()

    resumed = open_broker(resume_from=str(tmp_path))
    out.extend(_publish_all(resumed, documents[3:]))
    resumed.close()
    assert _keys(out) == reference


# --------------------------------------------------------------------- #
# lifecycle (satellite: idempotent close, store release on context exit)
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("shards", [1, 2])
def test_close_is_idempotent_and_releases_stores(shards, tmp_path):
    config = RuntimeConfig(
        shards=shards, storage="sqlite", storage_path=str(tmp_path)
    )
    with open_broker(config) as broker:
        broker.subscribe(Q_AUTHOR, subscription_id="qa")
        _publish_all(broker, _docs(1))
    # context exit closed everything; repeated close is a no-op
    broker.close()
    broker.close()
    assert broker._store.closed
    engines = (
        # process shard handles have no parent-side engine; their stores
        # live (and are closed) in the worker process
        [s.engine for s in broker.shards if hasattr(s, "engine")]
        if isinstance(broker, ShardedBroker)
        else [broker.engine]
    )
    for engine in engines:
        assert engine.store.closed
    # a closed store set is immediately resumable (everything was flushed)
    resumed = open_broker(resume_from=str(tmp_path))
    resumed.close()


@pytest.mark.parametrize("shards", [1, 2])
def test_close_is_idempotent_without_storage(shards):
    broker = open_broker(RuntimeConfig(shards=shards))
    broker.subscribe(Q_AUTHOR, subscription_id="qa")
    broker.close()
    broker.close()
