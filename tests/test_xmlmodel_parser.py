"""Unit tests for the XML parser and serializer round trips."""

import pytest

from repro.xmlmodel import XmlDocument, parse_document, to_xml
from repro.xmlmodel.parser import XmlParseError, parse_node


def test_parse_simple_document():
    doc = parse_document("<item><title>Hello</title><author>Ada</author></item>")
    assert doc.root.tag == "item"
    assert [c.tag for c in doc.root.children] == ["title", "author"]
    assert doc.node(1).text == "Hello"


def test_parse_assigns_preorder_ids():
    doc = parse_document("<a><b><c/></b><d/></a>")
    assert [doc.node(i).tag for i in range(4)] == ["a", "b", "c", "d"]


def test_parse_attributes():
    node = parse_node('<item id="1" lang=\'en\'>x</item>')
    assert node.attributes == {"id": "1", "lang": "en"}
    assert node.text == "x"


def test_parse_self_closing():
    node = parse_node("<feed><entry/><entry/></feed>")
    assert len(node.children) == 2
    assert all(c.is_leaf for c in node.children)


def test_parse_entities_unescaped():
    node = parse_node("<t>Scripting &amp; Programming &lt;3</t>")
    assert node.text == "Scripting & Programming <3"


def test_parse_prolog_comments_and_doctype_skipped():
    text = """<?xml version="1.0"?>
    <!DOCTYPE item>
    <!-- a comment -->
    <item><x>1</x></item>"""
    doc = parse_document(text)
    assert doc.root.tag == "item"


def test_parse_inner_comment_ignored():
    node = parse_node("<a><!-- hi --><b>1</b></a>")
    assert [c.tag for c in node.children] == ["b"]


def test_parse_cdata():
    node = parse_node("<a><![CDATA[x < y]]></a>")
    assert node.text == "x < y"


def test_parse_whitespace_between_elements_ignored():
    node = parse_node("<a>\n  <b>1</b>\n  <c>2</c>\n</a>")
    assert node.text is None
    assert [c.tag for c in node.children] == ["b", "c"]


@pytest.mark.parametrize(
    "bad",
    [
        "",
        "<a><b></a>",
        "<a>",
        "<a></b>",
        "<a></a><b></b>",
        "<a attr=1></a>",
        "plain text",
    ],
)
def test_parse_errors(bad):
    with pytest.raises(XmlParseError):
        parse_node(bad)


def test_parse_document_metadata():
    doc = parse_document("<a/>", docid="x", timestamp=9.0, stream="T")
    assert (doc.docid, doc.timestamp, doc.stream) == ("x", 9.0, "T")


def test_roundtrip_through_serializer():
    original = "<item><title>Joins &amp; Streams</title><n>42</n></item>"
    doc = parse_document(original)
    text = to_xml(doc, pretty=False)
    again = parse_document(text)
    assert again.root.tag == "item"
    assert again.node(1).text == "Joins & Streams"
    assert again.node(2).text == "42"


def test_serializer_pretty_output_indented():
    doc = parse_document("<a><b>1</b></a>")
    text = to_xml(doc)
    assert "\n" in text
    assert "  <b>1</b>" in text


def test_serializer_escapes_attributes():
    doc = XmlDocument(parse_node('<a name="x"/>'))
    doc.root.attributes["name"] = 'say "hi" & <bye>'
    text = to_xml(doc, pretty=False)
    assert "&quot;hi&quot;" in text
    assert "&lt;bye&gt;" in text


def test_parse_all_five_entities():
    node = parse_node("<t>&lt;&gt;&amp;&quot;&apos;</t>")
    assert node.text == "<>&\"'"


def test_parse_entities_single_pass():
    # A literal "&amp;quot;" denotes the five characters "&quot;": the
    # decoded "&" must not combine with the following text and decode
    # again (the historical sequential str.replace bug).
    node = parse_node("<t>&amp;quot;</t>")
    assert node.text == "&quot;"
    node = parse_node("<t>&amp;amp;lt;</t>")
    assert node.text == "&amp;lt;"


def test_parse_entities_in_attributes():
    node = parse_node('<t a="&quot;x&quot; &amp; &apos;y&apos;">z</t>')
    assert node.attributes["a"] == "\"x\" & 'y'"
    node = parse_node('<t a="&amp;lt;"/>')
    assert node.attributes["a"] == "&lt;"


def test_parse_unknown_entity_left_verbatim():
    node = parse_node("<t>&copy; &amp; &nosuch;</t>")
    assert node.text == "&copy; & &nosuch;"


def test_entity_roundtrip_through_serializer():
    doc = parse_document("<t>&amp;quot; &lt;tag&gt;</t>")
    assert doc.root.text == "&quot; <tag>"
    again = parse_document(to_xml(doc, pretty=False))
    assert again.root.text == doc.root.text
