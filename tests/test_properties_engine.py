"""Property-based tests for the engine-level invariants.

The central invariant (shared template evaluation ≡ per-query evaluation) is
exercised with hypothesis-generated workloads: random queries over a small
schema and random document streams with colliding values.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro import RuntimeConfig, open_broker
from repro.core import MMQJPEngine, SequentialEngine
from repro.templates import JoinGraph, reduce_join_graph
from repro.workloads.querygen import generate_query
from repro.workloads.synthetic import build_document
from repro.xmlmodel.schema import two_level_schema
from repro.xscl.ast import ValueJoinPredicate

SCHEMA = two_level_schema(4)

# A workload description: per query (k, seed); per document a tuple of leaf
# value indices drawn from a tiny pool so that joins actually fire.
query_specs = st.lists(
    st.tuples(st.integers(min_value=1, max_value=4), st.integers(min_value=0, max_value=10_000)),
    min_size=1,
    max_size=8,
)
doc_specs = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=2),
    ),
    min_size=2,
    max_size=5,
)


def _make_queries(specs):
    return [generate_query(SCHEMA, k, random.Random(seed), window=10.0) for k, seed in specs]


def _make_documents(specs):
    docs = []
    for i, leaf_values in enumerate(specs):
        docs.append(
            build_document(
                SCHEMA,
                docid=f"doc{i}",
                timestamp=float(i + 1),
                leaf_values=[f"v{x}" for x in leaf_values],
            )
        )
    return docs


def _run(engine, queries, doc_specs):
    for i, query in enumerate(queries):
        engine.register_query(query, qid=f"q{i}")
    keys = set()
    for document in _make_documents(doc_specs):
        keys.update(m.key() for m in engine.process_document(document))
    return keys


@given(query_specs, doc_specs)
@settings(max_examples=25, deadline=None)
def test_mmqjp_equivalent_to_sequential(q_specs, d_specs):
    queries = _make_queries(q_specs)
    mmqjp = _run(MMQJPEngine(store_documents=False), queries, d_specs)
    sequential = _run(SequentialEngine(store_documents=False), queries, d_specs)
    assert mmqjp == sequential


@given(query_specs, doc_specs)
@settings(max_examples=15, deadline=None)
def test_view_materialization_equivalent_to_plain(q_specs, d_specs):
    queries = _make_queries(q_specs)
    plain = _run(MMQJPEngine(store_documents=False), queries, d_specs)
    materialized = _run(
        MMQJPEngine(use_view_materialization=True, view_cache_size=16, store_documents=False),
        queries,
        d_specs,
    )
    assert plain == materialized


@given(query_specs, doc_specs)
@settings(max_examples=15, deadline=None)
def test_matches_respect_window_and_order(q_specs, d_specs):
    queries = _make_queries(q_specs)
    engine = MMQJPEngine(store_documents=False)
    for i, query in enumerate(queries):
        engine.register_query(query, qid=f"q{i}")
    for document in _make_documents(d_specs):
        for match in engine.process_document(document):
            assert match.rhs_timestamp > match.lhs_timestamp
            assert match.rhs_timestamp - match.lhs_timestamp <= match.window
            assert match.rhs_docid == document.docid


@given(query_specs)
@settings(max_examples=30, deadline=None)
def test_template_count_bounded_by_schema(q_specs):
    """The Figure 17 workload creates at most one template per value-join count."""
    queries = _make_queries(q_specs)
    engine = MMQJPEngine(store_documents=False)
    for i, query in enumerate(queries):
        engine.register_query(query, qid=f"q{i}")
    assert engine.num_templates <= SCHEMA.num_leaves


@given(st.integers(min_value=1, max_value=4), st.integers(min_value=0, max_value=5000))
@settings(max_examples=40, deadline=None)
def test_reduction_preserves_value_joins_and_removes_unused_leaves(k, seed):
    query = generate_query(SCHEMA, k, random.Random(seed))
    graph = JoinGraph.from_query(query)
    reduced = reduce_join_graph(graph)
    assert reduced.value_edges == graph.value_edges
    assert reduced.nodes <= graph.nodes
    participants = {n for edge in graph.value_edges for n in edge}
    assert participants <= reduced.nodes
    # Every kept node is a participant or an ancestor (LCA) of participants.
    for node in reduced.nodes:
        assert node in participants or any(
            node in set(graph.ancestors(p)) for p in participants
        )


# --------------------------------------------------------------------------- #
# delta-driven evaluation ≡ full-state evaluation
# --------------------------------------------------------------------------- #
def _delta_config(engine: str, delta_join: bool, **overrides) -> RuntimeConfig:
    return RuntimeConfig(
        engine=engine, delta_join=delta_join, store_documents=False, **overrides
    )


def _assert_delta_stats_consistent(engine, delta_join: bool, num_docs: int) -> None:
    """The skipped/reduced-state-row counters must add up either way."""
    stats = engine.delta_stats
    if not delta_join:
        assert stats == {
            "documents": 0,
            "reductions_computed": 0,
            "reductions_reused": 0,
            "rows_scanned": 0,
            "rows_kept": 0,
        }
        return
    assert stats["documents"] == num_docs
    assert 0 <= stats["rows_kept"] <= stats["rows_scanned"]
    assert stats["reductions_computed"] >= 0
    assert stats["reductions_reused"] >= 0


@given(query_specs, doc_specs)
@settings(max_examples=20, deadline=None)
def test_delta_join_equivalent_on_both_engines(q_specs, d_specs):
    """delta_join on/off produces identical match sets on MMQJP and Sequential."""
    queries = _make_queries(q_specs)
    for engine_name in ("mmqjp", "sequential"):
        results = {}
        for delta_join in (True, False):
            engine = (MMQJPEngine if engine_name == "mmqjp" else SequentialEngine)(
                _delta_config(engine_name, delta_join)
            )
            results[delta_join] = _run(engine, queries, d_specs)
            _assert_delta_stats_consistent(engine, delta_join, len(d_specs))
        assert results[True] == results[False]


@given(query_specs, doc_specs)
@settings(max_examples=10, deadline=None)
def test_delta_join_equivalent_under_knob_matrix(q_specs, d_specs):
    """delta_join × plan_cache × prune_dispatch all agree with the baseline."""
    queries = _make_queries(q_specs)
    baseline = _run(
        MMQJPEngine(_delta_config("mmqjp", False, plan_cache=False, prune_dispatch=False)),
        queries,
        d_specs,
    )
    for delta_join in (True, False):
        for plan_cache in (True, False):
            for prune_dispatch in (True, False):
                engine = MMQJPEngine(
                    _delta_config(
                        "mmqjp",
                        delta_join,
                        plan_cache=plan_cache,
                        prune_dispatch=prune_dispatch,
                    )
                )
                assert _run(engine, queries, d_specs) == baseline


@given(query_specs, doc_specs)
@settings(max_examples=8, deadline=None)
def test_delta_join_equivalent_under_interleavings(q_specs, d_specs):
    """Register/process/prune/deregister interleavings agree across delta modes.

    Half the documents are processed, then the oldest state is pruned and
    the first query deregistered, then the rest of the stream runs — the
    delta-reduced path must track every state mutation exactly.
    """
    queries = _make_queries(q_specs)
    documents = _make_documents(d_specs)
    split = len(documents) // 2

    def run(delta_join: bool):
        engine = MMQJPEngine(_delta_config("mmqjp", delta_join))
        for i, query in enumerate(queries):
            engine.register_query(query, qid=f"q{i}")
        keys = set()
        for document in documents[:split]:
            keys.update((m.key() for m in engine.process_document(document)))
        engine.prune(documents[split - 1].timestamp - 2.0 if split else 0.0)
        engine.deregister_query("q0")
        for document in documents[split:]:
            keys.update((m.key() for m in engine.process_document(document)))
        return keys

    assert run(True) == run(False)


def test_delta_join_equivalent_across_shards():
    """delta_join on/off × engines × 1/2/4 shards: identical deliveries."""
    rng = random.Random(11)
    queries = [generate_query(SCHEMA, k, rng, window=10.0) for k in (1, 2, 2, 3)]
    specs = [(0, 1, 0, 2), (1, 1, 2, 0), (0, 0, 1, 1), (2, 1, 0, 0)]

    reference = None
    for engine in ("mmqjp", "sequential"):
        for delta_join in (True, False):
            for shards in (1, 2, 4):
                broker = open_broker(
                    RuntimeConfig(
                        engine=engine,
                        delta_join=delta_join,
                        construct_outputs=False,
                        shards=shards,
                    )
                )
                try:
                    for i, query in enumerate(queries):
                        broker.subscribe(query, subscription_id=f"q{i}")
                    keys = set()
                    for delivery in broker.publish_many(_make_documents(specs)):
                        if delivery.match is not None:
                            keys.add(delivery.match.key())
                finally:
                    broker.close()
                if reference is None:
                    reference = keys
                assert keys == reference, (engine, delta_join, shards)
    assert reference  # the workload must actually produce matches


@given(st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=3, unique=True))
@settings(max_examples=20, deadline=None)
def test_duplicate_queries_share_templates(leaf_tags):
    """Registering the same query twice reuses the template and doubles RT."""
    from repro.xpath.pattern import simple_pattern
    from repro.xscl.ast import JoinOperator, JoinSpec, QueryBlock, XsclQuery

    leaves = {f"v_{tag}": f".//{tag}" for tag in leaf_tags}
    block = QueryBlock(simple_pattern("S", "v_root", "//item", leaves))
    predicates = tuple(ValueJoinPredicate(f"v_{t}", f"v_{t}") for t in leaf_tags)
    query = XsclQuery(
        left=block,
        right=QueryBlock(simple_pattern("S", "v_root", "//item", dict(leaves))),
        join=JoinSpec(JoinOperator.FOLLOWED_BY, predicates, 5.0),
    )
    engine = MMQJPEngine(store_documents=False)
    engine.register_query(query, qid="first")
    engine.register_query(query, qid="second")
    assert engine.num_templates == 1
    template = engine.registry.templates[0]
    assert len(engine.registry.rt_relation(template)) == 2
