"""Shared fixtures: the paper's running example and small workloads."""

from __future__ import annotations

import pytest

from repro.xmlmodel import XmlDocument, element

#: Window symbols for the paper's Table 2 queries.
PAPER_WINDOWS = {"T1": 10.0, "T2": 10.0, "T3": 10.0}

#: The three example queries of Table 2 (Q3 uses identical variable names on
#: both sides, as the paper's canonical-naming convention prescribes).
PAPER_Q1 = (
    "S//book->x1[.//author->x2][.//title->x3] "
    "FOLLOWED BY{x2=x5 AND x3=x6, T1} "
    "S//blog->x4[.//author->x5][.//title->x6]"
)
PAPER_Q2 = (
    "S//book->x1[.//author->x2][.//category->x7] "
    "FOLLOWED BY{x2=x5 AND x7=x8, T2} "
    "S//blog->x4[.//author->x5][.//category->x8]"
)
PAPER_Q3 = (
    "S//blog->x4[.//author->x5][.//title->x6] "
    "FOLLOWED BY{x5=x5 AND x6=x6, T3} "
    "S//blog->x4[.//author->x5][.//title->x6]"
)


def make_book_announcement(docid: str = "d1", timestamp: float = 1.0) -> XmlDocument:
    """The book announcement document of Figure 1."""
    root = element(
        "book",
        element(
            "authors",
            element("author", text="Danny Ayers"),
            element("author", text="Andrew Watt"),
        ),
        element("title", text="Beginning RSS and Atom Programming"),
        element("category", text="Scripting & Programming"),
        element("category", text="Web Site Development"),
        element("publisher", text="Wrox"),
        element("isbn", text="0764579169"),
    )
    return XmlDocument(root, docid=docid, timestamp=timestamp)


def make_blog_article(
    docid: str = "d2",
    timestamp: float = 2.0,
    author: str = "Danny Ayers",
    title: str = "Beginning RSS and Atom Programming",
) -> XmlDocument:
    """The blog article document of Figure 2."""
    root = element(
        "blog",
        element("url", text="http://dannyayers.com/topics/books/rss-book"),
        element("author", text=author),
        element("title", text=title),
        element("category", text="Book Announcement"),
        element("category", text="Scripting & Programming"),
        element("description", text="Just heard ..."),
    )
    return XmlDocument(root, docid=docid, timestamp=timestamp)


@pytest.fixture
def book_document() -> XmlDocument:
    """Fresh copy of Figure 1's book announcement (node ids reassigned)."""
    return make_book_announcement()


@pytest.fixture
def blog_document() -> XmlDocument:
    """Fresh copy of Figure 2's blog article."""
    return make_blog_article()


@pytest.fixture
def paper_queries() -> list[tuple[str, str]]:
    """The (qid, query text) pairs of Table 2."""
    return [("Q1", PAPER_Q1), ("Q2", PAPER_Q2), ("Q3", PAPER_Q3)]


@pytest.fixture
def paper_windows() -> dict[str, float]:
    """Window symbol bindings used by the Table 2 queries."""
    return dict(PAPER_WINDOWS)
