"""Unit tests for location paths and their parser."""

import pytest

from repro.xmlmodel import XmlDocument, element
from repro.xpath import Axis, LocationPath, Step, XPathSyntaxError, parse_path
from repro.xpath.ast import evaluate_relative


def test_parse_descendant_path():
    path = parse_path("//book//title")
    assert path.absolute
    assert [s.axis for s in path] == [Axis.DESCENDANT, Axis.DESCENDANT]
    assert [s.test for s in path] == ["book", "title"]


def test_parse_child_path():
    path = parse_path("/rss/channel/item")
    assert [s.axis for s in path] == [Axis.CHILD] * 3


def test_parse_relative_path():
    path = parse_path(".//author")
    assert not path.absolute
    assert str(path) == ".//author"


def test_parse_wildcard():
    path = parse_path("//*//title")
    assert path.steps[0].test == "*"
    assert path.steps[0].matches("anything")


def test_step_matches():
    step = Step(Axis.CHILD, "book")
    assert step.matches("book")
    assert not step.matches("blog")


def test_str_roundtrip():
    for text in ("//a//b", "/a/b", ".//x", "//a/b//c"):
        assert str(parse_path(text)) == text


@pytest.mark.parametrize("bad", ["", "book", "//", "//a[", ".//", "a//b"])
def test_parse_errors(bad):
    with pytest.raises(XPathSyntaxError):
        parse_path(bad)


def test_concat_relative():
    combined = parse_path("//book").concat(parse_path(".//author"))
    assert str(combined) == "//book//author"
    assert combined.absolute


def test_concat_absolute_rejected():
    with pytest.raises(XPathSyntaxError):
        parse_path("//book").concat(parse_path("//author"))


def test_uses_only_descendant_axis():
    assert parse_path("//a//b").uses_only_descendant_axis
    assert not parse_path("//a/b").uses_only_descendant_axis


def test_empty_location_path_rejected():
    with pytest.raises(XPathSyntaxError):
        LocationPath(())


@pytest.fixture
def sample_doc() -> XmlDocument:
    root = element(
        "library",
        element("shelf", element("book", element("title", text="A")), element("book", element("title", text="B"))),
        element("book", element("title", text="C")),
    )
    return XmlDocument(root)


def test_evaluate_relative_descendant(sample_doc):
    books = evaluate_relative(parse_path(".//book"), sample_doc.root)
    assert len(books) == 3


def test_evaluate_relative_child(sample_doc):
    direct = evaluate_relative(parse_path("./book"), sample_doc.root)
    assert len(direct) == 1
    assert direct[0].node_id == 6


def test_evaluate_relative_multi_step(sample_doc):
    titles = evaluate_relative(parse_path(".//shelf//title"), sample_doc.root)
    assert sorted(t.string_value() for t in titles) == ["A", "B"]


def test_evaluate_relative_no_match(sample_doc):
    assert evaluate_relative(parse_path(".//magazine"), sample_doc.root) == []
