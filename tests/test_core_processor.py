"""Unit tests for the Stage 2 join processors (MMQJP and Sequential)."""

import pytest

from repro.core import MMQJPJoinProcessor, SequentialJoinProcessor
from repro.core.materialize import ViewCache
from repro.core.processor import build_per_query_cq, window_satisfied
from repro.templates import JoinGraph, TemplateRegistry, reduce_join_graph
from repro.workloads.synthetic import build_technical_benchmark_data, leaf_variable
from repro.workloads.querygen import generate_query
from repro.xmlmodel.schema import two_level_schema
from repro.xscl import parse_query
from repro.xscl.ast import JoinOperator
from tests.conftest import PAPER_WINDOWS

SCHEMA = two_level_schema(4)


def _matching_query(window: float = float("inf")):
    """A query joining leaf0=leaf0 and leaf1=leaf1 — always matches the benchmark docs."""
    v0, v1 = leaf_variable(SCHEMA, 0), leaf_variable(SCHEMA, 1)
    text = (
        f"S//item->v_item[.//leaf0->{v0}][.//leaf1->{v1}] "
        f"FOLLOWED BY{{{v0}={v0} AND {v1}={v1}, {window if window != float('inf') else 'INF'}}} "
        f"S//item->v_item[.//leaf0->{v0}][.//leaf1->{v1}]"
    )
    return parse_query(text)


def _non_matching_query():
    """leaf0 = leaf1 never matches (benchmark leaf values differ per position)."""
    v0, v1 = leaf_variable(SCHEMA, 0), leaf_variable(SCHEMA, 1)
    return parse_query(
        f"S//item->v_item[.//leaf0->{v0}] FOLLOWED BY{{{v0}={v1}, INF}} "
        f"S//item->v_item[.//leaf1->{v1}]"
    )


@pytest.fixture
def data():
    return build_technical_benchmark_data(SCHEMA)


def test_window_satisfied_followed_by():
    assert window_satisfied(JoinOperator.FOLLOWED_BY, 1.0, 10.0)
    assert not window_satisfied(JoinOperator.FOLLOWED_BY, 0.0, 10.0)
    assert not window_satisfied(JoinOperator.FOLLOWED_BY, 11.0, 10.0)


def test_window_satisfied_join_allows_simultaneous_events():
    assert window_satisfied(JoinOperator.JOIN, 0.0, 10.0)
    assert not window_satisfied(JoinOperator.JOIN, 11.0, 10.0)


def test_mmqjp_finds_matching_query(data):
    registry = TemplateRegistry()
    registry.add_query("hit", _matching_query())
    registry.add_query("miss", _non_matching_query())
    processor = MMQJPJoinProcessor(registry, state=data.fresh_state())
    matches = processor.process(data.witness)
    assert [m.qid for m in matches] == ["hit"]
    match = matches[0]
    assert match.lhs_docid == "d1" and match.rhs_docid == "d2"
    assert match.lhs_bindings[leaf_variable(SCHEMA, 0)] == 1
    assert match.rhs_bindings[leaf_variable(SCHEMA, 0)] == 1


def test_mmqjp_window_filtering(data):
    registry = TemplateRegistry()
    registry.add_query("tight", _matching_query(window=0.5))  # delta is 1.0 -> excluded
    registry.add_query("loose", _matching_query(window=5.0))
    processor = MMQJPJoinProcessor(registry, state=data.fresh_state())
    matches = processor.process(data.witness)
    assert [m.qid for m in matches] == ["loose"]


def test_mmqjp_with_view_materialization_agrees(data):
    registry = TemplateRegistry()
    registry.add_query("hit", _matching_query())
    plain = MMQJPJoinProcessor(registry, state=data.fresh_state())
    materialized = MMQJPJoinProcessor(
        registry, state=data.fresh_state(), use_view_materialization=True
    )
    cached = MMQJPJoinProcessor(
        registry,
        state=data.fresh_state(),
        use_view_materialization=True,
        view_cache=ViewCache(max_entries=8),
    )
    keys = [{m.key() for m in p.process(data.witness)} for p in (plain, materialized, cached)]
    assert keys[0] == keys[1] == keys[2]
    assert keys[0]


def test_mmqjp_maintain_state_merges_current_document(data):
    registry = TemplateRegistry()
    registry.add_query("hit", _matching_query())
    processor = MMQJPJoinProcessor(registry, state=data.fresh_state())
    processor.process(data.witness)
    processor.maintain_state(data.witness)
    assert processor.state.num_documents == 2


def test_mmqjp_prune_state(data):
    registry = TemplateRegistry()
    registry.add_query("hit", _matching_query())
    processor = MMQJPJoinProcessor(
        registry, state=data.fresh_state(), use_view_materialization=True, view_cache=ViewCache()
    )
    processor.process(data.witness)
    removed = processor.prune_state(min_timestamp=1.5)
    assert removed == 1
    assert processor.state.num_documents == 0


def test_mmqjp_costs_recorded(data):
    registry = TemplateRegistry()
    registry.add_query("hit", _matching_query())
    processor = MMQJPJoinProcessor(
        registry, state=data.fresh_state(), use_view_materialization=True
    )
    processor.process(data.witness)
    for phase in ("conjunctive_query", "rvj", "rl", "rr"):
        assert processor.costs.get(phase) >= 0.0
    assert processor.costs.total > 0.0


def test_sequential_matches_same_results(data):
    sequential = SequentialJoinProcessor(state=data.fresh_state())
    sequential.add_query("hit", _matching_query())
    sequential.add_query("miss", _non_matching_query())
    matches = sequential.process(data.witness)
    assert [m.qid for m in matches] == ["hit"]
    assert sequential.num_queries == 2


def test_sequential_duplicate_qid_rejected(data):
    sequential = SequentialJoinProcessor(state=data.fresh_state())
    sequential.add_query("q", _matching_query())
    with pytest.raises(ValueError):
        sequential.add_query("q", _matching_query())


def test_per_query_cq_uses_constants_for_variable_names():
    query = _matching_query()
    reduced = reduce_join_graph(JoinGraph.from_query(query))
    cq = build_per_query_cq("q7", query, reduced)
    # The head carries the query id and window as constants.
    assert cq.head_terms[0].value == "q7"
    assert cq.head_terms[-1].value == float("inf")
    rt_atoms = [a for a in cq.body if a.relation.startswith("RT")]
    assert rt_atoms == []


def test_random_generated_query_agrees_between_processors(data):
    import random

    rng = random.Random(42)
    queries = [generate_query(SCHEMA, k, rng) for k in (1, 2, 3) for _ in range(5)]
    registry = TemplateRegistry()
    sequential = SequentialJoinProcessor(state=data.fresh_state())
    for i, query in enumerate(queries):
        registry.add_query(f"q{i}", query)
        sequential.add_query(f"q{i}", query)
    mmqjp = MMQJPJoinProcessor(registry, state=data.fresh_state())
    assert {m.key() for m in mmqjp.process(data.witness)} == {
        m.key() for m in sequential.process(data.witness)
    }
