"""Unit tests for the two-stage engines (registration, streaming, pruning, JOIN)."""

import pytest

from repro.core import MMQJPEngine, SequentialEngine
from repro.xmlmodel import XmlDocument, element
from tests.conftest import make_blog_article, make_book_announcement, PAPER_Q1, PAPER_WINDOWS


def _blog(docid, ts, author="Ada", title="Streams"):
    return XmlDocument(
        element(
            "blog",
            element("author", text=author),
            element("title", text=title),
        ),
        docid=docid,
        timestamp=ts,
    )


CROSS_POST = (
    "S//blog->b[.//author->a][.//title->t] "
    "FOLLOWED BY{a=a AND t=t, 10} "
    "S//blog->b[.//author->a][.//title->t]"
)


def test_register_query_assigns_ids():
    engine = MMQJPEngine()
    qid = engine.register_query(CROSS_POST)
    assert qid == "q1"
    assert engine.num_queries == 1
    assert engine.registered_queries[qid].is_join_query


def test_register_query_with_explicit_id_and_duplicate_rejection():
    engine = MMQJPEngine()
    engine.register_query(CROSS_POST, qid="mine")
    with pytest.raises(ValueError):
        engine.register_query(CROSS_POST, qid="mine")


def test_single_block_query_rejected_by_join_engine():
    engine = MMQJPEngine()
    with pytest.raises(ValueError):
        engine.register_query("blog//entry->e")


def test_register_queries_bulk():
    engine = MMQJPEngine()
    ids = engine.register_queries([CROSS_POST, PAPER_Q1.replace("T1", "5")])
    assert len(ids) == 2
    assert engine.num_queries == 2


def test_process_stream_and_stats():
    engine = MMQJPEngine()
    engine.register_query(CROSS_POST)
    matches = engine.process_stream([_blog("a", 1), _blog("b", 2), _blog("c", 3)])
    # every later posting matches every earlier one within the window
    assert len(matches) == 3
    stats = engine.stats()
    assert stats.num_documents_processed == 3
    assert stats.num_matches == 3
    assert stats.num_templates == 1
    assert stats.state_documents == 3


def test_auto_timestamps_are_monotone():
    engine = MMQJPEngine()
    engine.register_query(CROSS_POST)
    first = XmlDocument(element("blog", element("author", text="A"), element("title", text="T")))
    second = XmlDocument(element("blog", element("author", text="A"), element("title", text="T")))
    engine.process_document(first)
    matches = engine.process_document(second)
    assert len(matches) == 1
    assert matches[0].rhs_timestamp > matches[0].lhs_timestamp


def test_explicit_timestamp_overrides():
    engine = MMQJPEngine()
    engine.register_query(CROSS_POST)
    engine.process_document(_blog("a", 0), timestamp=100.0)
    matches = engine.process_document(_blog("b", 0), timestamp=105.0)
    assert matches and matches[0].lhs_timestamp == 100.0


def test_text_documents_accepted():
    engine = MMQJPEngine()
    engine.register_query(CROSS_POST)
    engine.process_document("<blog><author>A</author><title>T</title></blog>")
    matches = engine.process_document("<blog><author>A</author><title>T</title></blog>")
    assert len(matches) == 1


def test_finite_windows_prune_state():
    engine = MMQJPEngine()
    engine.register_query(CROSS_POST)  # window 10
    engine.process_document(_blog("a", 1.0))
    engine.process_document(_blog("b", 50.0))
    # The first document is far outside every window and has been pruned.
    assert engine.processor.state.num_documents == 1
    assert "a" not in engine.documents


def test_infinite_window_disables_pruning():
    engine = MMQJPEngine()
    engine.register_query(
        "S//blog->b[.//author->a] FOLLOWED BY{a=a, INF} S//blog->b[.//author->a]"
    )
    engine.process_document(_blog("a", 1.0))
    engine.process_document(_blog("b", 1000.0))
    assert engine.processor.state.num_documents == 2


def test_join_operator_matches_in_both_directions():
    """The symmetric JOIN fires regardless of which block's event arrives first."""
    query = (
        "S//book->k[.//title->t] JOIN{t=bt, 10} S//blog->g[.//title->bt]"
    )
    for first, second in (
        (make_book_announcement(), make_blog_article()),
        (make_blog_article(docid="blog1", timestamp=1.0), make_book_announcement(docid="book1", timestamp=2.0)),
    ):
        engine = MMQJPEngine()
        engine.register_query(query, qid="J")
        assert engine.process_document(first) == []
        matches = engine.process_document(second)
        assert len(matches) == 1
        assert matches[0].qid == "J"


def test_followed_by_does_not_match_backwards():
    query = "S//book->k[.//title->t] FOLLOWED BY{t=bt, 10} S//blog->g[.//title->bt]"
    engine = MMQJPEngine()
    engine.register_query(query, qid="F")
    engine.process_document(make_blog_article(timestamp=1.0))
    assert engine.process_document(make_book_announcement(timestamp=2.0)) == []


def test_output_document_requires_stored_documents():
    engine = MMQJPEngine(store_documents=False)
    engine.register_query(CROSS_POST)
    engine.process_document(_blog("a", 1))
    matches = engine.process_document(_blog("b", 2))
    with pytest.raises(KeyError):
        engine.output_document(matches[0])


def test_sequential_engine_same_interface():
    engine = SequentialEngine()
    engine.register_query(CROSS_POST)
    engine.process_document(_blog("a", 1))
    matches = engine.process_document(_blog("b", 2))
    assert len(matches) == 1
    stats = engine.stats()
    assert stats.num_templates is None
    assert stats.num_matches == 1


def test_costs_accumulate():
    engine = MMQJPEngine()
    engine.register_query(CROSS_POST)
    engine.process_document(_blog("a", 1))
    engine.process_document(_blog("b", 2))
    assert engine.costs.get("conjunctive_query") > 0.0
