"""Unit tests for the join state (Algorithm 2) and witness relation encoding."""

import pytest

from repro.core import JoinState, WitnessRelations
from repro.xmlmodel import parse_document
from repro.xpath import XPathEvaluator
from repro.xpath.pattern import simple_pattern


@pytest.fixture
def witnesses() -> WitnessRelations:
    evaluator = XPathEvaluator()
    evaluator.register_pattern(
        simple_pattern("S", "x1", "//book", {"x2": ".//author", "x3": ".//title"})
    )
    doc = parse_document(
        "<book><author>Ada</author><title>Streams</title></book>",
        docid="b1",
        timestamp=4.0,
    )
    return WitnessRelations.from_witnesses(evaluator.evaluate(doc))


def test_witness_relations_from_stage1(witnesses):
    assert witnesses.docid == "b1"
    assert witnesses.timestamp == 4.0
    assert not witnesses.is_empty
    assert set(witnesses.rbinw.rows) == {("x1", "x2", 0, 1), ("x1", "x3", 0, 2)}
    assert ("x2", 1) in witnesses.rvarw.rows
    assert (1, "Ada") in witnesses.rdocw.rows
    assert witnesses.rdoctsw.rows == [("b1", 4.0)]


def test_witness_relations_empty():
    empty = WitnessRelations.empty("d9", 1.5)
    assert empty.is_empty
    assert empty.rdoctsw.rows == [("d9", 1.5)]
    assert set(empty.relations()) == {"RbinW", "RdocW", "RvarW", "RdocTSW"}


def test_witness_relations_from_rows():
    w = WitnessRelations.from_rows(
        "d1", 2.0, rbinw_rows=[("a", "b", 0, 1)], rdocw_rows=[(1, "v")], rvarw_rows=[("b", 1)]
    )
    assert len(w.rbinw) == 1
    assert len(w.rdocw) == 1
    assert len(w.rvarw) == 1


def test_state_merge_adds_docid_column(witnesses):
    state = JoinState()
    state.merge(witnesses)
    assert state.num_documents == 1
    assert ("b1", "x1", "x2", 0, 1) in state.rbin.rows
    assert ("b1", 1, "Ada") in state.rdoc.rows
    assert ("b1", "x2", 1) in state.rvar.rows
    assert state.timestamp_of("b1") == 4.0


def test_state_merge_accumulates(witnesses):
    state = JoinState()
    state.merge(witnesses)
    other = WitnessRelations.from_rows("b2", 9.0, [("x1", "x2", 0, 1)], [(1, "Bob")])
    state.merge(other)
    assert state.num_documents == 2
    assert len(state.rbin) == 3


def test_insert_document_rows():
    state = JoinState()
    state.insert_document_rows(
        "d1", 1.0, rbin_rows=[("a", "b", 0, 1)], rdoc_rows=[(1, "x")], rvar_rows=[("b", 1)]
    )
    assert state.rbin.rows == [("d1", "a", "b", 0, 1)]
    assert state.rdoc.rows == [("d1", 1, "x")]
    assert state.rvar.rows == [("d1", "b", 1)]
    assert state.rdocts.rows == [("d1", 1.0)]


def test_prune_drops_old_documents(witnesses):
    state = JoinState()
    state.merge(witnesses)  # timestamp 4.0
    state.insert_document_rows("old", 1.0, [("a", "b", 0, 1)], [(1, "v")])
    removed = state.prune(min_timestamp=3.0)
    assert removed == 1
    assert state.num_documents == 1
    assert all(row[0] != "old" for row in state.rbin.rows)
    assert all(row[0] != "old" for row in state.rdocts.rows)


def test_prune_noop_when_everything_recent(witnesses):
    state = JoinState()
    state.merge(witnesses)
    assert state.prune(min_timestamp=0.0) == 0
    assert state.num_documents == 1


def test_clear(witnesses):
    state = JoinState()
    state.merge(witnesses)
    state.clear()
    assert state.num_documents == 0
    assert len(state.rbin) == 0


def test_relations_mapping(witnesses):
    state = JoinState()
    state.merge(witnesses)
    relations = state.relations()
    assert set(relations) == {"Rbin", "Rdoc", "Rvar", "RdocTS"}
    assert relations["Rbin"] is state.rbin
