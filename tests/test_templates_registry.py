"""Unit tests for the template registry."""

import pytest

from repro.templates import TemplateRegistry
from repro.workloads.querygen import QueryWorkloadConfig, generate_queries
from repro.xmlmodel.schema import two_level_schema
from repro.xscl import parse_query
from tests.conftest import PAPER_Q1, PAPER_Q2, PAPER_Q3, PAPER_WINDOWS


def _paper_query(text: str):
    return parse_query(text, window_symbols=PAPER_WINDOWS)


def test_paper_queries_share_one_template():
    registry = TemplateRegistry()
    for qid, text in (("Q1", PAPER_Q1), ("Q2", PAPER_Q2), ("Q3", PAPER_Q3)):
        registry.add_query(qid, _paper_query(text))
    assert registry.num_templates == 1
    assert registry.num_queries == 3
    template = registry.templates[0]
    assert registry.queries_of(template) == ["Q1", "Q2", "Q3"]
    assert registry.template_sizes() == {0: 3}


def test_rt_relation_rows_follow_table4a():
    registry = TemplateRegistry()
    for qid, text in (("Q1", PAPER_Q1), ("Q2", PAPER_Q2), ("Q3", PAPER_Q3)):
        registry.add_query(qid, _paper_query(text))
    rt = registry.rt_relation(registry.templates[0])
    assert len(rt) == 3
    by_qid = {row[0]: row for row in rt.rows}
    assert set(by_qid) == {"Q1", "Q2", "Q3"}
    # Q1 binds the six distinct variables x1..x6; Q3 repeats x4, x5, x6.
    assert sorted(by_qid["Q1"][1:-1]) == ["x1", "x2", "x3", "x4", "x5", "x6"]
    assert sorted(by_qid["Q3"][1:-1]) == ["x4", "x4", "x5", "x5", "x6", "x6"]
    assert by_qid["Q2"][-1] == 10.0


def test_duplicate_qid_rejected():
    registry = TemplateRegistry()
    registry.add_query("Q1", _paper_query(PAPER_Q1))
    with pytest.raises(ValueError):
        registry.add_query("Q1", _paper_query(PAPER_Q2))


def test_different_shapes_get_different_templates():
    registry = TemplateRegistry()
    registry.add_query("a", _paper_query(PAPER_Q1))
    registry.add_query(
        "b", parse_query("S//a->r[.//b->x] FOLLOWED BY{x=u, 1} S//c->r2[.//d->u]")
    )
    assert registry.num_templates == 2


def test_number_of_templates_bounded_by_schema_not_queries():
    """With the Figure 17 generator the template count equals the leaf count."""
    schema = two_level_schema(4)
    queries = generate_queries(
        QueryWorkloadConfig(schema=schema, num_queries=300, zipf_theta=0.0, seed=3)
    )
    registry = TemplateRegistry()
    for i, query in enumerate(queries):
        registry.add_query(f"q{i}", query)
    assert registry.num_templates <= schema.num_leaves
    assert registry.num_queries == 300


def test_registry_without_graph_minor_creates_more_templates():
    schema = two_level_schema(6)
    queries = generate_queries(
        QueryWorkloadConfig(schema=schema, num_queries=200, zipf_theta=0.8, seed=5)
    )
    with_minor = TemplateRegistry(use_graph_minor=True)
    without_minor = TemplateRegistry(use_graph_minor=False)
    for i, query in enumerate(queries):
        with_minor.add_query(f"q{i}", query)
        without_minor.add_query(f"q{i}", query)
    assert without_minor.num_templates >= with_minor.num_templates


def test_query_record_accessible():
    registry = TemplateRegistry()
    record = registry.add_query("Q1", _paper_query(PAPER_Q1))
    assert registry.query("Q1") is record
    assert record.window == 10.0
    assert record.template is registry.templates[0]


def test_cqt_cached_per_template():
    registry = TemplateRegistry()
    registry.add_query("Q1", _paper_query(PAPER_Q1))
    template = registry.templates[0]
    assert registry.cqt(template) is registry.cqt(template)
    assert registry.cqt(template, materialized=True) is not registry.cqt(template)
