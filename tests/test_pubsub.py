"""Unit tests for the publish/subscribe layer (broker, streams, subscriptions)."""

import pytest

from repro.pubsub import Broker
from repro.pubsub.stream import Stream, StreamRegistry
from repro.pubsub.subscription import Subscription, SubscriptionResult
from repro.xscl import parse_query
from tests.conftest import make_blog_article, make_book_announcement, PAPER_Q1, PAPER_WINDOWS

CROSS_POST = (
    "S//blog->b[.//author->a][.//title->t] "
    "FOLLOWED BY{a=a AND t=t, 10} "
    "S//blog->b[.//author->a][.//title->t]"
)


# --------------------------------------------------------------------------- #
# streams
# --------------------------------------------------------------------------- #
def test_stream_records_documents():
    stream = Stream(name="S", history_size=2)
    for i in range(3):
        stream.record(make_blog_article(docid=f"b{i}", timestamp=float(i)))
    assert stream.num_documents == 3
    assert stream.last_timestamp == 2.0
    assert [d.docid for d in stream.history()] == ["b1", "b2"]


def test_stream_registry_lazy_creation():
    registry = StreamRegistry()
    stream = registry.get_or_create("feeds")
    assert registry.get_or_create("feeds") is stream
    assert "feeds" in registry
    assert registry.names() == ["feeds"]
    assert registry.stats() == {"feeds": 0}


# --------------------------------------------------------------------------- #
# subscriptions
# --------------------------------------------------------------------------- #
def test_subscription_delivery_and_deactivation():
    received = []
    sub = Subscription("s1", parse_query("blog//entry->e"), callback=received.append)
    result = SubscriptionResult(subscription_id="s1")
    sub.deliver(result)
    assert received == [result]
    assert sub.num_results == 1
    sub.active = False
    sub.deliver(result)
    assert sub.num_results == 1


# --------------------------------------------------------------------------- #
# broker
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("engine", ["mmqjp", "mmqjp-vm", "sequential"])
def test_broker_join_subscription_delivers_matches(engine):
    broker = Broker(engine=engine, construct_outputs=(engine == "mmqjp"))
    received = []
    broker.subscribe(PAPER_Q1, callback=received.append, window_symbols=PAPER_WINDOWS)
    assert broker.publish(make_book_announcement()) == []
    deliveries = broker.publish(make_blog_article())
    assert len(deliveries) == 1
    assert received and received[0].match.qid == deliveries[0].subscription_id
    if engine == "mmqjp":
        assert received[0].output is not None
        assert received[0].output.root.tag == "result"


def test_broker_unknown_engine_rejected():
    with pytest.raises(ValueError):
        Broker(engine="turbo")


def test_broker_filter_subscription():
    broker = Broker()
    blogs = []
    broker.subscribe("S//blog->b[.//author->a]", callback=blogs.append)
    broker.publish(make_blog_article())
    broker.publish(make_book_announcement())
    assert len(blogs) == 1
    assert blogs[0].document.root.tag == "blog"


def test_broker_unsubscribe_mutes_deliveries():
    broker = Broker()
    sub = broker.subscribe(CROSS_POST)
    broker.publish(make_blog_article(docid="b1", timestamp=1.0))
    broker.unsubscribe(sub.subscription_id)
    broker.publish(make_blog_article(docid="b2", timestamp=2.0))
    assert sub.num_results == 0


def test_broker_duplicate_subscription_id_rejected():
    broker = Broker()
    broker.subscribe(CROSS_POST, subscription_id="dup")
    with pytest.raises(ValueError):
        broker.subscribe(CROSS_POST, subscription_id="dup")


def test_broker_results_collected_without_callback():
    broker = Broker()
    sub = broker.subscribe(CROSS_POST)
    broker.publish(make_blog_article(docid="b1", timestamp=1.0))
    broker.publish(make_blog_article(docid="b2", timestamp=2.0))
    assert sub.num_results == 1
    assert sub.results[0].match.lhs_docid == "b1"


def test_broker_publish_stream_and_stats():
    broker = Broker(stream_history=5)
    broker.subscribe(CROSS_POST)
    broker.publish_stream(
        [make_blog_article(docid=f"b{i}", timestamp=float(i + 1)) for i in range(3)]
    )
    stats = broker.stats()
    assert stats["engine"] == "mmqjp"
    assert stats["streams"] == {"S": 3}
    assert stats["num_subscriptions"] == 1
    assert stats["engine_stats"]["num_matches"] == 3


def test_broker_publish_text_with_timestamp_and_stream():
    broker = Broker()
    broker.subscribe(CROSS_POST)
    broker.publish("<blog><author>A</author><title>T</title></blog>", timestamp=1.0)
    deliveries = broker.publish(
        "<blog><author>A</author><title>T</title></blog>", timestamp=2.0
    )
    assert len(deliveries) == 1
    assert "S" in broker.streams.names()


def test_broker_subscription_lookup():
    broker = Broker()
    sub = broker.subscribe(CROSS_POST)
    assert broker.subscription(sub.subscription_id) is sub
    assert broker.subscriptions == [sub]


def test_broker_stats_aggregates_per_stream_counts():
    broker = Broker()
    broker.subscribe(CROSS_POST)
    broker.publish(make_blog_article(docid="b1", timestamp=1.0), stream="blogs")
    broker.publish(make_book_announcement(docid="k1", timestamp=2.0), stream="books")
    broker.publish(make_blog_article(docid="b2", timestamp=3.0), stream="blogs")
    stats = broker.stats()
    assert stats["streams"] == {"blogs": 2, "books": 1}
    assert stats["num_documents_published"] == 3
    assert stats["engine_stats"]["num_documents_processed"] == 3


def test_broker_publish_many_matches_publish_loop():
    batched = Broker()
    looped = Broker()
    batched.subscribe(CROSS_POST)
    looped.subscribe(CROSS_POST)
    documents = [make_blog_article(docid=f"b{i}", timestamp=float(i + 1)) for i in range(3)]
    many = [r.match.key() for r in batched.publish_many(documents)]
    copies = [make_blog_article(docid=f"b{i}", timestamp=float(i + 1)) for i in range(3)]
    one_by_one = [r.match.key() for d in copies for r in looped.publish(d)]
    assert many == one_by_one and len(many) == 3
