"""Unit tests for document schema descriptions."""

import pytest

from repro.xmlmodel.schema import (
    DocumentSchema,
    rss_item_schema,
    three_level_schema,
    two_level_schema,
)


def test_two_level_schema_shape():
    schema = two_level_schema(6)
    assert schema.levels == 2
    assert schema.num_leaves == 6
    assert schema.groups == ()
    assert schema.leaf_path(3) == ["item", "leaf3"]


def test_two_level_schema_requires_positive_leaves():
    with pytest.raises(ValueError):
        two_level_schema(0)


def test_three_level_schema_shape():
    schema = three_level_schema(branching=4)
    assert schema.levels == 3
    assert schema.num_leaves == 16
    assert len(schema.groups) == 4
    assert all(len(g) == 4 for g in schema.groups)


def test_three_level_group_of_leaf():
    schema = three_level_schema(branching=3)
    assert schema.group_of_leaf(0) == 0
    assert schema.group_of_leaf(8) == 2


def test_three_level_leaf_path():
    schema = three_level_schema(branching=2)
    assert schema.leaf_path(3) == ["record", "section1", "leaf1_1"]


def test_group_of_leaf_flat_is_minus_one():
    assert two_level_schema(3).group_of_leaf(1) == -1


def test_groups_must_partition_leaves():
    with pytest.raises(ValueError):
        DocumentSchema(
            root_tag="r",
            leaf_tags=("a", "b"),
            groups=((0,),),
            group_tags=("g",),
        )


def test_groups_and_tags_must_align():
    with pytest.raises(ValueError):
        DocumentSchema(
            root_tag="r",
            leaf_tags=("a",),
            groups=((0,),),
            group_tags=(),
        )


def test_rss_item_schema_has_five_leaves():
    schema = rss_item_schema()
    assert schema.num_leaves == 5
    assert "title" in schema.leaf_tags
    assert schema.levels == 2
