"""Lazy match materialization: suppressed subscriptions build no Match objects.

The broker installs a match filter on its engine so that rows whose
subscription is missing, cancelled or paused are dropped *before*
``_row_to_match`` runs — no Match object, no window check, no binding dicts.
These tests count actual ``_row_to_match`` invocations to prove the work is
skipped, and check that delivery contents and callback ordering are
unchanged for live subscriptions.
"""

from __future__ import annotations

import pytest

from repro import RuntimeConfig, open_broker
from repro.core.processor import MMQJPJoinProcessor, SequentialJoinProcessor
from repro.runtime import ShardedBroker
from tests.conftest import (
    PAPER_Q1,
    PAPER_WINDOWS,
    make_blog_article,
    make_book_announcement,
)


@pytest.fixture(params=["mmqjp", "sequential"])
def engine(request):
    return request.param


def _open(engine: str, **overrides):
    return open_broker(
        RuntimeConfig(engine=engine, construct_outputs=False, **overrides)
    )


def _count_materializations(monkeypatch):
    """Patch both processors' ``_row_to_match`` to count invocations."""
    counter = {"calls": 0}
    for cls in (MMQJPJoinProcessor, SequentialJoinProcessor):
        original = cls._row_to_match

        def counted(self, *args, _original=original, **kwargs):
            counter["calls"] += 1
            return _original(self, *args, **kwargs)

        monkeypatch.setattr(cls, "_row_to_match", counted)
    return counter


def _paper_pair():
    return [make_book_announcement("d1", 1.0), make_blog_article("d2", 2.0)]


def test_live_subscription_materializes_matches(monkeypatch, engine):
    counter = _count_materializations(monkeypatch)
    broker = _open(engine)
    try:
        broker.subscribe(PAPER_Q1, window_symbols=PAPER_WINDOWS)
        deliveries = broker.publish_many(_paper_pair())
        assert any(d.match is not None for d in deliveries)
        assert counter["calls"] > 0
    finally:
        broker.close()


def test_paused_subscription_builds_no_match_objects(monkeypatch, engine):
    counter = _count_materializations(monkeypatch)
    broker = _open(engine)
    try:
        sub = broker.subscribe(PAPER_Q1, window_symbols=PAPER_WINDOWS)
        sub.pause()
        deliveries = broker.publish_many(_paper_pair())
        assert all(d.match is None for d in deliveries)
        assert counter["calls"] == 0  # suppressed before materialization
    finally:
        broker.close()


def test_cancelled_subscription_builds_no_match_objects(monkeypatch, engine):
    counter = _count_materializations(monkeypatch)
    broker = _open(engine)
    try:
        sub = broker.subscribe(PAPER_Q1, window_symbols=PAPER_WINDOWS)
        broker.unsubscribe(sub.subscription_id)
        broker.publish_many(_paper_pair())
        assert counter["calls"] == 0
    finally:
        broker.close()


def test_resume_restores_materialization(monkeypatch, engine):
    counter = _count_materializations(monkeypatch)
    broker = _open(engine)
    try:
        sub = broker.subscribe(PAPER_Q1, window_symbols=PAPER_WINDOWS)
        sub.pause()
        broker.publish(make_book_announcement("d1", 1.0))
        assert counter["calls"] == 0
        sub.resume()
        deliveries = broker.publish(make_blog_article("d2", 2.0))
        assert any(d.match is not None for d in deliveries)
        assert counter["calls"] > 0
    finally:
        broker.close()


def test_suppressed_rows_leave_other_callbacks_unchanged(engine):
    """Pausing one subscription must not perturb another's delivery order."""
    def run(pause_other: bool) -> list[tuple[str, str]]:
        broker = _open(engine)
        try:
            seen: list[tuple[str, str]] = []
            broker.subscribe(
                PAPER_Q1,
                subscription_id="live",
                window_symbols=PAPER_WINDOWS,
                callback=lambda d: seen.append(("live", d.match.key())),
            )
            other = broker.subscribe(
                PAPER_Q1,
                subscription_id="other",
                window_symbols=PAPER_WINDOWS,
                callback=lambda d: seen.append(("other", d.match.key())),
            )
            if pause_other:
                other.pause()
            broker.publish_many(
                _paper_pair()
                + [make_book_announcement("d3", 3.0), make_blog_article("d4", 4.0)]
            )
            return seen
        finally:
            broker.close()

    baseline = run(pause_other=False)
    suppressed = run(pause_other=True)
    assert [entry for entry in baseline if entry[0] == "live"] == suppressed
    assert all(entry[0] == "live" for entry in suppressed)


def test_match_counts_exclude_suppressed_matches(engine):
    """num_matches reflects materialized matches only (documented behavior)."""
    live = _open(engine)
    paused = _open(engine)
    try:
        live.subscribe(PAPER_Q1, window_symbols=PAPER_WINDOWS)
        sub = paused.subscribe(PAPER_Q1, window_symbols=PAPER_WINDOWS)
        sub.pause()
        docs = _paper_pair()
        n_live = sum(
            1 for d in live.publish_many(list(docs)) if d.match is not None
        )
        n_paused = sum(
            1 for d in paused.publish_many(list(docs)) if d.match is not None
        )
        assert n_live > 0 and n_paused == 0
    finally:
        live.close()
        paused.close()


def test_sharded_broker_installs_no_filter(monkeypatch):
    """Shard workers deliver to the coordinator, which filters post-hoc;
    their engines keep building Match objects (no broker-side filter)."""
    counter = _count_materializations(monkeypatch)
    broker = ShardedBroker(
        RuntimeConfig(shards=2, construct_outputs=False)
    )
    try:
        sub = broker.subscribe(PAPER_Q1, window_symbols=PAPER_WINDOWS)
        sub.pause()
        deliveries = broker.publish_many(_paper_pair())
        assert all(d.match is None for d in deliveries)
        assert counter["calls"] > 0  # still materialized inside the shards
    finally:
        broker.close()
