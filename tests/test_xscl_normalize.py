"""Unit tests for XSCL normalization (canonical names, value-join normal form)."""

import pytest

from repro.xscl import (
    VariableCatalog,
    XsclSemanticsError,
    canonicalize_query,
    check_value_join_normal_form,
    parse_query,
)
from repro.xscl.normalize import to_value_join_normal_form


def _q(text: str):
    return parse_query(text)


def test_catalog_assigns_first_name_as_canonical():
    catalog = VariableCatalog()
    name1 = catalog.canonical_name(("S", "//book//author"), "x2")
    name2 = catalog.canonical_name(("S", "//book//author"), "zz")
    assert name1 == name2 == "x2"
    assert catalog.definition_of("x2") == ("S", "//book//author")


def test_catalog_disambiguates_name_collisions():
    catalog = VariableCatalog()
    assert catalog.canonical_name(("S", "//a"), "x") == "x"
    other = catalog.canonical_name(("S", "//b"), "x")
    assert other != "x"
    assert catalog.definition_of(other) == ("S", "//b")


def test_canonicalize_merges_same_definitions_across_queries():
    catalog = VariableCatalog()
    q1 = canonicalize_query(
        _q("S//book->b[.//author->a1] FOLLOWED BY{a1=a2, 1} S//blog->g[.//author->a2]"),
        catalog,
    )
    q2 = canonicalize_query(
        _q("S//book->bb[.//author->other] FOLLOWED BY{other=a2, 1} S//blog->gg[.//author->a2]"),
        catalog,
    )
    # The second query's //book//author variable is renamed to the first's.
    assert q2.left.variables() == q1.left.variables() == ["b", "a1"]


def test_canonicalize_merges_same_definition_within_one_query():
    catalog = VariableCatalog()
    query = canonicalize_query(
        _q("S//blog->g1[.//author->a1] FOLLOWED BY{a1=a2, 1} S//blog->g2[.//author->a2]"),
        catalog,
    )
    # Both blocks bind //blog and //blog//author: same canonical names.
    assert query.left.variables() == query.right.variables()
    pred = query.join.predicates[0]
    assert pred.left_var == pred.right_var


def test_value_join_normal_form_accepts_valid_query():
    check_value_join_normal_form(
        _q("S//a->x[.//b->y] FOLLOWED BY{y=z, 1} S//c->w[.//d->z]")
    )


def test_value_join_normal_form_rejects_unbound_variable():
    with pytest.raises(XsclSemanticsError):
        check_value_join_normal_form(
            _q("S//a->x[.//b->y] FOLLOWED BY{y=nosuch, 1} S//c->w[.//d->z]")
        )


def test_value_join_normal_form_rejects_same_block_predicate():
    with pytest.raises(XsclSemanticsError):
        check_value_join_normal_form(
            _q("S//a->x[.//b->y][.//c->y2] FOLLOWED BY{y=y2, 1} S//d->w[.//e->z]")
        )


def test_reversed_predicate_is_swapped():
    query = to_value_join_normal_form(
        _q("S//a->x[.//b->y] FOLLOWED BY{z=y, 1} S//c->w[.//d->z]")
    )
    pred = query.join.predicates[0]
    assert (pred.left_var, pred.right_var) == ("y", "z")


def test_single_block_query_passes_through():
    catalog = VariableCatalog()
    query = canonicalize_query(_q("blog//entry->e"), catalog)
    assert not query.is_join_query


def test_canonicalize_is_idempotent():
    catalog = VariableCatalog()
    text = "S//a->x[.//b->y] FOLLOWED BY{y=z, 1} S//c->w[.//d->z]"
    once = canonicalize_query(_q(text), catalog)
    twice = canonicalize_query(once, catalog)
    assert once.left.variables() == twice.left.variables()
    assert once.right.variables() == twice.right.variables()
