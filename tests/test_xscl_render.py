"""Round-trip tests: AST -> text -> AST preserves query structure."""

import pytest

from repro.workloads.querygen import QueryWorkloadConfig, generate_queries
from repro.xmlmodel.schema import three_level_schema, two_level_schema
from repro.xscl import parse_query
from repro.xscl.render import render_block, render_query, render_window
from tests.conftest import PAPER_Q1, PAPER_Q2, PAPER_Q3, PAPER_WINDOWS


def _normalize(query):
    """A structural fingerprint of a query for round-trip comparison."""
    def block_fingerprint(block):
        pattern = block.pattern
        return (
            pattern.stream,
            tuple(sorted((v, str(pattern.absolute_path_of(v))) for v in pattern.variables())),
        )

    join = None
    if query.is_join_query:
        join = (
            query.join.operator,
            tuple((p.left_var, p.right_var) for p in query.join.predicates),
            query.join.window,
        )
    return (
        block_fingerprint(query.left),
        block_fingerprint(query.right) if query.right else None,
        join,
        query.publish,
    )


@pytest.mark.parametrize("text", [PAPER_Q1, PAPER_Q2, PAPER_Q3])
def test_paper_queries_roundtrip(text):
    original = parse_query(text, window_symbols=PAPER_WINDOWS)
    rendered = render_query(original)
    reparsed = parse_query(rendered)
    assert _normalize(reparsed) == _normalize(original)


def test_generated_queries_roundtrip_flat_and_complex():
    for schema in (two_level_schema(5), three_level_schema(3)):
        queries = generate_queries(QueryWorkloadConfig(schema=schema, num_queries=25, seed=31))
        for query in queries:
            reparsed = parse_query(render_query(query))
            assert _normalize(reparsed) == _normalize(query)


def test_render_block():
    block = parse_query("S//book->x1[.//author->x2]").left
    assert render_block(block) == "S//book->x1[.//author->x2]"


def test_render_window_formats():
    assert render_window(float("inf")) == "INF"
    assert render_window(10.0) == "10"
    assert render_window(2.5) == "2.5"


def test_render_single_block_query_with_publish():
    query = parse_query("SELECT * FROM blog//entry->e PUBLISH entries")
    rendered = render_query(query)
    reparsed = parse_query(rendered)
    assert reparsed.publish == "entries"
    assert not reparsed.is_join_query
