"""Unit tests for XML element nodes."""

import pytest

from repro.xmlmodel import XmlDocument, element
from repro.xmlmodel.node import XmlNode


@pytest.fixture
def tree() -> XmlDocument:
    root = element(
        "a",
        element("b", element("d", text="dd"), element("e", text="ee")),
        element("c", text="cc"),
    )
    return XmlDocument(root, docid="t")


def test_empty_tag_rejected():
    with pytest.raises(ValueError):
        XmlNode("")


def test_append_sets_parent():
    parent = XmlNode("p")
    child = parent.append(XmlNode("c"))
    assert child.parent is parent
    assert parent.children == [child]


def test_is_leaf(tree):
    assert not tree.root.is_leaf
    assert tree.node(2).is_leaf  # <d>


def test_preorder_ids_follow_document_order(tree):
    tags = [tree.node(i).tag for i in range(len(tree))]
    assert tags == ["a", "b", "d", "e", "c"]


def test_iter_preorder(tree):
    assert [n.tag for n in tree.root.iter_preorder()] == ["a", "b", "d", "e", "c"]


def test_iter_descendants_excludes_self(tree):
    assert [n.tag for n in tree.root.iter_descendants()] == ["b", "d", "e", "c"]


def test_iter_ancestors(tree):
    d = tree.node(2)
    assert [n.tag for n in d.iter_ancestors()] == ["b", "a"]


def test_descendant_checks_use_interval_labels(tree):
    a, b, d, c = tree.node(0), tree.node(1), tree.node(2), tree.node(4)
    assert d.is_descendant_of(a)
    assert d.is_descendant_of(b)
    assert not d.is_descendant_of(c)
    assert not a.is_descendant_of(d)
    assert a.is_ancestor_of(d)
    assert not d.is_descendant_of(d)


def test_descendant_check_without_ids_falls_back_to_parents():
    parent = XmlNode("p")
    child = parent.append(XmlNode("c"))
    assert child.is_descendant_of(parent)
    assert not parent.is_descendant_of(child)


def test_string_value_concatenates_descendant_text(tree):
    assert tree.root.string_value() == "ddeecc"
    assert tree.node(1).string_value() == "ddee"
    assert tree.node(4).string_value() == "cc"


def test_attributes():
    node = element("x", attributes={"id": "42"})
    assert node.attribute("id") == "42"
    assert node.attribute("missing") is None
    assert node.attribute("missing", "default") == "default"


def test_find_children_and_descendants(tree):
    assert [n.tag for n in tree.root.find_children("b")] == ["b"]
    assert [n.tag for n in tree.root.find_children("*")] == ["b", "c"]
    assert [n.tag for n in tree.root.find_descendants("e")] == ["e"]
    assert len(tree.root.find_descendants("*")) == 4


def test_repr_contains_tag_and_id(tree):
    assert "a" in repr(tree.root)
    assert "#0" in repr(tree.root)
