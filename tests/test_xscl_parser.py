"""Unit tests for the XSCL parser."""

import pytest

from repro.xscl import (
    INFINITE_WINDOW,
    JoinOperator,
    XsclSyntaxError,
    parse_block,
    parse_query,
)
from tests.conftest import PAPER_Q1, PAPER_Q3, PAPER_WINDOWS


def test_parse_block_binds_variables():
    block = parse_block("S//book->x1[.//author->x2][.//title->x3]")
    assert block.stream == "S"
    assert block.variables() == ["x1", "x2", "x3"]
    assert block.root_variable == "x1"
    assert str(block.pattern.absolute_path_of("x2")) == "//book//author"


def test_parse_block_without_bindings():
    block = parse_block("blogfeed//entry")
    assert block.stream == "blogfeed"
    assert block.variables() == []


def test_parse_block_nested_predicates():
    block = parse_block("S//record->r[.//section->s[.//leaf->l]]")
    assert block.variables() == ["r", "s", "l"]
    assert block.pattern.parent_of("l") == "s"
    assert block.pattern.parent_of("s") == "r"


def test_parse_block_path_continuation():
    block = parse_block("S//rss/channel//item->i[.//title->t]")
    assert block.variables() == ["i", "t"]
    assert str(block.pattern.absolute_path_of("i")) == "//rss/channel//item"


def test_parse_query_q1(paper_windows):
    query = parse_query(PAPER_Q1, window_symbols=paper_windows)
    assert query.is_join_query
    assert query.join.operator is JoinOperator.FOLLOWED_BY
    assert query.join.window == 10.0
    assert [str(p) for p in query.join.predicates] == ["x2=x5", "x3=x6"]
    assert query.left.variables() == ["x1", "x2", "x3"]
    assert query.right.variables() == ["x4", "x5", "x6"]


def test_parse_query_self_join(paper_windows):
    query = parse_query(PAPER_Q3, window_symbols=paper_windows)
    assert query.left.variables() == query.right.variables()


def test_parse_join_operator():
    query = parse_query(
        "S//a->x[.//b->y] JOIN{y=z, 5} S//c->w[.//d->z]"
    )
    assert query.join.operator is JoinOperator.JOIN
    assert query.join.window == 5.0


def test_parse_numeric_and_infinite_windows():
    q_num = parse_query("S//a->x[.//b->y] FOLLOWED BY{y=z, 3.5} S//c->w[.//d->z]")
    assert q_num.join.window == 3.5
    for token in ("INF", "INFINITY", "*"):
        q_inf = parse_query(f"S//a->x[.//b->y] FOLLOWED BY{{y=z, {token}}} S//c->w[.//d->z]")
        assert q_inf.join.window == INFINITE_WINDOW


def test_unknown_window_symbol_raises():
    with pytest.raises(XsclSyntaxError):
        parse_query("S//a->x[.//b->y] FOLLOWED BY{y=z, T9} S//c->w[.//d->z]")


def test_parse_select_from_publish():
    query = parse_query(
        "SELECT * FROM S//a->x[.//b->y] FOLLOWED BY{y=z, 1} S//c->w[.//d->z] PUBLISH joined"
    )
    assert query.select == "*"
    assert query.publish == "joined"


def test_parse_single_block_query():
    query = parse_query("SELECT * FROM blog//entry->e")
    assert not query.is_join_query
    assert query.left.stream == "blog"


def test_parse_bare_single_block_query():
    query = parse_query("blog//entry->e[.//title->t]")
    assert not query.is_join_query
    assert query.left.variables() == ["e", "t"]


def test_multiple_and_predicates():
    query = parse_query(
        "S//a->r[.//b->p][.//c->q][.//d->s] FOLLOWED BY{p=u AND q=v AND s=w, 2} "
        "S//e->r2[.//f->u][.//g->v][.//h->w]"
    )
    assert len(query.join.predicates) == 3


@pytest.mark.parametrize(
    "bad",
    [
        "",
        "S//a->x FOLLOWED BY{x=y} S//b->y",          # missing window
        "S//a->x FOLLOWED BY{x=y, 1 S//b->y",        # missing closing brace
        "S//a->x FOLLOWED {x=y, 1} S//b->y",         # FOLLOWED without BY
        "S//a->x[.//b->y FOLLOWED BY{y=z, 1} S//c->z",  # unclosed predicate
        "S//a->x[//b->y] FOLLOWED BY{y=z, 1} S//c->z",  # predicate must be relative
        "SELECT * S//a->x",                          # SELECT without FROM
        "S//a->x trailing",                          # trailing text
    ],
)
def test_syntax_errors(bad):
    with pytest.raises(XsclSyntaxError):
        parse_query(bad)


def test_query_text_preserved():
    query = parse_query("S//a->x[.//b->y] FOLLOWED BY{y=z, 1} S//c->w[.//d->z]", name="my-query")
    assert query.name == "my-query"
    assert "FOLLOWED BY" in query.text


def test_hyphenated_tag_names():
    block = parse_block("S//feed-item->i[.//channel-url->c]")
    assert block.variables() == ["i", "c"]
    assert str(block.pattern.absolute_path_of("c")) == "//feed-item//channel-url"
