"""Unit tests for join graphs."""

import pytest

from repro.templates import JoinGraph, Side
from repro.xscl import parse_query
from repro.xscl.errors import XsclSemanticsError
from tests.conftest import PAPER_Q1, PAPER_WINDOWS


@pytest.fixture
def q1_graph() -> JoinGraph:
    return JoinGraph.from_query(parse_query(PAPER_Q1, window_symbols=PAPER_WINDOWS))


def test_nodes_carry_side_and_variable(q1_graph):
    assert (Side.LEFT, "x1") in q1_graph.nodes
    assert (Side.RIGHT, "x5") in q1_graph.nodes
    assert len(q1_graph.nodes) == 6


def test_structural_edges_follow_pattern(q1_graph):
    assert ((Side.LEFT, "x1"), (Side.LEFT, "x2")) in q1_graph.structural_edges
    assert ((Side.RIGHT, "x4"), (Side.RIGHT, "x6")) in q1_graph.structural_edges
    assert len(q1_graph.structural_edges) == 4


def test_value_edges_oriented_left_to_right(q1_graph):
    assert ((Side.LEFT, "x2"), (Side.RIGHT, "x5")) in q1_graph.value_edges
    assert ((Side.LEFT, "x3"), (Side.RIGHT, "x6")) in q1_graph.value_edges
    assert q1_graph.num_value_joins == 2


def test_value_join_participants(q1_graph):
    assert set(q1_graph.value_join_participants(Side.LEFT)) == {(Side.LEFT, "x2"), (Side.LEFT, "x3")}
    assert set(q1_graph.value_join_participants(Side.RIGHT)) == {(Side.RIGHT, "x5"), (Side.RIGHT, "x6")}


def test_depth_and_ancestors(q1_graph):
    assert q1_graph.depth((Side.LEFT, "x1")) == 0
    assert q1_graph.depth((Side.LEFT, "x2")) == 1
    assert list(q1_graph.ancestors((Side.LEFT, "x2"))) == [(Side.LEFT, "x1")]


def test_lca_same_side(q1_graph):
    assert q1_graph.lca((Side.LEFT, "x2"), (Side.LEFT, "x3")) == (Side.LEFT, "x1")
    assert q1_graph.lca((Side.LEFT, "x2"), (Side.LEFT, "x2")) == (Side.LEFT, "x2")


def test_lca_across_sides_is_none(q1_graph):
    assert q1_graph.lca((Side.LEFT, "x2"), (Side.RIGHT, "x5")) is None


def test_deep_pattern_depths():
    query = parse_query(
        "S//r->a[.//m->b[.//leaf->c]] FOLLOWED BY{c=z, 1} S//r2->w[.//leaf2->z]"
    )
    graph = JoinGraph.from_query(query)
    assert graph.depth((Side.LEFT, "c")) == 2
    assert list(graph.ancestors((Side.LEFT, "c"))) == [(Side.LEFT, "b"), (Side.LEFT, "a")]


def test_single_block_query_rejected():
    with pytest.raises(XsclSemanticsError):
        JoinGraph.from_query(parse_query("blog//entry->e"))


def test_self_join_nodes_distinguished_by_side():
    query = parse_query(
        "S//blog->g[.//author->a] FOLLOWED BY{a=a, 1} S//blog->g[.//author->a]"
    )
    graph = JoinGraph.from_query(query)
    assert (Side.LEFT, "a") in graph.nodes
    assert (Side.RIGHT, "a") in graph.nodes
    assert len(graph.nodes) == 4
