"""Property tests for the streaming ingest fast path.

Three equivalences pin the fast path to the tree-building baseline:

* the streaming scanner produces the exact same indexed node tree as the
  recursive-descent reference parser, over hypothesis-generated documents
  with attributes, entities, comments, PIs and CDATA sections;
* malformed input fails identically — same :class:`XmlParseError`
  message from either parser;
* a broker in ``ingest="stream"`` throughput mode delivers the exact
  same match sets as an ``ingest="tree"`` broker, for ``publish`` and
  ``publish_many`` alike.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import RuntimeConfig
from repro.config import resolve_ingest
from repro.pubsub.broker import Broker
from repro.xmlmodel import XmlDocument, to_xml
from repro.xmlmodel.parser import XmlParseError, _parse_node_reference
from repro.xmlmodel.stream import parse_node_streaming

from tests.conftest import (
    PAPER_Q1,
    PAPER_Q2,
    make_blog_article,
    make_book_announcement,
)

@pytest.fixture(autouse=True)
def _no_ingest_override(monkeypatch):
    """These tests pin config-level ingest semantics; a suite-wide
    REPRO_INGEST replay (the ingest-stream CI job) must not leak in."""
    monkeypatch.delenv("REPRO_INGEST", raising=False)


# --------------------------------------------------------------------- #
# document generator
# --------------------------------------------------------------------- #

_tag = st.sampled_from(["a", "b", "item", "x-y", "ns_1"])
_attr_key = st.sampled_from(["id", "lang", "data-k"])
# Text fragments mix plain runs with every escapable character and the
# historically buggy nested-escape sequence (&amp;quot; must stay "&quot;").
_text = st.sampled_from(
    ["plain", "a & b", "<", ">", '"q"', "'a'", "&quot;", "  pad  ", "1 < 2 > 0"]
)
# Miscellaneous constructs legal inside element content (processing
# instructions are prolog-only for both parsers).
_misc = st.sampled_from(["", "<!-- a comment -->", "<![CDATA[raw <&> text]]>"])
_prolog = st.sampled_from(
    ["", '<?xml version="1.0"?>', "<!-- lead -->", "<?pi data?>", "<!DOCTYPE a>"]
)


def _escape(text: str) -> str:
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


@st.composite
def xml_text(draw, depth: int = 0) -> str:
    tag = draw(_tag)
    attrs = draw(st.dictionaries(_attr_key, _text, max_size=2))
    rendered_attrs = "".join(
        f' {k}="{_escape(v).replace(chr(34), "&quot;")}"' for k, v in attrs.items()
    )
    if draw(st.booleans()) and depth > 0:
        return f"<{tag}{rendered_attrs}/>"
    children = (
        []
        if depth >= 2
        else draw(st.lists(xml_text(depth=depth + 1), max_size=3))
    )
    body = draw(_misc) + _escape(draw(_text)) + "".join(children) + draw(_misc)
    element = f"<{tag}{rendered_attrs}>{body}</{tag}>"
    if depth == 0:
        element = draw(_prolog) + element + draw(st.sampled_from(["", "<!-- tail -->"]))
    return element


def _assert_same_tree(left, right) -> None:
    assert left.tag == right.tag
    assert left.text == right.text
    assert left.attributes == right.attributes
    assert (left.node_id, left.post_id, left.depth) == (
        right.node_id,
        right.post_id,
        right.depth,
    )
    assert len(left.children) == len(right.children)
    for a, b in zip(left.children, right.children):
        _assert_same_tree(a, b)


# --------------------------------------------------------------------- #
# parse equivalence
# --------------------------------------------------------------------- #


@settings(max_examples=200, deadline=None)
@given(text=xml_text())
def test_streaming_parse_matches_reference(text):
    # Wrapping the reference root in an XmlDocument assigns pre/post ids,
    # so the comparison also pins the scanner's inline id assignment.
    _assert_same_tree(
        parse_node_streaming(text), XmlDocument(_parse_node_reference(text)).root
    )


@settings(max_examples=200, deadline=None)
@given(text=xml_text(), cut=st.data())
def test_malformed_input_error_parity(text, cut):
    # Corrupt a valid document by truncation or single-character deletion;
    # both parsers must agree on accept/reject and on the exact message.
    i = cut.draw(st.integers(min_value=0, max_value=len(text) - 1))
    mutated = cut.draw(st.sampled_from([text[:i], text[:i] + text[i + 1 :]]))

    def outcome(parse):
        try:
            parse(mutated)
            return ("accepted", None)
        except XmlParseError as exc:
            return ("rejected", str(exc))

    assert outcome(parse_node_streaming) == outcome(_parse_node_reference)


@pytest.mark.parametrize(
    "bad",
    ["", "<a><b></a>", "<a>", "<a></b>", "<a></a><b></b>", "<a attr=1></a>", "plain"],
)
def test_malformed_classics_rejected_identically(bad):
    with pytest.raises(XmlParseError) as stream_err:
        parse_node_streaming(bad)
    with pytest.raises(XmlParseError) as ref_err:
        _parse_node_reference(bad)
    assert str(stream_err.value) == str(ref_err.value)


# --------------------------------------------------------------------- #
# broker match equivalence
# --------------------------------------------------------------------- #

_AUTHORS = ["Danny Ayers", "Andrew Watt", "Grace Hopper"]
_TITLES = ["Beginning RSS and Atom Programming", "Streams & Joins"]


def _throughput_config(ingest: str) -> RuntimeConfig:
    return RuntimeConfig(
        ingest=ingest, store_documents=False, construct_outputs=False
    )


def _match_keys(deliveries):
    keys = []
    for result in deliveries:
        match = result.match
        keys.append(
            (
                result.subscription_id,
                match.lhs_timestamp,
                match.rhs_timestamp,
                tuple(sorted(match.lhs_bindings.items())),
                tuple(sorted(match.rhs_bindings.items())),
            )
        )
    return sorted(keys)


def _workload(specs):
    docs = []
    for i, (is_book, author, title) in enumerate(specs):
        if is_book:
            doc = make_book_announcement(docid=f"d{i}", timestamp=float(i + 1))
        else:
            doc = make_blog_article(
                docid=f"d{i}",
                timestamp=float(i + 1),
                author=_AUTHORS[author],
                title=_TITLES[title],
            )
        docs.append((to_xml(doc, pretty=False), doc.timestamp))
    return docs


doc_specs = st.lists(
    st.tuples(
        st.booleans(),
        st.integers(min_value=0, max_value=len(_AUTHORS) - 1),
        st.integers(min_value=0, max_value=len(_TITLES) - 1),
    ),
    min_size=2,
    max_size=8,
)


@settings(max_examples=25, deadline=None)
@given(specs=doc_specs)
def test_stream_broker_matches_tree_broker(specs):
    workload = _workload(specs)
    keys = {}
    for ingest in ("stream", "tree"):
        broker = Broker(_throughput_config(ingest))
        broker.subscribe(PAPER_Q1.replace("T1", "100"))
        broker.subscribe(PAPER_Q2.replace("T2", "100"))
        deliveries = []
        for text, timestamp in workload:
            deliveries.extend(broker.publish(text, timestamp=timestamp))
        keys[ingest] = _match_keys(deliveries)
    assert keys["stream"] == keys["tree"]


@settings(max_examples=15, deadline=None)
@given(specs=doc_specs)
def test_stream_broker_publish_many_matches_tree(specs):
    workload = [text for text, _ in _workload(specs)]
    keys = {}
    for ingest in ("stream", "tree"):
        broker = Broker(_throughput_config(ingest))
        broker.subscribe(PAPER_Q1.replace("T1", "100"))
        keys[ingest] = _match_keys(broker.publish_many(workload))
    assert keys["stream"] == keys["tree"]


def test_join_fires_on_stream_fast_path():
    broker = Broker(_throughput_config("stream"))
    sub = broker.subscribe(PAPER_Q1.replace("T1", "100"))
    book = to_xml(make_book_announcement(), pretty=False)
    blog = to_xml(make_blog_article(), pretty=False)
    assert broker.publish(book, timestamp=1.0) == []
    deliveries = broker.publish(blog, timestamp=2.0)
    assert len(deliveries) == 1
    assert deliveries[0].subscription_id == sub.subscription_id


# --------------------------------------------------------------------- #
# knob plumbing and eligibility
# --------------------------------------------------------------------- #


def test_fast_path_skips_tree_construction(monkeypatch):
    # Neither the broker's nor the engine's parse_document may run on the
    # fast path: poisoning both proves no intermediate tree is ever built.
    def boom(*args, **kwargs):
        raise AssertionError("tree parser called on the streaming fast path")

    monkeypatch.setattr("repro.pubsub.broker.parse_document", boom)
    monkeypatch.setattr("repro.core.engine.parse_document", boom)
    broker = Broker(_throughput_config("stream"))
    broker.subscribe(PAPER_Q1.replace("T1", "100"))
    broker.publish(to_xml(make_book_announcement(), pretty=False), timestamp=1.0)
    deliveries = broker.publish(
        to_xml(make_blog_article(), pretty=False), timestamp=2.0
    )
    assert len(deliveries) == 1


def test_default_broker_keeps_tree_path():
    # The default config stores documents, so the fast path must not engage
    # even with ingest="stream" — outputs need the stored trees.
    broker = Broker()
    assert not broker._text_fast_path()
    broker.subscribe(PAPER_Q1.replace("T1", "100"))
    broker.publish(to_xml(make_book_announcement(), pretty=False), timestamp=1.0)
    deliveries = broker.publish(
        to_xml(make_blog_article(), pretty=False), timestamp=2.0
    )
    assert len(deliveries) == 1
    assert deliveries[0].output is not None


@pytest.mark.parametrize(
    "changes",
    [
        {"ingest": "tree"},
        {"stream_history": 4},
    ],
)
def test_fast_path_eligibility_fallbacks(changes):
    config = _throughput_config("stream").replace(**changes)
    broker = Broker(config)
    assert not broker._text_fast_path()
    broker.subscribe(PAPER_Q1.replace("T1", "100"))
    broker.publish(to_xml(make_book_announcement(), pretty=False), timestamp=1.0)
    assert len(broker.publish(to_xml(make_blog_article(), pretty=False), 2.0)) == 1


def test_filter_subscription_disables_fast_path():
    broker = Broker(_throughput_config("stream"))
    assert broker._text_fast_path()
    broker.subscribe("S//book->b")
    assert not broker._text_fast_path()
    # Filter delivery still works on the tree path.
    deliveries = broker.publish(to_xml(make_book_announcement(), pretty=False))
    assert len(deliveries) == 1
    assert deliveries[0].document is not None


def test_repro_ingest_overrides_config(monkeypatch):
    monkeypatch.setenv("REPRO_INGEST", "tree")
    assert resolve_ingest(RuntimeConfig(ingest="stream")) == "tree"
    assert not Broker(_throughput_config("stream"))._text_fast_path()
    monkeypatch.setenv("REPRO_INGEST", "stream")
    assert resolve_ingest(RuntimeConfig(ingest="tree")) == "stream"
    assert Broker(_throughput_config("tree"))._text_fast_path()
    monkeypatch.setenv("REPRO_INGEST", "turbo")
    with pytest.raises(ValueError, match="REPRO_INGEST"):
        resolve_ingest(RuntimeConfig())


def test_ablation_preset_pins_tree_ingest():
    assert RuntimeConfig.ablation().ingest == "tree"
    assert RuntimeConfig().ingest == "stream"


def test_timestamp_semantics_match_tree_path():
    # Explicit stamps, the 0.0 auto-stamp asymmetry and default auto
    # timestamps must all agree between the two ingest paths.
    for stamps in ([0.0, 0.0], [7.5, 9.25], [None, None]):
        keys = {}
        for ingest in ("stream", "tree"):
            broker = Broker(_throughput_config(ingest))
            broker.subscribe(PAPER_Q1.replace("T1", "100"))
            deliveries = []
            docs = [make_book_announcement(), make_blog_article()]
            for doc, ts in zip(docs, stamps):
                deliveries.extend(
                    broker.publish(to_xml(doc, pretty=False), timestamp=ts)
                )
            keys[ingest] = _match_keys(deliveries)
        assert keys["stream"] == keys["tree"], stamps
