"""Unit tests for variable tree patterns."""

import pytest

from repro.xpath import PatternNode, VariableTreePattern, parse_path
from repro.xpath.pattern import simple_pattern


@pytest.fixture
def book_pattern() -> VariableTreePattern:
    """The pattern of Q1's left block: //book->x1[.//author->x2][.//title->x3]."""
    return simple_pattern("S", "x1", "//book", {"x2": ".//author", "x3": ".//title"})


def test_variables_in_pattern_order(book_pattern):
    assert book_pattern.variables() == ["x1", "x2", "x3"]


def test_node_of(book_pattern):
    assert str(book_pattern.node_of("x2").path) == ".//author"
    with pytest.raises(KeyError):
        book_pattern.node_of("unknown")


def test_parent_of(book_pattern):
    assert book_pattern.parent_of("x2") == "x1"
    assert book_pattern.parent_of("x1") is None


def test_parent_of_skips_anonymous_nodes():
    root = PatternNode("r", parse_path("//a"))
    anon = root.add_child(PatternNode(None, parse_path(".//b")))
    anon.add_child(PatternNode("x", parse_path(".//c")))
    pattern = VariableTreePattern(root=root)
    assert pattern.parent_of("x") == "r"


def test_absolute_path_of(book_pattern):
    assert str(book_pattern.absolute_path_of("x1")) == "//book"
    assert str(book_pattern.absolute_path_of("x2")) == "//book//author"


def test_relative_path_between(book_pattern):
    assert str(book_pattern.relative_path_between("x1", "x3")) == ".//title"


def test_relative_path_between_spans_multiple_edges():
    root = PatternNode("r", parse_path("//a"))
    mid = root.add_child(PatternNode("m", parse_path(".//b")))
    mid.add_child(PatternNode("x", parse_path(".//c")))
    pattern = VariableTreePattern(root=root)
    assert str(pattern.relative_path_between("r", "x")) == ".//b//c"


def test_relative_path_between_non_ancestor_raises(book_pattern):
    with pytest.raises(ValueError):
        book_pattern.relative_path_between("x2", "x3")


def test_definition_key_includes_stream(book_pattern):
    assert book_pattern.definition_key("x2") == ("S", "//book//author")


def test_root_must_be_absolute():
    with pytest.raises(ValueError):
        VariableTreePattern(root=PatternNode("x", parse_path(".//a")))


def test_iter_nodes_depth_first(book_pattern):
    variables = [n.variable for n in book_pattern.iter_nodes()]
    assert variables == ["x1", "x2", "x3"]
