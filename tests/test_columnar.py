"""Columnar storage: the interned-id sidecar, vectorized kernels and knob.

Covers the :mod:`repro.relational.columnar` building blocks (dictionary,
sidecar sync, group index), the columnar fast paths in the operators and the
plan executor (always against their row-path results), and the ``columnar``
knob's route through the config, the processors, the engines and the
``REPRO_COLUMNAR`` environment override.
"""

from __future__ import annotations

import pytest

import repro.relational.columnar as columnar
from repro import RuntimeConfig, open_broker
from repro.core.engine import make_engine
from repro.core.processor import MMQJPJoinProcessor, SequentialJoinProcessor
from repro.relational.columnar import (
    ColumnStore,
    GroupIndex,
    ValueDictionary,
    distinct_ids,
    select_positions,
)
from repro.relational.conjunctive import ConjunctiveQuery, DeltaContext
from repro.relational.database import IndexedDatabase
from repro.relational.operators import column_value_set, semijoin_in
from repro.relational.plan import compile_plan
from repro.relational.relation import PartitionedRelation, Relation
from repro.relational.terms import Const, Var
from tests.conftest import (
    PAPER_Q1,
    PAPER_Q2,
    PAPER_Q3,
    PAPER_WINDOWS,
    make_blog_article,
    make_book_announcement,
)

numpy_only = pytest.mark.skipif(
    not columnar.HAVE_NUMPY, reason="numpy unavailable in this environment"
)


# --------------------------------------------------------------------------- #
# ValueDictionary
# --------------------------------------------------------------------------- #
def test_dictionary_interns_densely_and_stably():
    d = ValueDictionary()
    a = d.id_of("x")
    b = d.id_of(7)
    assert d.id_of("x") == a  # stable across calls
    assert (a, b) == (0, 1)  # dense, insertion-ordered
    assert d.value_of(a) == "x" and d.value_of(b) == 7
    assert len(d) == 2
    assert d.values[a] == "x"


def test_dictionary_get_id_handles_unseen_and_unhashable():
    d = ValueDictionary()
    d.id_of("x")
    assert d.get_id("x") == 0
    assert d.get_id("never-seen") is None
    assert d.get_id(["unhashable"]) is None


# --------------------------------------------------------------------------- #
# ColumnStore sync
# --------------------------------------------------------------------------- #
def _stored(relation: Relation, dictionary=None) -> ColumnStore:
    dictionary = dictionary if dictionary is not None else ValueDictionary()
    relation.enable_columnar(dictionary)
    store = relation.column_store()
    assert store is not None
    return store


def _decode(store: ColumnStore) -> list[tuple]:
    cols = [list(c) for c in store.columns()]
    value_of = store.dictionary.value_of
    return [
        tuple(value_of(int(cols[c][i])) for c in range(len(cols)))
        for i in range(len(store))
    ]


def test_store_mirrors_rows_and_appends_incrementally():
    rel = Relation(["a", "b"], rows=[(1, "x"), (2, "y")])
    store = _stored(rel)
    assert _decode(store) == [(1, "x"), (2, "y")]
    before = len(store.dictionary)
    rel.insert((1, "z"))
    store = rel.column_store()
    assert _decode(store) == [(1, "x"), (2, "y"), (1, "z")]
    # Only the appended suffix was interned (one new value).
    assert len(store.dictionary) == before + 1


def test_store_rebuilds_after_delete_and_clear():
    rel = Relation(["a"], rows=[(i,) for i in range(6)])
    store = _stored(rel)
    assert len(store) == 6
    rel.delete_rows(lambda row: row[0] % 2 == 0)
    store = rel.column_store()
    assert _decode(store) == [(1,), (3,), (5,)]
    rel.clear()
    store = rel.column_store()
    assert store is not None and len(store) == 0


def test_store_survives_retained_views_across_sync():
    # A caller that holds on to columns() across a mutation must not be able
    # to wedge the sidecar (numpy views pin the array buffers).
    rel = Relation(["a"], rows=[(1,), (2,)])
    store = _stored(rel)
    retained = store.columns()
    rel.insert((3,))
    store = rel.column_store()
    assert store is not None and not store.disabled
    assert _decode(store) == [(1,), (2,), (3,)]
    if columnar.HAVE_NUMPY:
        assert len(retained[0]) == 2  # the old view still sees the old prefix


def test_store_disables_on_unhashable_row_values():
    rel = Relation(["a"], rows=[(1,)])
    rel.enable_columnar(ValueDictionary())
    assert rel.column_store() is not None
    rel.insert(([1, 2],))  # lists cannot be interned
    assert rel.column_store() is None


def test_frozen_store_disables_when_its_relation_mutates():
    dictionary = ValueDictionary()
    ids = [dictionary.id_of(v) for v in ("x", "y")]
    derived = Relation(["a"], rows=[("x",), ("y",)])
    derived._attach_store(
        ColumnStore.from_columns(
            [columnar.array("q", ids)], dictionary, derived._stamp()
        )
    )
    assert derived.column_store() is not None
    derived.insert(("z",))
    assert derived.column_store() is None


def test_enable_columnar_rehomes_on_new_dictionary():
    rel = Relation(["a"], rows=[("x",)])
    first = ValueDictionary()
    rel.enable_columnar(first)
    assert rel.column_store().dictionary is first
    second = ValueDictionary()
    rel.enable_columnar(second)
    assert rel.column_store().dictionary is second
    rel.enable_columnar(second)  # idempotent per dictionary
    assert rel.column_store().dictionary is second


def test_partitioned_relation_store_tracks_drops():
    rel = PartitionedRelation(
        ["docid", "v"], rows=[("d1", "x"), ("d1", "y"), ("d2", "z")]
    )
    store = _stored(rel)
    assert len(store) == 3
    rel.drop_partitions(["d1"])
    store = rel.column_store()
    assert _decode(store) == [("d2", "z")]


# --------------------------------------------------------------------------- #
# selection kernels (both modes)
# --------------------------------------------------------------------------- #
def test_select_positions_and_distinct_ids_match_bruteforce():
    rel = Relation(
        ["a", "b"], rows=[(i % 4, f"v{i % 3}") for i in range(40)]
    )
    d = ValueDictionary()
    store = _stored(rel, d)
    dom_a = frozenset({d.id_of(1), d.id_of(3)})
    dom_b = frozenset({d.id_of("v0")})
    got = list(
        select_positions(
            store.columns(), len(store), [(0, dom_a), (1, dom_b)]
        )
    )
    expected = [
        i
        for i, row in enumerate(rel.rows)
        if row[0] in (1, 3) and row[1] == "v0"
    ]
    assert [int(p) for p in got] == expected
    ids = distinct_ids(store.columns()[0])
    assert {d.value_of(i) for i in ids} == {0, 1, 2, 3}


def test_kernels_pure_array_fallback(monkeypatch):
    monkeypatch.setattr(columnar, "_np", None)
    rel = Relation(["a"], rows=[(i % 5,) for i in range(20)])
    d = ValueDictionary()
    store = _stored(rel, d)
    cols = store.columns()
    assert isinstance(cols[0], columnar.array)
    dom = frozenset({d.id_of(2), d.id_of(4)})
    got = select_positions(cols, len(store), [(0, dom)])
    assert list(got) == [i for i, row in enumerate(rel.rows) if row[0] in (2, 4)]
    assert {d.value_of(i) for i in distinct_ids(cols[0], got)} == {2, 4}
    assert store.group((0,)) is None  # vectorized joins report unavailable
    assert store.probe((0,), [None]) is None


# --------------------------------------------------------------------------- #
# GroupIndex
# --------------------------------------------------------------------------- #
@numpy_only
def test_group_probe_matches_bucket_semantics():
    np = columnar._np
    rel = Relation(
        ["a", "b", "c"],
        rows=[(i % 3, i % 2, i) for i in range(30)],
    )
    d = ValueDictionary()
    store = _stored(rel, d)
    probes = [(d.id_of(0), d.id_of(1)), (d.id_of(2), d.id_of(0)), (99, 0)]
    probe_cols = [
        np.array([p[0] for p in probes], dtype=np.int64),
        np.array([p[1] for p in probes], dtype=np.int64),
    ]
    probe_idx, row_pos = store.probe((0, 1), probe_cols)
    got = [(int(p), int(r)) for p, r in zip(probe_idx, row_pos)]
    expected = []
    for pi, (va, vb) in enumerate(probes):
        for ri, row in enumerate(rel.rows):
            if d.get_id(row[0]) == va and d.get_id(row[1]) == vb:
                expected.append((pi, ri))
    assert got == expected  # probe-major, original row order within a key


@numpy_only
def test_group_survives_appends_via_suffix_probe():
    np = columnar._np
    rel = Relation(["a"], rows=[(i % 4,) for i in range(16)])
    d = ValueDictionary()
    store = _stored(rel, d)
    gi = store.group((0,))
    assert gi is not None and gi.built_n == 16
    rel.insert((2,))
    rel.insert((9,))  # a brand-new value, id beyond the build-side base
    store = rel.column_store()
    assert store.group((0,)) is gi  # still the prefix index, not a rebuild
    probe = [np.array([d.id_of(2), d.id_of(9)], dtype=np.int64)]
    probe_idx, row_pos = store.probe((0,), probe)
    got = [(int(p), int(r)) for p, r in zip(probe_idx, row_pos)]
    expected = [(0, i) for i, row in enumerate(rel.rows) if row[0] == 2]
    expected += [(1, i) for i, row in enumerate(rel.rows) if row[0] == 9]
    assert sorted(got) == sorted(expected)
    assert got == sorted(got, key=lambda pr: (pr[0], pr[1]))


@numpy_only
def test_group_rebuilds_once_suffix_outgrows_prefix():
    rel = Relation(["a"], rows=[(i,) for i in range(8)])
    store = _stored(rel)
    gi = store.group((0,))
    assert gi.built_n == 8
    rel.insert_many([(i,) for i in range(200)])  # way past the 64-row floor
    store = rel.column_store()
    rebuilt = store.group((0,))
    assert rebuilt is not gi and rebuilt.built_n == 208


@numpy_only
def test_group_overflow_reports_unavailable():
    np = columnar._np
    rel = Relation(["a", "b"], rows=[(1, 2)])
    store = _stored(rel)
    huge = int(columnar._PACK_LIMIT)
    cols = [
        np.array([huge - 1], dtype=np.int64),
        np.array([huge - 1], dtype=np.int64),
    ]
    assert columnar._build_group(cols) is None


# --------------------------------------------------------------------------- #
# operator fast paths against the row path
# --------------------------------------------------------------------------- #
def _operator_relation() -> Relation:
    return Relation(
        ["a", "b"], rows=[(i % 5, f"v{i % 3}") for i in range(30)]
    )


def test_semijoin_in_columnar_matches_row_path():
    plain = _operator_relation()
    stored = _operator_relation()
    stored.enable_columnar(ValueDictionary())
    values = {1, 4, "unseen"}
    extra = ((1, frozenset({"v0", "v2"})),)
    assert (
        semijoin_in(stored, 0, values, extra=extra).rows
        == semijoin_in(plain, 0, values, extra=extra).rows
    )


def test_semijoin_in_unhashable_value_falls_back():
    stored = _operator_relation()
    stored.enable_columnar(ValueDictionary())
    out = semijoin_in(stored, 0, [1, [2]])  # unhashable member: row path
    assert out.rows == [row for row in stored.rows if row[0] == 1]


def test_column_value_set_columnar_matches_row_path():
    plain = _operator_relation()
    stored = _operator_relation()
    stored.enable_columnar(ValueDictionary())
    assert column_value_set(stored, 1) == column_value_set(plain, 1)
    assert column_value_set(stored, 1, ((0, 2),)) == column_value_set(
        plain, 1, ((0, 2),)
    )
    assert column_value_set(stored, 1, ((0, "nowhere"),)) == frozenset()


# --------------------------------------------------------------------------- #
# the vectorized plan executor
# --------------------------------------------------------------------------- #
def _plan_env(columnar_on: bool) -> IndexedDatabase:
    env = IndexedDatabase(indexing="eager", columnar=columnar_on)
    r = Relation(["a", "b"], rows=[(i % 4, i % 6) for i in range(24)])
    s = Relation(["b", "c"], rows=[(i % 6, f"c{i % 5}") for i in range(18)])
    t = Relation(["c", "k"], rows=[(f"c{i % 5}", "k") for i in range(10)])
    env.bind("R", r, indexed=True)
    env.bind("S", s, indexed=True)
    env.bind("T", t, indexed=True)
    return env


def _plan_query(distinct: bool) -> ConjunctiveQuery:
    cq = ConjunctiveQuery(
        head_name="out",
        head_schema=["a", "c"],
        head_terms=[Var("a"), Var("c")],
        distinct=distinct,
    )
    cq.add_atom("R", [Var("a"), Var("b")])
    cq.add_atom("S", [Var("b"), Var("c")])
    cq.add_atom("T", [Var("c"), Const("k")])
    return cq


@pytest.mark.parametrize("distinct", (False, True))
def test_plan_execute_columnar_equals_row_path(distinct):
    cq = _plan_query(distinct)
    row_env = _plan_env(False)
    col_env = _plan_env(True)
    expected = compile_plan(cq, row_env).execute(row_env)
    actual = compile_plan(cq, col_env).execute(col_env)
    assert actual == expected  # multiset equality
    assert actual.rows == expected.rows  # and identical row order


def test_plan_execute_columnar_unseen_constant_is_empty():
    col_env = _plan_env(True)
    cq = ConjunctiveQuery(
        head_name="out", head_schema=["a"], head_terms=[Var("a")]
    )
    cq.add_atom("R", [Var("a"), Const("never-inserted")])
    assert compile_plan(cq, col_env).execute(col_env).rows == []


# --------------------------------------------------------------------------- #
# DeltaContext id-space memoization
# --------------------------------------------------------------------------- #
def test_delta_context_separates_id_and_value_domains():
    rel = Relation(["a"], rows=[("x",), ("y",)])
    d = ValueDictionary()
    rel.enable_columnar(d)
    ctx = DeltaContext()
    values = ctx.column_values(rel, 0)
    ids = ctx.column_values(rel, 0, dictionary=d)
    assert values == frozenset({"x", "y"})
    assert ids == frozenset({d.get_id("x"), d.get_id("y")})
    # Memoized under distinct keys: asking again returns the same objects.
    assert ctx.column_values(rel, 0) is values
    assert ctx.column_values(rel, 0, dictionary=d) is ids


def test_delta_context_reduce_attaches_derived_store():
    rel = Relation(["a", "b"], rows=[(i % 4, i) for i in range(20)])
    d = ValueDictionary()
    rel.enable_columnar(d)
    assert rel.column_store() is not None
    ctx = DeltaContext()
    dom = frozenset({d.id_of(1), d.id_of(3)})
    out = ctx.reduce("rel", rel, (), ((0, dom),), dictionary=d)
    assert out.rows == [row for row in rel.rows if row[0] in (1, 3)]
    assert out.column_store() is not None  # derived sidecar, no re-interning
    # Equal constraints are shared (memoized by domain identity).
    again = ctx.reduce("rel", rel, (), ((0, dom),), dictionary=d)
    assert again is out


# --------------------------------------------------------------------------- #
# knob threading
# --------------------------------------------------------------------------- #
def test_config_columnar_knob_and_ablation():
    assert RuntimeConfig().columnar is True
    assert RuntimeConfig(columnar=False).columnar is False
    assert RuntimeConfig.ablation().columnar is False
    with pytest.raises(ValueError):
        RuntimeConfig(columnar="yes")


def test_processor_and_engine_thread_the_knob(monkeypatch):
    # Config-carried knobs have no explicitness bit, so REPRO_COLUMNAR=0
    # (tested separately) would downgrade them; pin the env here.
    monkeypatch.delenv("REPRO_COLUMNAR", raising=False)
    from repro.templates.registry import TemplateRegistry

    proc = MMQJPJoinProcessor(TemplateRegistry(), columnar=True)
    assert proc.columnar is True and proc.env.columnar is True
    proc_off = MMQJPJoinProcessor(TemplateRegistry(), columnar=False)
    assert proc_off.columnar is False and proc_off.env.columnar is False
    seq = SequentialJoinProcessor(config=RuntimeConfig(columnar=False))
    assert seq.columnar is False
    engine = make_engine(config=RuntimeConfig(columnar=True))
    assert engine.columnar is True
    engine.close()


def test_repro_columnar_env_downgrades_default_only(monkeypatch):
    from repro.templates.registry import TemplateRegistry

    monkeypatch.setenv("REPRO_COLUMNAR", "0")
    defaulted = MMQJPJoinProcessor(TemplateRegistry())
    assert defaulted.columnar is False  # default resolution downgraded
    explicit = MMQJPJoinProcessor(TemplateRegistry(), columnar=True)
    assert explicit.columnar is True  # explicit knob always wins
    monkeypatch.delenv("REPRO_COLUMNAR")
    assert MMQJPJoinProcessor(TemplateRegistry()).columnar is True


# --------------------------------------------------------------------------- #
# end-to-end equivalence
# --------------------------------------------------------------------------- #
def _broker_match_keys(config: RuntimeConfig) -> tuple[set, int]:
    broker = open_broker(config)
    try:
        for qid, text in (("Q1", PAPER_Q1), ("Q2", PAPER_Q2), ("Q3", PAPER_Q3)):
            broker.subscribe(
                text, subscription_id=qid, window_symbols=PAPER_WINDOWS
            )
        keys = set()
        documents = [
            make_book_announcement("d1", 1.0),
            make_blog_article("d2", 2.0),
            make_book_announcement("d3", 3.0),
            make_blog_article("d4", 4.0, author="Someone Else", title="Other"),
        ]
        for delivery in broker.publish_many(documents):
            if delivery.match is not None:
                keys.add(delivery.match.key())
        return keys, len(keys)
    finally:
        broker.close()


@pytest.mark.parametrize("engine", ("mmqjp", "sequential"))
def test_broker_matches_identical_columnar_on_off(engine):
    on, n_on = _broker_match_keys(
        RuntimeConfig(engine=engine, columnar=True, construct_outputs=False)
    )
    off, n_off = _broker_match_keys(
        RuntimeConfig(engine=engine, columnar=False, construct_outputs=False)
    )
    assert on == off and n_on > 0
