"""Unit tests for conjunctive-query evaluation."""

import pytest

from repro.relational import (
    Atom,
    ConjunctiveQuery,
    Const,
    Database,
    Relation,
    SchemaError,
    Var,
    evaluate_conjunctive,
)


@pytest.fixture
def graph_db() -> dict[str, Relation]:
    edges = Relation(["src", "dst"], rows=[(1, 2), (2, 3), (3, 4), (1, 3)], name="edge")
    labels = Relation(["node", "label"], rows=[(1, "a"), (2, "b"), (3, "b"), (4, "c")], name="label")
    return {"edge": edges, "label": labels}


def test_single_atom_query(graph_db):
    cq = ConjunctiveQuery("out", ["s", "d"], [Var("x"), Var("y")])
    cq.add_atom("edge", [Var("x"), Var("y")])
    result = evaluate_conjunctive(cq, graph_db)
    assert sorted(result.rows) == [(1, 2), (1, 3), (2, 3), (3, 4)]


def test_join_two_atoms(graph_db):
    """Two-hop paths: edge(x,y), edge(y,z)."""
    cq = ConjunctiveQuery("out", ["x", "z"], [Var("x"), Var("z")])
    cq.add_atom("edge", [Var("x"), Var("y")])
    cq.add_atom("edge", [Var("y"), Var("z")])
    result = evaluate_conjunctive(cq, graph_db)
    assert sorted(result.rows) == [(1, 3), (1, 4), (2, 4)]


def test_constant_filter(graph_db):
    cq = ConjunctiveQuery("out", ["n"], [Var("n")])
    cq.add_atom("label", [Var("n"), Const("b")])
    result = evaluate_conjunctive(cq, graph_db)
    assert sorted(result.rows) == [(2,), (3,)]


def test_repeated_variable_within_atom():
    loops = Relation(["a", "b"], rows=[(1, 1), (1, 2), (3, 3)], name="r")
    cq = ConjunctiveQuery("out", ["x"], [Var("x")])
    cq.add_atom("r", [Var("x"), Var("x")])
    result = evaluate_conjunctive(cq, {"r": loops})
    assert sorted(result.rows) == [(1,), (3,)]


def test_cross_atom_variable_sharing(graph_db):
    """Nodes with label 'b' that have an outgoing edge."""
    cq = ConjunctiveQuery("out", ["n", "to"], [Var("n"), Var("m")])
    cq.add_atom("label", [Var("n"), Const("b")])
    cq.add_atom("edge", [Var("n"), Var("m")])
    result = evaluate_conjunctive(cq, graph_db)
    assert sorted(result.rows) == [(2, 3), (3, 4)]


def test_constant_in_head(graph_db):
    cq = ConjunctiveQuery("out", ["tag", "n"], [Const("hit"), Var("n")])
    cq.add_atom("label", [Var("n"), Const("c")])
    result = evaluate_conjunctive(cq, graph_db)
    assert result.rows == [("hit", 4)]


def test_distinct_head_rows(graph_db):
    cq = ConjunctiveQuery("out", ["l"], [Var("l")])
    cq.add_atom("label", [Var("n"), Var("l")])
    result = evaluate_conjunctive(cq, graph_db)
    assert sorted(result.rows) == [("a",), ("b",), ("c",)]


def test_non_distinct_head_rows(graph_db):
    cq = ConjunctiveQuery("out", ["l"], [Var("l")], distinct=False)
    cq.add_atom("label", [Var("n"), Var("l")])
    result = evaluate_conjunctive(cq, graph_db)
    assert len(result) == 4


def test_empty_result_when_an_atom_is_empty(graph_db):
    graph_db["empty"] = Relation(["x"], name="empty")
    cq = ConjunctiveQuery("out", ["x"], [Var("x")])
    cq.add_atom("edge", [Var("x"), Var("y")])
    cq.add_atom("empty", [Var("x")])
    result = evaluate_conjunctive(cq, graph_db)
    assert len(result) == 0
    assert result.schema.attributes == ("x",)


def test_unbound_head_variable_raises(graph_db):
    cq = ConjunctiveQuery("out", ["z"], [Var("z")])
    cq.add_atom("edge", [Var("x"), Var("y")])
    with pytest.raises(SchemaError):
        evaluate_conjunctive(cq, graph_db)


def test_arity_mismatch_raises(graph_db):
    cq = ConjunctiveQuery("out", ["x"], [Var("x")])
    cq.add_atom("edge", [Var("x")])
    with pytest.raises(SchemaError):
        evaluate_conjunctive(cq, graph_db)


def test_unknown_relation_raises(graph_db):
    cq = ConjunctiveQuery("out", ["x"], [Var("x")])
    cq.add_atom("missing", [Var("x")])
    with pytest.raises((SchemaError, KeyError)):
        evaluate_conjunctive(cq, graph_db)


def test_given_order_matches_greedy(graph_db):
    cq = ConjunctiveQuery("out", ["x", "z"], [Var("x"), Var("z")])
    cq.add_atom("edge", [Var("x"), Var("y")])
    cq.add_atom("edge", [Var("y"), Var("z")])
    cq.add_atom("label", [Var("z"), Const("c")])
    greedy = evaluate_conjunctive(cq, graph_db, order="greedy")
    given = evaluate_conjunctive(cq, graph_db, order="given")
    assert sorted(greedy.rows) == sorted(given.rows)


def test_explicit_order(graph_db):
    cq = ConjunctiveQuery("out", ["x"], [Var("x")])
    a1 = cq.add_atom("edge", [Var("x"), Var("y")])
    a2 = cq.add_atom("label", [Var("y"), Const("b")])
    result = evaluate_conjunctive(cq, graph_db, order=[a2, a1])
    assert sorted(result.rows) == [(1,), (2,)]


def test_invalid_order_strategy(graph_db):
    cq = ConjunctiveQuery("out", ["x"], [Var("x")])
    cq.add_atom("label", [Var("x"), Var("y")])
    with pytest.raises(ValueError):
        evaluate_conjunctive(cq, graph_db, order="fastest")


def test_works_with_database_catalog(graph_db):
    db = Database()
    for name, rel in graph_db.items():
        db.create_or_replace(name, rel)
    cq = ConjunctiveQuery("out", ["x"], [Var("x")])
    cq.add_atom("label", [Var("x"), Const("a")])
    result = evaluate_conjunctive(cq, db)
    assert result.rows == [(1,)]


def test_head_arity_mismatch_rejected():
    with pytest.raises(SchemaError):
        ConjunctiveQuery("out", ["a", "b"], [Var("a")])


def test_cartesian_when_atoms_share_no_variables(graph_db):
    cq = ConjunctiveQuery("out", ["n", "m"], [Var("n"), Var("m")], distinct=False)
    cq.add_atom("label", [Var("n"), Const("a")])
    cq.add_atom("label", [Var("m"), Const("c")])
    result = evaluate_conjunctive(cq, graph_db)
    assert result.rows == [(1, 4)]


def test_atom_repr_and_variables():
    atom = Atom("r", [Var("x"), Const(5)])
    assert "r(" in repr(atom)
    assert [v.name for v in atom.variables] == ["x"]
