"""Unit tests for the workload generators (Zipf, synthetic, query gen, RSS)."""

import random

import pytest

from repro import RuntimeConfig, open_broker
from repro.workloads import (
    DblpWorkloadConfig,
    QueryWorkloadConfig,
    RssStreamConfig,
    ZipfSampler,
    build_document,
    build_technical_benchmark_data,
    generate_dblp_stream,
    generate_dblp_subscriptions,
    generate_queries,
    generate_rss_queries,
    generate_rss_stream,
    leaf_variable,
    root_variable,
)
from repro.workloads.synthetic import group_variable, leaf_value, node_ids
from repro.workloads.querygen import generate_query
from repro.xmlmodel.schema import three_level_schema, two_level_schema
from repro.xscl.parser import parse_query


# --------------------------------------------------------------------------- #
# Zipf sampler
# --------------------------------------------------------------------------- #
def test_zipf_values_in_range():
    sampler = ZipfSampler(6, 0.8, random.Random(1))
    values = sampler.sample_many(500)
    assert all(1 <= v <= 6 for v in values)


def test_zipf_zero_theta_is_roughly_uniform():
    sampler = ZipfSampler(4, 0.0, random.Random(2))
    assert sampler.probability(1) == pytest.approx(0.25)
    assert sampler.probability(4) == pytest.approx(0.25)


def test_zipf_skew_prefers_small_values():
    skewed = ZipfSampler(6, 1.6, random.Random(3))
    assert skewed.probability(1) > 3 * skewed.probability(6)
    counts = {k: 0 for k in range(1, 7)}
    for v in skewed.sample_many(2000):
        counts[v] += 1
    assert counts[1] > counts[6]


def test_zipf_probabilities_sum_to_one():
    sampler = ZipfSampler(5, 0.7)
    assert sum(sampler.probability(k) for k in range(1, 6)) == pytest.approx(1.0)
    assert sampler.probability(0) == 0.0
    assert sampler.probability(9) == 0.0


def test_zipf_invalid_parameters():
    with pytest.raises(ValueError):
        ZipfSampler(0, 0.5)
    with pytest.raises(ValueError):
        ZipfSampler(3, -0.1)


# --------------------------------------------------------------------------- #
# synthetic documents / witness relations
# --------------------------------------------------------------------------- #
def test_build_document_two_level():
    schema = two_level_schema(3)
    doc = build_document(schema, docid="d", timestamp=1.0)
    assert len(doc) == 4
    assert doc.node(1).string_value() == leaf_value(0)


def test_build_document_three_level():
    schema = three_level_schema(branching=2)
    doc = build_document(schema, docid="d", timestamp=1.0)
    # root + 2 groups + 4 leaves
    assert len(doc) == 7
    root_id, group_ids, leaf_ids = node_ids(schema)
    assert doc.node(group_ids[0]).tag == "section0"
    assert doc.node(leaf_ids[3]).string_value() == leaf_value(3)


def test_build_document_custom_values_validated():
    schema = two_level_schema(2)
    doc = build_document(schema, docid="d", timestamp=0.0, leaf_values=["a", "b"])
    assert doc.node(1).text == "a"
    with pytest.raises(ValueError):
        build_document(schema, docid="d", timestamp=0.0, leaf_values=["only-one"])


def test_node_ids_match_document_preorder():
    for schema in (two_level_schema(5), three_level_schema(3)):
        doc = build_document(schema, docid="d", timestamp=0.0)
        root_id, group_ids, leaf_ids = node_ids(schema)
        assert doc.node(root_id).tag == schema.root_tag
        for g, gid in enumerate(group_ids):
            assert doc.node(gid).tag == schema.group_tags[g]
        for i, lid in enumerate(leaf_ids):
            assert doc.node(lid).tag == schema.leaf_tags[i]


def test_technical_benchmark_data_shapes():
    schema = two_level_schema(6)
    data = build_technical_benchmark_data(schema)
    assert len(data.rbin_rows) == 6
    assert len(data.rdoc_rows) == 7
    assert len(data.rvar_rows) == 7
    assert len(data.witness.rbinw) == 6
    state = data.fresh_state()
    assert state.num_documents == 1
    assert state.timestamp_of("d1") == 1.0


def test_technical_benchmark_data_three_level_edges():
    schema = three_level_schema(branching=2)
    data = build_technical_benchmark_data(schema)
    root_var = root_variable(schema)
    # Edges: root->leaf (4), root->group (2), group->leaf (4).
    assert len(data.rbin_rows) == 10
    assert any(row[0] == root_var and row[1] == group_variable(schema, 0) for row in data.rbin_rows)


def test_leaf_values_shared_between_documents():
    schema = two_level_schema(4)
    data = build_technical_benchmark_data(schema)
    d1_values = {row[1] for row in data.rdoc_rows if str(row[1]).startswith("value_")}
    d2_values = {row[1] for row in data.witness.rdocw.rows if str(row[1]).startswith("value_")}
    assert d1_values == d2_values
    # Internal nodes never collide across documents.
    d1_internal = {row[1] for row in data.rdoc_rows} - d1_values
    d2_internal = {row[1] for row in data.witness.rdocw.rows} - d2_values
    assert d1_internal.isdisjoint(d2_internal)


# --------------------------------------------------------------------------- #
# query generation (Figure 17)
# --------------------------------------------------------------------------- #
def test_generate_query_structure_two_level():
    schema = two_level_schema(6)
    query = generate_query(schema, 3, random.Random(1))
    assert len(query.join.predicates) == 3
    assert query.left.root_variable == root_variable(schema)
    assert len(query.left.variables()) == 4  # root + 3 leaves


def test_generate_query_structure_three_level_binds_intermediates():
    schema = three_level_schema(branching=4)
    query = generate_query(schema, 4, random.Random(2))
    left_vars = query.left.variables()
    assert root_variable(schema) in left_vars
    assert any(v.startswith("v_section") for v in left_vars)
    assert sum(1 for v in left_vars if v.startswith("v_leaf")) == 4


def test_generate_query_rejects_bad_counts():
    schema = two_level_schema(3)
    with pytest.raises(ValueError):
        generate_query(schema, 0, random.Random(1))
    with pytest.raises(ValueError):
        generate_query(schema, 4, random.Random(1))


def test_generate_queries_reproducible_and_sized():
    schema = two_level_schema(6)
    config = QueryWorkloadConfig(schema=schema, num_queries=50, seed=99)
    first = generate_queries(config)
    second = generate_queries(config)
    assert len(first) == 50
    assert [len(q.join.predicates) for q in first] == [len(q.join.predicates) for q in second]


def test_workload_config_value_join_bounds():
    assert QueryWorkloadConfig(schema=two_level_schema(6)).resolved_max_value_joins() == 6
    assert QueryWorkloadConfig(schema=three_level_schema(4)).resolved_max_value_joins() == 4
    assert (
        QueryWorkloadConfig(schema=two_level_schema(6), max_value_joins=3).resolved_max_value_joins()
        == 3
    )


def test_generated_queries_use_canonical_variable_names():
    schema = two_level_schema(4)
    queries = generate_queries(QueryWorkloadConfig(schema=schema, num_queries=20, seed=1))
    for query in queries:
        for var in query.left.variables() + query.right.variables():
            assert var.startswith("v_")


# --------------------------------------------------------------------------- #
# RSS stream simulation
# --------------------------------------------------------------------------- #
def test_rss_stream_shape():
    config = RssStreamConfig(num_items=20, num_channels=3, seed=5)
    items = list(generate_rss_stream(config))
    assert len(items) == 20
    tags = [c.tag for c in items[0].root.children]
    assert tags == ["item_url", "channel_url", "title", "timestamp", "description"]
    timestamps = [d.timestamp for d in items]
    assert timestamps == sorted(timestamps)


def test_rss_stream_channel_reuse_and_unique_item_urls():
    config = RssStreamConfig(num_items=30, num_channels=3, seed=6)
    items = list(generate_rss_stream(config))
    channel_urls = [d.node(2).string_value() for d in items]
    item_urls = [d.node(1).string_value() for d in items]
    assert len(set(channel_urls)) <= 3
    assert len(set(item_urls)) == 30


def test_rss_stream_reproducible():
    config = RssStreamConfig(num_items=10, seed=7)
    a = [d.node(3).string_value() for d in generate_rss_stream(config)]
    b = [d.node(3).string_value() for d in generate_rss_stream(config)]
    assert a == b


def test_rss_queries_over_item_schema():
    queries = generate_rss_queries(15, seed=8)
    assert len(queries) == 15
    for query in queries:
        assert query.join.window == float("inf")
        assert query.left.root_variable == "v_item"


# --------------------------------------------------------------------------- #
# DBLP-style bibliography stream
# --------------------------------------------------------------------------- #
def test_dblp_stream_shape_and_venue_streams():
    config = DblpWorkloadConfig(num_venues=4, num_authors=30, seed=11)
    articles = list(generate_dblp_stream(config, 25))
    assert len(articles) == 25
    for article in articles:
        assert article.stream.startswith("venue")
        assert article.root.tag == "article"
        tags = [c.tag for c in article.root.children]
        assert tags[0] == "key" and "title" in tags and "venue" in tags
    streams = {article.stream for article in articles}
    assert streams <= {f"venue{i}" for i in range(4)}
    timestamps = [a.timestamp for a in articles]
    assert timestamps == sorted(timestamps)


def test_dblp_stream_reproducible_and_zipf_skewed():
    config = DblpWorkloadConfig(num_venues=10, num_authors=50, seed=12)
    a = [d.stream for d in generate_dblp_stream(config, 40)]
    b = [d.stream for d in generate_dblp_stream(config, 40)]
    assert a == b
    # Zipf reuse: the most popular venue sees a disproportionate share.
    assert max(a.count(s) for s in set(a)) >= 8


def test_dblp_subscriptions_cycle_shapes_and_parse():
    config = DblpWorkloadConfig(num_venues=5, seed=13)
    queries = list(generate_dblp_subscriptions(9, config))
    assert len(queries) == 9
    for text in queries:
        query = parse_query(text)
        assert query.is_join_query
    # Shape 2 (author+title tracker) carries two value joins.
    assert any("AND" in text for text in queries)


def test_dblp_subscriptions_share_few_templates():
    config = DblpWorkloadConfig(num_venues=6, seed=14)
    with open_broker(RuntimeConfig(construct_outputs=False)) as broker:
        for i, text in enumerate(generate_dblp_subscriptions(60, config)):
            broker.subscribe(text, subscription_id=f"q{i}")
        num_templates = broker.stats()["engine_stats"]["num_templates"]
    # Template matching is structural: 3 query shapes over any number of
    # venues collapse to at most 3 templates.
    assert 1 <= num_templates <= 3
