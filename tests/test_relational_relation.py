"""Unit tests for the Relation container."""

import pytest

from repro.relational import Relation, RelationSchema, SchemaError


@pytest.fixture
def people() -> Relation:
    return Relation(
        ["name", "city"],
        rows=[("ada", "london"), ("grace", "nyc"), ("ada", "london")],
        name="people",
    )


def test_schema_coerced_from_attribute_list():
    relation = Relation(["a", "b"])
    assert isinstance(relation.schema, RelationSchema)
    assert relation.schema.attributes == ("a", "b")


def test_insert_and_len(people):
    assert len(people) == 3
    people.insert(("alan", "cambridge"))
    assert len(people) == 4


def test_insert_wrong_arity_raises(people):
    with pytest.raises(SchemaError):
        people.insert(("only-one",))


def test_insert_dict(people):
    people.insert_dict({"city": "zurich", "name": "niklaus"})
    assert people.rows[-1] == ("niklaus", "zurich")


def test_insert_dict_missing_attribute_raises(people):
    with pytest.raises(SchemaError):
        people.insert_dict({"name": "x"})


def test_insert_many():
    relation = Relation(["a"])
    relation.insert_many([(1,), (2,), (3,)])
    assert relation.rows == [(1,), (2,), (3,)]


def test_iteration_yields_tuples(people):
    assert all(isinstance(row, tuple) for row in people)


def test_column(people):
    assert people.column("name") == ["ada", "grace", "ada"]


def test_row_dicts(people):
    first = next(people.row_dicts())
    assert first == {"name": "ada", "city": "london"}


def test_value_accessor(people):
    row = people.rows[1]
    assert people.value(row, "city") == "nyc"


def test_distinct_removes_duplicates(people):
    distinct = people.distinct()
    assert len(distinct) == 2
    assert len(people) == 3  # original untouched


def test_where_filters_rows(people):
    only_ada = people.where(lambda row: row["name"] == "ada")
    assert len(only_ada) == 2


def test_copy_is_independent(people):
    clone = people.copy()
    clone.insert(("new", "rome"))
    assert len(people) == 3
    assert len(clone) == 4


def test_extend_requires_same_schema(people):
    other = Relation(["name", "city"], rows=[("x", "y")])
    people.extend(other)
    assert len(people) == 4
    with pytest.raises(SchemaError):
        people.extend(Relation(["a", "b"], rows=[(1, 2)]))


def test_equality_ignores_row_order():
    a = Relation(["x"], rows=[(1,), (2,)])
    b = Relation(["x"], rows=[(2,), (1,)])
    assert a == b


def test_equality_is_multiset_not_set():
    """Duplicate rows count: bag semantics, compared via a Counter."""
    once = Relation(["x"], rows=[(1,), (2,)])
    twice = Relation(["x"], rows=[(1,), (1,), (2,)])
    assert once != twice
    assert twice == Relation(["x"], rows=[(2,), (1,), (1,)])


def test_equality_compares_values_not_reprs():
    """Rows compare by value equality, never by how they render."""
    ints = Relation(["x"], rows=[(1,)])
    strs = Relation(["x"], rows=[("1",)])
    assert ints != strs  # distinct values that a repr-based scheme could conflate
    floats = Relation(["x"], rows=[(1.0,)])
    assert ints == floats  # 1 == 1.0 under Python equality semantics


def test_equality_requires_matching_schema_and_cardinality():
    a = Relation(["x"], rows=[(1,)])
    assert a != Relation(["y"], rows=[(1,)])
    assert a != Relation(["x"], rows=[(1,), (1,)])
    assert (a == object()) is False  # NotImplemented falls back to identity


def test_relations_are_unhashable(people):
    with pytest.raises(TypeError):
        hash(people)


def test_empty_like(people):
    empty = Relation.empty_like(people)
    assert empty.schema == people.schema
    assert len(empty) == 0


def test_clear(people):
    people.clear()
    assert len(people) == 0
    assert not people
