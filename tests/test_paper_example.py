"""Integration tests reproducing the paper's running example (Section 4.4.1).

The two documents of Figures 1 and 2 are streamed through both engines with
the three queries of Table 2 registered; the expected outcome is spelled out
in Table 4(f): Q1 and Q2 each produce exactly one result joining d1 with d2,
Q3 produces none, and all three queries share a single query template
(Figure 5).
"""

from __future__ import annotations

import pytest

from repro.core import MMQJPEngine, SequentialEngine
from repro.xmlmodel import to_xml
from tests.conftest import (
    PAPER_WINDOWS,
    make_blog_article,
    make_book_announcement,
)


def _engine_with_paper_queries(engine_cls, **kwargs):
    engine = engine_cls(**kwargs)
    from tests.conftest import PAPER_Q1, PAPER_Q2, PAPER_Q3

    for qid, text in (("Q1", PAPER_Q1), ("Q2", PAPER_Q2), ("Q3", PAPER_Q3)):
        engine.register_query(text, qid=qid, window_symbols=PAPER_WINDOWS)
    return engine


@pytest.mark.parametrize("engine_cls", [MMQJPEngine, SequentialEngine])
def test_running_example_matches(engine_cls):
    engine = _engine_with_paper_queries(engine_cls)
    first = engine.process_document(make_book_announcement())
    assert first == []

    matches = engine.process_document(make_blog_article())
    by_qid = {m.qid: m for m in matches}
    assert sorted(by_qid) == ["Q1", "Q2"]
    assert all(m.lhs_docid == "d1" and m.rhs_docid == "d2" for m in matches)


@pytest.mark.parametrize(
    "engine_kwargs",
    [
        {},
        {"use_view_materialization": True},
        {"view_cache_size": 64},
    ],
)
def test_running_example_mmqjp_variants(engine_kwargs):
    engine = _engine_with_paper_queries(MMQJPEngine, **engine_kwargs)
    engine.process_document(make_book_announcement())
    matches = engine.process_document(make_blog_article())
    assert sorted(m.qid for m in matches) == ["Q1", "Q2"]


def test_single_template_for_all_three_queries():
    """Q1, Q2 and Q3 all belong to the single template of Figure 5."""
    engine = _engine_with_paper_queries(MMQJPEngine)
    assert engine.num_templates == 1
    template = engine.registry.templates[0]
    assert len(template.meta_order) == 6
    assert len(template.value_edges) == 2
    assert len(template.structural_edges) == 4


def test_q1_node_bindings_match_table4f():
    """Q1's bindings are (node1..node6) = (0, 2, 4, 0, 2, 3) as in Table 4(f)."""
    engine = _engine_with_paper_queries(MMQJPEngine)
    engine.process_document(make_book_announcement())
    matches = engine.process_document(make_blog_article())
    q1 = next(m for m in matches if m.qid == "Q1")
    assert q1.lhs_bindings == {"x1": 0, "x2": 2, "x3": 4}
    assert q1.rhs_bindings == {"x4": 0, "x5": 2, "x6": 3}


def test_q2_node_bindings_match_table4f():
    """Q2's bindings are (0, 2, 5, 0, 2, 5) as in Table 4(f)."""
    engine = _engine_with_paper_queries(MMQJPEngine)
    engine.process_document(make_book_announcement())
    matches = engine.process_document(make_blog_article())
    q2 = next(m for m in matches if m.qid == "Q2")
    assert q2.lhs_bindings == {"x1": 0, "x2": 2, "x7": 5}
    assert q2.rhs_bindings == {"x4": 0, "x5": 2, "x8": 5}


def test_q3_matches_on_blog_cross_posting():
    """Q3 fires when two blog articles share author and title."""
    engine = _engine_with_paper_queries(MMQJPEngine)
    engine.process_document(make_blog_article(docid="b1", timestamp=1.0))
    matches = engine.process_document(make_blog_article(docid="b2", timestamp=2.0))
    assert any(m.qid == "Q3" for m in matches)
    q3 = next(m for m in matches if m.qid == "Q3")
    assert (q3.lhs_docid, q3.rhs_docid) == ("b1", "b2")


def test_window_constraint_excludes_late_followups():
    """A blog article arriving after the window produces no Q1/Q2 results."""
    engine = _engine_with_paper_queries(MMQJPEngine)
    engine.process_document(make_book_announcement(timestamp=1.0))
    matches = engine.process_document(make_blog_article(timestamp=100.0))
    assert matches == []


def test_no_match_when_author_differs():
    engine = _engine_with_paper_queries(MMQJPEngine)
    engine.process_document(make_book_announcement())
    matches = engine.process_document(make_blog_article(author="Somebody Else"))
    assert all(m.qid != "Q1" for m in matches)
    # Q2 also requires the author join, so nothing fires at all.
    assert matches == []


def test_order_matters_for_followed_by():
    """FOLLOWED BY is directional: blog before book produces nothing."""
    engine = _engine_with_paper_queries(MMQJPEngine)
    engine.process_document(make_blog_article(timestamp=1.0))
    matches = engine.process_document(make_book_announcement(timestamp=2.0))
    assert matches == []


def test_output_document_contains_both_subtrees():
    engine = _engine_with_paper_queries(MMQJPEngine)
    engine.process_document(make_book_announcement())
    matches = engine.process_document(make_blog_article())
    q1 = next(m for m in matches if m.qid == "Q1")
    output = engine.output_document(q1)
    assert output.root.tag == "result"
    assert [child.tag for child in output.root.children] == ["book", "blog"]
    text = to_xml(output)
    assert "Danny Ayers" in text
    assert "Beginning RSS and Atom Programming" in text


def test_engines_agree_on_example(blog_document, book_document):
    mmqjp = _engine_with_paper_queries(MMQJPEngine)
    sequential = _engine_with_paper_queries(SequentialEngine)
    for engine in (mmqjp, sequential):
        engine.process_document(make_book_announcement())
    keys_mmqjp = {m.key() for m in mmqjp.process_document(make_blog_article())}
    keys_seq = {m.key() for m in sequential.process_document(make_blog_article())}
    assert keys_mmqjp == keys_seq
