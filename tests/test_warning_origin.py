"""Legacy-kwarg DeprecationWarnings must point at the *caller's* line.

``coerce_config`` is called at different depths (directly by the engines,
through ``make_engine``, through ``Broker.__new__``'s config peek), so each
path needs its own ``stacklevel``; a wrong one makes ``python -W error``
users chase a frame inside repro instead of their own call site.  These
tests pin every legacy entry point to this file.
"""

from __future__ import annotations

import warnings

import pytest

from repro.core import MMQJPEngine, SequentialEngine
from repro.core.engine import make_engine
from repro.pubsub import Broker
from repro.runtime import ShardedBroker


def _deprecations():
    ctx = warnings.catch_warnings(record=True)
    record = ctx.__enter__()
    warnings.simplefilter("always")
    return ctx, record


def _assert_points_here(record):
    assert record, "expected at least one DeprecationWarning"
    for w in record:
        assert issubclass(w.category, DeprecationWarning), w.message
        assert w.filename == __file__, (
            f"warning attributed to {w.filename!r}, not the caller: {w.message}"
        )


def test_broker_legacy_kwarg_warns_at_caller():
    ctx, record = _deprecations()
    try:
        broker = Broker(engine="mmqjp", indexing="off")
        broker.close()
    finally:
        ctx.__exit__(None, None, None)
    _assert_points_here(record)


def test_broker_shards_reroute_warns_at_caller():
    ctx, record = _deprecations()
    try:
        broker = Broker(shards=2)
        broker.close()
    finally:
        ctx.__exit__(None, None, None)
    assert isinstance(broker, ShardedBroker)
    _assert_points_here(record)


def test_sharded_broker_legacy_kwarg_warns_at_caller():
    ctx, record = _deprecations()
    try:
        broker = ShardedBroker(shards=2, indexing="off")
        broker.close()
    finally:
        ctx.__exit__(None, None, None)
    _assert_points_here(record)


def test_make_engine_legacy_kwarg_warns_at_caller():
    ctx, record = _deprecations()
    try:
        make_engine("mmqjp", indexing="off")
    finally:
        ctx.__exit__(None, None, None)
    _assert_points_here(record)


@pytest.mark.parametrize("engine_class", [MMQJPEngine, SequentialEngine])
def test_engine_legacy_kwarg_warns_at_caller(engine_class):
    ctx, record = _deprecations()
    try:
        engine_class(indexing="off")
    finally:
        ctx.__exit__(None, None, None)
    _assert_points_here(record)
