"""Unit tests for relation schemas."""

import pytest

from repro.relational import RelationSchema, SchemaError


def test_attributes_preserved_in_order():
    schema = RelationSchema(["docid", "node", "strVal"])
    assert schema.attributes == ("docid", "node", "strVal")
    assert list(schema) == ["docid", "node", "strVal"]
    assert len(schema) == 3


def test_index_of_returns_positions():
    schema = RelationSchema(["a", "b", "c"])
    assert schema.index_of("a") == 0
    assert schema.index_of("c") == 2
    assert schema.indexes_of(["c", "a"]) == (2, 0)


def test_index_of_unknown_attribute_raises():
    schema = RelationSchema(["a"])
    with pytest.raises(SchemaError):
        schema.index_of("missing")


def test_contains():
    schema = RelationSchema(["a", "b"])
    assert "a" in schema
    assert "z" not in schema


def test_duplicate_attribute_rejected():
    with pytest.raises(SchemaError):
        RelationSchema(["a", "a"])


def test_empty_schema_rejected():
    with pytest.raises(SchemaError):
        RelationSchema([])


def test_non_string_attribute_rejected():
    with pytest.raises(SchemaError):
        RelationSchema(["a", 3])


def test_equality_and_hash():
    assert RelationSchema(["a", "b"]) == RelationSchema(["a", "b"])
    assert RelationSchema(["a", "b"]) != RelationSchema(["b", "a"])
    assert hash(RelationSchema(["a"])) == hash(RelationSchema(["a"]))


def test_project_preserves_requested_order():
    schema = RelationSchema(["a", "b", "c"])
    assert schema.project(["c", "a"]).attributes == ("c", "a")


def test_project_unknown_attribute_raises():
    with pytest.raises(SchemaError):
        RelationSchema(["a"]).project(["a", "b"])


def test_rename():
    schema = RelationSchema(["a", "b"]).rename({"a": "x"})
    assert schema.attributes == ("x", "b")


def test_concat():
    combined = RelationSchema(["a"]).concat(RelationSchema(["b", "c"]))
    assert combined.attributes == ("a", "b", "c")


def test_concat_collision_raises():
    with pytest.raises(SchemaError):
        RelationSchema(["a"]).concat(RelationSchema(["a"]))
