"""The incremental indexed join pipeline.

Covers the three layers the indexing refactor touches:

* relational — live :class:`HashIndex` maintenance under inserts, partition
  drops and lazy rebuilds; :class:`PartitionedRelation` semantics; the
  mutation-counter NDV cache (a prune followed by equal-size inserts must
  not serve stale estimates).
* evaluator — :class:`IndexedDatabase` environments produce exactly the
  same results as plain per-call hashing.
* engine/runtime — any interleaving of ``register_query`` /
  ``process_document`` / ``prune`` yields identical matches across
  ``indexing="eager"``, ``"lazy"``, ``"off"``, both engines, and the
  sharded broker with 1/2/4 shards (property-based).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import JoinState, MMQJPEngine, SequentialEngine
from repro.pubsub import Broker
from repro.relational import (
    ConjunctiveQuery,
    IndexedDatabase,
    PartitionedRelation,
    Relation,
    Var,
    evaluate_conjunctive,
)
from repro.runtime import ShardedBroker
from repro.workloads.querygen import generate_query
from repro.workloads.synthetic import build_document
from repro.xmlmodel.schema import two_level_schema

# --------------------------------------------------------------------------- #
# live indexes on relations
# --------------------------------------------------------------------------- #
def test_index_on_is_memoized_and_live_under_inserts():
    rel = Relation(["docid", "var", "node"], name="Rvar")
    rel.insert(("d1", "a", 1))
    index = rel.index_on(("var",))
    assert index is rel.index_on(("var",))
    assert index is rel.index_on(["var"])  # names or positions, same key
    assert index.lookup("a") == [("d1", "a", 1)]
    rel.insert(("d2", "a", 2))
    rel.insert(("d2", "b", 3))
    assert index.lookup("a") == [("d1", "a", 1), ("d2", "a", 2)]
    assert index.lookup("b") == [("d2", "b", 3)]


def test_lazy_maintenance_rebuilds_on_next_use():
    rel = Relation(["x", "y"], name="lazy", index_maintenance="lazy")
    rel.insert((1, "a"))
    index = rel.index_on((0,))
    assert index.lookup(1) == [(1, "a")]
    rel.insert((1, "b"))
    # Stale until the next index_on call (lazy mode does not update inline)...
    assert index.lookup(1) == [(1, "a")]
    refreshed = rel.index_on((0,))
    assert refreshed is index
    assert index.lookup(1) == [(1, "a"), (1, "b")]


def test_wholesale_rows_assignment_leaves_index_stale_until_next_use():
    # A wholesale ``rows`` assignment bypasses incremental maintenance; a
    # subsequent eager insert must not re-stamp the stale index as current.
    rel = PartitionedRelation(["docid", "v"], name="p")
    rel.insert(("d1", "a"))
    index = rel.index_on(("v",))
    rel.rows = [("d1", "a"), ("d2", "b")]
    rel.insert(("d3", "c"))
    refreshed = rel.index_on(("v",))
    assert refreshed is index
    assert index.lookup("b") == [("d2", "b")]
    assert index.lookup("c") == [("d3", "c")]
    rel.drop_partitions({"d2"})
    assert rel.index_on(("v",)).lookup("b") == []


def test_index_bulk_removal_with_duplicate_rows():
    rel = PartitionedRelation(["docid", "v"], name="p")
    rel.insert_many([("d1", "x"), ("d1", "x"), ("d2", "x"), ("d2", "y")])
    index = rel.index_on(("v",))
    rel.drop_partitions({"d1"})
    assert index.lookup("x") == [("d2", "x")]
    assert index.lookup("y") == [("d2", "y")]


def test_index_survives_clear():
    rel = Relation(["x"], name="r")
    rel.insert((1,))
    index = rel.index_on((0,))
    rel.clear()
    assert index.lookup(1) == []
    rel.insert((1,))
    assert rel.index_on((0,)).lookup(1) == [(1,)]


# --------------------------------------------------------------------------- #
# partitioned relations
# --------------------------------------------------------------------------- #
def test_partitioned_relation_flat_view_and_drop():
    rel = PartitionedRelation(
        ["docid", "node", "strVal"], name="Rdoc", partition_attribute="docid"
    )
    rows = [("d1", 1, "x"), ("d1", 2, "y"), ("d2", 1, "x"), ("d3", 5, "z")]
    rel.insert_many(rows)
    assert rel.rows == rows
    assert len(rel) == 4
    assert rel.num_partitions == 3
    assert rel.partition("d1") == [("d1", 1, "x"), ("d1", 2, "y")]

    removed = rel.drop_partitions({"d1", "d3", "missing"})
    assert removed == 3
    assert len(rel) == 1
    assert rel.rows == [("d2", 1, "x")]
    assert list(rel) == [("d2", 1, "x")]
    assert rel.partition_keys() == ["d2"]


def test_partitioned_drop_updates_live_indexes():
    rel = PartitionedRelation(["docid", "v"], name="p")
    rel.insert_many([("d1", "x"), ("d2", "x"), ("d2", "y")])
    index = rel.index_on(("v",))
    assert index.lookup("x") == [("d1", "x"), ("d2", "x")]
    rel.drop_partitions({"d1"})
    assert index.lookup("x") == [("d2", "x")]
    rel.insert(("d3", "x"))
    assert index.lookup("x") == [("d2", "x"), ("d3", "x")]


def test_partitioned_drop_with_lazy_indexes():
    rel = PartitionedRelation(["docid", "v"], name="p", index_maintenance="lazy")
    rel.insert_many([("d1", "x"), ("d2", "x")])
    rel.index_on(("v",))
    rel.drop_partitions({"d1"})
    assert rel.index_on(("v",)).lookup("x") == [("d2", "x")]


def test_ndv_cache_keyed_on_mutation_counter():
    # The historical bug: a prune followed by equal-size inserts left the
    # row count unchanged, so a count-keyed cache served stale NDV values.
    rel = PartitionedRelation(["docid", "v"], name="p")
    rel.insert_many([("d1", "a"), ("d1", "b"), ("d2", "c")])
    assert rel.distinct_count(1) == 3
    rel.drop_partitions({"d1"})
    rel.insert_many([("d3", "c"), ("d4", "c")])
    assert len(rel) == 3  # same row count as before the prune
    assert rel.distinct_count(1) == 1
    assert rel.distinct_count(0) == 3


def test_base_relation_ndv_cache_invalidated_by_clear_and_reinsert():
    rel = Relation(["v"], name="r")
    rel.insert_many([("a",), ("b",)])
    assert rel.distinct_count(0) == 2
    rel.clear()
    rel.insert_many([("c",), ("c",)])
    assert len(rel) == 2
    assert rel.distinct_count(0) == 1


# --------------------------------------------------------------------------- #
# the indexed evaluation environment
# --------------------------------------------------------------------------- #
def _random_env(rng: random.Random):
    edges = PartitionedRelation(["docid", "a", "b"], name="edge")
    for _ in range(rng.randrange(1, 30)):
        edges.insert((f"d{rng.randrange(4)}", rng.randrange(5), rng.randrange(5)))
    probe = Relation(["b"], name="probe")
    for _ in range(rng.randrange(1, 8)):
        probe.insert((rng.randrange(5),))
    return edges, probe


@pytest.mark.parametrize("indexing", ["eager", "lazy", "off"])
def test_indexed_evaluation_matches_plain(indexing):
    rng = random.Random(42)
    cq = ConjunctiveQuery("out", ["d", "x", "z"], [Var("d"), Var("x"), Var("z")])
    cq.add_atom("probe", [Var("y")])
    cq.add_atom("edge", [Var("d"), Var("x"), Var("y")])
    cq.add_atom("edge", [Var("d"), Var("y"), Var("z")])

    for _ in range(25):
        edges, probe = _random_env(rng)
        plain = evaluate_conjunctive(cq, {"edge": edges, "probe": probe})
        env = IndexedDatabase(indexing=indexing)
        env.bind("edge", edges, indexed=True)
        env.bind("probe", probe)
        indexed = evaluate_conjunctive(cq, env)
        assert sorted(indexed.rows) == sorted(plain.rows)
        if indexing == "off":
            assert edges.num_indexes == 0


def test_indexed_database_mapping_protocol():
    env = IndexedDatabase()
    rel = Relation(["x"], name="r")
    env.bind("r", rel, indexed=True)
    assert env["r"] is rel and env.get("r") is rel
    assert env.get("missing") is None
    assert "r" in env and list(env) == ["r"] and len(env) == 1
    assert env.is_indexed("r")
    env.bind("r", rel, indexed=False)  # rebinding ephemerally clears the flag
    assert not env.is_indexed("r")
    assert env.index_for("r", (0,)) is None
    with pytest.raises(ValueError):
        IndexedDatabase(indexing="sometimes")


def test_join_state_index_on_respects_off_mode():
    assert JoinState(indexing="off").index_on("Rdoc", ("strVal",)) is None
    state = JoinState(indexing="eager")
    index = state.index_on("Rdoc", ("strVal",))
    state.rdoc.insert(("d1", 3, "v"))
    assert index.lookup("v") == [("d1", 3, "v")]
    with pytest.raises(ValueError):
        JoinState(indexing="sometimes")


# --------------------------------------------------------------------------- #
# interleavings of register / process / prune across all configurations
# --------------------------------------------------------------------------- #
SCHEMA = two_level_schema(4)

# An operation stream: queries register mid-stream, documents arrive with
# increasing timestamps, prunes drop everything older than a random horizon.
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("query"), st.integers(1, 4), st.integers(0, 10_000)),
        st.tuples(st.just("doc"), st.tuples(*[st.integers(0, 2)] * 4)),
        st.tuples(st.just("prune"), st.integers(1, 4)),
    ),
    min_size=3,
    max_size=10,
).filter(
    lambda ops: sum(op[0] == "query" for op in ops) >= 1
    and sum(op[0] == "doc" for op in ops) >= 2
)


def _replay_engine(engine, ops):
    """Replay an operation stream against a two-stage engine; match keys."""
    keys = set()
    qid = 0
    ts = 0.0
    for op in ops:
        if op[0] == "query":
            query = generate_query(SCHEMA, op[1], random.Random(op[2]), window=6.0)
            engine.register_query(query, qid=f"q{qid}")
            qid += 1
        elif op[0] == "doc":
            ts += 1.0
            doc = build_document(
                SCHEMA,
                docid=f"doc{int(ts)}",
                timestamp=ts,
                leaf_values=[f"v{x}" for x in op[1]],
            )
            keys.update(m.key() for m in engine.process_document(doc))
        else:
            engine.prune(ts - float(op[1]))
    return keys


def _replay_broker(broker, ops):
    """Replay the same stream through a broker; delivered join-match keys."""
    keys = set()
    qid = 0
    ts = 0.0
    try:
        for op in ops:
            if op[0] == "query":
                query = generate_query(SCHEMA, op[1], random.Random(op[2]), window=6.0)
                broker.subscribe(query, subscription_id=f"q{qid}")
                qid += 1
            elif op[0] == "doc":
                ts += 1.0
                doc = build_document(
                    SCHEMA,
                    docid=f"doc{int(ts)}",
                    timestamp=ts,
                    leaf_values=[f"v{x}" for x in op[1]],
                )
                for result in broker.publish(doc, timestamp=ts):
                    if result.match is not None:
                        keys.add(result.match.key())
            else:
                broker.prune(ts - float(op[1]))
    finally:
        if hasattr(broker, "close"):
            broker.close()
    return keys


@given(_ops)
@settings(max_examples=12, deadline=None)
def test_interleavings_equal_across_modes_and_engines(ops):
    reference = _replay_engine(
        MMQJPEngine(store_documents=False, auto_prune=False, indexing="off"), ops
    )
    for indexing in ("eager", "lazy"):
        for engine_cls in (MMQJPEngine, SequentialEngine):
            engine = engine_cls(
                store_documents=False, auto_prune=False, indexing=indexing
            )
            assert _replay_engine(engine, ops) == reference
    sequential_off = SequentialEngine(
        store_documents=False, auto_prune=False, indexing="off"
    )
    assert _replay_engine(sequential_off, ops) == reference


@given(_ops)
@settings(max_examples=8, deadline=None)
def test_interleavings_equal_under_sharded_broker(ops):
    # Register every query up front: shard layouts legitimately disagree
    # about *mid-stream* registration (a late query cannot retroactively see
    # witnesses of documents that arrived before it reached its shard, while
    # on one engine an earlier query with overlapping variables may have
    # captured them) — that is a property of sharding, not of indexing.
    ops = sorted(ops, key=lambda op: op[0] != "query")
    reference = _replay_broker(
        Broker(construct_outputs=False, auto_prune=False, indexing="off"), ops
    )
    for shards in (2, 4):
        for indexing in ("eager", "lazy", "off"):
            broker = ShardedBroker(
                construct_outputs=False, auto_prune=False, shards=shards, indexing=indexing
            )
            assert _replay_broker(broker, ops) == reference


def test_auto_prune_equivalence_across_modes():
    """A deterministic stream with automatic window pruning enabled."""
    rng = random.Random(5)
    queries = [generate_query(SCHEMA, k, random.Random(s), window=3.0)
               for k, s in [(1, 11), (2, 22), (3, 33), (2, 44)]]
    docs = [
        build_document(
            SCHEMA,
            docid=f"doc{i}",
            timestamp=float(i + 1),
            leaf_values=[f"v{rng.randrange(3)}" for _ in range(SCHEMA.num_leaves)],
        )
        for i in range(10)
    ]

    results = {}
    for indexing in ("eager", "lazy", "off"):
        engine = MMQJPEngine(store_documents=False, indexing=indexing)
        for i, q in enumerate(queries):
            engine.register_query(q, qid=f"q{i}")
        keys = set()
        for doc in docs:
            keys.update(m.key() for m in engine.process_document(doc))
        results[indexing] = keys
        # auto-pruning kept only the window horizon in state
        assert engine.processor.state.num_documents <= 4
    assert results["eager"] == results["lazy"] == results["off"]
