"""Unit tests for match records and output document construction."""

from repro.core.results import Match, build_output_document, copy_subtree
from repro.xmlmodel import XmlDocument, element, to_xml


def _match(**overrides):
    values = dict(
        qid="Q",
        lhs_docid="d1",
        rhs_docid="d2",
        lhs_timestamp=1.0,
        rhs_timestamp=2.0,
        lhs_bindings={"x": 1},
        rhs_bindings={"y": 0},
        window=10.0,
    )
    values.update(overrides)
    return Match(**values)


def test_match_key_identifies_bindings():
    assert _match().key() == _match().key()
    assert _match().key() != _match(lhs_bindings={"x": 2}).key()
    assert _match().key() != _match(qid="other").key()


def test_copy_subtree_is_deep():
    original = element("a", element("b", text="t"), attributes={"k": "v"})
    clone = copy_subtree(original)
    clone.children[0].text = "changed"
    clone.attributes["k"] = "other"
    assert original.children[0].text == "t"
    assert original.attributes["k"] == "v"


def test_output_document_uses_bound_block_roots():
    lhs = XmlDocument(element("wrapper", element("book", element("title", text="T"))), docid="d1")
    rhs = XmlDocument(element("blog", element("title", text="T")), docid="d2")
    match = _match(lhs_bindings={"b": 1}, rhs_bindings={"g": 0})
    output = build_output_document(match, lhs, rhs, lhs_root_variable="b", rhs_root_variable="g")
    assert [c.tag for c in output.root.children] == ["book", "blog"]
    assert output.root.attributes["qid"] == "Q"
    assert output.timestamp == 2.0
    assert output.stream == "output"


def test_output_document_falls_back_to_document_roots():
    lhs = XmlDocument(element("book", element("title", text="T")), docid="d1")
    rhs = XmlDocument(element("blog", element("title", text="T")), docid="d2")
    match = _match(lhs_bindings={}, rhs_bindings={})
    output = build_output_document(match, lhs, rhs)
    assert [c.tag for c in output.root.children] == ["book", "blog"]


def test_output_document_serializes():
    lhs = XmlDocument(element("book", element("title", text="A & B")), docid="d1")
    rhs = XmlDocument(element("blog", element("title", text="A & B")), docid="d2")
    output = build_output_document(_match(lhs_bindings={}, rhs_bindings={}), lhs, rhs)
    text = to_xml(output)
    assert "A &amp; B" in text
    assert text.count("<title>") == 2
