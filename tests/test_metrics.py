"""The observability layer: primitives, snapshots, and broker integration."""

from __future__ import annotations

import pytest

from repro import RuntimeConfig, open_broker
from repro.config import metrics_enabled
from repro.metrics import (
    DEFAULT_LATENCY_BOUNDS,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
    snapshot_delta,
)
from tests.conftest import make_blog_article, make_book_announcement

CROSS = (
    "S//book->x1[.//author->x2] "
    "FOLLOWED BY{x2=x5, 100} "
    "S//blog->x4[.//author->x5]"
)


# --------------------------------------------------------------------------- #
# histogram primitives
# --------------------------------------------------------------------------- #
def test_histogram_records_and_reports_tails():
    hist = Histogram()
    for value in (0.001, 0.002, 0.003, 0.010, 0.500):
        hist.record(value)
    assert hist.count == 5
    assert hist.max == 0.500
    assert hist.min == 0.001
    assert hist.mean == pytest.approx(0.1032)
    # Quantiles are clamped to the observed range and exact at the top.
    assert hist.percentile(1.0) == 0.500
    assert hist.min <= hist.percentile(0.5) <= hist.max
    assert hist.percentile(0.5) < 0.01


def test_histogram_empty_percentile_is_zero():
    assert Histogram().percentile(0.99) == 0.0
    assert Histogram().mean == 0.0


def test_histogram_snapshot_roundtrip_preserves_buckets():
    hist = Histogram()
    for value in (0.0005, 0.004, 0.004, 2.0):
        hist.record(value)
    rebuilt = Histogram.from_snapshot(hist.snapshot())
    assert rebuilt.counts == hist.counts
    assert rebuilt.count == hist.count
    assert rebuilt.total == pytest.approx(hist.total)
    assert rebuilt.min == pytest.approx(hist.min)
    assert rebuilt.max == pytest.approx(hist.max)
    assert rebuilt.percentile(0.95) == pytest.approx(hist.percentile(0.95))


def test_histogram_merge_requires_same_bounds():
    a, b = Histogram(), Histogram(bounds=(0.1, 1.0))
    with pytest.raises(ValueError):
        a.merge(b)


def test_histogram_merge_accumulates():
    a, b = Histogram(), Histogram()
    for v in (0.001, 0.002):
        a.record(v)
    for v in (0.5, 1.5):
        b.record(v)
    a.merge(b)
    assert a.count == 4
    assert a.max == 1.5
    assert a.min == 0.001
    assert sum(a.counts) == 4


def test_default_bounds_are_sorted_and_cover_seconds():
    assert list(DEFAULT_LATENCY_BOUNDS) == sorted(DEFAULT_LATENCY_BOUNDS)
    assert DEFAULT_LATENCY_BOUNDS[0] <= 1e-6
    assert DEFAULT_LATENCY_BOUNDS[-1] >= 100.0


# --------------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------------- #
def test_registry_counters_gauges_and_timer():
    registry = MetricsRegistry()
    registry.counter("docs").inc()
    registry.counter("docs").inc(2)
    registry.gauge("live").set(5)
    registry.gauge("live").dec()
    with registry.timer("stage:test"):
        pass
    snap = registry.snapshot()
    assert snap["counters"]["docs"] == 3
    assert snap["gauges"]["live"] == 4
    assert snap["histograms"]["stage:test"]["count"] == 1


def test_registry_delivery_lag_per_subscription():
    registry = MetricsRegistry()
    assert registry.subscription_lag("missing") is None
    registry.record_delivery_lag("s1", 0.010)
    registry.record_delivery_lag("s1", 0.030)
    registry.record_delivery_lag("s2", 0.001)
    lag = registry.subscription_lag("s1")
    assert lag["count"] == 2
    assert lag["mean_ms"] == pytest.approx(20.0)
    assert lag["max_ms"] == pytest.approx(30.0)
    assert registry.snapshot()["histograms"]["delivery_lag"]["count"] == 3


def test_registry_snapshot_trims_to_worst_subscriptions():
    registry = MetricsRegistry()
    for i in range(20):
        registry.record_delivery_lag(f"s{i}", i / 1000.0)
    lag = registry.snapshot(worst_subscriptions=3)["subscription_lag"]
    assert lag["tracked"] == 20
    assert set(lag["worst"]) == {"s19", "s18", "s17"}


# --------------------------------------------------------------------------- #
# merge and delta
# --------------------------------------------------------------------------- #
def test_merge_snapshots_sums_and_merges():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("docs").inc(2)
    b.counter("docs").inc(3)
    a.gauge("rows").set(10)
    b.gauge("rows").set(4)
    a.histogram("lat").record(0.001)
    b.histogram("lat").record(1.0)
    a.record_delivery_lag("s1", 0.5)
    b.record_delivery_lag("s2", 0.1)
    merged = merge_snapshots([a.snapshot(), None, b.snapshot()])
    assert merged["counters"]["docs"] == 5
    assert merged["gauges"]["rows"] == 14
    lat = merged["histograms"]["lat"]
    assert lat["count"] == 2
    assert lat["max_ms"] == pytest.approx(1000.0)
    assert merged["subscription_lag"]["tracked"] == 2
    # The union is re-trimmed to the longest input list (1 entry here),
    # keeping the worst subscription overall.
    assert set(merged["subscription_lag"]["worst"]) == {"s1"}


def test_snapshot_delta_isolates_an_interval():
    registry = MetricsRegistry()
    registry.counter("docs").inc(2)
    registry.histogram("lat").record(0.001)
    before = registry.snapshot()
    registry.counter("docs").inc(5)
    for _ in range(3):
        registry.histogram("lat").record(0.010)
    delta = snapshot_delta(before, registry.snapshot())
    assert delta["counters"]["docs"] == 5
    lat = delta["histograms"]["lat"]
    assert lat["count"] == 3
    # Quantiles come from the difference buckets: only the 10ms samples.
    assert lat["p50_ms"] > 5.0


def test_snapshot_delta_without_previous_is_identity():
    registry = MetricsRegistry()
    registry.counter("docs").inc()
    snap = registry.snapshot()
    assert snapshot_delta(None, snap) is snap


# --------------------------------------------------------------------------- #
# config knob and env override
# --------------------------------------------------------------------------- #
def test_metrics_enabled_follows_config_and_env(monkeypatch):
    monkeypatch.delenv("REPRO_METRICS", raising=False)
    assert not metrics_enabled(RuntimeConfig())
    assert metrics_enabled(RuntimeConfig(metrics=True))
    monkeypatch.setenv("REPRO_METRICS", "1")
    assert metrics_enabled(RuntimeConfig())
    monkeypatch.setenv("REPRO_METRICS", "off")
    assert not metrics_enabled(RuntimeConfig())


# --------------------------------------------------------------------------- #
# broker integration
# --------------------------------------------------------------------------- #
def _run_broker(config: RuntimeConfig):
    with open_broker(config) as broker:
        broker.subscribe(CROSS, subscription_id="cross")
        deliveries = []
        deliveries.extend(broker.publish(make_book_announcement("b1", 1.0)))
        deliveries.extend(
            broker.publish_many(
                [
                    make_blog_article("g1", 2.0),
                    make_blog_article("g2", 3.0),
                ]
            )
        )
        stats = broker.stats()
        snapshot = broker.metrics_snapshot()
    return deliveries, stats, snapshot


@pytest.mark.parametrize("shards", [1, 2])
def test_broker_metrics_off_by_default(shards):
    deliveries, stats, snapshot = _run_broker(RuntimeConfig(shards=shards))
    assert len(deliveries) == 2
    assert stats["metrics"] is None
    assert snapshot is None


@pytest.mark.parametrize("shards", [1, 2])
def test_broker_metrics_snapshot_counts_documents_and_lag(shards):
    deliveries, stats, snapshot = _run_broker(
        RuntimeConfig(shards=shards, metrics=True)
    )
    assert len(deliveries) == 2
    assert snapshot["counters"]["documents_published"] == 3
    assert snapshot["counters"]["results_delivered"] == 2
    assert snapshot["histograms"]["publish_latency"]["count"] == 1
    assert snapshot["histograms"]["publish_batch_latency"]["count"] == 1
    lag = snapshot["histograms"]["delivery_lag"]
    assert lag["count"] == 2
    assert lag["max_ms"] > 0.0
    worst = snapshot["subscription_lag"]["worst"]
    assert set(worst) == {"cross"}
    assert worst["cross"]["count"] == 2
    assert stats["metrics"]["counters"] == snapshot["counters"]


def test_broker_metrics_include_engine_stage_timers():
    _, _, snapshot = _run_broker(RuntimeConfig(metrics=True))
    assert snapshot["histograms"]["stage:stage1"]["count"] == 3


def test_delivery_lag_crosses_the_process_pipe():
    _, _, snapshot = _run_broker(
        RuntimeConfig(shards=2, executor="processes", metrics=True)
    )
    # Worker-side stage timers are fetched over the pipe and merged...
    assert snapshot["histograms"]["stage:stage1"]["count"] == 3
    # ...and matches carry their publish stamps across the wire, so lag
    # is measured publish→sink even with process-isolated shards.
    lag = snapshot["histograms"]["delivery_lag"]
    assert lag["count"] == 2
    assert lag["max_ms"] > 0.0
    assert snapshot["subscription_lag"]["worst"]["cross"]["count"] == 2


@pytest.mark.parametrize("engine", ["mmqjp", "sequential"])
@pytest.mark.parametrize("shards", [1, 2])
def test_metrics_do_not_change_match_sets(engine, shards):
    def keys(metrics: bool):
        with open_broker(
            RuntimeConfig(engine=engine, shards=shards, metrics=metrics)
        ) as broker:
            broker.subscribe(CROSS, subscription_id="cross")
            out = []
            out.extend(broker.publish(make_book_announcement("b1", 1.0)))
            out.extend(broker.publish_many([make_blog_article("g1", 2.0)]))
            return [(d.subscription_id, d.match.key()) for d in out if d.match]

    assert keys(False) == keys(True)


def test_metrics_env_override_enables_a_default_broker(monkeypatch):
    monkeypatch.setenv("REPRO_METRICS", "1")
    with open_broker(RuntimeConfig()) as broker:
        broker.subscribe(CROSS, subscription_id="cross")
        broker.publish(make_book_announcement("b1", 1.0))
        snapshot = broker.metrics_snapshot()
    assert snapshot is not None
    assert snapshot["counters"]["documents_published"] == 1
