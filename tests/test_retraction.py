"""True subscription retraction: cancelled queries leave no trace behind.

The acceptance criteria of the session-API redesign:

* after cancelling all join subscriptions, every engine reports
  ``num_queries == 0``, the template registry / relevance index / plan
  cache hold no postings for the cancelled qids, and join-state row counts
  return to baseline (empty) — across all three engines × 1/2/4 shards ×
  the indexing / plan_cache / prune_dispatch knob matrix;
* a cancel → resubscribe run is match-equivalent to a fresh broker;
* ``unsubscribe`` delegates to the retraction path, with ``mute()`` keeping
  the old deactivate-only behavior.
"""

from __future__ import annotations

import pytest

from repro import RuntimeConfig, open_broker
from repro.pubsub import Broker
from repro.runtime import ShardedBroker
from tests.conftest import (
    PAPER_WINDOWS,
    make_blog_article,
    make_book_announcement,
)

#: Shares the book/blog root and author variables with Q_CAT below.
Q_AUTHOR = (
    "S//book->x1[.//author->x2] "
    "FOLLOWED BY{x2=x5, 100} "
    "S//blog->x4[.//author->x5]"
)
#: Binds the category variables no other query uses.
Q_CAT = (
    "S//book->x1[.//category->x7] "
    "FOLLOWED BY{x7=x8, 100} "
    "S//blog->x4[.//category->x8]"
)

CONFIG_MATRIX = [
    RuntimeConfig(construct_outputs=False, auto_timestamp=False),
    RuntimeConfig.ablation(construct_outputs=False, auto_timestamp=False, shards=1),
]


def _engines(broker):
    """In-process engines reachable for deep state inspection.

    Under the ``"processes"`` runtime (e.g. ``REPRO_EXECUTOR=processes``)
    shard engines live in worker processes and cannot be introspected from
    here; those shards are skipped, and state assertions over the returned
    list become vacuous — the equivalence suites cover that runtime instead.
    """
    if isinstance(broker, ShardedBroker):
        return [shard.engine for shard in broker.shards if hasattr(shard, "engine")]
    return [broker.engine]


def _total_queries(broker):
    """Registered join-query count, summed over shards (both shard flavors)."""
    if isinstance(broker, ShardedBroker):
        return sum(shard.num_queries for shard in broker.shards)
    return broker.engine.num_queries


def _publish_pair(broker, base_ts, suffix=""):
    """One matching book → blog pair (same author/category values)."""
    out = []
    out.extend(broker.publish(make_book_announcement(docid=f"bk{base_ts}{suffix}", timestamp=base_ts)))
    out.extend(
        broker.publish(make_blog_article(docid=f"bl{base_ts}{suffix}", timestamp=base_ts + 1.0))
    )
    return out


def _match_keys(deliveries):
    return sorted(d.match.key() for d in deliveries if d.match is not None)


@pytest.mark.parametrize("engine", ["mmqjp", "mmqjp-vm", "sequential"])
@pytest.mark.parametrize("shards", [1, 2, 4])
@pytest.mark.parametrize("base", CONFIG_MATRIX, ids=["default", "ablation"])
def test_cancel_reclaims_all_state(engine, shards, base):
    config = base.replace(engine=engine, shards=shards)
    with open_broker(config) as broker:
        s1 = broker.subscribe(Q_AUTHOR, subscription_id="qa")
        s2 = broker.subscribe(Q_CAT, subscription_id="qc")
        deliveries = _publish_pair(broker, 1.0)
        assert deliveries, "the workload must actually match before cancelling"

        assert s1.cancel() and s2.cancel()
        assert s1.cancelled and s2.cancelled
        assert not s1.cancel(), "cancel is idempotent"

        for eng in _engines(broker):
            processor = eng._processor()
            state = processor.state
            assert eng.num_queries == 0
            assert state.num_documents == 0
            assert len(state.rbin) == 0 and len(state.rvar) == 0 and len(state.rdoc) == 0
            assert eng.documents == {}
            # no relevance postings for the cancelled qids
            if processor.relevance is not None:
                assert processor.relevance.num_members == 0
                assert not processor.relevance.has_member("qa")
                assert not processor.relevance.has_member("qc")
            # no compiled plans for the cancelled queries
            if eng.plan_cache is not None:
                assert len(eng.plan_cache) == 0
            # the MMQJP registry reports no live templates or queries
            registry = getattr(eng, "registry", None)
            if registry is not None:
                assert registry.num_queries == 0
                assert registry.num_templates == 0
                assert "qa" not in registry and "qc" not in registry
                for entry in registry._entries:
                    assert not entry.rt.rows

        # cancelled ids stay reserved (no silent reuse)
        with pytest.raises(ValueError):
            broker.subscribe(Q_AUTHOR, subscription_id="qa")


@pytest.mark.parametrize("engine", ["mmqjp", "mmqjp-vm", "sequential"])
@pytest.mark.parametrize("shards", [1, 2, 4])
@pytest.mark.parametrize("base", CONFIG_MATRIX, ids=["default", "ablation"])
def test_cancel_then_resubscribe_matches_fresh_broker(engine, shards, base):
    config = base.replace(engine=engine, shards=shards)

    with open_broker(config) as broker:
        broker.subscribe(Q_AUTHOR, subscription_id="old")
        _publish_pair(broker, 1.0, suffix="a")
        broker.cancel("old")
        fresh_sub = broker.subscribe(Q_AUTHOR, subscription_id="new")
        later = _publish_pair(broker, 50.0, suffix="b")
        churned_keys = _match_keys(later)
        assert fresh_sub.num_results == len(churned_keys)

    with open_broker(config) as fresh:
        fresh.subscribe(Q_AUTHOR, subscription_id="new")
        fresh_keys = _match_keys(_publish_pair(fresh, 50.0, suffix="b"))

    assert churned_keys == fresh_keys
    assert churned_keys, "the resubscribed query must match the later pair"


@pytest.mark.parametrize("engine", ["mmqjp", "sequential"])
def test_partial_cancel_drops_only_dead_variable_rows(engine):
    config = RuntimeConfig(
        engine=engine, construct_outputs=False, auto_timestamp=False
    )
    with open_broker(config) as broker:
        broker.subscribe(Q_AUTHOR, subscription_id="qa")
        broker.subscribe(Q_CAT, subscription_id="qc")
        _publish_pair(broker, 1.0)
        eng = broker.engine
        state = eng._processor().state
        rvar_before = len(state.rvar)
        rbin_before = len(state.rbin)

        broker.cancel("qc")

        # the category variables died with qc -> their rows are reclaimed
        # (these reduced graphs have no structural edges, so Rbin stays as it
        # was — the per-variable rows live in Rvar)
        assert len(state.rvar) < rvar_before
        assert len(state.rbin) <= rbin_before
        assert eng.num_queries == 1
        assert state.num_documents > 0, "shared state documents survive"

        # the surviving subscription still matches future documents
        deliveries = _publish_pair(broker, 50.0, suffix="later")
        assert any(d.match is not None for d in deliveries)


def test_deregister_unknown_query_raises():
    config = RuntimeConfig(construct_outputs=False)
    with open_broker(config) as broker:
        with pytest.raises(KeyError):
            broker.engine.deregister_query("ghost")


@pytest.mark.parametrize("shards", [1, 2])
def test_unsubscribe_now_retracts_and_mute_keeps_registered(shards):
    config = RuntimeConfig(construct_outputs=False, auto_timestamp=False, shards=shards)
    with open_broker(config) as broker:
        sub_mute = broker.subscribe(Q_AUTHOR, subscription_id="muted")
        sub_gone = broker.subscribe(Q_CAT, subscription_id="gone")
        total = lambda: _total_queries(broker)
        assert total() == 2

        broker.mute("muted")
        assert total() == 2, "mute keeps the query registered"
        assert not sub_mute.active and not sub_mute.cancelled

        broker.unsubscribe("gone")
        assert total() == 1, "unsubscribe delegates to the retraction path"
        assert sub_gone.cancelled

        sub_mute.resume()
        assert sub_mute.active
        deliveries = _publish_pair(broker, 1.0)
        assert any(d.subscription_id == "muted" for d in deliveries)


def test_filter_subscription_cancel_releases_evaluator_state():
    with open_broker(RuntimeConfig()) as broker:
        sub = broker.subscribe("S//blog->b[.//author->a]", subscription_id="f1")
        keep = broker.subscribe("S//book->k", subscription_id="f2")
        front = broker._filters
        assert front.num_subscriptions == 2
        assert "b" in front.evaluator.variables

        sub.cancel()
        assert front.num_subscriptions == 1
        assert "b" not in front.evaluator.variables
        assert "a" not in front.evaluator.variables
        assert "k" in front.evaluator.variables

        # the surviving filter still fires; the cancelled one stays silent
        broker.publish(make_blog_article(docid="b1", timestamp=1.0))
        broker.publish(make_book_announcement(docid="k1", timestamp=2.0))
        assert sub.num_results == 0
        assert keep.num_results == 1


def test_pause_resume_round_trip_delivers_again():
    with open_broker(RuntimeConfig(construct_outputs=False, auto_timestamp=False)) as broker:
        sub = broker.subscribe(Q_AUTHOR)
        _publish_pair(broker, 1.0)
        first = sub.num_results
        assert first > 0
        sub.pause()
        _publish_pair(broker, 20.0, suffix="p")
        assert sub.num_results == first
        sub.resume()
        _publish_pair(broker, 60.0, suffix="r")
        assert sub.num_results > first


def test_cancelled_subscription_cannot_resume():
    with open_broker(RuntimeConfig(construct_outputs=False)) as broker:
        sub = broker.subscribe(Q_AUTHOR)
        sub.cancel()
        with pytest.raises(RuntimeError):
            sub.resume()


def test_sharded_cancel_releases_partitioner_load():
    with ShardedBroker(RuntimeConfig(shards=2, construct_outputs=False)) as broker:
        sub = broker.subscribe(Q_AUTHOR, subscription_id="qa")
        shard_id = broker.shard_of("qa")
        assert shard_id is not None
        assert sum(broker._partitioner.loads) == 1
        sub.cancel()
        assert sum(broker._partitioner.loads) == 0
        assert broker.shard_of("qa") is None
        assert broker.shards[shard_id].num_queries == 0


def test_template_revival_after_full_cancel():
    """A retired template is revived in place when an equivalent query returns."""
    with open_broker(RuntimeConfig(engine="mmqjp", construct_outputs=False)) as broker:
        broker.subscribe(Q_AUTHOR, subscription_id="a1")
        registry = broker.engine.registry
        assert registry.num_templates == 1
        broker.cancel("a1")
        assert registry.num_templates == 0
        assert registry.num_retired_templates == 1
        broker.subscribe(Q_AUTHOR, subscription_id="a2")
        assert registry.num_templates == 1
        assert registry.num_retired_templates == 0
