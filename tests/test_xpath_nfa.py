"""Unit tests for the shared path NFA (YFilter-style matching)."""

import pytest

from repro.xmlmodel import XmlDocument, element, parse_document
from repro.xpath import PathNFA, parse_path


@pytest.fixture
def catalog_doc() -> XmlDocument:
    return parse_document(
        "<catalog>"
        "  <book><title>T1</title><author>A1</author></book>"
        "  <box><book><title>T2</title></book></box>"
        "  <magazine><title>M1</title></magazine>"
        "</catalog>"
    )


def test_descendant_path_matches_at_any_depth(catalog_doc):
    nfa = PathNFA()
    nfa.add_path("books", parse_path("//book"))
    matches = nfa.match_document(catalog_doc)
    assert {catalog_doc.node(n).tag for n in matches["books"]} == {"book"}
    assert len(matches["books"]) == 2


def test_child_path_matches_only_direct_children(catalog_doc):
    nfa = PathNFA()
    nfa.add_path("direct", parse_path("/catalog/book"))
    matches = nfa.match_document(catalog_doc)
    assert len(matches["direct"]) == 1


def test_multi_step_descendant_path(catalog_doc):
    nfa = PathNFA()
    nfa.add_path("book_titles", parse_path("//book//title"))
    matches = nfa.match_document(catalog_doc)
    values = sorted(catalog_doc.node(n).string_value() for n in matches["book_titles"])
    assert values == ["T1", "T2"]


def test_wildcard_step(catalog_doc):
    nfa = PathNFA()
    nfa.add_path("all_titles", parse_path("//*//title"))
    matches = nfa.match_document(catalog_doc)
    assert len(matches["all_titles"]) == 3


def test_unmatched_path_absent_from_result(catalog_doc):
    nfa = PathNFA()
    nfa.add_path("missing", parse_path("//newspaper"))
    assert "missing" not in nfa.match_document(catalog_doc)


def test_root_element_matches_descendant_path():
    nfa = PathNFA()
    nfa.add_path("item", parse_path("//item"))
    doc = XmlDocument(element("item", element("title", text="x")))
    assert nfa.match_document(doc)["item"] == {0}


def test_shared_prefixes_share_states():
    solo = PathNFA()
    solo.add_path("a", parse_path("//book//title"))
    states_single = solo.num_states

    shared = PathNFA()
    shared.add_path("a", parse_path("//book//title"))
    shared.add_path("b", parse_path("//book//author"))
    # The //book prefix is shared, so only one extra state is needed.
    assert shared.num_states == states_single + 1


def test_duplicate_registration_is_idempotent():
    nfa = PathNFA()
    nfa.add_path("a", parse_path("//book"))
    nfa.add_path("a", parse_path("//book"))
    assert len(nfa.paths) == 1


def test_conflicting_registration_rejected():
    nfa = PathNFA()
    nfa.add_path("a", parse_path("//book"))
    with pytest.raises(ValueError):
        nfa.add_path("a", parse_path("//blog"))


def test_relative_path_rejected():
    nfa = PathNFA()
    with pytest.raises(ValueError):
        nfa.add_path("a", parse_path(".//book"))


def test_match_nodes_restricted_to_keys(catalog_doc):
    nfa = PathNFA()
    nfa.add_path("books", parse_path("//book"))
    nfa.add_path("titles", parse_path("//title"))
    restricted = nfa.match_nodes(catalog_doc, ["books"])
    assert set(restricted) == {"books"}


def test_many_paths_one_pass(catalog_doc):
    nfa = PathNFA()
    for tag in ("book", "title", "author", "magazine", "box", "nothing"):
        nfa.add_path(tag, parse_path(f"//{tag}"))
    matches = nfa.match_document(catalog_doc)
    assert set(matches) == {"book", "title", "author", "magazine", "box"}
