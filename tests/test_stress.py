"""The stress harness: phases, per-phase tails, and population bookkeeping."""

from __future__ import annotations

from repro import RuntimeConfig, StressConfig, run_stress
from repro.workloads.dblp import DblpWorkloadConfig

#: Small but dense: joins must actually fire so every phase reports tails.
TINY_STRESS = StressConfig(
    subscriptions=300,
    workload=DblpWorkloadConfig(num_venues=5, num_authors=40, title_pool_size=20),
    ramp_chunk=100,
    ramp_probe_documents=3,
    steady_documents=15,
    burst_count=2,
    burst_size=10,
    churn_cycles=20,
    churn_publish_every=5,
)


def test_run_stress_reports_every_phase():
    report = run_stress(TINY_STRESS)

    assert report["live_subscriptions"] == 300
    assert set(report["phases"]) == {"ramp", "steady", "burst", "churn"}
    # Template sharing must hold at scale: 3 shapes, a handful of templates.
    assert 1 <= report["num_templates"] <= 3

    ramp = report["phases"]["ramp"]
    assert ramp["subscriptions"] == 300
    assert len(ramp["chunk_seconds"]) == 3
    assert ramp["documents_published"] == 3 * 3  # probes between chunks

    steady = report["phases"]["steady"]
    assert steady["documents_published"] == 15
    tails = steady["publish_latency"]
    assert tails["count"] == 15
    assert 0.0 < tails["p50_ms"] <= tails["p95_ms"] <= tails["p99_ms"] <= tails["max_ms"]
    assert steady["delivery_lag"]["count"] == steady["results_delivered"] > 0

    burst = report["phases"]["burst"]
    assert burst["documents_published"] == 2 * 10
    assert burst["publish_batch_latency"]["count"] == 2

    churn = report["phases"]["churn"]
    assert churn["cycles"] == 20
    assert churn["documents_published"] == 4  # every 5th of 20 cycles

    final = report["final_metrics"]
    assert final["counters"]["documents_published"] == report["documents_published"]
    assert final["histograms"]["delivery_lag"]["count"] > 0
    assert final["subscription_lag"]["tracked"] > 0


def test_run_stress_forces_metrics_on():
    config = StressConfig(runtime=RuntimeConfig(construct_outputs=False))
    assert config.resolve_runtime().metrics is True
    assert StressConfig().resolve_runtime().metrics is True


def test_run_stress_respects_a_custom_runtime():
    stress = StressConfig(
        subscriptions=60,
        workload=TINY_STRESS.workload,
        runtime=RuntimeConfig(construct_outputs=False, shards=2),
        ramp_chunk=30,
        ramp_probe_documents=2,
        steady_documents=5,
        burst_count=1,
        burst_size=5,
        churn_cycles=5,
        churn_publish_every=2,
    )
    report = run_stress(stress)
    assert report["live_subscriptions"] == 60
    assert report["phases"]["churn"]["documents_published"] == 3
