"""Cross-engine equivalence: MMQJP (all variants) must agree with Sequential.

This is the central correctness property of the paper — evaluating all
queries of a template at once through the shared conjunctive query must
produce exactly the same results as evaluating every query separately.  We
check it on randomly generated workloads and document streams.
"""

from __future__ import annotations

import random

import pytest

from repro.core import MMQJPEngine, SequentialEngine
from repro.workloads.querygen import QueryWorkloadConfig, generate_queries
from repro.workloads.rss import RssStreamConfig, generate_rss_queries, generate_rss_stream
from repro.workloads.synthetic import build_document
from repro.xmlmodel.schema import three_level_schema, two_level_schema


def _random_documents(schema, num_docs: int, value_pool: int, seed: int):
    """Documents with leaf values drawn from a small pool so joins fire."""
    rng = random.Random(seed)
    docs = []
    for i in range(num_docs):
        values = [f"val{rng.randrange(value_pool)}" for _ in range(schema.num_leaves)]
        docs.append(
            build_document(schema, docid=f"doc{i}", timestamp=float(i + 1), leaf_values=values)
        )
    return docs


def _match_keys(engine, queries, documents):
    for i, query in enumerate(queries):
        engine.register_query(query, qid=f"q{i}")
    keys = set()
    for document in documents:
        # Documents are re-built per engine because node objects are mutated
        # (ids) when attached to a document; values identical.
        keys.update(m.key() for m in engine.process_document(document))
    return keys


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_equivalence_on_flat_schema_stream(seed):
    schema = two_level_schema(4)
    queries = generate_queries(
        QueryWorkloadConfig(schema=schema, num_queries=40, zipf_theta=0.8, window=3.0, seed=seed)
    )
    mmqjp_keys = _match_keys(
        MMQJPEngine(store_documents=False), queries, _random_documents(schema, 8, 3, seed)
    )
    seq_keys = _match_keys(
        SequentialEngine(store_documents=False), queries, _random_documents(schema, 8, 3, seed)
    )
    assert mmqjp_keys == seq_keys
    assert mmqjp_keys  # the workload is dense enough that something matches


@pytest.mark.parametrize("seed", [4, 5])
def test_equivalence_on_complex_schema_stream(seed):
    schema = three_level_schema(branching=3)
    queries = generate_queries(
        QueryWorkloadConfig(
            schema=schema, num_queries=30, zipf_theta=0.8, max_value_joins=3, window=5.0, seed=seed
        )
    )
    documents = _random_documents(schema, 6, 2, seed)
    mmqjp_keys = _match_keys(MMQJPEngine(store_documents=False), queries, _random_documents(schema, 6, 2, seed))
    seq_keys = _match_keys(SequentialEngine(store_documents=False), queries, documents)
    assert mmqjp_keys == seq_keys


def test_equivalence_of_view_materialization_variants():
    schema = two_level_schema(5)
    queries = generate_queries(
        QueryWorkloadConfig(schema=schema, num_queries=30, zipf_theta=0.4, window=4.0, seed=9)
    )
    plain = _match_keys(
        MMQJPEngine(store_documents=False), queries, _random_documents(schema, 8, 3, 9)
    )
    vm = _match_keys(
        MMQJPEngine(use_view_materialization=True, store_documents=False),
        queries,
        _random_documents(schema, 8, 3, 9),
    )
    vm_cached = _match_keys(
        MMQJPEngine(view_cache_size=32, store_documents=False),
        queries,
        _random_documents(schema, 8, 3, 9),
    )
    assert plain == vm == vm_cached
    assert plain


def test_equivalence_on_rss_stream():
    queries = generate_rss_queries(25, seed=3)
    # One hand-written subscription guaranteed to fire: two items from the
    # same channel.
    same_channel = (
        "S//item->i[.//channel_url->c] FOLLOWED BY{c=c, INF} S//item->i[.//channel_url->c]"
    )

    def run(engine):
        engine.register_query(same_channel, qid="same-channel")
        for i, query in enumerate(queries):
            engine.register_query(query, qid=f"q{i}")
        keys = set()
        for doc in generate_rss_stream(RssStreamConfig(num_items=25, num_channels=4, seed=2)):
            keys.update(m.key() for m in engine.process_document(doc))
        return keys

    mmqjp = run(MMQJPEngine(store_documents=False, auto_timestamp=False))
    vm = run(MMQJPEngine(use_view_materialization=True, store_documents=False, auto_timestamp=False))
    seq = run(SequentialEngine(store_documents=False, auto_timestamp=False))
    assert mmqjp == vm == seq
    assert mmqjp  # channel_url collisions guarantee matches
