"""Tests for template enumeration (Table 3)."""

import pytest

from repro.templates import TemplateRegistry, count_templates, enumerate_template_queries
from repro.templates.enumerate import set_partitions, template_count_table


def test_set_partitions_counts_are_bell_numbers():
    assert len(list(set_partitions([]))) == 1
    assert len(list(set_partitions([1]))) == 1
    assert len(list(set_partitions([1, 2]))) == 2
    assert len(list(set_partitions([1, 2, 3]))) == 5
    assert len(list(set_partitions([1, 2, 3, 4]))) == 15


def test_set_partitions_cover_all_items():
    for partition in set_partitions([1, 2, 3]):
        flattened = sorted(x for block in partition for x in block)
        assert flattened == [1, 2, 3]


@pytest.mark.parametrize(
    "num_value_joins, expected_flat",
    [(1, 1), (2, 3), (3, 6)],
)
def test_flat_schema_template_counts_match_table3(num_value_joins, expected_flat):
    assert count_templates(num_value_joins, "flat") == expected_flat


@pytest.mark.parametrize(
    "num_value_joins, expected_complex",
    [(1, 1), (2, 3), (3, 16)],
)
def test_complex_schema_template_counts_match_table3(num_value_joins, expected_complex):
    assert count_templates(num_value_joins, "complex") == expected_complex


@pytest.mark.slow
def test_four_value_join_counts():
    """Table 3's last row: 16 flat templates, fewer than 230 complex ones."""
    assert count_templates(4, "flat") == 16
    assert count_templates(4, "complex") < 230


def test_template_count_table_shape():
    rows = template_count_table(2)
    assert [r["value_joins"] for r in rows] == [1, 2]
    assert rows[0]["templates_flat"] == 1
    assert rows[1]["templates_complex"] == 3


def test_enumerated_queries_have_requested_value_joins():
    queries = list(enumerate_template_queries(2, "flat"))
    assert queries
    assert all(len(q.join.predicates) == 2 for q in queries)
    # No duplicated predicates (those would really be 1-value-join queries).
    for query in queries:
        assert len(set(query.join.predicates)) == 2


def test_enumerated_queries_register_cleanly():
    registry = TemplateRegistry()
    for i, query in enumerate(enumerate_template_queries(2, "complex")):
        registry.add_query(f"e{i}", query)
    assert registry.num_templates == 3


def test_invalid_value_join_count_rejected():
    with pytest.raises(ValueError):
        list(enumerate_template_queries(0, "flat"))
