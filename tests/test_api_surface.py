"""API-surface snapshot: the curated public symbol inventory.

Guards the session-API redesign's contract: additions to the public surface
are deliberate (update the snapshot in the same PR), removals and renames
never happen by accident.  Every symbol in ``__all__`` must also resolve.
"""

from __future__ import annotations

import os

import pytest

import repro
import repro.core
import repro.pubsub
import repro.runtime

REPRO_ALL = {
    # session API
    "RuntimeConfig",
    "open_broker",
    "ENGINES",
    # brokers and subscriptions
    "Broker",
    "ShardedBroker",
    "Subscription",
    "SubscriptionResult",
    # delivery sinks
    "DeliverySink",
    "CallbackSink",
    "CollectingSink",
    "QueueSink",
    "BatchingSink",
    # durable storage
    "StateStore",
    "MemoryStore",
    "SQLiteStore",
    "RecoveryError",
    # observability and stress
    "MetricsRegistry",
    "StressConfig",
    "run_stress",
    # engines and matches
    "MMQJPEngine",
    "SequentialEngine",
    "Match",
    # documents and queries
    "XmlDocument",
    "element",
    "parse_document",
    "to_xml",
    "parse_query",
    "XsclQuery",
    "__version__",
}

PUBSUB_ALL = {
    "Subscription",
    "SubscriptionResult",
    "DEFAULT_RESULT_LIMIT",
    "DeliverySink",
    "CallbackSink",
    "CollectingSink",
    "QueueSink",
    "BatchingSink",
    "Stream",
    "StreamRegistry",
    "FilterFrontEnd",
    "Broker",
}

RUNTIME_ALL = {
    "ShardedBroker",
    "EngineShard",
    "Partitioner",
    "HashTemplatePartitioner",
    "LeastLoadedPartitioner",
    "PARTITIONERS",
    "make_partitioner",
    "template_key",
    "ShardExecutor",
    "SerialExecutor",
    "ThreadedExecutor",
    "ProcessExecutor",
    "EXECUTORS",
    "make_executor",
    "executor_env_override",
    "ProcessShardHandle",
    "ShardWorkerGroup",
    "ShardWorkerError",
    "ShardRouter",
}

CORE_ALL = {
    "CostBreakdown",
    "ENGINES",
    "EngineStats",
    "make_engine",
    "merge_engine_stats",
    "JoinState",
    "WitnessRelations",
    "Match",
    "ViewCache",
    "MaterializedViews",
    "compute_materialized_views",
    "MMQJPJoinProcessor",
    "SequentialJoinProcessor",
    "RelevanceIndex",
    "MMQJPEngine",
    "SequentialEngine",
}


@pytest.mark.parametrize(
    "module, expected",
    [
        (repro, REPRO_ALL),
        (repro.pubsub, PUBSUB_ALL),
        (repro.runtime, RUNTIME_ALL),
        (repro.core, set(CORE_ALL)),
    ],
    ids=["repro", "repro.pubsub", "repro.runtime", "repro.core"],
)
def test_public_symbol_inventory(module, expected):
    actual = set(module.__all__)
    missing = expected - actual
    unexpected = actual - expected
    assert not missing and not unexpected, (
        f"{module.__name__}.__all__ drifted: missing={sorted(missing)} "
        f"unexpected={sorted(unexpected)} — if intentional, update this snapshot"
    )


@pytest.mark.parametrize(
    "module",
    [repro, repro.pubsub, repro.runtime, repro.core],
    ids=["repro", "repro.pubsub", "repro.runtime", "repro.core"],
)
def test_every_public_symbol_resolves(module):
    for name in module.__all__:
        assert hasattr(module, name), f"{module.__name__}.{name} does not resolve"


def test_py_typed_marker_ships():
    marker = os.path.join(os.path.dirname(repro.__file__), "py.typed")
    assert os.path.exists(marker), "the py.typed marker must ship with the package"


def test_subscription_lifecycle_surface():
    """The Subscription handle exposes the full lifecycle contract."""
    for method in ("pause", "resume", "cancel", "deliver", "attach_sink", "flush"):
        assert callable(getattr(repro.Subscription, method, None)), method


def test_broker_session_surface():
    """Both broker flavors honor the session contract behind open_broker."""
    for cls in (repro.Broker, repro.ShardedBroker):
        for method in ("subscribe", "cancel", "unsubscribe", "mute", "publish",
                       "publish_many", "prune", "stats", "close", "__enter__", "__exit__"):
            assert callable(getattr(cls, method, None)), f"{cls.__name__}.{method}"
