"""Unit tests for query templates and isomorphism matching."""

import pytest

from repro.templates import JoinGraph, QueryTemplate, Side, reduce_join_graph
from repro.xscl import parse_query
from tests.conftest import PAPER_Q1, PAPER_Q2, PAPER_Q3, PAPER_WINDOWS


def _reduced(text: str):
    return reduce_join_graph(JoinGraph.from_query(parse_query(text, window_symbols=PAPER_WINDOWS)))


@pytest.fixture
def q1_template():
    template, assignment = QueryTemplate.from_reduced(0, _reduced(PAPER_Q1))
    return template, assignment


def test_template_structure_matches_figure5(q1_template):
    template, _ = q1_template
    assert len(template.meta_order) == 6
    assert len(template.structural_edges) == 4
    assert len(template.value_edges) == 2
    sides = [template.node_sides[m] for m in template.meta_order]
    assert sides.count(Side.LEFT) == 3
    assert sides.count(Side.RIGHT) == 3


def test_creating_assignment_covers_all_meta_vars(q1_template):
    template, assignment = q1_template
    assert set(assignment.assignment) == set(template.meta_order)
    assert set(assignment.assignment.values()) == {"x1", "x2", "x3", "x4", "x5", "x6"}


def test_rt_values_order(q1_template):
    template, assignment = q1_template
    row = assignment.rt_values("Q1", 10.0)
    assert row[0] == "Q1"
    assert row[-1] == 10.0
    assert len(row) == len(template.meta_order) + 2


def test_q2_and_q3_match_q1_template(q1_template):
    template, _ = q1_template
    for text in (PAPER_Q2, PAPER_Q3):
        assignment = template.match(_reduced(text))
        assert assignment is not None
        assert set(assignment.assignment) == set(template.meta_order)


def test_q3_assignment_uses_same_names_for_both_sides(q1_template):
    template, _ = q1_template
    assignment = template.match(_reduced(PAPER_Q3))
    values = list(assignment.assignment.values())
    # x4, x5, x6 each appear twice (once per block side).
    assert sorted(values) == ["x4", "x4", "x5", "x5", "x6", "x6"]


def test_non_isomorphic_query_does_not_match(q1_template):
    template, _ = q1_template
    single_vj = _reduced("S//a->r[.//b->x] FOLLOWED BY{x=u, 1} S//c->r2[.//d->u]")
    assert template.match(single_vj) is None


def test_side_asymmetry_respected():
    """1 left leaf vs 2 right leaves is a different template than its mirror."""
    one_two = _reduced(
        "S//a->r[.//b->x] FOLLOWED BY{x=u AND x=v, 1} S//c->r2[.//d->u][.//e->v]"
    )
    two_one = _reduced(
        "S//a->r[.//b->x][.//c->y] FOLLOWED BY{x=u AND y=u, 1} S//d->r2[.//e->u]"
    )
    template, _ = QueryTemplate.from_reduced(0, one_two)
    assert template.match(two_one) is None
    assert template.match(one_two) is not None


def test_assignment_respects_graph_structure():
    """The matched assignment must map value-join partners consistently."""
    template, _ = QueryTemplate.from_reduced(0, _reduced(PAPER_Q1))
    assignment = template.match(_reduced(PAPER_Q2))
    mapping = assignment.assignment
    for left_meta, right_meta in template.value_edges:
        left_var, right_var = mapping[left_meta], mapping[right_meta]
        # Q2's value joins are x2=x5 and x7=x8.
        assert (left_var, right_var) in {("x2", "x5"), ("x7", "x8")}


def test_helper_accessors(q1_template):
    template, _ = q1_template
    assert template.rt_relation_name() == "RT_0"
    assert template.out_relation_name() == "Rout_0"
    assert template.rt_schema()[0] == "qid"
    assert template.rt_schema()[-1] == "wl"
    assert template.isolated_meta_vars() == []
    assert template.num_value_joins == 2
    roots = [m for m in template.meta_order if template.structural_parent_of(m) is None]
    assert len(roots) == 2
