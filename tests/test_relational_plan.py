"""Compiled query plans: equivalence with the per-call evaluator, the stats
epoch of the plan cache, and the adaptive growth budget."""

import pytest

from repro.relational.conjunctive import ConjunctiveQuery, evaluate_conjunctive
from repro.relational.database import IndexedDatabase
from repro.relational.plan import (
    CompiledPlan,
    PlanBudgetExceeded,
    PlanCache,
    compile_plan,
)
from repro.relational.relation import Relation
from repro.relational.schema import SchemaError
from repro.relational.terms import Const, Var


def _db(**relations):
    return dict(relations)


def _rel(attrs, rows):
    return Relation(attrs, rows)


def _query(head_schema, head_terms, atoms, distinct=True):
    cq = ConjunctiveQuery(
        head_name="out", head_schema=head_schema, head_terms=head_terms, distinct=distinct
    )
    for name, terms in atoms:
        cq.add_atom(name, terms)
    return cq


def assert_same_result(cq, relations):
    expected = evaluate_conjunctive(cq, relations)
    plan = compile_plan(cq, relations)
    actual = plan.execute(relations)
    assert sorted(actual.rows) == sorted(expected.rows)
    assert actual.schema == expected.schema
    return plan


# --------------------------------------------------------------------------- #
# result equivalence
# --------------------------------------------------------------------------- #
def test_simple_join_matches_evaluator():
    relations = _db(
        R=_rel(["a", "b"], [(1, 10), (2, 20), (2, 21)]),
        S=_rel(["b", "c"], [(10, "x"), (20, "y"), (21, "y"), (99, "z")]),
    )
    cq = _query(
        ["a", "c"], [Var("a"), Var("c")],
        [("R", [Var("a"), Var("b")]), ("S", [Var("b"), Var("c")])],
    )
    assert_same_result(cq, relations)


def test_constants_and_repeated_variables():
    relations = _db(
        R=_rel(["a", "b", "c"], [(1, 1, "k"), (1, 2, "k"), (3, 3, "m"), (4, 4, "k")]),
    )
    # Repeated fresh variable within the atom plus a constant check.
    cq = _query(
        ["a"], [Var("a")],
        [("R", [Var("a"), Var("a"), Const("k")])],
    )
    assert_same_result(cq, relations)


def test_cartesian_step():
    relations = _db(
        R=_rel(["a"], [(1,), (2,)]),
        S=_rel(["b"], [(10,), (20,)]),
    )
    cq = _query(
        ["a", "b"], [Var("a"), Var("b")],
        [("R", [Var("a")]), ("S", [Var("b")])],
    )
    assert_same_result(cq, relations)


def test_empty_body_constant_head():
    cq = _query(["k"], [Const(7)], [])
    result = compile_plan(cq, {}).execute({})
    assert result.rows == [(7,)]
    assert result.rows == evaluate_conjunctive(cq, {}).rows


def test_empty_relation_short_circuits():
    relations = _db(
        R=_rel(["a"], []),
        S=_rel(["a", "b"], [(1, 2)]),
    )
    cq = _query(
        ["b"], [Var("b")],
        [("R", [Var("a")]), ("S", [Var("a"), Var("b")])],
    )
    plan = assert_same_result(cq, relations)
    assert plan.execute(relations).rows == []


def test_unbound_head_variable_raises_only_with_solutions():
    relations = _db(R=_rel(["a"], [(1,)]))
    cq = _query(["z"], [Var("z")], [("R", [Var("a")])])
    plan = compile_plan(cq, relations)
    with pytest.raises(SchemaError):
        plan.execute(relations)
    # With no solutions the evaluator returns empty instead of raising.
    empty = _db(R=_rel(["a"], []))
    assert compile_plan(cq, empty).execute(empty).rows == []
    assert evaluate_conjunctive(cq, empty).rows == []


def test_distinct_false_keeps_duplicates():
    relations = _db(R=_rel(["a", "b"], [(1, 1), (1, 2)]))
    cq = _query(["a"], [Var("a")], [("R", [Var("a"), Var("b")])], distinct=False)
    result = compile_plan(cq, relations).execute(relations)
    assert sorted(result.rows) == [(1,), (1,)]


def test_arity_mismatch_raises_at_compile_time():
    relations = _db(R=_rel(["a", "b"], [(1, 2)]))
    cq = _query(["a"], [Var("a")], [("R", [Var("a")])])
    with pytest.raises(SchemaError):
        compile_plan(cq, relations)


def test_unknown_relation_raises_at_compile_time():
    cq = _query(["a"], [Var("a")], [("Nope", [Var("a")])])
    with pytest.raises(SchemaError):
        compile_plan(cq, {"R": _rel(["a"], [])})


# --------------------------------------------------------------------------- #
# indexed environments
# --------------------------------------------------------------------------- #
def test_compiled_plan_uses_persistent_indexes():
    env = IndexedDatabase(indexing="eager")
    state = _rel(["a", "b"], [(1, 10), (2, 20)])
    env.bind("R", state, indexed=True)
    env.bind("W", _rel(["b", "c"], [(10, "x"), (20, "y")]))
    cq = _query(
        ["a", "c"], [Var("a"), Var("c")],
        [("W", [Var("b"), Var("c")]), ("R", [Var("a"), Var("b")])],
    )
    plan = compile_plan(cq, env)
    before = state.num_indexes
    result = plan.execute(env)
    assert sorted(result.rows) == [(1, "x"), (2, "y")]
    # The indexed relation is probed through a live index, built on demand.
    assert state.num_indexes >= max(before, 1)
    # The index stays current under inserts.
    state.insert((3, 30))
    env.bind("W", _rel(["b", "c"], [(30, "z")]))
    assert plan.execute(env).rows == [(3, "z")]


# --------------------------------------------------------------------------- #
# the plan cache and its stats epoch
# --------------------------------------------------------------------------- #
def _cache_env(num_rows):
    env = IndexedDatabase(indexing="eager")
    env.bind("R", _rel(["a", "b"], [(i, i * 10) for i in range(num_rows)]), indexed=True)
    env.bind("W", _rel(["b"], [(10,)]))
    return env


CQ = _query(
    ["a"], [Var("a")],
    [("R", [Var("a"), Var("b")]), ("W", [Var("b")])],
)


def test_plan_cache_hits_on_unchanged_stats():
    env = _cache_env(4)
    cache = PlanCache()
    first = cache.evaluate(CQ, env)
    second = cache.evaluate(CQ, env)
    assert sorted(first.rows) == sorted(second.rows) == [(1,)]
    assert cache.stats() == {"plans": 1, "hits": 1, "misses": 1, "replans": 0, "aborts": 0}


def test_plan_cache_survives_small_growth():
    env = _cache_env(8)
    cache = PlanCache()
    cache.evaluate(CQ, env)
    env["R"].insert((8, 80))  # 8 -> 9 rows: same power-of-two bucket
    cache.evaluate(CQ, env)
    assert cache.replans == 0
    assert cache.hits == 1


def test_plan_cache_replans_on_stats_drift():
    env = _cache_env(8)
    cache = PlanCache()
    cache.evaluate(CQ, env)
    for i in range(100, 200):  # 8 -> 108 rows: several buckets up
        env["R"].insert((i, i * 10))
    cache.evaluate(CQ, env)
    assert cache.replans == 1
    # The refreshed plan is current again afterwards.
    cache.evaluate(CQ, env)
    assert cache.hits == 1


def test_plan_cache_ignores_ephemeral_churn():
    env = _cache_env(4)
    cache = PlanCache()
    cache.evaluate(CQ, env)
    # Rebinding the ephemeral relation with wildly different sizes must not
    # invalidate the plan: only stable (indexed) relations carry the epoch.
    env.bind("W", _rel(["b"], [(i,) for i in range(500)]))
    cache.evaluate(CQ, env)
    assert cache.replans == 0
    assert cache.hits == 1


def test_plan_distinguishes_stable_relations():
    env = _cache_env(4)
    plan = compile_plan(CQ, env)
    assert plan.is_current(env)
    # Dropping the stable relation invalidates the plan outright.
    env.unbind("R")
    assert not plan.is_current(env)


# --------------------------------------------------------------------------- #
# the adaptive growth budget
# --------------------------------------------------------------------------- #
def _blowup_env(n):
    """Two relations whose cartesian product has n * n rows."""
    return _db(
        A=_rel(["a"], [(i,) for i in range(n)]),
        B=_rel(["b"], [(i,) for i in range(n)]),
    )


BLOWUP_CQ = _query(
    ["a", "b"], [Var("a"), Var("b")],
    [("A", [Var("a")]), ("B", [Var("b")])],
)


def test_budget_aborts_oversized_execution():
    relations = _blowup_env(40)  # 1600 intermediate solutions
    plan = compile_plan(BLOWUP_CQ, relations)
    with pytest.raises(PlanBudgetExceeded):
        plan.execute(relations, growth_limit=100)
    # Unbudgeted execution completes.
    assert len(plan.execute(relations).rows) == 1600


def test_cache_replans_and_recovers_after_abort():
    relations = _blowup_env(40)
    cache = PlanCache(growth_limit=100)
    first = cache.evaluate(BLOWUP_CQ, relations)  # fresh compile: unbudgeted
    assert len(first.rows) == 1600
    second = cache.evaluate(BLOWUP_CQ, relations)  # cached: aborts, replans
    assert len(second.rows) == 1600
    assert cache.aborts == 1


def test_plan_for_shares_cache_with_evaluate():
    env = _cache_env(4)
    cache = PlanCache()
    plan = cache.plan_for(CQ, env)
    assert cache.plan_for(CQ, env) is plan
    cache.evaluate(CQ, env)
    assert cache.stats()["plans"] == 1
    assert cache.hits == 2 and cache.misses == 1


def test_processors_accept_preconfigured_plan_cache():
    from repro.core.processor import MMQJPJoinProcessor, SequentialJoinProcessor
    from repro.templates.registry import TemplateRegistry

    cache = PlanCache(growth_limit=10)
    processor = MMQJPJoinProcessor(TemplateRegistry(), plan_cache=cache)
    assert processor.plan_cache is cache
    sequential = SequentialJoinProcessor(plan_cache=cache)
    assert sequential.plan_cache is cache
    assert MMQJPJoinProcessor(TemplateRegistry(), plan_cache=False).plan_cache is None
