"""Unit tests of the repro.storage protocol and its two backends.

Both backends are driven through the same scenarios where the protocol is
backend-agnostic (epoch atomicity, partition-replace upserts, registry /
catalog / meta round-trips, fault-injection aborts); SQLite-specific
behavior (WAL mode, typed schemas, durability across close/reopen, relaxed
write-behind) gets its own cases.
"""

from __future__ import annotations

import os

import pytest

from repro.config import RuntimeConfig
from repro.storage import (
    STABLE_RELATIONS,
    MemoryStore,
    SQLiteStore,
    StoredDocument,
    SubscriptionRecord,
    open_member_store,
    resolve_storage,
    storage_env_overrides,
)
from repro.storage.sqlite import RELAXED_COMMIT_EVERY, sql_type_of
from repro.templates.cqt import RELATION_SCHEMAS


@pytest.fixture(params=["memory", "sqlite"])
def store(request, tmp_path):
    if request.param == "memory":
        s = MemoryStore()
    else:
        s = SQLiteStore(str(tmp_path / "state.sqlite3"))
    yield s
    s.close()


def _rbin_row(docid: str, n: int = 1) -> tuple:
    return (docid, "x1", "x2", n, n + 1)


def _commit_doc(store, docid: str, rows=None) -> None:
    store.begin_epoch(docid)
    store.upsert_rows("Rbin", docid, rows if rows is not None else [_rbin_row(docid)])
    store.commit_epoch()


# --------------------------------------------------------------------- #
# epochs
# --------------------------------------------------------------------- #
def test_commit_publishes_epoch(store):
    _commit_doc(store, "d1")
    assert store.state_rows("Rbin") == [_rbin_row("d1")]
    assert store.state_docids() == {"d1"}
    assert store.epochs_committed == 1


def test_abort_discards_epoch(store):
    _commit_doc(store, "d1")
    store.begin_epoch("d2")
    store.upsert_rows("Rbin", "d2", [_rbin_row("d2")])
    store.put_document("d2", 2.0, "S", "<a/>")
    store.abort_epoch()
    assert store.state_docids() == {"d1"}
    assert store.documents() == []
    # the store is usable again after an abort
    _commit_doc(store, "d3")
    assert store.state_docids() == {"d1", "d3"}


def test_nested_epoch_rejected(store):
    store.begin_epoch("d1")
    with pytest.raises(RuntimeError):
        store.begin_epoch("d2")
    store.abort_epoch()


def test_upsert_replaces_partition(store):
    """Replaying an already-committed epoch cannot duplicate its rows."""
    _commit_doc(store, "d1", [_rbin_row("d1", 1), _rbin_row("d1", 5)])
    _commit_doc(store, "d1", [_rbin_row("d1", 9)])
    assert store.state_rows("Rbin") == [_rbin_row("d1", 9)]


def test_unknown_relation_rejected(store):
    store.begin_epoch("d1")
    with pytest.raises(KeyError):
        store.upsert_rows("Rwitness", "d1", [("d1",)])
    store.abort_epoch()


def test_document_roundtrip(store):
    store.begin_epoch("d1")
    store.put_document("d1", 3.5, "books", "<book/>")
    store.commit_epoch()
    assert store.documents() == [StoredDocument("d1", 3.5, "books", "<book/>")]


def test_fault_hook_at_commit_aborts_epoch(store):
    class Crash(RuntimeError):
        pass

    def hook(point):
        if point == "commit_epoch":
            raise Crash

    _commit_doc(store, "d1")
    store.fault_hook = hook
    store.begin_epoch("d2")
    store.upsert_rows("Rbin", "d2", [_rbin_row("d2")])
    with pytest.raises(Crash):
        store.commit_epoch()
    store.fault_hook = None
    assert store.state_docids() == {"d1"}
    _commit_doc(store, "d3")
    assert store.state_docids() == {"d1", "d3"}


# --------------------------------------------------------------------- #
# deletions
# --------------------------------------------------------------------- #
def test_delete_documents(store):
    for docid in ("d1", "d2", "d3"):
        store.begin_epoch(docid)
        store.upsert_rows("Rbin", docid, [_rbin_row(docid)])
        store.upsert_rows("RdocTS", docid, [(docid, 1.0)])
        store.put_document(docid, 1.0, "S", "<a/>")
        store.commit_epoch()
    store.delete_documents(["d1", "d3"])
    assert store.state_docids() == {"d2"}
    assert [d.docid for d in store.documents()] == ["d2"]


def test_delete_variables(store):
    store.begin_epoch("d1")
    store.upsert_rows(
        "Rbin", "d1", [("d1", "x1", "x2", 1, 2), ("d1", "x7", "x8", 3, 4)]
    )
    store.upsert_rows("Rvar", "d1", [("d1", "x2", 2), ("d1", "x8", 4)])
    store.commit_epoch()
    store.delete_variables({"x7", "x8"})
    assert store.state_rows("Rbin") == [("d1", "x1", "x2", 1, 2)]
    assert store.state_rows("Rvar") == [("d1", "x2", 2)]


def test_clear_state(store):
    _commit_doc(store, "d1")
    store.begin_epoch("d2")
    store.put_document("d2", 2.0, "S", "<a/>")
    store.commit_epoch()
    store.clear_state()
    for relation in STABLE_RELATIONS:
        assert store.state_rows(relation) == []
    assert store.documents() == []


# --------------------------------------------------------------------- #
# registry / catalog / meta
# --------------------------------------------------------------------- #
def test_subscriptions_ordered_by_seq(store):
    store.save_subscription(SubscriptionRecord(2, "sub2", "q2", "join", 1))
    store.save_subscription(SubscriptionRecord(1, "sub1", "q1", "filter"))
    store.save_subscription(SubscriptionRecord(3, "sub3", "q3", "join", 0))
    assert [r.subscription_id for r in store.subscriptions()] == [
        "sub1",
        "sub2",
        "sub3",
    ]
    store.remove_subscription("sub2")
    assert [r.subscription_id for r in store.subscriptions()] == ["sub1", "sub3"]
    # records round-trip field-for-field
    assert store.subscriptions()[1] == SubscriptionRecord(3, "sub3", "q3", "join", 0)


def test_catalog_preserves_registration_order(store):
    store.save_catalog_entries([("x1", "S", "//book"), ("x2", "S", "//author")])
    store.save_catalog_entries([("x2_2", "T", "//author")])
    assert store.catalog_entries() == [
        ("x1", "S", "//book"),
        ("x2", "S", "//author"),
        ("x2_2", "T", "//author"),
    ]


def test_meta_json_roundtrip(store):
    store.set_meta("counters", {"documents": 7, "clock": 7})
    store.set_meta("refcounts", [1, 2, 2])
    assert store.get_meta("counters") == {"documents": 7, "clock": 7}
    assert store.get_meta("refcounts") == [1, 2, 2]
    assert store.get_meta("absent", "fallback") == "fallback"
    store.set_meta("counters", {"documents": 8, "clock": 8})
    assert store.get_meta("counters")["documents"] == 8


def test_close_is_idempotent(store):
    store.close()
    store.close()
    assert store.closed


def test_context_manager_closes(tmp_path):
    with SQLiteStore(str(tmp_path / "cm.sqlite3")) as s:
        _commit_doc(s, "d1")
    assert s.closed


# --------------------------------------------------------------------- #
# SQLite specifics
# --------------------------------------------------------------------- #
def test_sqlite_runs_in_wal_mode(tmp_path):
    with SQLiteStore(str(tmp_path / "wal.sqlite3")) as s:
        assert s.journal_mode == "wal"


def test_sql_type_convention():
    assert sql_type_of("node") == "INTEGER"
    assert sql_type_of("node1") == "INTEGER"
    assert sql_type_of("timestamp") == "REAL"
    assert sql_type_of("docid") == "TEXT"
    assert sql_type_of("var1") == "TEXT"
    assert sql_type_of("strVal") == "TEXT"


def test_sqlite_tables_are_column_typed(tmp_path):
    s = SQLiteStore(str(tmp_path / "typed.sqlite3"))
    try:
        for relation in STABLE_RELATIONS:
            info = s._connection().execute(f'PRAGMA table_info("{relation}")').fetchall()
            got = {row[1]: row[2] for row in info}
            assert got == {
                col: sql_type_of(col) for col in RELATION_SCHEMAS[relation]
            }, relation
    finally:
        s.close()


def test_sqlite_state_survives_reopen(tmp_path):
    path = str(tmp_path / "durable.sqlite3")
    with SQLiteStore(path) as s:
        _commit_doc(s, "d1")
        s.save_subscription(SubscriptionRecord(1, "sub1", "q1", "join", 0))
        s.save_catalog_entries([("x1", "S", "//book")])
        s.set_meta("clock", 9)
    with SQLiteStore(path) as s:
        assert s.state_rows("Rbin") == [_rbin_row("d1")]
        assert [r.subscription_id for r in s.subscriptions()] == ["sub1"]
        assert s.catalog_entries() == [("x1", "S", "//book")]
        assert s.get_meta("clock") == 9


def test_relaxed_durability_buffers_epochs(tmp_path):
    s = SQLiteStore(str(tmp_path / "relaxed.sqlite3"), durability="relaxed")
    try:
        for i in range(3):
            _commit_doc(s, f"d{i}")
        # commits are write-behind: the transaction is still open
        assert s._in_transaction and s._epochs_pending == 3
        s.flush()
        assert not s._in_transaction and s._epochs_pending == 0
        for i in range(RELAXED_COMMIT_EVERY):
            _commit_doc(s, f"e{i}")
        # the RELAXED_COMMIT_EVERY-th epoch forced a durable commit
        assert not s._in_transaction
    finally:
        s.close()


def test_relaxed_abort_discards_only_buffered_epochs(tmp_path):
    s = SQLiteStore(str(tmp_path / "relaxed2.sqlite3"), durability="relaxed")
    try:
        _commit_doc(s, "d1")
        s.flush()
        _commit_doc(s, "d2")  # buffered, not yet durable
        s.begin_epoch("d3")
        s.upsert_rows("Rbin", "d3", [_rbin_row("d3")])
        s.abort_epoch()
        # the rollback discarded the torn epoch *and* the buffered one —
        # exactly the relaxed contract (recent epochs lost, none torn)
        assert s.state_docids() == {"d1"}
    finally:
        s.close()


def test_registry_write_flushes_relaxed_buffer(tmp_path):
    s = SQLiteStore(str(tmp_path / "relaxed3.sqlite3"), durability="relaxed")
    try:
        _commit_doc(s, "d1")
        assert s._in_transaction
        s.save_subscription(SubscriptionRecord(1, "sub1", "q1", "join", 0))
        # registration order must never run ahead of the state it refers to
        assert not s._in_transaction
    finally:
        s.close()


def test_closed_store_rejects_writes(tmp_path):
    s = SQLiteStore(str(tmp_path / "closed.sqlite3"))
    s.close()
    with pytest.raises(RuntimeError, match="closed"):
        s.begin_epoch("d1")


# --------------------------------------------------------------------- #
# resolution / env overrides
# --------------------------------------------------------------------- #
def test_resolve_storage_memory_has_no_path(monkeypatch):
    monkeypatch.delenv("REPRO_STORAGE", raising=False)
    assert resolve_storage(RuntimeConfig()) == ("memory", None)


def test_resolve_storage_sqlite_materializes_tempdir(monkeypatch):
    monkeypatch.delenv("REPRO_STORAGE", raising=False)
    storage, path = resolve_storage(RuntimeConfig(storage="sqlite"))
    assert storage == "sqlite" and path is not None and os.path.isdir(path)


def test_env_override_promotes_memory_to_sqlite(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_STORAGE", "sqlite")
    monkeypatch.setenv("REPRO_STORAGE_DIR", str(tmp_path))
    storage, path = storage_env_overrides("memory", None)
    assert storage == "sqlite"
    assert path is not None and path.startswith(str(tmp_path))
    # explicit backends are never overridden
    assert storage_env_overrides("sqlite", "/elsewhere") == ("sqlite", "/elsewhere")


def test_env_override_rejects_unknown_backend(monkeypatch):
    monkeypatch.setenv("REPRO_STORAGE", "etcd")
    with pytest.raises(ValueError, match="REPRO_STORAGE"):
        storage_env_overrides("memory", None)


def test_open_member_store(tmp_path):
    assert open_member_store("memory", None, "broker") is None
    s = open_member_store("sqlite", str(tmp_path), "shard-0", durability="relaxed")
    try:
        assert isinstance(s, SQLiteStore)
        assert s.path == str(tmp_path / "shard-0.sqlite3")
        assert s.durability == "relaxed"
    finally:
        s.close()
    with pytest.raises(ValueError):
        open_member_store("sqlite", None, "broker")
    with pytest.raises(ValueError):
        open_member_store("etcd", str(tmp_path), "broker")


# --------------------------------------------------------------------- #
# config validation
# --------------------------------------------------------------------- #
def test_config_rejects_unknown_storage():
    with pytest.raises(ValueError, match="storage"):
        RuntimeConfig(storage="etcd")
    with pytest.raises(ValueError, match="durability"):
        RuntimeConfig(durability="eventually")
    with pytest.raises(ValueError, match="storage_path"):
        RuntimeConfig(storage_path="/tmp/x")  # requires storage="sqlite"
