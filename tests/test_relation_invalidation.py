"""Cache invalidation under mutation: NDV counters, indexes, column stores.

Satellite regression suite for the delete-path bookkeeping: the NDV
(distinct-count) caches, live :class:`HashIndex` instances and the columnar
sidecar must all stay consistent with ``rows`` across arbitrary interleavings
of ``insert_many`` / ``delete_rows`` / probes, in both eager and lazy
indexing modes.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.relational.columnar import ValueDictionary
from repro.relational.database import IndexedDatabase
from repro.relational.relation import PartitionedRelation, Relation


def _check_index(relation: Relation, index) -> None:
    """The index must agree with a from-scratch bucket build over rows."""
    expected: dict[tuple, list[tuple]] = {}
    for row in relation.rows:
        expected.setdefault(index._key(row), []).append(row)
    for key, rows in expected.items():
        assert index.lookup_key(key) == rows
    for key in list(index.keys()):
        assert index.lookup_key(key) == expected.get(key, [])


def _check_ndv(relation: Relation) -> None:
    for c in range(len(relation.schema)):
        assert relation.distinct_count(c) == len({r[c] for r in relation.rows})


# --------------------------------------------------------------------------- #
# deterministic regressions
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("indexing", ("eager", "lazy"))
def test_delete_rows_keeps_live_index_consistent(indexing):
    env = IndexedDatabase(indexing=indexing)
    rel = Relation(["a", "b"], rows=[(i % 3, i) for i in range(12)])
    env.bind("R", rel, indexed=True)
    index = env.index_for("R", ["a"])
    assert index is not None
    assert len(index.lookup(0)) == 4
    rel.delete_rows(lambda row: row[1] < 6)
    index = env.index_for("R", ["a"])
    _check_index(rel, index)
    assert index.lookup(0) == [(0, 6), (0, 9)]


def test_delete_rows_refreshes_ndv_cache():
    rel = Relation(["a", "b"], rows=[(i % 4, i % 2) for i in range(16)])
    assert rel.distinct_count(0) == 4
    rel.delete_rows(lambda row: row[0] in (2, 3))
    _check_ndv(rel)
    assert rel.distinct_count(0) == 2


def test_partitioned_delete_rows_updates_ndv_counters():
    rel = PartitionedRelation(
        ["docid", "v"],
        rows=[("d1", "x"), ("d1", "y"), ("d2", "x"), ("d3", "z")],
    )
    assert rel.distinct_count(1) == 3
    rel.delete_rows(lambda row: row[0] == "d3")
    assert rel.distinct_count(1) == 2
    rel.drop_partitions(["d1"])
    _check_ndv(rel)
    assert rel.distinct_count(0) == 1


def test_delete_rows_invalidates_column_store():
    rel = Relation(["a"], rows=[(i,) for i in range(8)])
    rel.enable_columnar(ValueDictionary())
    store = rel.column_store()
    assert len(store) == 8
    rel.delete_rows(lambda row: row[0] >= 4)
    store = rel.column_store()
    d = store.dictionary
    assert [d.value_of(i) for i in store.columns()[0]] == [0, 1, 2, 3]


# --------------------------------------------------------------------------- #
# property: random interleavings
# --------------------------------------------------------------------------- #
_value = st.integers(min_value=0, max_value=5)
_op = st.one_of(
    st.tuples(st.just("insert"), st.lists(st.tuples(_value, _value), max_size=5)),
    st.tuples(st.just("delete"), _value),
    st.tuples(st.just("probe"), _value),
)


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(_op, max_size=14),
    indexing=st.sampled_from(["eager", "lazy"]),
    partitioned=st.booleans(),
)
def test_interleaved_mutation_keeps_all_caches_consistent(
    ops, indexing, partitioned
):
    model: list[tuple] = [(i % 3, i % 2) for i in range(6)]
    if partitioned:
        rel = PartitionedRelation(
            ["a", "b"], rows=list(model), partition_attribute="a"
        )
    else:
        rel = Relation(["a", "b"], rows=list(model))
    rel.enable_columnar(ValueDictionary())
    env = IndexedDatabase(indexing=indexing)
    env.bind("R", rel, indexed=True)
    env.index_for("R", ["a"])  # force a live index before the interleaving

    for op in ops:
        if op[0] == "insert":
            rel.insert_many(op[1])
            model.extend(tuple(r) for r in op[1])
        elif op[0] == "delete":
            target = op[1]
            rel.delete_rows(lambda row: row[0] == target)
            model = [row for row in model if row[0] != target]
        else:
            index = env.index_for("R", ["b"])
            expected = [row for row in model if row[1] == op[1]]
            # Partitioned relations keep rows partition-grouped, so probe
            # results match the model as a multiset, not positionally.
            assert sorted(index.lookup(op[1])) == sorted(expected)

    assert sorted(rel.rows) == sorted(model)
    _check_ndv(rel)
    _check_index(rel, env.index_for("R", ["a"]))
    store = rel.column_store()
    if store is not None:
        d = store.dictionary
        cols = [list(c) for c in store.columns()]
        decoded = [
            (d.value_of(int(cols[0][i])), d.value_of(int(cols[1][i])))
            for i in range(len(store))
        ]
        assert decoded == rel.rows  # the sidecar mirrors the canonical order
