"""Unit tests for the relational operators."""

import pytest

from repro.relational import Relation, SchemaError
from repro.relational import operators as ops


@pytest.fixture
def employees() -> Relation:
    return Relation(
        ["emp", "dept", "salary"],
        rows=[("ada", "eng", 120), ("grace", "eng", 130), ("alan", "math", 110)],
        name="employees",
    )


@pytest.fixture
def departments() -> Relation:
    return Relation(
        ["dept", "building"],
        rows=[("eng", "B1"), ("math", "B2"), ("bio", "B3")],
        name="departments",
    )


def test_select(employees):
    rich = ops.select(employees, lambda r: r["salary"] > 115)
    assert {row[0] for row in rich} == {"ada", "grace"}


def test_select_eq(employees):
    eng = ops.select_eq(employees, "dept", "eng")
    assert len(eng) == 2


def test_project_keeps_duplicates_by_default(employees):
    depts = ops.project(employees, ["dept"])
    assert depts.rows == [("eng",), ("eng",), ("math",)]


def test_project_distinct(employees):
    depts = ops.project(employees, ["dept"], distinct=True)
    assert sorted(depts.rows) == [("eng",), ("math",)]


def test_project_reorders_columns(employees):
    swapped = ops.project(employees, ["salary", "emp"])
    assert swapped.rows[0] == (120, "ada")


def test_rename(employees):
    renamed = ops.rename(employees, {"emp": "person"})
    assert renamed.schema.attributes == ("person", "dept", "salary")
    assert renamed.rows == employees.rows


def test_union_bag_and_set():
    a = Relation(["x"], rows=[(1,), (2,)])
    b = Relation(["x"], rows=[(2,), (3,)])
    assert len(ops.union(a, b)) == 4
    assert len(ops.union(a, b, distinct_rows=True)) == 3


def test_union_schema_mismatch(employees, departments):
    with pytest.raises(SchemaError):
        ops.union(employees, departments)


def test_difference():
    a = Relation(["x"], rows=[(1,), (2,), (3,)])
    b = Relation(["x"], rows=[(2,)])
    assert sorted(ops.difference(a, b).rows) == [(1,), (3,)]


def test_intersection():
    a = Relation(["x"], rows=[(1,), (2,), (2,)])
    b = Relation(["x"], rows=[(2,), (3,)])
    assert ops.intersection(a, b).rows == [(2,)]


def test_cartesian(employees, departments):
    product = ops.cartesian(ops.project(employees, ["emp"]), departments)
    assert len(product) == len(employees) * len(departments)
    assert product.schema.attributes == ("emp", "dept", "building")


def test_equi_join(employees, departments):
    joined = ops.equi_join(employees, departments, on=[("dept", "dept")])
    assert len(joined) == 3
    # Right-side attribute that collides gets the _r suffix.
    assert "dept_r" in joined.schema
    buildings = {row[joined.schema.index_of("building")] for row in joined}
    assert buildings == {"B1", "B2"}


def test_equi_join_no_matches():
    a = Relation(["k", "v"], rows=[(1, "a")])
    b = Relation(["k", "w"], rows=[(2, "b")])
    assert len(ops.equi_join(a, b, on=[("k", "k")])) == 0


def test_natural_join(employees, departments):
    joined = ops.natural_join(employees, departments)
    assert joined.schema.attributes == ("emp", "dept", "salary", "building")
    assert len(joined) == 3


def test_natural_join_without_shared_attributes_is_cartesian():
    a = Relation(["a"], rows=[(1,), (2,)])
    b = Relation(["b"], rows=[(3,)])
    assert len(ops.natural_join(a, b)) == 2


def test_semijoin(employees, departments):
    only_listed = ops.semijoin(departments, employees, on=[("dept", "dept")])
    assert sorted(row[0] for row in only_listed) == ["eng", "math"]


def test_antijoin(employees, departments):
    unused = ops.antijoin(departments, employees, on=[("dept", "dept")])
    assert [row[0] for row in unused] == ["bio"]


def test_group_count(employees):
    counts = ops.group_count(employees, ["dept"])
    assert dict((r[0], r[1]) for r in counts) == {"eng": 2, "math": 1}


def test_distinct_operator():
    a = Relation(["x"], rows=[(1,), (1,), (2,)])
    assert len(ops.distinct(a)) == 2
