"""Unit tests for the per-template conjunctive query construction."""

import pytest

from repro.relational import render_sql
from repro.templates import (
    JoinGraph,
    QueryTemplate,
    RELATION_SCHEMAS,
    build_cqt,
    build_cqt_materialized,
    reduce_join_graph,
)
from repro.xscl import parse_query
from tests.conftest import PAPER_Q1, PAPER_WINDOWS


def _template(text: str, template_id: int = 0) -> QueryTemplate:
    reduced = reduce_join_graph(
        JoinGraph.from_query(parse_query(text, window_symbols=PAPER_WINDOWS))
    )
    template, _ = QueryTemplate.from_reduced(template_id, reduced)
    return template


@pytest.fixture
def q1_template() -> QueryTemplate:
    return _template(PAPER_Q1)


def _atom_counts(cq):
    counts: dict[str, int] = {}
    for atom in cq.body:
        counts[atom.relation] = counts.get(atom.relation, 0) + 1
    return counts


def test_cqt_atoms_match_section_4_4(q1_template):
    """Two value joins -> 2 Rdoc + 2 RdocW; four structural edges -> 2 Rbin + 2 RbinW."""
    cq = build_cqt(q1_template)
    counts = _atom_counts(cq)
    assert counts["Rdoc"] == 2
    assert counts["RdocW"] == 2
    assert counts["Rbin"] == 2
    assert counts["RbinW"] == 2
    assert counts["RT_0"] == 1
    assert "Rvar" not in counts and "RvarW" not in counts


def test_cqt_head_schema(q1_template):
    cq = build_cqt(q1_template)
    assert cq.head_schema[0] == "qid"
    assert cq.head_schema[1] == "docid1"
    assert cq.head_schema[-1] == "wl"
    assert len(cq.head_schema) == 2 + len(q1_template.meta_order) + 1


def test_cqt_materialized_uses_rl_rr(q1_template):
    cq = build_cqt_materialized(q1_template)
    counts = _atom_counts(cq)
    assert counts["RL"] == 2
    assert counts["RR"] == 2
    assert "Rdoc" not in counts
    assert "RdocW" not in counts
    # All four structural edges are carried by the RL/RR atoms.
    assert "Rbin" not in counts and "RbinW" not in counts
    assert counts["RT_0"] == 1


def test_isolated_nodes_get_unary_atoms():
    template = _template("S//a->r[.//b->x] FOLLOWED BY{x=u, 1} S//c->r2[.//d->u]")
    cq = build_cqt(template)
    counts = _atom_counts(cq)
    assert counts["Rvar"] == 1
    assert counts["RvarW"] == 1
    materialized = build_cqt_materialized(template)
    counts_vm = _atom_counts(materialized)
    assert counts_vm["RLvar"] == 1
    assert counts_vm["RRvar"] == 1


def test_internal_structural_edges_kept_in_materialized_form():
    """Edges between two internal LCA nodes still need Rbin/RbinW atoms."""
    text = (
        "S//r->a[.//m->b[.//p->c][.//q->d]][.//n->e[.//s->f]] "
        "FOLLOWED BY{c=u AND d=v AND f=w, 1} "
        "S//x->rr[.//y->u][.//z->v][.//t->w]"
    )
    template = _template(text)
    counts = _atom_counts(build_cqt_materialized(template))
    # The left side has an a->b edge between two internal nodes.
    assert counts.get("Rbin", 0) == 1


def test_atom_arities_match_declared_schemas(q1_template):
    for cq in (build_cqt(q1_template), build_cqt_materialized(q1_template)):
        for atom in cq.body:
            if atom.relation.startswith("RT_"):
                expected = len(q1_template.rt_schema())
            else:
                expected = len(RELATION_SCHEMAS[atom.relation])
            assert len(atom.terms) == expected, atom.relation


def test_sql_rendering_of_cqt(q1_template):
    cq = build_cqt(q1_template)
    schemas = dict(RELATION_SCHEMAS)
    schemas["RT_0"] = q1_template.rt_schema()
    sql = render_sql(cq, schemas)
    assert sql.startswith("SELECT DISTINCT")
    assert "FROM Rdoc AS t0" in sql
    assert "RT_0" in sql
    assert "strVal" in sql


def test_value_join_string_value_shared_between_rdoc_and_rdocw(q1_template):
    cq = build_cqt(q1_template)
    rdoc_s = [a.terms[-1] for a in cq.body if a.relation == "Rdoc"]
    rdocw_s = [a.terms[-1] for a in cq.body if a.relation == "RdocW"]
    assert {t.name for t in rdoc_s} == {t.name for t in rdocw_s}
