"""Unit tests for XSCL AST helpers."""

import pytest

from repro.xscl import INFINITE_WINDOW, JoinOperator, JoinSpec, ValueJoinPredicate, parse_query
from repro.xscl.ast import XsclQuery
from tests.conftest import PAPER_Q1, PAPER_WINDOWS


@pytest.fixture
def q1() -> XsclQuery:
    return parse_query(PAPER_Q1, window_symbols=PAPER_WINDOWS)


def test_join_spec_validation():
    with pytest.raises(ValueError):
        JoinSpec(JoinOperator.JOIN, (), 1.0)
    with pytest.raises(ValueError):
        JoinSpec(JoinOperator.JOIN, (ValueJoinPredicate("a", "b"),), -1.0)


def test_join_spec_str_formats_infinity():
    spec = JoinSpec(JoinOperator.FOLLOWED_BY, (ValueJoinPredicate("a", "b"),), INFINITE_WINDOW)
    assert str(spec) == "FOLLOWED BY{a=b, INF}"


def test_query_requires_join_and_right_together(q1):
    with pytest.raises(ValueError):
        XsclQuery(left=q1.left, right=q1.right, join=None)
    with pytest.raises(ValueError):
        XsclQuery(left=q1.left, right=None, join=q1.join)


def test_all_variables_deduplicated(q1):
    assert q1.all_variables() == ["x1", "x2", "x3", "x4", "x5", "x6"]


def test_join_variable_accessors(q1):
    assert q1.left_join_variables() == ["x2", "x3"]
    assert q1.right_join_variables() == ["x5", "x6"]
    single = parse_query("blog//entry->e")
    assert single.left_join_variables() == []
    assert single.right_join_variables() == []


def test_rename_variables_is_non_destructive(q1):
    renamed = q1.rename_variables({"x2": "author_var"})
    assert "author_var" in renamed.left.variables()
    assert renamed.join.predicates[0].left_var == "author_var"
    # The original query is untouched.
    assert "x2" in q1.left.variables()
    assert q1.join.predicates[0].left_var == "x2"


def test_is_join_query_flag(q1):
    assert q1.is_join_query
    assert not parse_query("blog//entry->e").is_join_query


def test_repr_mentions_operator_and_blocks(q1):
    text = repr(q1)
    assert "FOLLOWED BY" in text
    assert "2 value joins" in text
