"""Unit tests for XSCL AST helpers."""

import pytest

from repro.xscl import INFINITE_WINDOW, JoinOperator, JoinSpec, ValueJoinPredicate, parse_query
from repro.xscl.ast import XsclQuery
from tests.conftest import PAPER_Q1, PAPER_WINDOWS


@pytest.fixture
def q1() -> XsclQuery:
    return parse_query(PAPER_Q1, window_symbols=PAPER_WINDOWS)


def test_join_spec_validation():
    with pytest.raises(ValueError):
        JoinSpec(JoinOperator.JOIN, (), 1.0)
    with pytest.raises(ValueError):
        JoinSpec(JoinOperator.JOIN, (ValueJoinPredicate("a", "b"),), -1.0)


def test_join_spec_str_formats_infinity():
    spec = JoinSpec(JoinOperator.FOLLOWED_BY, (ValueJoinPredicate("a", "b"),), INFINITE_WINDOW)
    assert str(spec) == "FOLLOWED BY{a=b, INF}"


def test_query_requires_join_and_right_together(q1):
    with pytest.raises(ValueError):
        XsclQuery(left=q1.left, right=q1.right, join=None)
    with pytest.raises(ValueError):
        XsclQuery(left=q1.left, right=None, join=q1.join)


def test_all_variables_deduplicated(q1):
    assert q1.all_variables() == ["x1", "x2", "x3", "x4", "x5", "x6"]


def test_join_variable_accessors(q1):
    assert q1.left_join_variables() == ["x2", "x3"]
    assert q1.right_join_variables() == ["x5", "x6"]
    single = parse_query("blog//entry->e")
    assert single.left_join_variables() == []
    assert single.right_join_variables() == []


def test_rename_variables_is_non_destructive(q1):
    renamed = q1.rename_variables({"x2": "author_var"})
    assert "author_var" in renamed.left.variables()
    assert renamed.join.predicates[0].left_var == "author_var"
    # The original query is untouched.
    assert "x2" in q1.left.variables()
    assert q1.join.predicates[0].left_var == "x2"


def test_is_join_query_flag(q1):
    assert q1.is_join_query
    assert not parse_query("blog//entry->e").is_join_query


def test_repr_mentions_operator_and_blocks(q1):
    text = repr(q1)
    assert "FOLLOWED BY" in text
    assert "2 value joins" in text


def test_rename_variables_matches_deepcopy_baseline(q1):
    from repro.xmlmodel.schema import two_level_schema
    from repro.workloads.querygen import generate_query
    from repro.xscl.ast import rename_variables_deepcopy
    from repro.xscl.render import render_query
    import random

    mapping = {"x2": "a", "x5": "b", "x6": "x6"}
    queries = [q1] + [
        generate_query(two_level_schema(4), k, random.Random(seed), window=9.0)
        for k, seed in [(1, 0), (2, 1), (4, 7)]
    ]
    for query in queries:
        fast = query.rename_variables(mapping)
        slow = rename_variables_deepcopy(query, mapping)
        assert render_query(fast) == render_query(slow)


def test_rename_variables_shares_frozen_paths(q1):
    # The structural copy rebuilds only the mutable PatternNode layer; the
    # frozen LocationPath objects must be shared, not cloned (this is what
    # makes subscribe-time canonicalization cheap).
    renamed = q1.rename_variables({"x2": "a"})
    for fresh, original in zip(
        renamed.left.pattern.iter_nodes(), q1.left.pattern.iter_nodes()
    ):
        assert fresh is not original
        assert fresh.path is original.path
