"""Unit tests for hash indexes, the catalog and SQL rendering."""

import pytest

from repro.relational import (
    ConjunctiveQuery,
    Const,
    Database,
    HashIndex,
    Relation,
    SchemaError,
    Var,
    render_sql,
    term,
)


# --------------------------------------------------------------------------- #
# HashIndex
# --------------------------------------------------------------------------- #
@pytest.fixture
def rdoc() -> Relation:
    return Relation(
        ["docid", "node", "strVal"],
        rows=[("d1", 1, "Ada"), ("d1", 2, "Streams"), ("d2", 1, "Ada")],
        name="Rdoc",
    )


def test_index_lookup(rdoc):
    index = HashIndex(rdoc, ["strVal"])
    assert len(index.lookup("Ada")) == 2
    assert index.lookup("nothing") == []


def test_index_composite_key(rdoc):
    index = HashIndex(rdoc, ["docid", "node"])
    assert index.lookup("d1", 2) == [("d1", 2, "Streams")]


def test_index_lookup_relation(rdoc):
    index = HashIndex(rdoc, ["docid"])
    subset = index.lookup_relation("d1", name="d1-only")
    assert isinstance(subset, Relation)
    assert len(subset) == 2


def test_index_add_row_and_contains(rdoc):
    index = HashIndex(rdoc, ["strVal"])
    index.add_row(("d3", 5, "Joins"))
    assert ("Joins",) in index
    assert "Ada" in index  # scalar keys are wrapped automatically
    assert len(index) == 3


def test_index_keys(rdoc):
    index = HashIndex(rdoc, ["docid"])
    assert sorted(index.keys()) == [("d1",), ("d2",)]


# --------------------------------------------------------------------------- #
# Database
# --------------------------------------------------------------------------- #
def test_database_create_and_get():
    db = Database()
    rel = db.create("Rbin", ["docid", "var1", "var2", "node1", "node2"])
    assert db.get("Rbin") is rel
    assert "Rbin" in db
    assert db.names() == ["Rbin"]


def test_database_duplicate_create_rejected():
    db = Database()
    db.create("R", ["a"])
    with pytest.raises(SchemaError):
        db.create("R", ["a"])


def test_database_create_or_replace():
    db = Database()
    db.create("R", ["a"])
    replacement = Relation(["a", "b"], rows=[(1, 2)])
    db.create_or_replace("R", replacement)
    assert db.get("R") is replacement
    assert db.get("R").name == "R"


def test_database_missing_relation():
    with pytest.raises(SchemaError):
        Database().get("nope")


def test_database_drop_and_total_rows():
    db = Database()
    db.create("R", ["a"]).insert_many([(1,), (2,)])
    db.create("S", ["b"]).insert((3,))
    assert db.total_rows() == 3
    db.drop("S")
    assert "S" not in db
    db.drop("S")  # idempotent


def test_database_iteration():
    db = Database()
    db.create("A", ["x"])
    db.create("B", ["x"])
    assert sorted(db) == ["A", "B"]


# --------------------------------------------------------------------------- #
# term coercion and SQL rendering
# --------------------------------------------------------------------------- #
def test_term_coercion():
    assert term("?x") == Var("x")
    assert term("plain") == Const("plain")
    assert term(5) == Const(5)
    assert term(Var("y")) == Var("y")
    assert term("?") == Const("?")


def test_render_sql_with_schemas():
    cq = ConjunctiveQuery("out", ["person", "city"], [Var("p"), Var("c")])
    cq.add_atom("lives", [Var("p"), Var("c")])
    cq.add_atom("capital", [Var("c"), Const("yes")])
    sql = render_sql(cq, {"lives": ["person", "city"], "capital": ["city", "flag"]})
    assert "FROM lives AS t0, capital AS t1" in sql
    assert "t1.city = t0.city" in sql
    assert "t1.flag = 'yes'" in sql
    assert sql.startswith("SELECT DISTINCT t0.person AS person")


def test_render_sql_positional_columns():
    cq = ConjunctiveQuery("out", ["a"], [Var("x")], distinct=False)
    cq.add_atom("r", [Var("x"), Const(3)])
    sql = render_sql(cq)
    assert "t0.c1 = 3" in sql
    assert "DISTINCT" not in sql


def test_render_sql_escapes_strings_and_infinity():
    cq = ConjunctiveQuery("out", ["a"], [Var("x")])
    cq.add_atom("r", [Var("x"), Const("O'Reilly"), Const(float("inf"))])
    sql = render_sql(cq)
    assert "'O''Reilly'" in sql
    assert "'infinity'" in sql


def test_render_sql_unbound_head_variable_rejected():
    cq = ConjunctiveQuery("out", ["a"], [Var("missing")])
    cq.add_atom("r", [Const(1)])
    with pytest.raises(ValueError):
        render_sql(cq)
