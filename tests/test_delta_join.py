"""Delta-driven evaluation: reduction operators, programs, knob threading.

The equivalence of delta-driven and full-state evaluation at the engine
level is covered property-style in ``test_properties_engine.py``; this file
unit-tests the machinery underneath — the semi-join primitives, the
per-document :class:`~repro.relational.conjunctive.DeltaContext` memoization,
the plan integration, and the ``delta_join`` knob's path through the config,
the processors, the engines and the brokers.
"""

from __future__ import annotations

import pytest

from repro import Broker, RuntimeConfig, open_broker
from repro.core.engine import make_engine
from repro.core.processor import MMQJPJoinProcessor, SequentialJoinProcessor
from repro.relational.conjunctive import (
    ConjunctiveQuery,
    DeltaContext,
    build_delta_program,
    evaluate_conjunctive,
)
from repro.relational.database import IndexedDatabase
from repro.relational.operators import column_value_set, semijoin_in
from repro.relational.plan import PlanCache, compile_plan
from repro.relational.relation import PartitionedRelation, Relation
from repro.relational.terms import Var
from repro.templates.cqt import RELATION_SCHEMAS
from tests.conftest import PAPER_WINDOWS, make_blog_article, make_book_announcement

CROSS = (
    "S//book->x1[.//author->x2] "
    "FOLLOWED BY{x2=x5, 100} "
    "S//blog->x4[.//author->x5]"
)


# --------------------------------------------------------------------------- #
# operators
# --------------------------------------------------------------------------- #
def test_semijoin_in_scan_path_keeps_multiplicity():
    relation = Relation(["a", "b"], rows=[(1, "x"), (2, "y"), (1, "x"), (3, "x")])
    out = semijoin_in(relation, 0, {1, 3})
    assert out.rows == [(1, "x"), (1, "x"), (3, "x")]
    assert out.schema == relation.schema


def test_semijoin_in_with_extra_constraints():
    relation = Relation(["a", "b"], rows=[(1, "x"), (1, "y"), (2, "x")])
    out = semijoin_in(relation, 0, {1, 2}, extra=(((1, frozenset({"x"}))),))
    assert out.rows == [(1, "x"), (2, "x")]


def test_semijoin_in_index_path_matches_scan_path():
    relation = Relation(["a", "b"], rows=[(i % 5, f"v{i % 3}") for i in range(30)])
    index = relation.index_on((0,))
    values = {1, 4}
    extra = ((1, frozenset({"v0", "v2"})),)
    probed = semijoin_in(relation, 0, values, extra=extra, index=index)
    scanned = semijoin_in(relation, 0, values, extra=extra)
    assert sorted(probed.rows) == sorted(scanned.rows)


def test_column_value_set_with_const_checks():
    relation = Relation(["a", "b"], rows=[(1, "x"), (2, "y"), (1, "z")])
    assert column_value_set(relation, 1) == {"x", "y", "z"}
    assert column_value_set(relation, 1, ((0, 1),)) == {"x", "z"}


# --------------------------------------------------------------------------- #
# a small state + witness environment shared by the reduction tests
# --------------------------------------------------------------------------- #
def _environment(indexing: str = "eager", num_docs: int = 40, alive: int = 4):
    env = IndexedDatabase(indexing=indexing)
    rdoc = PartitionedRelation(RELATION_SCHEMAS["Rdoc"], name="Rdoc")
    rbin = PartitionedRelation(RELATION_SCHEMAS["Rbin"], name="Rbin")
    for d in range(num_docs):
        docid = f"s{d}"
        names = ("v_root", "v_leaf") if d < alive else ("dead_root", "dead_leaf")
        for leaf in range(3):
            rdoc.insert((docid, leaf + 1, f"v{d % 4}"))
            rbin.insert((docid, names[0], names[1], 0, leaf + 1))
    env.bind("Rdoc", rdoc, indexed=True)
    env.bind("Rbin", rbin, indexed=True)

    rdocw = Relation(RELATION_SCHEMAS["RdocW"], name="RdocW")
    rbinw = Relation(RELATION_SCHEMAS["RbinW"], name="RbinW")
    for leaf in range(3):
        rdocw.insert((leaf + 1, "v1"))
        rbinw.insert(("v_root", "v_leaf", 0, leaf + 1))
    env.bind("RdocW", rdocw)
    env.bind("RbinW", rbinw)
    return env


def _query() -> ConjunctiveQuery:
    cq = ConjunctiveQuery(
        "Out", ["docid", "n1", "m1"], [Var("docid"), Var("n1"), Var("m1")]
    )
    cq.add_atom("Rdoc", [Var("docid"), Var("n1"), Var("s")])
    cq.add_atom("RdocW", [Var("m1"), Var("s")])
    cq.add_atom("Rbin", [Var("docid"), Var("p"), Var("c"), Var("nr"), Var("n1")])
    cq.add_atom("RbinW", [Var("p"), Var("c"), Var("mr"), Var("m1")])
    return cq


# --------------------------------------------------------------------------- #
# the reduction program
# --------------------------------------------------------------------------- #
def test_build_delta_program_classifies_stable_and_delta_atoms():
    env = _environment()
    program = build_delta_program(_query().body, env)
    assert program is not None and program.reducible


def test_build_delta_program_requires_stability_information():
    plain = {"Rdoc": Relation(RELATION_SCHEMAS["Rdoc"], name="Rdoc")}
    assert build_delta_program(_query().body, plain) is None


def test_delta_reduction_prunes_dead_state_rows():
    env = _environment(num_docs=40, alive=4)
    program = build_delta_program(_query().body, env)
    ctx = DeltaContext()
    reduced = program.reduce(env, ctx)
    assert reduced is not None
    by_position = dict(enumerate(reduced))
    # Rbin (body position 2) shrinks to the alive documents' rows: the dead
    # tail's decoy variable names are unreachable from the witness delta.
    assert by_position[2] is not None
    assert {row[0] for row in by_position[2].rows} <= {f"s{d}" for d in range(4)}
    # Delta (witness) atoms are never reduced.
    assert by_position[1] is None and by_position[3] is None
    assert ctx.rows_kept <= ctx.rows_scanned


def test_delta_evaluation_equivalence_across_paths_and_indexing():
    cq = _query()
    for indexing in ("eager", "lazy", "off"):
        env = _environment(indexing=indexing)
        baseline = evaluate_conjunctive(cq, env)
        assert len(baseline.rows) > 0
        assert evaluate_conjunctive(cq, env, delta=DeltaContext()) == baseline
        cache = PlanCache()
        assert cache.evaluate(cq, env, delta=DeltaContext()) == baseline
        assert cache.evaluate(cq, env) == baseline


def test_delta_context_memoizes_across_templates():
    env = _environment()
    cq = _query()
    cache = PlanCache()
    ctx = DeltaContext()
    cache.evaluate(cq, env, delta=ctx)
    computed = ctx.reductions_computed
    assert computed > 0 and ctx.reductions_reused == 0
    for _ in range(3):
        cache.evaluate(cq, env, delta=ctx)
    # Re-evaluations only hit the memo: nothing new is computed.
    assert ctx.reductions_computed == computed
    assert ctx.reductions_reused == 3 * computed


def test_delta_context_meet_preserves_identity():
    ctx = DeltaContext()
    a = frozenset({1, 2, 3})
    b = frozenset({2, 3, 4})
    assert ctx.meet(None, a) is a
    assert ctx.meet(a, a) is a
    assert ctx.meet(a, frozenset({1, 2, 3, 9})) is a
    assert ctx.meet(a, b) == {2, 3}


def test_compiled_plan_carries_delta_program():
    env = _environment()
    plan = compile_plan(_query(), env)
    assert plan.delta_program is not None
    step_relations = plan.reduced_step_relations(env, DeltaContext())
    assert step_relations is not None and len(step_relations) == len(plan.steps)
    assert any(rel is not None for rel in step_relations)


# --------------------------------------------------------------------------- #
# knob threading: config -> engines -> processors -> brokers
# --------------------------------------------------------------------------- #
def test_config_delta_join_defaults_and_ablation():
    assert RuntimeConfig().delta_join is True
    assert RuntimeConfig.ablation().delta_join is False
    assert RuntimeConfig.throughput().delta_join is True


def test_engines_expose_delta_join_knob():
    for engine_name in ("mmqjp", "sequential"):
        on = make_engine(config=RuntimeConfig(engine=engine_name))
        off = make_engine(
            config=RuntimeConfig(engine=engine_name, delta_join=False)
        )
        assert on.delta_join is True
        assert off.delta_join is False
        assert set(on.delta_stats) == {
            "documents",
            "reductions_computed",
            "reductions_reused",
            "rows_scanned",
            "rows_kept",
        }


def test_processor_accepts_explicit_delta_join_knob():
    from repro.templates.registry import TemplateRegistry

    processor = MMQJPJoinProcessor(TemplateRegistry(), delta_join=False)
    assert processor.delta_join is False
    sequential = SequentialJoinProcessor(delta_join=False)
    assert sequential.delta_join is False
    # Config fills the knob when it is not given explicitly.
    configured = SequentialJoinProcessor(config=RuntimeConfig(delta_join=False))
    assert configured.delta_join is False


def test_engine_delta_stats_track_documents():
    engine = make_engine(config=RuntimeConfig(store_documents=False))
    engine.register_query(CROSS, window_symbols=PAPER_WINDOWS)
    engine.process_document(make_book_announcement("b1", 1.0))
    engine.process_document(make_blog_article("g1", 2.0))
    stats = engine.delta_stats
    assert stats["documents"] == 2
    assert stats["rows_kept"] <= stats["rows_scanned"]

    ablated = make_engine(config=RuntimeConfig.ablation(store_documents=False))
    ablated.register_query(CROSS, window_symbols=PAPER_WINDOWS)
    ablated.process_document(make_book_announcement("b1", 1.0))
    assert ablated.delta_stats["documents"] == 0


# --------------------------------------------------------------------------- #
# brokers: batched fast path and the single-document sharded path
# --------------------------------------------------------------------------- #
def _paper_documents():
    return [
        make_book_announcement("b1", 1.0),
        make_blog_article("g1", 2.0),
        make_book_announcement("b2", 3.0),
        make_blog_article("g2", 4.0, author="Andrew Watt"),
    ]


def _delivery_keys(deliveries):
    return {
        (d.subscription_id, d.match.key()) for d in deliveries if d.match is not None
    }


def test_publish_many_matches_publish_loop():
    """The batched ingestion fast path delivers exactly what a loop does."""
    loop_broker = Broker(RuntimeConfig())
    batch_broker = Broker(RuntimeConfig())
    for broker in (loop_broker, batch_broker):
        broker.subscribe(CROSS, window_symbols=PAPER_WINDOWS, subscription_id="q")
    looped = []
    for document in _paper_documents():
        looped.extend(loop_broker.publish(document))
    batched = batch_broker.publish_many(_paper_documents())
    assert _delivery_keys(batched) == _delivery_keys(looped)
    assert len(batched) == len(looped)
    assert [d.subscription_id for d in batched] == [d.subscription_id for d in looped]


def test_sharded_publish_single_document_path():
    """ShardedBroker.publish (direct path) ≡ publish_many([doc])."""
    direct = open_broker(RuntimeConfig(shards=2))
    batched = open_broker(RuntimeConfig(shards=2))
    try:
        for broker in (direct, batched):
            broker.subscribe(CROSS, window_symbols=PAPER_WINDOWS, subscription_id="q")
        direct_deliveries = []
        for document in _paper_documents():
            direct_deliveries.extend(direct.publish(document))
        batch_deliveries = []
        for document in _paper_documents():
            batch_deliveries.extend(batched.publish_many([document]))
        assert _delivery_keys(direct_deliveries) == _delivery_keys(batch_deliveries)
        assert len(direct_deliveries) == len(batch_deliveries)
    finally:
        direct.close()
        batched.close()


def test_sharded_publish_skips_empty_shards():
    broker = open_broker(RuntimeConfig(shards=4))
    try:
        broker.subscribe(CROSS, window_symbols=PAPER_WINDOWS, subscription_id="q")
        deliveries = []
        for document in _paper_documents():
            deliveries.extend(broker.publish(document))
        assert _delivery_keys(deliveries)
        stats = broker.stats()
        # Only the owning shard processed documents; empty shards skipped.
        per_shard = {row["shard"]: row for row in stats["per_shard"]}
        owner = broker.shard_of("q")
        assert per_shard[owner]["num_documents_processed"] == len(_paper_documents())
        for shard_id, row in per_shard.items():
            if shard_id != owner:
                assert row["num_documents_processed"] == 0
    finally:
        broker.close()


def test_relevance_sync_hoisted_across_batch():
    """begin_batch syncs the relevance index once for the whole batch."""
    engine = make_engine(config=RuntimeConfig(store_documents=False))
    engine.register_query(CROSS, window_symbols=PAPER_WINDOWS)
    processor = engine.processor
    processor.begin_batch()
    try:
        assert processor._in_batch is True
        assert processor.relevance is not None
        assert processor.relevance.num_members > 0
    finally:
        processor.end_batch()
    assert processor._in_batch is False


def test_delta_join_off_reproduces_default_results_end_to_end():
    keys = {}
    for delta_join in (True, False):
        broker = Broker(RuntimeConfig(delta_join=delta_join))
        broker.subscribe(CROSS, window_symbols=PAPER_WINDOWS, subscription_id="q")
        deliveries = broker.publish_many(_paper_documents())
        keys[delta_join] = _delivery_keys(deliveries)
        broker.close()
    assert keys[True] == keys[False]
    assert keys[True]
