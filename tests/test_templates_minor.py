"""Unit tests for the graph-minor reduction (Section 4.2)."""

import pytest

from repro.templates import JoinGraph, Side, reduce_join_graph
from repro.xscl import parse_query
from tests.conftest import PAPER_Q1, PAPER_WINDOWS


def _reduced(text: str):
    return reduce_join_graph(JoinGraph.from_query(parse_query(text, window_symbols=PAPER_WINDOWS)))


def test_q1_reduction_keeps_all_six_nodes():
    """Q1's join graph is already minimal: roots are LCAs of two leaves each."""
    reduced = _reduced(PAPER_Q1)
    assert len(reduced.nodes) == 6
    assert len(reduced.structural_edges) == 4
    assert len(reduced.value_edges) == 2
    assert reduced.isolated_nodes() == []


def test_leaves_without_value_joins_are_removed():
    reduced = _reduced(
        "S//a->r[.//b->x][.//c->unused][.//d->y] FOLLOWED BY{x=u AND y=v, 1} "
        "S//e->r2[.//f->u][.//g->v]"
    )
    assert (Side.LEFT, "unused") not in reduced.nodes
    assert len(reduced.side_nodes(Side.LEFT)) == 3


def test_single_participant_side_loses_its_root():
    reduced = _reduced(
        "S//a->r[.//b->x] FOLLOWED BY{x=u, 1} S//e->r2[.//f->u]"
    )
    assert reduced.nodes == {(Side.LEFT, "x"), (Side.RIGHT, "u")}
    assert reduced.structural_edges == []
    assert set(reduced.isolated_nodes()) == reduced.nodes


def test_intermediate_with_single_child_is_spliced():
    reduced = _reduced(
        "S//r->a[.//m->b[.//leaf->c]][.//n->d[.//leaf2->e]] "
        "FOLLOWED BY{c=u AND e=v, 1} S//x->w[.//y->u][.//z->v]"
    )
    # b and d each have one relevant child, so they are spliced out; the root
    # a is the LCA of c and e and is kept, with direct edges to both leaves.
    left = set(reduced.side_nodes(Side.LEFT))
    assert left == {(Side.LEFT, "a"), (Side.LEFT, "c"), (Side.LEFT, "e")}
    assert ((Side.LEFT, "a"), (Side.LEFT, "c")) in reduced.structural_edges
    assert ((Side.LEFT, "a"), (Side.LEFT, "e")) in reduced.structural_edges


def test_intermediate_lca_of_two_leaves_is_kept():
    reduced = _reduced(
        "S//r->a[.//m->b[.//p->c][.//q->d]] "
        "FOLLOWED BY{c=u AND d=v, 1} S//x->w[.//y->u][.//z->v]"
    )
    # b is the LCA of c and d and must survive, while the root a (an ancestor
    # of the LCA) is removed.
    left = set(reduced.side_nodes(Side.LEFT))
    assert left == {(Side.LEFT, "b"), (Side.LEFT, "c"), (Side.LEFT, "d")}
    assert ((Side.LEFT, "b"), (Side.LEFT, "c")) in reduced.structural_edges
    assert (Side.LEFT, "a") not in reduced.nodes


def test_mixed_groups_keep_both_lcas():
    reduced = _reduced(
        "S//r->a[.//m->b[.//p->c][.//q->d]][.//n->e[.//s->f]] "
        "FOLLOWED BY{c=u AND d=v AND f=w, 1} "
        "S//x->rr[.//y->u][.//z->v][.//t->w]"
    )
    left = set(reduced.side_nodes(Side.LEFT))
    # a is the LCA of {c, f}; b the LCA of {c, d}; e is spliced out.
    assert (Side.LEFT, "a") in left
    assert (Side.LEFT, "b") in left
    assert (Side.LEFT, "e") not in left
    parents = reduced.structural_parents()
    assert parents[(Side.LEFT, "f")] == (Side.LEFT, "a")
    assert parents[(Side.LEFT, "c")] == (Side.LEFT, "b")
    assert parents[(Side.LEFT, "b")] == (Side.LEFT, "a")


def test_value_edges_preserved_verbatim():
    reduced = _reduced(PAPER_Q1)
    assert ((Side.LEFT, "x2"), (Side.RIGHT, "x5")) in reduced.value_edges


def test_num_value_joins(q1_text=PAPER_Q1):
    assert _reduced(q1_text).num_value_joins == 2
