"""Delivery sinks: the pluggable destinations behind Subscription.deliver."""

from __future__ import annotations

import pytest

from repro import (
    BatchingSink,
    CollectingSink,
    QueueSink,
    RuntimeConfig,
    open_broker,
)
from repro.pubsub import Subscription, SubscriptionResult
from repro.xscl.parser import parse_query
from tests.conftest import make_blog_article, make_book_announcement

CROSS = (
    "S//book->x1[.//author->x2] "
    "FOLLOWED BY{x2=x5, 100} "
    "S//blog->x4[.//author->x5]"
)


def _result(i: int) -> SubscriptionResult:
    return SubscriptionResult(subscription_id=f"s{i}")


# --------------------------------------------------------------------------- #
# the sink implementations
# --------------------------------------------------------------------------- #
def test_collecting_sink_bounds_retention_but_counts_everything():
    sink = CollectingSink(max_results=3)
    for i in range(10):
        sink.deliver(_result(i))
    assert sink.delivered == 10
    assert sink.dropped == 7
    assert [r.subscription_id for r in sink.results] == ["s7", "s8", "s9"]
    assert len(sink) == 3
    with pytest.raises(ValueError):
        CollectingSink(max_results=0)


def test_collecting_sink_unbounded():
    sink = CollectingSink()
    for i in range(100):
        sink.deliver(_result(i))
    assert sink.delivered == 100 and sink.dropped == 0 and len(sink) == 100


def test_queue_sink_drains_and_sheds_oldest_when_full():
    sink = QueueSink(maxsize=2)
    for i in range(4):
        sink.deliver(_result(i))
    assert sink.dropped == 2
    assert [r.subscription_id for r in sink.drain()] == ["s2", "s3"]
    assert sink.drain() == []


def test_batching_sink_batches_and_flushes():
    batches = []
    sink = BatchingSink(batches.append, batch_size=3)
    for i in range(7):
        sink.deliver(_result(i))
    assert [len(b) for b in batches] == [3, 3]
    assert sink.num_pending == 1
    sink.flush()
    assert [len(b) for b in batches] == [3, 3, 1]
    sink.flush()  # nothing pending: no empty batch
    assert len(batches) == 3
    with pytest.raises(ValueError):
        BatchingSink(batches.append, batch_size=0)


# --------------------------------------------------------------------------- #
# subscription wiring
# --------------------------------------------------------------------------- #
def test_subscription_routes_to_all_sinks():
    received = []
    extra = CollectingSink()
    sub = Subscription(
        "s1", parse_query("blog//entry->e"), callback=received.append, sink=extra
    )
    result = _result(1)
    sub.deliver(result)
    assert received == [result]
    assert extra.results == [result]
    assert sub.results == [result]
    sub.pause()
    sub.deliver(result)
    assert sub.num_results == 1 and extra.delivered == 1


def test_subscription_result_limit_caps_legacy_results():
    sub = Subscription("s1", parse_query("blog//entry->e"), result_limit=2)
    for i in range(5):
        sub.deliver(_result(i))
    assert sub.num_results == 5
    assert sub.num_results_dropped == 3
    assert [r.subscription_id for r in sub.results] == ["s3", "s4"]


def test_broker_result_limit_flows_from_config():
    with open_broker(RuntimeConfig(result_limit=2, construct_outputs=False)) as broker:
        sub = broker.subscribe(CROSS)
        for i in range(4):
            broker.publish(make_book_announcement(docid=f"bk{i}", timestamp=i * 10 + 1))
            broker.publish(make_blog_article(docid=f"bl{i}", timestamp=i * 10 + 2))
        # each blog joins every earlier book within the window: 1+2+3+4
        assert sub.num_results == 10
        assert len(sub.results) == 2


# --------------------------------------------------------------------------- #
# delivery consistency: the filter path and the join path are symmetric
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("shards", [1, 2])
def test_filter_and_join_paths_both_feed_sinks(shards):
    config = RuntimeConfig(construct_outputs=False, shards=shards)
    with open_broker(config) as broker:
        join_queue = QueueSink()
        filter_queue = QueueSink()
        join_batches: list = []
        broker.subscribe(CROSS, subscription_id="join", sink=join_queue)
        broker.subscribe(
            "S//blog->b[.//author->a]", subscription_id="filt", sink=filter_queue
        )
        batching = broker.subscribe(
            CROSS.replace("100", "200"),
            subscription_id="joinbatch",
            sink=BatchingSink(join_batches.append, batch_size=10),
        )
        broker.publish(make_book_announcement(docid="bk", timestamp=1.0))
        broker.publish(make_blog_article(docid="bl", timestamp=2.0))

        filter_results = filter_queue.drain()
        assert len(filter_results) == 1
        assert filter_results[0].document is not None

        join_results = join_queue.drain()
        assert len(join_results) == 1
        assert join_results[0].match is not None

        # partial batch is flushed on close/cancel, not lost
        assert join_batches == []
        batching.cancel()
        assert len(join_batches) == 1 and len(join_batches[0]) == 1
    # broker close flushes the remaining subscriptions' sinks (idempotent)


def test_broker_close_flushes_batching_sinks():
    batches: list = []
    broker = open_broker(RuntimeConfig(construct_outputs=False))
    broker.subscribe(CROSS, sink=BatchingSink(batches.append, batch_size=100))
    broker.publish(make_book_announcement(docid="bk", timestamp=1.0))
    broker.publish(make_blog_article(docid="bl", timestamp=2.0))
    assert batches == []
    broker.close()
    assert len(batches) == 1
    broker.close()  # idempotent
    assert len(batches) == 1


@pytest.mark.parametrize("shards", [1, 2])
def test_close_flushes_batching_sinks_on_both_brokers(shards):
    batches: list = []
    broker = open_broker(RuntimeConfig(construct_outputs=False, shards=shards))
    broker.subscribe(CROSS, sink=BatchingSink(batches.append, batch_size=100))
    broker.publish(make_book_announcement(docid="bk", timestamp=1.0))
    broker.publish(make_blog_article(docid="bl", timestamp=2.0))
    assert batches == []
    broker.close()
    assert len(batches) == 1 and len(batches[0]) == 1
    broker.close()  # idempotent


class _ExplodingSink:
    """A sink whose flush/close always raises."""

    def __init__(self):
        self.delivered = 0

    def deliver(self, result):
        self.delivered += 1

    def flush(self):
        raise RuntimeError("flush failed")

    def close(self):
        raise RuntimeError("close failed")


@pytest.mark.parametrize("shards", [1, 2])
def test_close_survives_a_raising_sink_and_reraises_first_error(shards):
    """A bad sink must not leak the other subscriptions' buffered results."""
    batches: list = []
    broker = open_broker(RuntimeConfig(construct_outputs=False, shards=shards))
    # Subscribe the exploding sink FIRST so its failure would previously
    # have aborted the close loop before the batching sink flushed.
    broker.subscribe(
        "S//blog->b[.//author->a]", subscription_id="bad", sink=_ExplodingSink()
    )
    broker.subscribe(
        CROSS, subscription_id="good", sink=BatchingSink(batches.append, batch_size=100)
    )
    broker.publish(make_book_announcement(docid="bk", timestamp=1.0))
    broker.publish(make_blog_article(docid="bl", timestamp=2.0))
    assert batches == []
    with pytest.raises(RuntimeError, match="close failed"):
        broker.close()
    # The healthy sink still flushed, and the broker is fully closed.
    assert len(batches) == 1 and len(batches[0]) == 1
    broker.close()  # idempotent: the failed sink is not retried


@pytest.mark.parametrize("shards", [1, 2])
def test_cancel_survives_a_raising_sink(shards):
    broker = open_broker(RuntimeConfig(construct_outputs=False, shards=shards))
    try:
        collecting = CollectingSink()
        broker.subscribe(
            "S//blog->b[.//author->a]",
            subscription_id="bad",
            sink=_ExplodingSink(),
        )
        broker.publish(make_blog_article(docid="bl", timestamp=1.0))
        with pytest.raises(RuntimeError, match="close failed"):
            broker.cancel("bad")
        # The broker stays usable after the failed cancel.
        broker.subscribe(
            "S//blog->b[.//author->a]", subscription_id="ok", sink=collecting
        )
        broker.publish(make_blog_article(docid="bl2", timestamp=2.0))
        assert len(collecting.results) == 1
    finally:
        broker.close()
