"""Unit tests for view materialization and the view cache (Section 5)."""

import pytest

from repro.core import JoinState, ViewCache, WitnessRelations, compute_materialized_views
from repro.core.costs import CostBreakdown
from repro.core.materialize import maintain_view_cache


@pytest.fixture
def state() -> JoinState:
    s = JoinState()
    # One previous document with two bound leaves under a root.
    s.insert_document_rows(
        "d1",
        1.0,
        rbin_rows=[("root", "author", 0, 1), ("root", "title", 0, 2)],
        rdoc_rows=[(1, "Ada"), (2, "Streams")],
        rvar_rows=[("root", 0), ("author", 1), ("title", 2)],
    )
    return s


@pytest.fixture
def witnesses() -> WitnessRelations:
    # Current document: author value matches d1's, title value does not.
    return WitnessRelations.from_rows(
        "d2",
        2.0,
        rbinw_rows=[("root", "author", 0, 1), ("root", "title", 0, 2)],
        rdocw_rows=[(1, "Ada"), (2, "Databases")],
        rvarw_rows=[("root", 0), ("author", 1), ("title", 2)],
    )


def test_common_values_semijoin(state, witnesses):
    views = compute_materialized_views(state, witnesses)
    assert views.common_values == {"Ada"}


def test_rvj_contains_matching_node_pairs(state, witnesses):
    views = compute_materialized_views(state, witnesses)
    assert views.rvj.rows == [("d1", 1, 1, "Ada")]


def test_rl_restricted_to_common_values(state, witnesses):
    views = compute_materialized_views(state, witnesses)
    assert views.rl.rows == [("d1", "root", "author", 0, 1, "Ada")]
    assert views.rlvar.rows == [("d1", "author", 1, "Ada")]


def test_rr_restricted_to_common_values(state, witnesses):
    views = compute_materialized_views(state, witnesses)
    assert views.rr.rows == [("root", "author", 0, 1, "Ada")]
    assert views.rrvar.rows == [("author", 1, "Ada")]


def test_costs_record_three_phases(state, witnesses):
    costs = CostBreakdown()
    compute_materialized_views(state, witnesses, costs=costs)
    assert set(costs.seconds) == {"rvj", "rl", "rr"}


def test_view_cache_miss_then_hit(state, witnesses):
    cache = ViewCache(max_entries=10)
    compute_materialized_views(state, witnesses, view_cache=cache)
    assert cache.misses == 1 and cache.hits == 0
    views = compute_materialized_views(state, witnesses, view_cache=cache)
    assert cache.hits == 1
    assert views.rl.rows == [("d1", "root", "author", 0, 1, "Ada")]


def test_view_cache_results_match_direct_computation(state, witnesses):
    direct = compute_materialized_views(state, witnesses)
    cache = ViewCache()
    cached = compute_materialized_views(state, witnesses, view_cache=cache)
    assert sorted(direct.rl.rows) == sorted(cached.rl.rows)
    assert sorted(direct.rr.rows) == sorted(cached.rr.rows)


def test_view_cache_lru_eviction():
    cache = ViewCache(max_entries=2)
    cache.put("a", [("d1",)])
    cache.put("b", [("d1",)])
    assert cache.get("a") is not None      # refresh a
    cache.put("c", [("d1",)])              # evicts b
    assert "b" not in cache
    assert "a" in cache and "c" in cache
    assert len(cache) == 2


def test_view_cache_invalid_size():
    with pytest.raises(ValueError):
        ViewCache(max_entries=0)


def test_maintain_view_cache_folds_rr_into_rl(state, witnesses):
    cache = ViewCache()
    views = compute_materialized_views(state, witnesses, view_cache=cache)
    maintain_view_cache(cache, views, current_docid="d2")
    rows = cache.get("Ada")
    assert ("d2", "root", "author", 0, 1, "Ada") in rows
    assert ("d1", "root", "author", 0, 1, "Ada") in rows


def test_remove_documents_from_cache():
    cache = ViewCache()
    cache.put("v", [("d1", "a", "b", 0, 1, "v"), ("d2", "a", "b", 0, 1, "v")])
    cache.put("w", [("d1", "a", "b", 0, 2, "w")])
    cache.remove_documents({"d1"})
    assert cache.get("v") == [("d2", "a", "b", 0, 1, "v")]
    assert "w" not in cache


def test_append_to_missing_entry_is_noop():
    cache = ViewCache()
    cache.append("nope", [("d1",)])
    assert "nope" not in cache


def test_no_common_values_yields_empty_views(state):
    witnesses = WitnessRelations.from_rows(
        "d3", 3.0, rbinw_rows=[("root", "author", 0, 1)], rdocw_rows=[(1, "Nobody")]
    )
    views = compute_materialized_views(state, witnesses)
    assert len(views.rvj) == 0
    assert len(views.rl) == 0
    assert len(views.rr) == 0
