"""RuntimeConfig: validation, presets, façade routing, and legacy-kwarg shims."""

from __future__ import annotations

import pytest

from repro import Broker, RuntimeConfig, ShardedBroker, open_broker
from repro.config import (
    ENGINES,
    EXECUTORS,
    INDEXING_MODES,
    PARTITIONERS,
    coerce_config,
)
from repro.core.engine import make_engine
from tests.conftest import PAPER_WINDOWS, make_blog_article, make_book_announcement

CROSS = (
    "S//book->x1[.//author->x2] "
    "FOLLOWED BY{x2=x5, 100} "
    "S//blog->x4[.//author->x5]"
)


# --------------------------------------------------------------------------- #
# validation: the single point for every knob
# --------------------------------------------------------------------------- #
def test_config_defaults_are_valid():
    config = RuntimeConfig()
    assert config.engine == "mmqjp"
    assert not config.is_sharded
    assert config.resolve_store_documents() is True
    assert config.resolve_store_documents(follow_construct_outputs=True) is True


@pytest.mark.parametrize(
    "kwargs",
    [
        {"engine": "turbo"},
        {"indexing": "sometimes"},
        {"shards": 0},
        {"view_cache_size": 0},
        {"stream_history": -1},
        {"max_workers": 0},
        {"result_limit": 0},
        {"partitioner": "round-robin"},
        {"executor": "fibers"},
        {"route_dispatch": 1},
    ],
)
def test_config_validation_rejects_bad_values(kwargs):
    with pytest.raises(ValueError):
        RuntimeConfig(**kwargs)


def test_config_keyword_tuples_match_canonical_definitions():
    from repro.core.engine import ENGINES as ENGINE_NAMES
    from repro.relational.database import INDEXING_MODES as DB_MODES
    from repro.runtime.executor import EXECUTORS as EXEC_NAMES
    from repro.runtime.partition import PARTITIONERS as PART_NAMES

    assert tuple(ENGINES) == tuple(ENGINE_NAMES)
    assert tuple(INDEXING_MODES) == tuple(DB_MODES)
    assert tuple(EXECUTORS) == tuple(sorted(EXEC_NAMES, key=list(EXECUTORS).index)) or set(
        EXECUTORS
    ) == set(EXEC_NAMES)
    assert set(PARTITIONERS) == set(PART_NAMES)


def test_store_documents_resolution_rules():
    throughput = RuntimeConfig(construct_outputs=False)
    assert throughput.resolve_store_documents() is True  # engines / Broker
    assert throughput.resolve_store_documents(follow_construct_outputs=True) is False
    explicit = RuntimeConfig(construct_outputs=False, store_documents=True)
    assert explicit.resolve_store_documents(follow_construct_outputs=True) is True
    with pytest.raises(ValueError):
        RuntimeConfig(store_documents=False).validate_outputs()


def test_presets():
    t = RuntimeConfig.throughput()
    assert t.is_sharded and t.executor == "threads"
    assert not t.construct_outputs and t.store_documents is False
    a = RuntimeConfig.ablation()
    assert a.indexing == "off" and not a.plan_cache and not a.prune_dispatch
    # overrides re-validate
    assert RuntimeConfig.throughput(shards=8).shards == 8
    with pytest.raises(ValueError):
        RuntimeConfig.ablation(indexing="broken")


def test_replace_revalidates():
    config = RuntimeConfig()
    assert config.replace(shards=4).shards == 4
    with pytest.raises(ValueError):
        config.replace(engine="turbo")


# --------------------------------------------------------------------------- #
# coerce_config: the deprecation shim
# --------------------------------------------------------------------------- #
def test_coerce_config_warns_on_legacy_kwargs():
    with pytest.warns(DeprecationWarning, match="RuntimeConfig"):
        config = coerce_config(None, {"engine": "sequential", "indexing": "lazy"})
    assert config.engine == "sequential" and config.indexing == "lazy"


def test_coerce_config_accepts_engine_string_positionally():
    config = coerce_config("mmqjp-vm", {}, warn=False)
    assert config.engine == "mmqjp-vm"


def test_coerce_config_rejects_unknown_kwargs():
    with pytest.raises(TypeError, match="unexpected keyword"):
        coerce_config(None, {"warp_speed": True})


def test_coerce_config_none_values_mean_unset():
    config = coerce_config(None, {"view_cache_size": None, "shards": None}, warn=False)
    assert config == RuntimeConfig()


# --------------------------------------------------------------------------- #
# the façade
# --------------------------------------------------------------------------- #
def test_open_broker_routes_by_shards():
    with open_broker() as broker:
        assert isinstance(broker, Broker)
    with open_broker(RuntimeConfig(shards=3)) as broker:
        assert isinstance(broker, ShardedBroker)
        assert broker.num_shards == 3
    with open_broker("sequential", shards=2) as broker:
        assert isinstance(broker, ShardedBroker)
        assert broker.engine_name == "sequential"
    with pytest.raises(TypeError):
        open_broker(42)


def test_open_broker_overrides_are_first_class():
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        with open_broker(construct_outputs=False, shards=2) as broker:
            assert isinstance(broker, ShardedBroker)
            assert not broker.construct_outputs


# --------------------------------------------------------------------------- #
# legacy construction: warns, but behaves identically
# --------------------------------------------------------------------------- #
def _run_workload(broker):
    keys = []
    broker.subscribe(CROSS, subscription_id="q")
    for ts in (1.0, 2.0):
        for d in broker.publish(
            make_book_announcement(docid=f"bk{ts}", timestamp=ts * 10)
        ):
            pass
        for d in broker.publish(
            make_blog_article(docid=f"bl{ts}", timestamp=ts * 10 + 1)
        ):
            if d.match is not None:
                keys.append(d.match.key())
    broker.close()
    return sorted(keys)


@pytest.mark.parametrize("engine", ["mmqjp", "sequential"])
def test_legacy_broker_kwargs_equivalent_to_config(engine):
    with pytest.warns(DeprecationWarning):
        legacy = Broker(
            engine=engine, construct_outputs=False, indexing="lazy", auto_timestamp=False
        )
    config_broker = open_broker(
        RuntimeConfig(
            engine=engine, construct_outputs=False, indexing="lazy", auto_timestamp=False
        )
    )
    legacy_keys = _run_workload(legacy)
    assert legacy_keys == _run_workload(config_broker)
    assert legacy_keys, "the equivalence workload must produce matches"


def test_legacy_sharded_kwargs_equivalent_to_config():
    with pytest.warns(DeprecationWarning):
        legacy = ShardedBroker(engine="mmqjp", construct_outputs=False, shards=2)
    config_broker = open_broker(RuntimeConfig(construct_outputs=False, shards=2))
    assert _run_workload(legacy) == _run_workload(config_broker)


def test_broker_shards_escape_hatch_warns_and_reroutes():
    with pytest.warns(DeprecationWarning, match="open_broker"):
        broker = Broker(RuntimeConfig(shards=2))
    assert isinstance(broker, ShardedBroker)
    broker.close()
    with pytest.warns(DeprecationWarning):
        broker = Broker(shards=2)
    assert isinstance(broker, ShardedBroker)
    broker.close()


def test_make_engine_accepts_config_and_legacy():
    config = RuntimeConfig(engine="sequential", indexing="off")
    engine = make_engine(config)
    assert engine.indexing == "off"
    with pytest.warns(DeprecationWarning):
        legacy = make_engine("sequential", indexing="off")
    assert legacy.indexing == "off"
    # the selection keyword overrides the config's engine field
    assert make_engine("mmqjp-vm", RuntimeConfig()).processor.use_view_materialization


def test_engines_carry_their_config():
    with open_broker(RuntimeConfig(indexing="lazy", construct_outputs=False)) as broker:
        assert broker.engine.config.indexing == "lazy"
        assert broker.engine.indexing == "lazy"
