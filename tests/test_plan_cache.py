"""Plan-cache and relevance-dispatch invariants at the engine level.

Property tests interleave register / process / prune and assert that the
compiled-plan path and the relevance-pruned path produce exactly the same
matches as the plan-per-call, visit-everything baseline — and that a cached
plan is re-planned once the state's statistics drift across an NDV epoch.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.core import MMQJPEngine, SequentialEngine, make_engine
from repro.pubsub import Broker
from repro.runtime import ShardedBroker
from repro.workloads.querygen import generate_query, generate_topic_queries
from repro.workloads.synthetic import build_document, topic_schemas
from repro.xmlmodel.schema import two_level_schema

SCHEMA = two_level_schema(4)

query_specs = st.lists(
    st.tuples(st.integers(min_value=1, max_value=4), st.integers(min_value=0, max_value=10_000)),
    min_size=1,
    max_size=6,
)
doc_specs = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=2),
    ),
    min_size=2,
    max_size=6,
)


def _make_queries(specs, window=10.0):
    return [generate_query(SCHEMA, k, random.Random(seed), window=window) for k, seed in specs]


def _make_documents(specs):
    return [
        build_document(
            SCHEMA,
            docid=f"doc{i}",
            timestamp=float(i + 1),
            leaf_values=[f"v{x}" for x in leaf_values],
        )
        for i, leaf_values in enumerate(specs)
    ]


def _interleaved_run(engine, queries, d_specs):
    """Register half the queries, stream, register the rest, stream again.

    ``auto_prune`` is on and every window is finite, so pruning interleaves
    with processing; the per-document match keys are collected in order.
    """
    half = max(1, len(queries) // 2)
    for i, query in enumerate(queries[:half]):
        engine.register_query(query, qid=f"q{i}")
    per_doc = []
    documents = _make_documents(d_specs)
    split = len(documents) // 2
    for document in documents[:split]:
        per_doc.append(sorted(m.key() for m in engine.process_document(document)))
    for i, query in enumerate(queries[half:], start=half):
        engine.register_query(query, qid=f"q{i}")
    for document in documents[split:]:
        per_doc.append(sorted(m.key() for m in engine.process_document(document)))
    return per_doc


@given(query_specs, doc_specs)
@settings(max_examples=20, deadline=None)
def test_plan_cache_equivalent_to_plan_per_call(q_specs, d_specs):
    queries = _make_queries(q_specs)
    cached = _interleaved_run(
        MMQJPEngine(store_documents=False, plan_cache=True, prune_dispatch=False),
        queries, d_specs,
    )
    baseline = _interleaved_run(
        MMQJPEngine(store_documents=False, plan_cache=False, prune_dispatch=False),
        queries, d_specs,
    )
    assert cached == baseline


@given(query_specs, doc_specs)
@settings(max_examples=20, deadline=None)
def test_prune_dispatch_equivalent_to_full_dispatch(q_specs, d_specs):
    queries = _make_queries(q_specs)
    pruned = _interleaved_run(
        MMQJPEngine(store_documents=False, plan_cache=True, prune_dispatch=True),
        queries, d_specs,
    )
    baseline = _interleaved_run(
        MMQJPEngine(store_documents=False, plan_cache=False, prune_dispatch=False),
        queries, d_specs,
    )
    assert pruned == baseline


@given(query_specs, doc_specs)
@settings(max_examples=15, deadline=None)
def test_sequential_knobs_equivalent(q_specs, d_specs):
    queries = _make_queries(q_specs)
    full = _interleaved_run(
        SequentialEngine(store_documents=False, plan_cache=True, prune_dispatch=True),
        queries, d_specs,
    )
    baseline = _interleaved_run(
        SequentialEngine(store_documents=False, plan_cache=False, prune_dispatch=False),
        queries, d_specs,
    )
    assert full == baseline


def test_plan_replanned_after_ndv_epoch_drift():
    """Growing the state across power-of-two buckets re-optimizes the plans."""
    engine = MMQJPEngine(store_documents=False, prune_dispatch=False)
    queries = _make_queries([(2, 1), (3, 2)], window=float("inf"))
    for i, query in enumerate(queries):
        engine.register_query(query, qid=f"q{i}")
    rng = random.Random(5)
    baseline = MMQJPEngine(store_documents=False, plan_cache=False, prune_dispatch=False)
    for i, query in enumerate(queries):
        baseline.register_query(query, qid=f"q{i}")
    for i in range(40):
        document = build_document(
            SCHEMA,
            docid=f"d{i}",
            timestamp=float(i + 1),
            leaf_values=[f"v{rng.randrange(3)}" for _ in range(SCHEMA.num_leaves)],
        )
        cached_keys = {m.key() for m in engine.process_document(document)}
        baseline_keys = {
            m.key()
            for m in baseline.process_document(
                build_document(
                    SCHEMA,
                    docid=f"d{i}",
                    timestamp=float(i + 1),
                    leaf_values=[document.string_value(j + 1) for j in range(SCHEMA.num_leaves)],
                )
            )
        }
        assert cached_keys == baseline_keys
    stats = engine.plan_cache.stats()
    # 40 documents merged into the state cross several size buckets.
    assert stats["replans"] >= 1
    assert stats["hits"] > stats["replans"]


def test_relevance_pruning_skips_foreign_topics():
    schemas = topic_schemas(3)
    queries = generate_topic_queries(schemas, 9, window=float("inf"), seed=1)
    engine = MMQJPEngine(store_documents=False)
    for i, query in enumerate(queries):
        engine.register_query(query, qid=f"q{i}")
    # A topic-0 document binds no other topic's variables.
    document = build_document(
        schemas[0], docid="d0", timestamp=1.0,
        leaf_values=["x"] * schemas[0].num_leaves,
    )
    engine.process_document(document)
    assert engine.processor.templates_skipped >= 2


def test_prune_state_clears_interleaved_with_processing():
    """register/process/prune interleavings stay consistent across knobs."""
    engines = [
        make_engine("mmqjp", store_documents=False, plan_cache=pc, prune_dispatch=pd)
        for pc in (True, False) for pd in (True, False)
    ]
    queries = _make_queries([(1, 3), (2, 4)], window=3.0)
    specs = [(0, 1, 0, 1), (1, 0, 1, 0), (0, 0, 1, 1), (1, 1, 0, 0), (0, 1, 1, 0)]
    streams = [
        _interleaved_run(engine, queries, specs) for engine in engines
    ]
    assert all(stream == streams[0] for stream in streams)
    for engine in engines:
        # The finite window pruned old documents along the way.
        assert engine.processor.state.num_documents <= len(specs)


def test_knobs_thread_through_brokers():
    broker = Broker("mmqjp", construct_outputs=False, plan_cache=False, prune_dispatch=False)
    assert broker.engine.plan_cache is None
    assert broker.engine.prune_dispatch is False
    broker = Broker("mmqjp", construct_outputs=False)
    assert broker.engine.plan_cache is not None
    assert broker.engine.prune_dispatch is True

    sharded = ShardedBroker(
        "mmqjp", construct_outputs=False, shards=2,
        plan_cache=False, prune_dispatch=False, store_documents=False,
    )
    try:
        for shard in sharded.shards:
            assert shard.engine.plan_cache is None
            assert shard.engine.prune_dispatch is False
    finally:
        sharded.close()
