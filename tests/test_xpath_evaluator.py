"""Unit tests for the Stage 1 evaluator (witness generation)."""

import pytest

from repro.xmlmodel import parse_document
from repro.xpath import XPathEvaluator, parse_path
from repro.xpath.evaluator import VariableConflictError
from repro.xpath.pattern import simple_pattern


@pytest.fixture
def evaluator() -> XPathEvaluator:
    ev = XPathEvaluator()
    pattern = simple_pattern("S", "x1", "//book", {"x2": ".//author", "x3": ".//title"})
    ev.register_pattern(pattern)
    return ev


@pytest.fixture
def book_doc():
    return parse_document(
        "<book>"
        "<authors><author>Ada</author><author>Grace</author></authors>"
        "<title>Streams</title>"
        "</book>",
        docid="b1",
        timestamp=5.0,
    )


def test_variable_bindings(evaluator, book_doc):
    witnesses = evaluator.evaluate(book_doc)
    assert witnesses.docid == "b1"
    assert witnesses.timestamp == 5.0
    assert witnesses.var_nodes["x1"] == {0}
    assert witnesses.var_nodes["x2"] == {2, 3}
    assert witnesses.var_nodes["x3"] == {4}


def test_edge_pairs(evaluator, book_doc):
    witnesses = evaluator.evaluate(book_doc)
    assert witnesses.edge_pairs[("x1", "x2")] == {(0, 2), (0, 3)}
    assert witnesses.edge_pairs[("x1", "x3")] == {(0, 4)}


def test_node_values_for_bound_nodes(evaluator, book_doc):
    witnesses = evaluator.evaluate(book_doc)
    assert witnesses.node_values[2] == "Ada"
    assert witnesses.node_values[4] == "Streams"
    assert 0 in witnesses.node_values  # the bound root is recorded too


def test_non_matching_document_is_empty(evaluator):
    witnesses = evaluator.evaluate(parse_document("<blog><author>Ada</author></blog>"))
    assert witnesses.is_empty
    assert witnesses.bound_variables() == set()


def test_other_stream_not_matched(evaluator, book_doc):
    book_doc.stream = "otherstream"
    witnesses = evaluator.evaluate(book_doc)
    assert witnesses.is_empty


def test_variables_shared_across_patterns(evaluator):
    # Registering a second pattern using the same definitions must not conflict.
    again = simple_pattern("S", "x1", "//book", {"x2": ".//author"})
    evaluator.register_pattern(again)
    assert set(evaluator.variables) == {"x1", "x2", "x3"}


def test_conflicting_variable_definition_rejected(evaluator):
    other = simple_pattern("S", "x1", "//blog", {})
    with pytest.raises(VariableConflictError):
        evaluator.register_pattern(other)


def test_conflicting_edge_registration_rejected(evaluator):
    with pytest.raises(VariableConflictError):
        evaluator.register_edge("x1", "x2", parse_path(".//title"))


def test_explicit_edge_subset():
    ev = XPathEvaluator()
    pattern = simple_pattern("S", "r", "//item", {"a": ".//x", "b": ".//y"})
    ev.register_pattern(pattern, edges=[("r", "a")])
    assert set(ev.edges) == {("r", "a")}


def test_register_variable_requires_absolute_path():
    ev = XPathEvaluator()
    with pytest.raises(ValueError):
        ev.register_variable("v", "S", parse_path(".//x"))


def test_register_edge_requires_relative_path():
    ev = XPathEvaluator()
    with pytest.raises(ValueError):
        ev.register_edge("a", "b", parse_path("//x"))


def test_multi_level_edge_witnesses():
    """Edges spanning spliced intermediates anchor at the ancestor binding."""
    ev = XPathEvaluator()
    ev.register_variable("r", "S", parse_path("//lib"))
    ev.register_variable("t", "S", parse_path("//lib//shelf//title"))
    ev.register_edge("r", "t", parse_path(".//shelf//title"))
    doc = parse_document(
        "<lib><shelf><title>A</title></shelf><title>loose</title></lib>", docid="x"
    )
    witnesses = ev.evaluate(doc)
    assert witnesses.edge_pairs[("r", "t")] == {(0, 2)}


def test_num_nfa_states_reflects_sharing():
    ev = XPathEvaluator()
    ev.register_variable("a", "S", parse_path("//item//title"))
    before = ev.num_nfa_states()
    ev.register_variable("b", "S", parse_path("//item//author"))
    assert ev.num_nfa_states() == before + 1
