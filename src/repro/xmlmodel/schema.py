"""Document schema descriptions.

The paper's technical benchmark (Section 6.1) uses two synthetic schemas:

* a *two-level* ("simple"/"flat") schema — a root with ``N`` leaf children,
  modelling an RSS feed item (Figure 2), and
* a *three-level* ("complex") schema — root and intermediate nodes with
  branching factor 4, giving 16 leaves.

:class:`DocumentSchema` captures the tree shape (tags per level) so that the
workload generators, the query generators and the template enumeration all
agree on which leaves exist and how they are grouped.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class DocumentSchema:
    """A (small) tree-shaped document schema.

    Attributes
    ----------
    root_tag:
        Tag of the root element.
    leaf_tags:
        Tags of the leaf elements, in document order.
    groups:
        For three-level schemas: a tuple, one entry per intermediate node,
        each entry a tuple of indexes into ``leaf_tags`` giving the leaves
        under that intermediate node.  Empty for two-level schemas.
    group_tags:
        Tags of the intermediate nodes (parallel to ``groups``).
    """

    root_tag: str
    leaf_tags: tuple[str, ...]
    groups: tuple[tuple[int, ...], ...] = field(default=())
    group_tags: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.groups and len(self.groups) != len(self.group_tags):
            raise ValueError("groups and group_tags must have the same length")
        if self.groups:
            covered = [i for group in self.groups for i in group]
            if sorted(covered) != list(range(len(self.leaf_tags))):
                raise ValueError("groups must partition the leaf indexes exactly")

    @property
    def num_leaves(self) -> int:
        """Number of leaf elements in the schema."""
        return len(self.leaf_tags)

    @property
    def levels(self) -> int:
        """Number of levels: 2 for flat schemas, 3 when intermediate groups exist."""
        return 3 if self.groups else 2

    def group_of_leaf(self, leaf_index: int) -> int:
        """Return the intermediate-group index of a leaf (or -1 for flat schemas)."""
        for g, members in enumerate(self.groups):
            if leaf_index in members:
                return g
        return -1

    def leaf_path(self, leaf_index: int) -> list[str]:
        """Tags on the path from the root to the given leaf (root first)."""
        path = [self.root_tag]
        g = self.group_of_leaf(leaf_index)
        if g >= 0:
            path.append(self.group_tags[g])
        path.append(self.leaf_tags[leaf_index])
        return path


def two_level_schema(num_leaves: int = 6, root_tag: str = "item") -> DocumentSchema:
    """The paper's simple document schema: a root with ``num_leaves`` leaf children."""
    if num_leaves < 1:
        raise ValueError("num_leaves must be positive")
    leaves = tuple(f"leaf{i}" for i in range(num_leaves))
    return DocumentSchema(root_tag=root_tag, leaf_tags=leaves)


def three_level_schema(
    branching: int = 4, root_tag: str = "record", group_tag_prefix: str = "section"
) -> DocumentSchema:
    """The paper's complex schema: root and intermediates with branching factor 4.

    ``branching ** 2`` leaves in total (16 for the default branching of 4).
    """
    if branching < 1:
        raise ValueError("branching must be positive")
    leaves = []
    groups = []
    group_tags = []
    for g in range(branching):
        members = []
        for j in range(branching):
            members.append(len(leaves))
            leaves.append(f"leaf{g}_{j}")
        groups.append(tuple(members))
        group_tags.append(f"{group_tag_prefix}{g}")
    return DocumentSchema(
        root_tag=root_tag,
        leaf_tags=tuple(leaves),
        groups=tuple(groups),
        group_tags=tuple(group_tags),
    )


def rss_item_schema() -> DocumentSchema:
    """The RSS feed-item schema of Section 6.3: five leaves under an ``item`` root."""
    return DocumentSchema(
        root_tag="item",
        leaf_tags=("item_url", "channel_url", "title", "timestamp", "description"),
    )
