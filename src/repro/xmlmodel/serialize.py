"""Serialize XML trees back to text (used for query output construction)."""

from __future__ import annotations

from repro.xmlmodel.document import XmlDocument
from repro.xmlmodel.node import XmlNode

_ESCAPES = [("&", "&amp;"), ("<", "&lt;"), (">", "&gt;")]
_ATTR_ESCAPES = _ESCAPES + [('"', "&quot;")]


def _escape(text: str, attr: bool = False) -> str:
    for char, entity in (_ATTR_ESCAPES if attr else _ESCAPES):
        text = text.replace(char, entity)
    return text


def _render(node: XmlNode, indent: int, pretty: bool) -> list[str]:
    pad = "  " * indent if pretty else ""
    attrs = "".join(f' {k}="{_escape(v, attr=True)}"' for k, v in node.attributes.items())
    if not node.children and not node.text:
        return [f"{pad}<{node.tag}{attrs}/>"]
    if not node.children:
        return [f"{pad}<{node.tag}{attrs}>{_escape(node.text or '')}</{node.tag}>"]
    lines = [f"{pad}<{node.tag}{attrs}>"]
    if node.text:
        lines.append(f"{pad}  {_escape(node.text)}" if pretty else _escape(node.text))
    for child in node.children:
        lines.extend(_render(child, indent + 1, pretty))
    lines.append(f"{pad}</{node.tag}>")
    return lines


def to_xml(doc_or_node: XmlDocument | XmlNode, pretty: bool = True) -> str:
    """Serialize a document or node to XML text.

    With ``pretty=True`` (default) the output is indented, one element per
    line; otherwise the output is a single line.
    """
    node = doc_or_node.root if isinstance(doc_or_node, XmlDocument) else doc_or_node
    lines = _render(node, 0, pretty)
    return "\n".join(lines) if pretty else "".join(lines)
