"""Event-driven (SAX-style) single-pass XML scanning.

This module is the ingest fast path: :class:`XmlScanner` walks the text
once and emits ``start``/``text``/``end`` events to a handler, so consumers
can build whatever they need in a single pass — a full node tree
(:class:`TreeBuilder`, behind :func:`repro.xmlmodel.parser.parse_document`)
or Stage-1 witnesses directly (:mod:`repro.xpath.streaming`) without ever
materializing :class:`~repro.xmlmodel.node.XmlNode` objects.

The scanner accepts exactly the XML subset of the original recursive
parser (:class:`repro.xmlmodel.parser._Parser`, kept as the reference
implementation for differential tests): elements, attributes, character
data, CDATA, comments, a prolog/DOCTYPE before the root, and the five
predefined entities.  Error messages and reported positions are identical
— property tests assert parity on malformed inputs.
"""

from __future__ import annotations

import re

from repro.xmlmodel.document import XmlDocument
from repro.xmlmodel.node import XmlNode

_TAG_RE = re.compile(r"[A-Za-z_][\w.\-:]*")
_ATTR_RE = re.compile(r"\s*([A-Za-z_][\w.\-:]*)\s*=\s*(\"[^\"]*\"|'[^']*')")
#: A run of complete, attribute-free leaf elements (``<tag>text</tag>``),
#: the dominant shape of element-dense documents.  Validation consumes a
#: whole run in one C-level match; the per-iteration backreference pins
#: each end tag to its own start tag, and the possessive quantifiers keep
#: a failed continuation from re-scanning the run.  Anything the pattern
#: does not cover (attributes, children, markup in text) falls back to the
#: general loop at the exact position the run ended.
_LEAF_RUN_RE = re.compile(r"(?:\s*<([A-Za-z_][\w.\-:]*+)>[^<]*</\1>)++")
#: Entity references are decoded in a single pass: ``&amp;quot;`` is one
#: ``&amp;`` followed by literal ``quot;`` and must decode to ``&quot;``,
#: never to ``"`` (the sequential str.replace implementation double-decoded).
_ENTITY_RE = re.compile(r"&(lt|gt|amp|quot|apos);")
_ENTITY_CHARS = {"lt": "<", "gt": ">", "amp": "&", "quot": '"', "apos": "'"}


class XmlParseError(ValueError):
    """Raised when the input text is not well-formed (for the supported subset)."""


def _entity_char(match: "re.Match[str]") -> str:
    return _ENTITY_CHARS[match.group(1)]


def _unescape(text: str) -> str:
    if "&" not in text:
        return text
    return _ENTITY_RE.sub(_entity_char, text)


class XmlScanner:
    """A cursor over XML text emitting parse events in document order.

    The handler duck type::

        handler.start(tag, attributes)   # element start (attributes: dict)
        handler.text(data)               # one unescaped character-data part
        handler.end()                    # element end (matches the last open start)

    A self-closing element emits ``start`` immediately followed by ``end``.
    Comments, processing instructions and DOCTYPE are skipped silently.
    """

    __slots__ = ("text", "pos")

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def error(self, message: str) -> XmlParseError:
        line = self.text.count("\n", 0, self.pos) + 1
        return XmlParseError(f"{message} (near position {self.pos}, line {line})")

    def skip_misc(self) -> None:
        """Skip whitespace, comments, processing instructions and the prolog."""
        while self.pos < len(self.text):
            if self.text[self.pos].isspace():
                self.pos += 1
            elif self.text.startswith("<!--", self.pos):
                end = self.text.find("-->", self.pos)
                if end < 0:
                    raise self.error("unterminated comment")
                self.pos = end + 3
            elif self.text.startswith("<?", self.pos):
                end = self.text.find("?>", self.pos)
                if end < 0:
                    raise self.error("unterminated processing instruction")
                self.pos = end + 2
            elif self.text.startswith("<!DOCTYPE", self.pos):
                end = self.text.find(">", self.pos)
                if end < 0:
                    raise self.error("unterminated DOCTYPE")
                self.pos = end + 1
            else:
                return

    def scan(self, handler) -> None:
        """Scan one element (with its subtree) starting at the cursor.

        The loop body keeps the cursor in a local and dispatches on the
        character *after* a ``<`` (name start / ``/`` / ``!``): this is the
        per-event hot path of every ingest mode, so it avoids attribute
        round trips and prefix probes that a profile shows dominating.
        ``self.pos`` is synced back before every raise so error positions
        match the reference parser exactly.
        """
        text = self.text
        length = len(text)
        pos = self.pos
        emit_start = handler.start
        emit_text = handler.text
        emit_end = handler.end
        tag_match = _TAG_RE.match
        attr_match = _ATTR_RE.match
        stack: list[str] = []
        while True:
            # One start tag at the cursor.
            if pos >= length or text[pos] != "<":
                self.pos = pos
                raise self.error("expected element start tag")
            m = tag_match(text, pos + 1)
            if not m:
                self.pos = pos + 1
                raise self.error("expected element name")
            tag = m.group(0)
            pos = m.end()

            attributes: dict[str, str] = {}
            # The first attribute always follows whitespace (a name char
            # would still be part of the tag), so attr-less elements — the
            # common case — skip the regex probe entirely.
            if pos < length and text[pos] in " \t\r\n":
                while True:
                    m = attr_match(text, pos)
                    if not m:
                        break
                    attributes[m.group(1)] = _unescape(m.group(2)[1:-1])
                    pos = m.end()

            while pos < length and text[pos].isspace():
                pos += 1
            head = text[pos] if pos < length else ""
            if head == ">":
                pos += 1
                emit_start(tag, attributes)
                stack.append(tag)
            elif head == "/" and text.startswith("/>", pos):
                pos += 2
                emit_start(tag, attributes)
                emit_end()
                if not stack:
                    self.pos = pos
                    return
            else:
                self.pos = pos
                raise self.error(f"malformed start tag for <{tag}>")

            # Content of the innermost open element, up to either its end
            # tag (possibly closing ancestors too) or a child start tag.
            while stack:
                if pos >= length:
                    self.pos = pos
                    raise self.error(f"unexpected end of input inside <{stack[-1]}>")
                if text[pos] != "<":
                    nxt = text.find("<", pos)
                    if nxt < 0:
                        self.pos = pos
                        raise self.error(
                            f"unexpected end of input inside <{stack[-1]}>"
                        )
                    emit_text(_unescape(text[pos:nxt]))
                    pos = nxt
                    continue
                head = text[pos + 1] if pos + 1 < length else ""
                if head == "/":
                    open_tag = stack[-1]
                    end = pos + 2 + len(open_tag)
                    if text.startswith(open_tag, pos + 2) and text.startswith(
                        ">", end
                    ):
                        pos = end + 1  # the overwhelmingly common exact match
                    else:
                        end = text.find(">", pos)
                        if end < 0:
                            self.pos = pos
                            raise self.error(
                                f"unterminated end tag for <{open_tag}>"
                            )
                        closing = text[pos + 2 : end].strip()
                        if closing != open_tag:
                            self.pos = pos
                            raise self.error(
                                f"mismatched end tag </{closing}> for <{open_tag}>"
                            )
                        pos = end + 1
                    stack.pop()
                    emit_end()
                elif head != "!":
                    break  # a child element; the outer loop parses its start tag
                elif text.startswith("<!--", pos):
                    end = text.find("-->", pos)
                    if end < 0:
                        self.pos = pos
                        raise self.error("unterminated comment")
                    pos = end + 3
                elif text.startswith("<![CDATA[", pos):
                    end = text.find("]]>", pos)
                    if end < 0:
                        self.pos = pos
                        raise self.error("unterminated CDATA section")
                    emit_text(text[pos + 9 : end])
                    pos = end + 3
                else:
                    break  # "<!" with no known form: fails as a start tag
            if not stack:
                self.pos = pos
                return

    def validate(self) -> None:
        """Check well-formedness of one element without emitting events.

        The same grammar and error messages as :meth:`scan`, minus every
        piece of work that only matters to a consumer: no attribute dicts,
        no entity decoding, no handler calls.  This is the ``matcher=None``
        publish path — documents on streams nobody subscribes to must still
        reject malformed input exactly like the tree path, but nothing
        reads their content.
        """
        text = self.text
        length = len(text)
        pos = self.pos
        tag_match = _TAG_RE.match
        attr_match = _ATTR_RE.match
        leaf_run = _LEAF_RUN_RE.match
        stack: list[str] = []
        while True:
            if pos >= length or text[pos] != "<":
                self.pos = pos
                raise self.error("expected element start tag")
            m = tag_match(text, pos + 1)
            if not m:
                self.pos = pos + 1
                raise self.error("expected element name")
            tag = m.group(0)
            pos = m.end()
            if pos < length and text[pos] in " \t\r\n":
                while True:
                    m = attr_match(text, pos)
                    if not m:
                        break
                    pos = m.end()
            while pos < length and text[pos].isspace():
                pos += 1
            head = text[pos] if pos < length else ""
            if head == ">":
                pos += 1
                stack.append(tag)
            elif head == "/" and text.startswith("/>", pos):
                pos += 2
                if not stack:
                    self.pos = pos
                    return
            else:
                self.pos = pos
                raise self.error(f"malformed start tag for <{tag}>")

            while stack:
                m = leaf_run(text, pos)
                if m:
                    pos = m.end()
                if pos >= length:
                    self.pos = pos
                    raise self.error(f"unexpected end of input inside <{stack[-1]}>")
                if text[pos] != "<":
                    nxt = text.find("<", pos)
                    if nxt < 0:
                        self.pos = pos
                        raise self.error(
                            f"unexpected end of input inside <{stack[-1]}>"
                        )
                    pos = nxt
                    continue
                head = text[pos + 1] if pos + 1 < length else ""
                if head == "/":
                    open_tag = stack[-1]
                    end = pos + 2 + len(open_tag)
                    if text.startswith(open_tag, pos + 2) and text.startswith(
                        ">", end
                    ):
                        pos = end + 1
                    else:
                        end = text.find(">", pos)
                        if end < 0:
                            self.pos = pos
                            raise self.error(
                                f"unterminated end tag for <{open_tag}>"
                            )
                        closing = text[pos + 2 : end].strip()
                        if closing != open_tag:
                            self.pos = pos
                            raise self.error(
                                f"mismatched end tag </{closing}> for <{open_tag}>"
                            )
                        pos = end + 1
                    stack.pop()
                elif head != "!":
                    break
                elif text.startswith("<!--", pos):
                    end = text.find("-->", pos)
                    if end < 0:
                        self.pos = pos
                        raise self.error("unterminated comment")
                    pos = end + 3
                elif text.startswith("<![CDATA[", pos):
                    end = text.find("]]>", pos)
                    if end < 0:
                        self.pos = pos
                        raise self.error("unterminated CDATA section")
                    pos = end + 3
                else:
                    break
            if not stack:
                self.pos = pos
                return


def scan_text(text: str, handler) -> None:
    """Scan a whole document: prolog, one root element, trailing misc."""
    scanner = XmlScanner(text)
    scanner.skip_misc()
    scanner.scan(handler)
    scanner.skip_misc()
    if scanner.pos != len(text):
        raise scanner.error("trailing content after the root element")


def validate_text(text: str) -> None:
    """Validate a whole document without building anything.

    Raises :class:`XmlParseError` with the same message :func:`scan_text`
    would; returns nothing on success.
    """
    scanner = XmlScanner(text)
    scanner.skip_misc()
    scanner.validate()
    scanner.skip_misc()
    if scanner.pos != len(text):
        raise scanner.error("trailing content after the root element")


class TreeBuilder:
    """Build an :class:`XmlNode` tree from scan events in a single pass.

    Pre-order ids, post-order ids, depths and parent links are assigned as
    the events arrive (pre id = start-event count, post id = end-event
    count), so the finished tree needs no ``_assign_ids`` walk.
    """

    __slots__ = ("root", "nodes", "_stack", "_parts", "_post")

    def __init__(self):
        self.root: XmlNode | None = None
        self.nodes: list[XmlNode] = []
        self._stack: list[XmlNode] = []
        self._parts: list[list[str]] = []
        self._post = 0

    def start(self, tag: str, attributes: dict[str, str]) -> None:
        node = XmlNode(tag, attributes=attributes)
        nodes = self.nodes
        node.node_id = len(nodes)
        stack = self._stack
        if stack:
            parent = stack[-1]
            node.parent = parent
            node.depth = parent.depth + 1
            parent.children.append(node)
        else:
            self.root = node
        nodes.append(node)
        stack.append(node)
        self._parts.append([])

    def text(self, data: str) -> None:
        self._parts[-1].append(data)

    def end(self) -> None:
        node = self._stack.pop()
        parts = self._parts.pop()
        if parts:
            joined = "".join(parts).strip()
            node.text = joined if joined else None
        node.post_id = self._post
        self._post += 1


def parse_node_streaming(text: str) -> XmlNode:
    """Parse XML text into a fully-indexed root :class:`XmlNode`."""
    builder = TreeBuilder()
    scan_text(text, builder)
    return builder.root


def parse_document_streaming(
    text: str,
    docid: str | None = None,
    timestamp: float = 0.0,
    stream: str = "S",
) -> XmlDocument:
    """Parse XML text into an :class:`XmlDocument` in a single pass."""
    builder = TreeBuilder()
    scan_text(text, builder)
    return XmlDocument.from_indexed(
        builder.root, builder.nodes, docid=docid, timestamp=timestamp, stream=stream
    )
