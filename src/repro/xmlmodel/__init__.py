"""XML document model used throughout the system.

Documents are ordered, labelled trees.  Each element node carries a *node
id* assigned by pre-order traversal (exactly as in the paper's Figures 1
and 2) plus a post-order id, so that ancestor/descendant tests are O(1)
interval containment checks.  Leaf text content is exposed through the XPath
string-value semantics the paper's equality operator relies on.
"""

from repro.xmlmodel.node import XmlNode
from repro.xmlmodel.document import XmlDocument
from repro.xmlmodel.builder import element
from repro.xmlmodel.parser import parse_document, XmlParseError
from repro.xmlmodel.serialize import to_xml
from repro.xmlmodel.schema import DocumentSchema, two_level_schema, three_level_schema

__all__ = [
    "XmlNode",
    "XmlDocument",
    "element",
    "parse_document",
    "XmlParseError",
    "to_xml",
    "DocumentSchema",
    "two_level_schema",
    "three_level_schema",
]
