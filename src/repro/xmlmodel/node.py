"""Element nodes of an XML document tree."""

from __future__ import annotations

from typing import Iterator, Optional


class XmlNode:
    """A single element node in an XML tree.

    Attributes
    ----------
    tag:
        The element name.
    text:
        Direct text content of the node (``None`` for pure container nodes).
    attributes:
        XML attributes as a ``str -> str`` mapping.
    children:
        Child element nodes, in document order.
    parent:
        The parent node, or ``None`` for the root.
    node_id:
        Pre-order id assigned by the owning :class:`~repro.xmlmodel.document.XmlDocument`.
    post_id:
        Post-order id (used together with ``node_id`` for O(1) descendant tests).
    depth:
        Distance from the root (root has depth 0).
    """

    __slots__ = ("tag", "text", "attributes", "children", "parent", "node_id", "post_id", "depth")

    def __init__(
        self,
        tag: str,
        text: Optional[str] = None,
        attributes: Optional[dict[str, str]] = None,
    ):
        if not tag:
            raise ValueError("element tag must be a non-empty string")
        self.tag = tag
        self.text = text
        self.attributes: dict[str, str] = dict(attributes or {})
        self.children: list[XmlNode] = []
        self.parent: Optional[XmlNode] = None
        self.node_id: int = -1
        self.post_id: int = -1
        self.depth: int = 0

    # ------------------------------------------------------------------ #
    # tree construction
    # ------------------------------------------------------------------ #
    def append(self, child: "XmlNode") -> "XmlNode":
        """Attach ``child`` as the last child of this node and return it."""
        child.parent = self
        self.children.append(child)
        return child

    # ------------------------------------------------------------------ #
    # structure queries
    # ------------------------------------------------------------------ #
    @property
    def is_leaf(self) -> bool:
        """True when this node has no element children."""
        return not self.children

    def iter_preorder(self) -> Iterator["XmlNode"]:
        """Iterate this node and all descendants in document (pre-) order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def iter_descendants(self) -> Iterator["XmlNode"]:
        """Iterate proper descendants in document order."""
        it = self.iter_preorder()
        next(it)  # skip self
        return it

    def iter_ancestors(self) -> Iterator["XmlNode"]:
        """Iterate proper ancestors, nearest first."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def is_descendant_of(self, other: "XmlNode") -> bool:
        """True when ``self`` is a proper descendant of ``other``.

        Uses the pre/post interval labelling when available (ids >= 0),
        otherwise walks parents.
        """
        if self is other:
            return False
        if self.node_id >= 0 and other.node_id >= 0:
            return other.node_id < self.node_id and self.post_id < other.post_id
        return any(anc is other for anc in self.iter_ancestors())

    def is_ancestor_of(self, other: "XmlNode") -> bool:
        """True when ``self`` is a proper ancestor of ``other``."""
        return other.is_descendant_of(self)

    # ------------------------------------------------------------------ #
    # values
    # ------------------------------------------------------------------ #
    def string_value(self) -> str:
        """The XPath string value: concatenation of all descendant text, in order.

        The paper's value-join equality is defined on this value.
        """
        parts: list[str] = []
        for node in self.iter_preorder():
            if node.text:
                parts.append(node.text)
        return "".join(parts)

    def attribute(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """Return the value of attribute ``name`` (or ``default``)."""
        return self.attributes.get(name, default)

    def find_children(self, tag: str) -> list["XmlNode"]:
        """Direct children with the given tag (``"*"`` matches every tag)."""
        if tag == "*":
            return list(self.children)
        return [c for c in self.children if c.tag == tag]

    def find_descendants(self, tag: str) -> list["XmlNode"]:
        """Proper descendants with the given tag (``"*"`` matches every tag)."""
        if tag == "*":
            return list(self.iter_descendants())
        return [d for d in self.iter_descendants() if d.tag == tag]

    def __repr__(self) -> str:
        label = f"<{self.tag}"
        if self.node_id >= 0:
            label += f" #{self.node_id}"
        if self.text:
            label += f" {self.text!r}"
        return label + ">"
