"""Programmatic construction of XML trees.

``element("book", element("author", text="Danny Ayers"), ...)`` builds the
kind of small documents the paper's running example and the synthetic
workloads use, without going through text parsing.
"""

from __future__ import annotations

from typing import Optional

from repro.xmlmodel.node import XmlNode


def element(
    tag: str,
    *children: XmlNode,
    text: Optional[str] = None,
    attributes: Optional[dict[str, str]] = None,
) -> XmlNode:
    """Create an :class:`~repro.xmlmodel.node.XmlNode` with the given children.

    Parameters
    ----------
    tag:
        Element name.
    children:
        Child element nodes, attached in the given order.
    text:
        Direct text content of the element.
    attributes:
        XML attributes.
    """
    node = XmlNode(tag, text=text, attributes=attributes)
    for child in children:
        node.append(child)
    return node
