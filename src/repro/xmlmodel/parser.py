"""A small, dependency-free XML parser.

The broker accepts documents as text; this parser covers the XML subset the
paper's workloads use: elements, attributes, character data, comments,
processing instructions/prolog, and entity references for the five
predefined entities.  It does not support namespaces, DTDs or CDATA mixed
content subtleties beyond simple concatenation.

:func:`parse_node` and :func:`parse_document` run on the single-pass
event scanner of :mod:`repro.xmlmodel.stream` (one text walk, ids assigned
while building).  The original recursive-descent :class:`_Parser` is kept
as the reference implementation: the property tests parse every generated
document through both and assert identical trees — and identical
:class:`XmlParseError` messages and positions on malformed input.
"""

from __future__ import annotations

from typing import Optional

from repro.xmlmodel.document import XmlDocument
from repro.xmlmodel.node import XmlNode
from repro.xmlmodel.stream import (
    _ATTR_RE,
    _TAG_RE,
    _unescape,
    XmlParseError,
    parse_document_streaming,
    parse_node_streaming,
)

__all__ = ["XmlParseError", "parse_document", "parse_node"]


class _Parser:
    """Reference recursive-descent parser (differential-test oracle only)."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def error(self, message: str) -> XmlParseError:
        line = self.text.count("\n", 0, self.pos) + 1
        return XmlParseError(f"{message} (near position {self.pos}, line {line})")

    def skip_misc(self) -> None:
        """Skip whitespace, comments, processing instructions and the prolog."""
        while self.pos < len(self.text):
            if self.text[self.pos].isspace():
                self.pos += 1
            elif self.text.startswith("<!--", self.pos):
                end = self.text.find("-->", self.pos)
                if end < 0:
                    raise self.error("unterminated comment")
                self.pos = end + 3
            elif self.text.startswith("<?", self.pos):
                end = self.text.find("?>", self.pos)
                if end < 0:
                    raise self.error("unterminated processing instruction")
                self.pos = end + 2
            elif self.text.startswith("<!DOCTYPE", self.pos):
                end = self.text.find(">", self.pos)
                if end < 0:
                    raise self.error("unterminated DOCTYPE")
                self.pos = end + 1
            else:
                return

    def parse_element(self) -> XmlNode:
        if self.pos >= len(self.text) or self.text[self.pos] != "<":
            raise self.error("expected element start tag")
        self.pos += 1
        m = _TAG_RE.match(self.text, self.pos)
        if not m:
            raise self.error("expected element name")
        tag = m.group(0)
        self.pos = m.end()

        attributes: dict[str, str] = {}
        while True:
            m = _ATTR_RE.match(self.text, self.pos)
            if not m:
                break
            attributes[m.group(1)] = _unescape(m.group(2)[1:-1])
            self.pos = m.end()

        # Self-closing?
        rest = self.text[self.pos:]
        stripped = rest.lstrip()
        self.pos += len(rest) - len(stripped)
        if self.text.startswith("/>", self.pos):
            self.pos += 2
            return XmlNode(tag, attributes=attributes)
        if not self.text.startswith(">", self.pos):
            raise self.error(f"malformed start tag for <{tag}>")
        self.pos += 1

        node = XmlNode(tag, attributes=attributes)
        text_parts: list[str] = []
        while True:
            if self.pos >= len(self.text):
                raise self.error(f"unexpected end of input inside <{tag}>")
            if self.text.startswith("</", self.pos):
                end = self.text.find(">", self.pos)
                if end < 0:
                    raise self.error(f"unterminated end tag for <{tag}>")
                closing = self.text[self.pos + 2 : end].strip()
                if closing != tag:
                    raise self.error(f"mismatched end tag </{closing}> for <{tag}>")
                self.pos = end + 1
                break
            if self.text.startswith("<!--", self.pos):
                end = self.text.find("-->", self.pos)
                if end < 0:
                    raise self.error("unterminated comment")
                self.pos = end + 3
            elif self.text.startswith("<![CDATA[", self.pos):
                end = self.text.find("]]>", self.pos)
                if end < 0:
                    raise self.error("unterminated CDATA section")
                text_parts.append(self.text[self.pos + 9 : end])
                self.pos = end + 3
            elif self.text.startswith("<", self.pos):
                node.append(self.parse_element())
            else:
                nxt = self.text.find("<", self.pos)
                if nxt < 0:
                    raise self.error(f"unexpected end of input inside <{tag}>")
                text_parts.append(_unescape(self.text[self.pos : nxt]))
                self.pos = nxt
        text = "".join(text_parts).strip()
        node.text = text if text else None
        return node


def _parse_node_reference(text: str) -> XmlNode:
    """Reference single-element parse (tests compare against the scanner)."""
    parser = _Parser(text)
    parser.skip_misc()
    node = parser.parse_element()
    parser.skip_misc()
    if parser.pos != len(parser.text):
        raise parser.error("trailing content after the root element")
    return node


def parse_node(text: str) -> XmlNode:
    """Parse XML text and return the root :class:`XmlNode` (no document wrapper)."""
    return parse_node_streaming(text)


def parse_document(
    text: str,
    docid: Optional[str] = None,
    timestamp: float = 0.0,
    stream: str = "S",
) -> XmlDocument:
    """Parse XML text into an :class:`~repro.xmlmodel.document.XmlDocument`."""
    return parse_document_streaming(text, docid=docid, timestamp=timestamp, stream=stream)
