"""Shared NFA over absolute location paths (YFilter-style path sharing).

All absolute root paths of all registered query blocks are compiled into a
single trie-shaped NFA.  A document is then traversed once; at every element
the set of active NFA states is advanced, and accepting states report which
registered paths match the element.  This is the structural-sharing idea of
YFilter [Diao et al., TODS 2003], which the paper reuses for Stage 1.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Hashable, Iterable

from repro.xmlmodel.document import XmlDocument
from repro.xmlmodel.node import XmlNode
from repro.xpath.ast import Axis, LocationPath, Step


class PathNFA:
    """A shared NFA recognizing a set of absolute location paths.

    Paths are registered with :meth:`add_path` under an arbitrary hashable
    key; :meth:`match_document` returns, for every key, the set of element
    node ids matched by that path.
    """

    def __init__(self) -> None:
        # State 0 is the start state (the virtual document node).
        self._transitions: list[dict[tuple[Axis, str], int]] = [{}]
        self._accepting: dict[int, set[Hashable]] = defaultdict(set)
        self._has_descendant_out: list[bool] = [False]
        self._paths: dict[Hashable, LocationPath] = {}

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _new_state(self) -> int:
        self._transitions.append({})
        self._has_descendant_out.append(False)
        return len(self._transitions) - 1

    def add_path(self, key: Hashable, path: LocationPath) -> None:
        """Register an absolute path under ``key`` (idempotent per key)."""
        if not path.absolute:
            raise ValueError("the shared NFA only accepts absolute paths")
        if key in self._paths:
            if str(self._paths[key]) != str(path):
                raise ValueError(f"key {key!r} already registered with a different path")
            return
        self._paths[key] = path
        state = 0
        for step in path.steps:
            edge = (step.axis, step.test)
            nxt = self._transitions[state].get(edge)
            if nxt is None:
                nxt = self._new_state()
                self._transitions[state][edge] = nxt
                if step.axis is Axis.DESCENDANT:
                    self._has_descendant_out[state] = True
            state = nxt
        self._accepting[state].add(key)

    @property
    def num_states(self) -> int:
        """Number of NFA states (including the start state)."""
        return len(self._transitions)

    @property
    def paths(self) -> dict[Hashable, LocationPath]:
        """The registered paths, by key."""
        return dict(self._paths)

    # ------------------------------------------------------------------ #
    # matching
    # ------------------------------------------------------------------ #
    def _advance(self, active: frozenset[int], tag: str) -> tuple[set[int], set[int]]:
        """One transition step: returns (reached states, active set for children)."""
        reached: set[int] = set()
        carry: set[int] = set()
        for state in active:
            if self._has_descendant_out[state]:
                carry.add(state)
            for (axis, test), nxt in self._transitions[state].items():
                if test == "*" or test == tag:
                    reached.add(nxt)
        return reached, reached | carry

    def match_document(self, document: XmlDocument) -> dict[Hashable, set[int]]:
        """Match all registered paths against ``document``.

        Returns a mapping from path key to the set of matching element node
        ids (pre-order ids).  Keys with no matches are omitted.
        """
        results: dict[Hashable, set[int]] = defaultdict(set)

        def visit(node: XmlNode, active: frozenset[int]) -> None:
            reached, child_active = self._advance(active, node.tag)
            for state in reached:
                for key in self._accepting.get(state, ()):
                    results[key].add(node.node_id)
            child_active_f = frozenset(child_active)
            for child in node.children:
                visit(child, child_active_f)

        visit(document.root, frozenset({0}))
        return dict(results)

    def match_nodes(self, document: XmlDocument, keys: Iterable[Hashable]) -> dict[Hashable, set[int]]:
        """Like :meth:`match_document`, restricted to the given keys."""
        wanted = set(keys)
        return {k: v for k, v in self.match_document(document).items() if k in wanted}
