"""Variable tree patterns.

A *variable tree pattern* (paper Section 3.1) extends an XPath tree pattern
by associating tree nodes with variable names.  An XSCL query block such as

    S//book->x1[.//author->x2][.//title->x3]

becomes a pattern with a root node (variable ``x1``, absolute path
``//book``) and two children (``x2`` via ``.//author`` and ``x3`` via
``.//title``).  The Join Processor only ever sees variables; patterns are
the bridge between the XSCL surface syntax and Stage 1 evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.xpath.ast import LocationPath, parse_path


@dataclass
class PatternNode:
    """One node of a variable tree pattern.

    Attributes
    ----------
    variable:
        The bound variable name, or ``None`` for an anonymous (existence
        only) predicate node.
    path:
        The location path *relative to the parent node* (absolute for the
        pattern root).
    children:
        Child pattern nodes.
    """

    variable: Optional[str]
    path: LocationPath
    children: list["PatternNode"] = field(default_factory=list)

    def add_child(self, child: "PatternNode") -> "PatternNode":
        """Attach ``child`` and return it."""
        self.children.append(child)
        return child

    def iter_nodes(self) -> Iterator["PatternNode"]:
        """Iterate this node and all descendants, depth first."""
        yield self
        for child in self.children:
            yield from child.iter_nodes()

    def __repr__(self) -> str:
        var = self.variable or "_"
        return f"PatternNode({var}: {self.path})"


@dataclass
class VariableTreePattern:
    """A rooted variable tree pattern for one XSCL query block.

    Attributes
    ----------
    root:
        The root pattern node; its path is absolute.
    stream:
        Name of the input stream the block reads from.
    """

    root: PatternNode
    stream: str = "S"

    def __post_init__(self) -> None:
        if not self.root.path.absolute:
            raise ValueError("the root of a variable tree pattern needs an absolute path")

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def iter_nodes(self) -> Iterator[PatternNode]:
        """All pattern nodes, root first."""
        return self.root.iter_nodes()

    def variables(self) -> list[str]:
        """Names of all bound variables, in pattern order."""
        return [n.variable for n in self.iter_nodes() if n.variable is not None]

    def node_of(self, variable: str) -> PatternNode:
        """Return the pattern node bound to ``variable``."""
        for node in self.iter_nodes():
            if node.variable == variable:
                return node
        raise KeyError(f"variable {variable!r} is not bound in this pattern")

    def parent_of(self, variable: str) -> Optional[str]:
        """Return the variable of the closest *bound* ancestor of ``variable``.

        Anonymous ancestors are skipped.  Returns ``None`` for the root
        variable (or when every ancestor is anonymous).
        """
        target = self.node_of(variable)
        path = self._path_to(target)
        for node in reversed(path[:-1]):
            if node.variable is not None:
                return node.variable
        return None

    def _path_to(self, target: PatternNode) -> list[PatternNode]:
        def walk(node: PatternNode, acc: list[PatternNode]) -> Optional[list[PatternNode]]:
            acc = acc + [node]
            if node is target:
                return acc
            for child in node.children:
                found = walk(child, acc)
                if found:
                    return found
            return None

        found = walk(self.root, [])
        if not found:
            raise KeyError("pattern node is not part of this pattern")
        return found

    def relative_path_between(self, ancestor_var: str, descendant_var: str) -> LocationPath:
        """The relative path from ``ancestor_var``'s node to ``descendant_var``'s node.

        Used when a query-template edge spans multiple pattern edges (after
        the graph-minor reduction splices out intermediate nodes).
        """
        anc = self.node_of(ancestor_var)
        desc = self.node_of(descendant_var)
        path_nodes = self._path_to(desc)
        if anc not in path_nodes:
            raise ValueError(
                f"{ancestor_var!r} is not an ancestor of {descendant_var!r} in this pattern"
            )
        start = path_nodes.index(anc)
        steps: tuple = ()
        for node in path_nodes[start + 1:]:
            steps = steps + node.path.steps
        return LocationPath(steps, absolute=False)

    def absolute_path_of(self, variable: str) -> LocationPath:
        """The absolute path of ``variable``'s node (root path + relative hops)."""
        target = self.node_of(variable)
        path_nodes = self._path_to(target)
        steps: tuple = ()
        for node in path_nodes:
            steps = steps + node.path.steps
        return LocationPath(steps, absolute=True)

    def definition_key(self, variable: str) -> tuple[str, str]:
        """A canonical identity for a variable: (stream, absolute path).

        The paper assumes that two variables with exactly the same definition
        carry the same name; the engine enforces this by mapping definition
        keys to canonical variable names.
        """
        return (self.stream, str(self.absolute_path_of(variable)))

    def __repr__(self) -> str:
        return f"VariableTreePattern(stream={self.stream!r}, vars={self.variables()})"


def simple_pattern(
    stream: str,
    root_variable: str,
    root_path: str,
    leaves: dict[str, str],
) -> VariableTreePattern:
    """Convenience constructor for the common "root plus leaf predicates" shape.

    Parameters
    ----------
    stream:
        Input stream name.
    root_variable:
        Variable bound to the block's root path.
    root_path:
        Absolute path string for the root, e.g. ``"//book"``.
    leaves:
        Mapping from leaf variable name to its relative path string, e.g.
        ``{"x2": ".//author", "x3": ".//title"}``.
    """
    root = PatternNode(root_variable, parse_path(root_path))
    for var, rel in leaves.items():
        root.add_child(PatternNode(var, parse_path(rel)))
    return VariableTreePattern(root=root, stream=stream)
