"""Streaming Stage 1: witnesses straight from the text scan.

The tree evaluation path parses a published document into an
:class:`~repro.xmlmodel.node.XmlNode` tree and then walks it twice (NFA
matching, then per-edge relative-path evaluation plus string-value
extraction).  This module produces the same witness sets in a *single*
pass over the raw text, without ever materializing nodes: the scanner's
``start``/``text``/``end`` events drive

* the shared per-stream :class:`~repro.xpath.nfa.PathNFA` (one stack of
  active state sets, exactly :meth:`PathNFA._advance` semantics);
* one small *edge run* per (structural edge, ancestor binding): a linear
  state chain over the edge's relative steps, started when the ancestor
  variable binds and torn down when its element closes.  A run reaching
  its accept state at a node's start event yields the same
  ``(ancestor, descendant)`` pair :func:`~repro.xpath.ast.evaluate_relative`
  would find on the tree;
* string-value capture: per-element direct text is finalized at the end
  event, and while any bound node's element is open every finalized
  ``(pre_id, text)`` is retained, so a bound node's XPath string value is
  re-assembled in pre-order at its end event — byte-identical to
  :meth:`XmlNode.string_value`.

Pre-order ids are start-event counts, so all node ids agree with the tree
path's :meth:`XmlDocument._assign_ids`.  Equivalence across randomized
documents is asserted by property tests.
"""

from __future__ import annotations

from typing import Optional

from repro.xmlmodel.stream import scan_text, validate_text
from repro.xpath.ast import Axis, LocationPath
from repro.xpath.nfa import PathNFA


class _EdgeProgram:
    """One structural edge compiled to a linear state chain.

    State ``s`` (0-based) consumes ``tests[s]``; ``has_desc[s]`` keeps the
    state live for deeper levels (the carry rule of descendant steps);
    state ``len(tests)`` accepts.
    """

    __slots__ = ("key", "tests", "has_desc", "accept")

    def __init__(self, key: tuple[str, str], path: LocationPath):
        self.key = key
        self.tests = tuple(step.test for step in path.steps)
        self.has_desc = tuple(step.axis is Axis.DESCENDANT for step in path.steps)
        self.accept = len(self.tests)


class StreamMatcher:
    """The compiled streaming form of one stream's Stage-1 registrations.

    Built (and cached) by :meth:`XPathEvaluator.evaluate_text`; rebuilt
    whenever variables or edges change.
    """

    __slots__ = ("transitions", "accepting", "has_desc", "edges_by_anc")

    def __init__(
        self,
        nfa: PathNFA,
        edges: dict[tuple[str, str], LocationPath],
        stream_variables: set[str],
    ):
        self.transitions = nfa._transitions
        self.has_desc = nfa._has_descendant_out
        self.accepting = {
            state: tuple(keys) for state, keys in nfa._accepting.items() if keys
        }
        by_anc: dict[str, list[_EdgeProgram]] = {}
        for key, path in edges.items():
            if key[0] in stream_variables:
                by_anc.setdefault(key[0], []).append(_EdgeProgram(key, path))
        self.edges_by_anc = by_anc


class WitnessBuilder:
    """Scan-event handler accumulating witness sets for one document."""

    __slots__ = (
        "matcher",
        "var_nodes",
        "raw_pairs",
        "node_values",
        "_pre",
        "_active_stack",
        "_runs",
        "_frames",
        "_parts",
        "_finalized",
        "_capture_start",
        "_open_captures",
    )

    def __init__(self, matcher: StreamMatcher):
        self.matcher = matcher
        self.var_nodes: dict[str, set[int]] = {}
        self.raw_pairs: dict[tuple[str, str], set[tuple[int, int]]] = {}
        self.node_values: dict[int, str] = {}
        self._pre = 0
        self._active_stack: list[set[int]] = [{0}]
        # live edge runs: [program, anchor pre id, stack of active state sets]
        self._runs: list[tuple[_EdgeProgram, int, list[set[int]]]] = []
        # per open element: (pre id, run-count at entry, is a capture node)
        self._frames: list[tuple[int, int, bool]] = []
        self._parts: list[list[str]] = []
        # (pre id, finalized text) of every element closed while a capture
        # is open; a capture node re-assembles its subtree slice at its end.
        self._finalized: list[tuple[int, Optional[str]]] = []
        self._capture_start: dict[int, int] = {}
        self._open_captures = 0

    # ------------------------------------------------------------------ #
    # scan events
    # ------------------------------------------------------------------ #
    def start(self, tag: str, attributes: dict[str, str]) -> None:
        matcher = self.matcher
        pre = self._pre
        self._pre = pre + 1

        # Main NFA step (PathNFA._advance semantics).
        transitions = matcher.transitions
        has_desc = matcher.has_desc
        reached: set[int] = set()
        child_active: set[int] = set()
        for state in self._active_stack[-1]:
            if has_desc[state]:
                child_active.add(state)
            for (_axis, test), nxt in transitions[state].items():
                if test == "*" or test == tag:
                    reached.add(nxt)
        child_active |= reached
        self._active_stack.append(child_active)

        bound_here: list[str] = []
        if reached:
            accepting = matcher.accepting
            for state in reached:
                keys = accepting.get(state)
                if keys:
                    for var in keys:
                        nodes = self.var_nodes.get(var)
                        if nodes is None:
                            self.var_nodes[var] = {pre}
                        else:
                            nodes.add(pre)
                        bound_here.append(var)
        capture = bool(bound_here)

        # Advance live edge runs (anchored at proper ancestors) before
        # creating runs anchored here — a run never matches its own anchor.
        runs = self._runs
        runs_at_entry = len(runs)
        for program, anchor, stack in runs:
            tests = program.tests
            run_desc = program.has_desc
            accept = program.accept
            nxt_active: set[int] = set()
            matched = False
            for state in stack[-1]:
                if run_desc[state]:
                    nxt_active.add(state)
                test = tests[state]
                if test == "*" or test == tag:
                    advanced = state + 1
                    if advanced == accept:
                        matched = True
                    else:
                        nxt_active.add(advanced)
            stack.append(nxt_active)
            if matched:
                pairs = self.raw_pairs.get(program.key)
                if pairs is None:
                    self.raw_pairs[program.key] = {(anchor, pre)}
                else:
                    pairs.add((anchor, pre))
                capture = True

        edges_by_anc = matcher.edges_by_anc
        if edges_by_anc:
            for var in bound_here:
                programs = edges_by_anc.get(var)
                if programs:
                    for program in programs:
                        runs.append((program, pre, [{0}]))

        if capture:
            self._capture_start[pre] = len(self._finalized)
            self._open_captures += 1
        self._frames.append((pre, runs_at_entry, capture))
        self._parts.append([])

    def text(self, data: str) -> None:
        self._parts[-1].append(data)

    def end(self) -> None:
        pre, runs_at_entry, capture = self._frames.pop()
        parts = self._parts.pop()
        if parts:
            joined = "".join(parts).strip()
            text = joined if joined else None
        else:
            text = None
        self._active_stack.pop()
        runs = self._runs
        del runs[runs_at_entry:]  # runs anchored at this element die with it
        for run in runs:
            run[2].pop()
        if self._open_captures:
            self._finalized.append((pre, text))
            if capture:
                start = self._capture_start.pop(pre)
                self.node_values[pre] = "".join(
                    part for _, part in sorted(self._finalized[start:]) if part
                )
                self._open_captures -= 1
                if not self._open_captures:
                    self._finalized.clear()

    # ------------------------------------------------------------------ #
    # finalization
    # ------------------------------------------------------------------ #
    def witness_sets(
        self,
    ) -> tuple[
        dict[str, set[int]],
        dict[tuple[str, str], set[tuple[int, int]]],
        dict[int, str],
    ]:
        """The (var_nodes, edge_pairs, node_values) sets of the scanned document.

        Applies the same descendant-binding filter as the tree path and
        restricts node values to nodes that end up bound.
        """
        var_nodes = self.var_nodes
        edge_pairs: dict[tuple[str, str], set[tuple[int, int]]] = {}
        for key, raw in self.raw_pairs.items():
            desc_bound = var_nodes.get(key[1])
            if desc_bound:
                pairs = {pair for pair in raw if pair[1] in desc_bound}
            else:
                pairs = raw
            if pairs:
                edge_pairs[key] = pairs
        bound: set[int] = set()
        for nodes in var_nodes.values():
            bound.update(nodes)
        for pairs in edge_pairs.values():
            for ancestor_id, descendant_id in pairs:
                bound.add(ancestor_id)
                bound.add(descendant_id)
        values = self.node_values
        return var_nodes, edge_pairs, {node_id: values[node_id] for node_id in bound}


def scan_witness_sets(
    text: str, matcher: Optional[StreamMatcher]
) -> tuple[
    dict[str, set[int]],
    dict[tuple[str, str], set[tuple[int, int]]],
    dict[int, str],
]:
    """Scan ``text`` once and return its witness sets under ``matcher``.

    ``matcher=None`` (no registrations on the stream) still scans the full
    text, so malformed input raises exactly as the tree path would.
    """
    if matcher is None:
        validate_text(text)
        return {}, {}, {}
    builder = WitnessBuilder(matcher)
    scan_text(text, builder)
    return builder.witness_sets()
