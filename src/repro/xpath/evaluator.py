"""The Stage 1 evaluator: from documents to witnesses.

The evaluator maintains, across *all* registered queries:

* one shared :class:`~repro.xpath.nfa.PathNFA` per input stream, holding the
  absolute path of every (canonical) variable, and
* the set of *edge requests* — pairs of variables (ancestor, descendant)
  whose joint bindings the Join Processor needs (these are exactly the
  structural edges of the reduced query templates, Section 4.2).

For each incoming document it produces a :class:`DocumentWitnesses` object:
variable bindings (→ ``RvarW``), structural-edge bindings (→ ``RbinW``) and
node string values (→ ``RdocW``), plus the document id and timestamp
(→ ``RdocTSW``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.xmlmodel.document import XmlDocument
from repro.xpath.ast import LocationPath, evaluate_relative
from repro.xpath.nfa import PathNFA
from repro.xpath.pattern import VariableTreePattern
from repro.xpath.streaming import StreamMatcher, scan_witness_sets


@dataclass
class DocumentWitnesses:
    """Witnesses produced by Stage 1 for a single document.

    Attributes
    ----------
    docid, timestamp:
        Identity of the document (the single ``RdocTSW`` tuple).
    var_nodes:
        ``variable -> set of node ids`` bound to it (``RvarW``).
    edge_pairs:
        ``(ancestor var, descendant var) -> set of (ancestor node, descendant node)``
        pairs (``RbinW``).
    node_values:
        ``node id -> XPath string value`` for every bound node (``RdocW``).
    """

    docid: str
    timestamp: float
    var_nodes: dict[str, set[int]] = field(default_factory=dict)
    edge_pairs: dict[tuple[str, str], set[tuple[int, int]]] = field(default_factory=dict)
    node_values: dict[int, str] = field(default_factory=dict)

    @property
    def is_empty(self) -> bool:
        """True when no registered variable matched the document."""
        return not self.var_nodes

    def bound_variables(self) -> set[str]:
        """The variables that have at least one binding in this document."""
        return {v for v, nodes in self.var_nodes.items() if nodes}


class VariableConflictError(ValueError):
    """Raised when one variable name is registered with two different definitions."""


class Stage1Registrations:
    """Reference-counted bookkeeping of a consumer's evaluator registrations.

    Both the engines (one record per query id, plus its ``::swap`` twin for
    symmetric JOINs) and the brokers' filter front end (one record per
    filter subscription) register shared variables/edges with an
    :class:`XPathEvaluator`.  This helper remembers, per caller-chosen key,
    what was registered, and on :meth:`withdraw` returns exactly the
    variables and edges whose *last* user is gone — the arguments for
    :meth:`XPathEvaluator.deregister`.
    """

    def __init__(self) -> None:
        # key -> (variables, edges) registered under it
        self._by_key: dict[object, tuple[tuple[str, ...], tuple[tuple[str, str], ...]]] = {}
        self._var_refs: dict[str, int] = {}
        self._edge_refs: dict[tuple[str, str], int] = {}

    def record(
        self,
        key: object,
        variables: Iterable[str],
        edges: Iterable[tuple[str, str]],
    ) -> None:
        """Remember (and refcount) one key's registrations."""
        variables = tuple(variables)
        edges = tuple(edges)
        self._by_key[key] = (variables, edges)
        for var in variables:
            self._var_refs[var] = self._var_refs.get(var, 0) + 1
        for edge in edges:
            self._edge_refs[edge] = self._edge_refs.get(edge, 0) + 1

    def withdraw(self, key: object) -> tuple[set[str], set[tuple[str, str]]]:
        """Release one key's registrations; returns (dead vars, dead edges).

        Unknown keys return empty sets (nothing was recorded for them).
        """
        dead_vars: set[str] = set()
        dead_edges: set[tuple[str, str]] = set()
        registrations = self._by_key.pop(key, None)
        if registrations is None:
            return dead_vars, dead_edges
        for var in registrations[0]:
            remaining = self._var_refs[var] - 1
            if remaining:
                self._var_refs[var] = remaining
            else:
                del self._var_refs[var]
                dead_vars.add(var)
        for edge in registrations[1]:
            remaining = self._edge_refs[edge] - 1
            if remaining:
                self._edge_refs[edge] = remaining
            else:
                del self._edge_refs[edge]
                dead_edges.add(edge)
        return dead_vars, dead_edges


class XPathEvaluator:
    """Shared Stage 1 evaluator for all registered query blocks."""

    def __init__(self) -> None:
        self._nfas: dict[str, PathNFA] = {}
        # variable -> (stream, absolute path)
        self._variables: dict[str, tuple[str, LocationPath]] = {}
        # (ancestor var, descendant var) -> relative path between them
        self._edges: dict[tuple[str, str], LocationPath] = {}
        # stream -> compiled streaming matcher (None = no registrations);
        # invalidated whenever variables or edges change
        self._stream_matchers: dict[str, Optional[StreamMatcher]] = {}

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def register_variable(self, variable: str, stream: str, absolute_path: LocationPath) -> None:
        """Register a variable with its defining absolute path on ``stream``."""
        if not absolute_path.absolute:
            raise ValueError(f"variable {variable!r} needs an absolute defining path")
        self._stream_matchers.clear()
        existing = self._variables.get(variable)
        if existing is not None:
            if existing[0] != stream or str(existing[1]) != str(absolute_path):
                raise VariableConflictError(
                    f"variable {variable!r} already registered with definition "
                    f"{existing[0]}:{existing[1]} (new: {stream}:{absolute_path})"
                )
            return
        self._variables[variable] = (stream, absolute_path)
        nfa = self._nfas.setdefault(stream, PathNFA())
        nfa.add_path(variable, absolute_path)

    def register_edge(
        self, ancestor_var: str, descendant_var: str, relative_path: LocationPath
    ) -> None:
        """Request (ancestor, descendant) edge witnesses for a variable pair."""
        if relative_path.absolute:
            raise ValueError("edge paths must be relative (from the ancestor's node)")
        self._stream_matchers.clear()
        key = (ancestor_var, descendant_var)
        existing = self._edges.get(key)
        if existing is not None and str(existing) != str(relative_path):
            raise VariableConflictError(
                f"edge {key} already registered with path {existing} (new: {relative_path})"
            )
        self._edges[key] = relative_path

    def register_pattern(
        self,
        pattern: VariableTreePattern,
        edges: Optional[list[tuple[str, str]]] = None,
    ) -> None:
        """Register every bound variable of ``pattern`` plus the requested edges.

        ``edges`` lists (ancestor var, descendant var) pairs; when omitted,
        every bound parent/child pair of the pattern is registered.
        """
        for var in pattern.variables():
            self.register_variable(var, pattern.stream, pattern.absolute_path_of(var))
        if edges is None:
            edges = []
            for var in pattern.variables():
                parent = pattern.parent_of(var)
                if parent is not None:
                    edges.append((parent, var))
        for ancestor, descendant in edges:
            self.register_edge(
                ancestor, descendant, pattern.relative_path_between(ancestor, descendant)
            )

    # ------------------------------------------------------------------ #
    # deregistration
    # ------------------------------------------------------------------ #
    def deregister(
        self,
        variables: "Iterable[str]" = (),
        edges: "Iterable[tuple[str, str]]" = (),
    ) -> None:
        """Retract variables and edge requests (subscription-cancellation path).

        The engines refcount their Stage 1 registrations per query and call
        this once per retraction with the variables/edges whose count
        reached zero, so shared registrations survive until their last
        query is gone.  Each affected stream's NFA is rebuilt once from the
        surviving variables (unknown names are tolerated); a stream with no
        remaining variables drops its NFA entirely, so future documents on
        it short-circuit in :meth:`evaluate`.
        """
        self._stream_matchers.clear()
        for key in edges:
            self._edges.pop(tuple(key), None)
        streams: set[str] = set()
        for variable in variables:
            entry = self._variables.pop(variable, None)
            if entry is not None:
                streams.add(entry[0])
        for stream in streams:
            nfa = PathNFA()
            remaining = False
            for variable, (var_stream, path) in self._variables.items():
                if var_stream == stream:
                    nfa.add_path(variable, path)
                    remaining = True
            if remaining:
                self._nfas[stream] = nfa
            else:
                self._nfas.pop(stream, None)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def variables(self) -> dict[str, tuple[str, LocationPath]]:
        """Registered variables with their (stream, absolute path) definitions."""
        return dict(self._variables)

    @property
    def edges(self) -> dict[tuple[str, str], LocationPath]:
        """Registered edge requests with their relative paths."""
        return dict(self._edges)

    def num_nfa_states(self) -> int:
        """Total NFA states across all streams (a measure of structural sharing)."""
        return sum(nfa.num_states for nfa in self._nfas.values())

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #
    def match_variables(self, document: XmlDocument) -> set[str]:
        """The registered variables with at least one binding in ``document``.

        The cheap prefix of :meth:`evaluate`: one NFA run, no
        structural-edge evaluation and no string-value extraction.  This is
        what broker-level fan-out routing keys on — it only needs to know
        *which* variables a document can bind, never where.
        """
        nfa = self._nfas.get(document.stream)
        if nfa is None:
            return set()
        return {
            variable
            for variable, node_ids in nfa.match_document(document).items()
            if node_ids
        }

    def evaluate(self, document: XmlDocument) -> DocumentWitnesses:
        """Produce the witnesses of ``document`` (Stage 1 of query processing)."""
        witnesses = DocumentWitnesses(docid=document.docid, timestamp=document.timestamp)
        nfa = self._nfas.get(document.stream)
        if nfa is None:
            return witnesses

        matches = nfa.match_document(document)
        for variable, node_ids in matches.items():
            if node_ids:
                witnesses.var_nodes[variable] = set(node_ids)

        # Structural-edge witnesses: anchor the relative path at every
        # binding of the ancestor variable.
        for (anc_var, desc_var), rel_path in self._edges.items():
            anc_nodes = witnesses.var_nodes.get(anc_var)
            if not anc_nodes:
                continue
            desc_bound = witnesses.var_nodes.get(desc_var, set())
            pairs: set[tuple[int, int]] = set()
            for anc_id in anc_nodes:
                anc_node = document.node(anc_id)
                for target in evaluate_relative(rel_path, anc_node):
                    if target.node_id in desc_bound or not desc_bound:
                        pairs.add((anc_id, target.node_id))
            if pairs:
                witnesses.edge_pairs[(anc_var, desc_var)] = pairs

        # String values for every bound node (RdocW never stores unbound nodes).
        bound_nodes: set[int] = set()
        for nodes in witnesses.var_nodes.values():
            bound_nodes.update(nodes)
        for pairs in witnesses.edge_pairs.values():
            for a, b in pairs:
                bound_nodes.add(a)
                bound_nodes.add(b)
        for node_id in bound_nodes:
            witnesses.node_values[node_id] = document.string_value(node_id)
        return witnesses

    def evaluate_text(
        self, text: str, docid: str, timestamp: float, stream: str = "S"
    ) -> DocumentWitnesses:
        """Produce the witnesses of a document given as raw XML text.

        The streaming counterpart of :meth:`evaluate`: one single pass over
        the text drives the shared NFA, edge matching and string-value
        capture directly (:mod:`repro.xpath.streaming`), without building a
        node tree.  Witness sets are identical to parsing the text and
        calling :meth:`evaluate`; malformed input raises the same
        :class:`~repro.xmlmodel.parser.XmlParseError`.
        """
        try:
            matcher = self._stream_matchers[stream]
        except KeyError:
            nfa = self._nfas.get(stream)
            if nfa is None:
                matcher = None
            else:
                stream_variables = {
                    variable
                    for variable, (var_stream, _path) in self._variables.items()
                    if var_stream == stream
                }
                matcher = StreamMatcher(nfa, self._edges, stream_variables)
            self._stream_matchers[stream] = matcher
        var_nodes, edge_pairs, node_values = scan_witness_sets(text, matcher)
        witnesses = DocumentWitnesses(docid=docid, timestamp=timestamp)
        witnesses.var_nodes = var_nodes
        witnesses.edge_pairs = edge_pairs
        witnesses.node_values = node_values
        return witnesses
