"""Location paths for the supported XPath fragment.

The fragment matches what existing XML pub/sub systems (YFilter, XPush,
XSQ) and this paper support for tree patterns: the child axis ``/``, the
descendant axis ``//`` and the wildcard node test ``*``.  Predicates are not
part of a location path here — in XSCL they appear on query blocks and are
handled by :mod:`repro.xscl` / :mod:`repro.xpath.pattern`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Sequence


class XPathSyntaxError(ValueError):
    """Raised when a path string cannot be parsed."""


class Axis(enum.Enum):
    """Supported XPath axes."""

    CHILD = "/"
    DESCENDANT = "//"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Step:
    """One location step: an axis plus a node test (tag name or ``*``)."""

    axis: Axis
    test: str

    def matches(self, tag: str) -> bool:
        """True when this step's node test matches an element tag."""
        return self.test == "*" or self.test == tag

    def __str__(self) -> str:
        return f"{self.axis.value}{self.test}"


@dataclass(frozen=True)
class LocationPath:
    """A sequence of steps, either absolute (from the document node) or relative.

    Examples: ``//book``, ``/rss/channel/item``, ``.//author`` (relative).
    """

    steps: tuple[Step, ...]
    absolute: bool = True

    def __post_init__(self) -> None:
        if not self.steps:
            raise XPathSyntaxError("a location path needs at least one step")

    def __str__(self) -> str:
        prefix = "" if self.absolute else "."
        return prefix + "".join(str(s) for s in self.steps)

    def __iter__(self) -> Iterator[Step]:
        return iter(self.steps)

    def __len__(self) -> int:
        return len(self.steps)

    def concat(self, other: "LocationPath") -> "LocationPath":
        """Append a relative path to this one (``self`` then ``other``)."""
        if other.absolute:
            raise XPathSyntaxError("can only concatenate a relative path")
        return LocationPath(self.steps + other.steps, absolute=self.absolute)

    @property
    def uses_only_descendant_axis(self) -> bool:
        """True when every step uses ``//`` (the paper's simplifying assumption)."""
        return all(s.axis is Axis.DESCENDANT for s in self.steps)


_NAME_CHARS = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.-:")


def _read_name(text: str, pos: int) -> tuple[str, int]:
    if pos < len(text) and text[pos] == "*":
        return "*", pos + 1
    start = pos
    while pos < len(text) and text[pos] in _NAME_CHARS:
        pos += 1
    if pos == start:
        raise XPathSyntaxError(f"expected an element name at position {start} in {text!r}")
    return text[start:pos], pos


def parse_path(text: str) -> LocationPath:
    """Parse a path string like ``//book//title`` or ``.//author``.

    A leading ``.`` makes the path relative (evaluated from a context node);
    otherwise the path is absolute (evaluated from the document node).
    """
    original = text
    text = text.strip()
    if not text:
        raise XPathSyntaxError("empty path")
    absolute = True
    pos = 0
    if text[0] == ".":
        absolute = False
        pos = 1
    steps: list[Step] = []
    while pos < len(text):
        if text.startswith("//", pos):
            axis = Axis.DESCENDANT
            pos += 2
        elif text.startswith("/", pos):
            axis = Axis.CHILD
            pos += 1
        else:
            raise XPathSyntaxError(
                f"expected '/' or '//' at position {pos} in {original!r}"
            )
        name, pos = _read_name(text, pos)
        steps.append(Step(axis, name))
    if not steps:
        raise XPathSyntaxError(f"path {original!r} has no steps")
    return LocationPath(tuple(steps), absolute=absolute)


def evaluate_relative(path: LocationPath | Sequence[Step], context_node) -> list:
    """Evaluate a relative path from ``context_node`` and return matching nodes.

    Works directly on :class:`~repro.xmlmodel.node.XmlNode` objects; used for
    the per-ancestor edge witnesses (documents are small, so a direct
    recursive evaluation is appropriate here — the sharing happens at the
    level of *which* relative paths get evaluated, via canonical variables).
    """
    steps = list(path.steps) if isinstance(path, LocationPath) else list(path)
    frontier = [context_node]
    for step in steps:
        nxt = []
        seen_ids = set()
        for node in frontier:
            if step.axis is Axis.CHILD:
                candidates = node.find_children(step.test)
            else:
                candidates = node.find_descendants(step.test)
            for cand in candidates:
                marker = id(cand)
                if marker not in seen_ids:
                    seen_ids.add(marker)
                    nxt.append(cand)
        frontier = nxt
        if not frontier:
            break
    return frontier
