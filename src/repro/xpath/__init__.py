"""Stage 1 — the XPath Evaluator.

The paper leverages existing XML pub/sub technology (YFilter) to evaluate
the *tree-pattern components* of all registered queries against each
incoming document, producing *witnesses* (variable bindings) that feed the
Join Processor.  This package provides that stage:

* :mod:`~repro.xpath.ast` — location paths over the supported XPath
  fragment (``/`` child axis, ``//`` descendant axis, ``*`` wildcard) and a
  parser for them.
* :mod:`~repro.xpath.pattern` — *variable tree patterns*: tree patterns in
  which nodes are bound to named variables (the per-query-block patterns of
  Section 3.1).
* :mod:`~repro.xpath.nfa` — a shared NFA over the absolute root paths of all
  registered patterns (YFilter-style path sharing).
* :mod:`~repro.xpath.evaluator` — the evaluator producing per-document
  witnesses: variable → node bindings, structural-edge bindings and node
  string values.
"""

from repro.xpath.ast import Axis, Step, LocationPath, parse_path, XPathSyntaxError
from repro.xpath.pattern import PatternNode, VariableTreePattern
from repro.xpath.nfa import PathNFA
from repro.xpath.evaluator import XPathEvaluator, DocumentWitnesses

__all__ = [
    "Axis",
    "Step",
    "LocationPath",
    "parse_path",
    "XPathSyntaxError",
    "PatternNode",
    "VariableTreePattern",
    "PathNFA",
    "XPathEvaluator",
    "DocumentWitnesses",
]
