"""Subscription partitioning strategies for the sharded runtime.

A :class:`Partitioner` decides which engine shard owns a newly registered
join subscription.  The one invariant every strategy must uphold is
*template cohesion*: queries that canonicalize to the same CQT (the same
query template, Section 4 of the paper) must land on the same shard —
otherwise the massive sharing that makes MMQJP fast is destroyed by the
sharding that was meant to scale it.  Both built-in strategies therefore
key their decisions on the :func:`template key
<repro.templates.template.reduced_graph_signature>` of the query's reduced
join graph, and remember the first placement of every key.

* :class:`HashTemplatePartitioner` — a deterministic digest of the template
  key modulo the shard count.  Stateless placement: two brokers with the
  same shard count agree on every assignment.
* :class:`LeastLoadedPartitioner` — a new template goes to the shard with
  the fewest subscriptions so far; balances skewed template populations
  (Zipf workloads concentrate most queries in few templates).
"""

from __future__ import annotations

import hashlib
from typing import Union

from repro.templates.join_graph import JoinGraph
from repro.templates.minor import reduce_join_graph
from repro.templates.template import reduced_graph_signature
from repro.xscl.ast import XsclQuery


def template_key(query: XsclQuery) -> tuple:
    """The partitioning key of a join query: its reduced-graph signature.

    The signature is invariant under variable renaming, so canonicalization
    (which only renames variables) cannot change it — computing it on the raw
    query is equivalent to computing it on the canonical form the engines use.
    """
    return reduced_graph_signature(reduce_join_graph(JoinGraph.from_query(query)))


class Partitioner:
    """Base class: template-cohesive placement of subscriptions on shards."""

    #: Keyword under which the strategy is selectable (``partitioner=...``).
    name = "base"

    def __init__(self, num_shards: int):
        if num_shards < 1:
            raise ValueError(f"need at least one shard, got {num_shards}")
        self.num_shards = num_shards
        #: Subscriptions placed per shard (updated on every assignment).
        self.loads = [0] * num_shards
        self._assigned: dict[tuple, int] = {}

    def shard_for(self, query: XsclQuery) -> int:
        """The shard that must own ``query`` (stable per template key)."""
        key = template_key(query)
        shard = self._assigned.get(key)
        if shard is None:
            shard = self._place(key)
            self._assigned[key] = shard
        self.loads[shard] += 1
        return shard

    def release(self, query: XsclQuery) -> None:
        """Account for one retracted subscription of ``query``'s template.

        Decrements the owning shard's load so load-balancing strategies see
        the true population under subscribe/cancel churn.  The template →
        shard assignment itself is kept: template cohesion must hold across
        a cancel → resubscribe cycle, and a revived template returns to its
        original shard.
        """
        key = template_key(query)
        shard = self._assigned.get(key)
        if shard is not None and self.loads[shard] > 0:
            self.loads[shard] -= 1

    def restore_assignment(self, query: XsclQuery, shard: int) -> None:
        """Force ``query``'s template onto ``shard`` (crash-recovery replay).

        Recovery must reproduce the crashed session's recorded placements —
        per-shard join state is placement-dependent, and a load-sensitive
        strategy replaying only the surviving subscriptions could place a
        template differently.  Updates the load accounting like a normal
        :meth:`shard_for` call, so post-recovery placements balance against
        the true population.
        """
        if not 0 <= shard < self.num_shards:
            raise ValueError(
                f"recorded shard {shard} is out of range for {self.num_shards} shards"
            )
        self._assigned[template_key(query)] = shard
        self.loads[shard] += 1

    def _place(self, key: tuple) -> int:
        raise NotImplementedError

    @property
    def num_template_keys(self) -> int:
        """Distinct template keys seen so far."""
        return len(self._assigned)

    def stats(self) -> dict:
        """Placement statistics for broker dashboards."""
        return {
            "partitioner": self.name,
            "loads": list(self.loads),
            "num_template_keys": self.num_template_keys,
        }


class HashTemplatePartitioner(Partitioner):
    """Deterministic hash of the template key modulo the shard count."""

    name = "hash"

    def _place(self, key: tuple) -> int:
        digest = hashlib.blake2b(repr(key).encode("utf-8"), digest_size=8).digest()
        return int.from_bytes(digest, "big") % self.num_shards


class LeastLoadedPartitioner(Partitioner):
    """New templates go to the currently least-subscribed shard."""

    name = "least-loaded"

    def _place(self, key: tuple) -> int:
        return min(range(self.num_shards), key=lambda s: self.loads[s])


#: Keyword -> strategy class.
PARTITIONERS = {
    HashTemplatePartitioner.name: HashTemplatePartitioner,
    LeastLoadedPartitioner.name: LeastLoadedPartitioner,
}


def make_partitioner(spec: Union[str, Partitioner], num_shards: int) -> Partitioner:
    """Resolve a partitioner keyword (or pass through an instance)."""
    if isinstance(spec, Partitioner):
        if spec.num_shards != num_shards:
            raise ValueError(
                f"partitioner is configured for {spec.num_shards} shards, "
                f"the broker has {num_shards}"
            )
        return spec
    cls = PARTITIONERS.get(spec)
    if cls is None:
        raise ValueError(
            f"unknown partitioner {spec!r}; choose one of {sorted(PARTITIONERS)}"
        )
    return cls(num_shards)
