"""One engine shard: an independent two-stage engine plus its bookkeeping.

A shard owns a disjoint subset of the registered join subscriptions and
sees every published document its queries could bind (subscription-
partitioned, document-replicated parallelism, thinned by the broker's
:class:`~repro.runtime.router.ShardRouter` when routing is enabled).  Each
shard maintains its own Stage 1 evaluator, template registry and join
state, and shards never need to communicate during processing.

In the ``"processes"`` runtime this same surface is provided by
:class:`~repro.runtime.process.ProcessShardHandle`, with the engine living
in a worker process.
"""

from __future__ import annotations

from typing import Sequence, Union

from repro.core.engine import EngineStats, _BaseEngine
from repro.core.results import Match
from repro.xmlmodel.document import XmlDocument
from repro.xscl.ast import XsclQuery


class EngineShard:
    """A shard id, its engine, and the subscription ids it owns."""

    def __init__(self, shard_id: int, engine: _BaseEngine):
        self.shard_id = shard_id
        self.engine = engine
        self.qids: list[str] = []

    def register(self, qid: str, query: Union[str, XsclQuery]) -> None:
        """Register one join subscription with this shard's engine."""
        self.engine.register_query(query, qid=qid)
        self.qids.append(qid)

    def deregister(self, qid: str) -> None:
        """Retract one join subscription from this shard's engine.

        Delegates to :meth:`~repro.core.engine._BaseEngine.deregister_query`,
        so the shard's templates, relevance postings, plan-cache entries and
        reclaimable join state shrink with the retraction.
        """
        self.engine.deregister_query(qid)
        self.qids.remove(qid)

    def process_batch(self, documents: Sequence[XmlDocument]) -> list[list[Match]]:
        """Process a batch of documents in order; one match list per document.

        This is the unit of work the executors schedule: batching amortizes
        one dispatch (and, for pool executors, one task handoff) over the
        whole batch, and the engine's batched pipeline
        (:meth:`~repro.core.engine._BaseEngine.process_batch`) additionally
        hoists the per-document fixed costs — relevance-index sync, docid
        interning — out of the loop.

        A shard without subscriptions skips processing outright.  This is
        safe: Stage 1 witnesses are computed at arrival time, so a document
        processed before a query registers can never join with it — an empty
        shard would only accumulate dead ``RdocTS`` state.
        """
        if not self.qids:
            return [[] for _ in documents]
        return self.engine.process_batch(documents)

    def process_one(self, document: XmlDocument) -> list[Match]:
        """Process a single document (the broker's unbatched publish path).

        Skips batch assembly and the per-batch hooks entirely; an empty
        shard short-circuits like :meth:`process_batch`.
        """
        if not self.qids:
            return []
        return self.engine.process_document(document)

    def prune(self, min_timestamp: float) -> int:
        """Prune this shard's join state; returns documents removed."""
        return self.engine.prune(min_timestamp)

    def output_document(self, match: Match) -> XmlDocument:
        """Construct the output XML document of one of this shard's matches."""
        return self.engine.output_document(match)

    @property
    def num_queries(self) -> int:
        """Number of subscriptions owned by this shard."""
        return len(self.qids)

    def stats(self) -> EngineStats:
        """This shard's engine statistics."""
        return self.engine.stats()

    def metrics_snapshot(self):
        """This shard's engine metrics snapshot (``None`` when disabled)."""
        return self.engine.metrics_snapshot()

    def close(self) -> None:
        """Close this shard's engine (flushes an attached state store)."""
        self.engine.close()

    def __repr__(self) -> str:
        return f"<EngineShard {self.shard_id} queries={self.num_queries}>"
