"""Encode-once document transport for the process runtime.

The naive process fan-out pickles each published document once *per
routed shard*: the dominant cost of a wide topology is N identical
serializations of the same tree.  This module provides the columnar wire
format and the reusable buffer behind the sharded broker's encode-once
path:

* :func:`encode_document_batch` flattens a batch of
  :class:`~repro.xmlmodel.document.XmlDocument` trees into a shared value
  table plus per-document column tuples (parent links, tag ids, text ids,
  post-order ids, sparse attribute triples) — the same interning idiom as
  :func:`repro.runtime.process.encode_match_batch` on the return path.
  Tags, texts and attribute keys recur heavily across a batch, so the
  table pays for itself quickly.
* :func:`decode_document_batch` rebuilds the trees in one pre-order pass,
  assigning ``node_id``/``post_id``/``depth``/``parent`` directly (no
  ``_assign_ids`` re-walk) via :meth:`XmlDocument.from_indexed`.
* :class:`WireBuffer` turns the encoded batch into pickled bytes inside
  one reusable buffer, handing out a :class:`memoryview` so the broker
  can write the *same* bytes to every routed shard's pipe without
  re-serializing — one encode per published batch, O(1) in the shard
  count.
"""

from __future__ import annotations

import io
import pickle
from typing import Optional, Sequence

from repro.xmlmodel.document import XmlDocument
from repro.xmlmodel.node import XmlNode

__all__ = ["WireBuffer", "encode_document_batch", "decode_document_batch"]


def _intern(value, table: list, index: dict) -> int:
    """Index of ``value`` in the batch value table (appending if new)."""
    key = (value.__class__, value)
    slot = index.get(key)
    if slot is None:
        slot = index[key] = len(table)
        table.append(value)
    return slot


def encode_document_batch(documents: Sequence[XmlDocument]) -> tuple:
    """Columnar wire form of a document batch: ``(value table, doc entries)``.

    Each entry is ``(docid, timestamp, stream, publish_stamp, parents,
    tags, texts, posts, attr_items)`` with nodes in pre-order: ``parents``
    holds each node's parent pre-id (-1 for the root), ``tags``/``texts``
    hold value-table ids (-1 for a ``None`` text), and ``attr_items`` is a
    sparse tuple of ``(node pre-id, key id, value id)`` triples.
    """
    table: list = []
    index: dict = {}
    entries = []
    for document in documents:
        nodes = document._nodes_by_id
        parents = []
        tags = []
        texts = []
        posts = []
        attr_items = []
        for node in nodes:
            parent = node.parent
            parents.append(parent.node_id if parent is not None else -1)
            tags.append(_intern(node.tag, table, index))
            text = node.text
            texts.append(_intern(text, table, index) if text is not None else -1)
            posts.append(node.post_id)
            if node.attributes:
                node_id = node.node_id
                for key, value in node.attributes.items():
                    attr_items.append(
                        (node_id, _intern(key, table, index), _intern(value, table, index))
                    )
        entries.append(
            (
                document.docid,
                document.timestamp,
                document.stream,
                document.publish_stamp,
                tuple(parents),
                tuple(tags),
                tuple(texts),
                tuple(posts),
                tuple(attr_items),
            )
        )
    return (table, entries)


def _decode_document(entry: tuple, table: list) -> XmlDocument:
    docid, timestamp, stream, publish_stamp, parents, tags, texts, posts, attr_items = entry
    nodes: list[XmlNode] = []
    for i in range(len(tags)):
        node = XmlNode(table[tags[i]])
        text_id = texts[i]
        if text_id >= 0:
            node.text = table[text_id]
        node.node_id = i
        node.post_id = posts[i]
        parent_id = parents[i]
        if parent_id >= 0:
            parent = nodes[parent_id]
            node.parent = parent
            node.depth = parent.depth + 1
            parent.children.append(node)
        nodes.append(node)
    for node_id, key_id, value_id in attr_items:
        nodes[node_id].attributes[table[key_id]] = table[value_id]
    document = XmlDocument.from_indexed(
        nodes[0], nodes, docid=docid, timestamp=timestamp, stream=stream
    )
    document.publish_stamp = publish_stamp
    return document


def decode_document_batch(
    payload: tuple, indices: Optional[Sequence[int]] = None
) -> list[XmlDocument]:
    """Re-materialize documents from their wire form (all, or a selection)."""
    table, entries = payload
    if indices is not None:
        return [_decode_document(entries[i], table) for i in indices]
    return [_decode_document(entry, table) for entry in entries]


class WireBuffer:
    """A reusable pickle buffer handing out zero-copy views of its contents.

    :meth:`pack` overwrites the previous payload in place, so the broker
    serializes every batch into the same allocation; the returned
    :class:`memoryview` must be released before the next :meth:`pack`
    (the caller does, right after the fan-out) — a still-exported view
    falls back to a fresh buffer rather than failing.
    """

    __slots__ = ("_buffer",)

    def __init__(self):
        self._buffer = io.BytesIO()

    def pack(self, obj) -> memoryview:
        """Pickle ``obj`` into the buffer and return a view of the bytes."""
        buffer = self._buffer
        try:
            buffer.seek(0)
            buffer.truncate()
        except BufferError:  # a previous view was never released
            buffer = self._buffer = io.BytesIO()
        pickle.dump(obj, buffer, protocol=pickle.HIGHEST_PROTOCOL)
        return buffer.getbuffer()[: buffer.tell()]
