"""Process-resident shards: each engine lives in a long-lived worker process.

The process runtime (``RuntimeConfig(executor="processes")``) keeps the
sharded broker's architecture — subscriptions partitioned, documents fanned
out, results merged in shard order — but moves every
:class:`~repro.core.engine._BaseEngine` out of the broker process:

* A :class:`ShardWorkerGroup` owns one worker process hosting one or more
  shard engines (``max_workers`` caps the process count; shards are
  assigned round-robin).  The engines are constructed *in-worker* from the
  pickled :class:`~repro.config.RuntimeConfig`, and storage-attached shards
  open their own ``shard-N.sqlite3`` in-worker, so neither engine state nor
  SQLite connections ever cross the process boundary.
* A :class:`ProcessShardHandle` stands in for
  :class:`~repro.runtime.shard.EngineShard` on the broker side: the same
  method surface, implemented as commands over a duplex pipe.
  Registrations and cancellations are forwarded as commands (the worker
  engine replays the exact ``register_query``/``deregister_query`` code
  path), documents cross as pickled batches reusing the engine's
  ``process_batch`` fast path, and match rows come back in a columnar
  batch form — a shared value table plus per-match id tuples (see
  :func:`encode_match_batch`) — re-materialized broker-side, so delivery
  callbacks and :class:`~repro.pubsub.sinks.DeliverySink` objects fire in
  the parent and never need to be picklable.
* Requests and responses are strictly ordered per channel, and
  :class:`~repro.runtime.executor.ProcessExecutor` keeps at most one
  request in flight per channel, so responses are matched to requests
  positionally — no request ids, no response reordering.

A worker that dies mid-conversation (crash, ``kill -9``) surfaces as a
:class:`ShardWorkerError` on the next send or receive instead of a hang:
the parent closes its copy of the child's pipe end right after the fork, so
a dead worker turns reads into immediate ``EOFError``.
"""

from __future__ import annotations

import multiprocessing
import pickle
from time import perf_counter
from typing import Any, Optional, Sequence

from repro.core.results import Match
from repro.runtime.wire import decode_document_batch

__all__ = [
    "ShardWorkerError",
    "ShardWorkerGroup",
    "ProcessShardHandle",
    "encode_match",
    "decode_match",
    "encode_match_batch",
    "decode_match_batch",
]


class ShardWorkerError(RuntimeError):
    """A shard worker process died or its command pipe broke."""


# --------------------------------------------------------------------- #
# wire format
# --------------------------------------------------------------------- #
def encode_match(match: Match) -> tuple:
    """Compact wire form of a :class:`Match` (plain tuples, no dataclass)."""
    return (
        match.qid,
        match.lhs_docid,
        match.rhs_docid,
        match.lhs_timestamp,
        match.rhs_timestamp,
        tuple(match.lhs_bindings.items()),
        tuple(match.rhs_bindings.items()),
        match.window,
    )


def decode_match(wire: tuple) -> Match:
    """Re-materialize a :class:`Match` from its wire form (broker side)."""
    return Match(
        qid=wire[0],
        lhs_docid=wire[1],
        rhs_docid=wire[2],
        lhs_timestamp=wire[3],
        rhs_timestamp=wire[4],
        lhs_bindings=dict(wire[5]),
        rhs_bindings=dict(wire[6]),
        window=wire[7],
    )


def _intern(value, table: list, index: dict) -> int:
    """Index of ``value`` in the batch value table (appending if new).

    Keys include the concrete type so ``1``/``1.0``/``True`` round-trip
    exactly; an unhashable value is appended without deduplication.
    """
    try:
        key = (value.__class__, value)
        slot = index.get(key)
    except TypeError:
        table.append(value)
        return len(table) - 1
    if slot is None:
        slot = index[key] = len(table)
        table.append(value)
    return slot


def encode_match_batch(
    match_lists: Sequence[Sequence[Match]],
    publish_stamps: Optional[Sequence[Optional[float]]] = None,
) -> tuple:
    """Columnar wire form of one batch response (one inner list per document).

    Instead of pickling each match as a self-contained tuple of values
    (the per-match :func:`encode_match` form), the whole batch shares a
    single value table: every qid, docid, binding key/value, and window
    is interned once, and each match becomes a tuple of small integer
    ids (timestamps stay raw floats).  Because the same qids, docids,
    and binding keys recur across the matches of a batch, the pickled
    payload shrinks and the parent re-materializes shared strings once.

    ``publish_stamps`` (metrics mode) carries one broker-side publish
    timestamp per document; :func:`decode_match_batch` re-attaches each
    document's stamp to its re-materialized matches, so delivery lag
    measured at the parent's sinks includes the full worker round-trip.
    A batch processed with metrics off ships ``None`` — zero extra bytes.
    """
    table: list = []
    index: dict = {}
    counts = []
    rows = []
    for matches in match_lists:
        counts.append(len(matches))
        for m in matches:
            lhs = m.lhs_bindings
            rhs = m.rhs_bindings
            rows.append(
                (
                    _intern(m.qid, table, index),
                    _intern(m.lhs_docid, table, index),
                    _intern(m.rhs_docid, table, index),
                    m.lhs_timestamp,
                    m.rhs_timestamp,
                    tuple(
                        _intern(x, table, index)
                        for kv in lhs.items()
                        for x in kv
                    ),
                    tuple(
                        _intern(x, table, index)
                        for kv in rhs.items()
                        for x in kv
                    ),
                    _intern(m.window, table, index),
                )
            )
    if publish_stamps is not None:
        publish_stamps = tuple(publish_stamps)
    return (table, tuple(counts), rows, publish_stamps)


def decode_match_batch(payload: tuple) -> list[list[Match]]:
    """Re-materialize one batch response from its columnar wire form."""
    table, counts, rows, publish_stamps = payload
    out: list[list[Match]] = []
    cursor = 0
    for doc_index, count in enumerate(counts):
        stamp = publish_stamps[doc_index] if publish_stamps is not None else None
        matches = []
        for wire in rows[cursor : cursor + count]:
            lhs_ids = wire[5]
            rhs_ids = wire[6]
            matches.append(
                Match(
                    qid=table[wire[0]],
                    lhs_docid=table[wire[1]],
                    rhs_docid=table[wire[2]],
                    lhs_timestamp=wire[3],
                    rhs_timestamp=wire[4],
                    lhs_bindings={
                        table[lhs_ids[i]]: table[lhs_ids[i + 1]]
                        for i in range(0, len(lhs_ids), 2)
                    },
                    rhs_bindings={
                        table[rhs_ids[i]]: table[rhs_ids[i + 1]]
                        for i in range(0, len(rhs_ids), 2)
                    },
                    window=table[wire[7]],
                    publish_stamp=stamp,
                )
            )
        cursor += count
        out.append(matches)
    return out


# --------------------------------------------------------------------- #
# worker side
# --------------------------------------------------------------------- #
def _stamps_of(documents) -> Optional[list[Optional[float]]]:
    """The batch's publish stamps, or ``None`` when the broker set none."""
    stamps = [document.publish_stamp for document in documents]
    return stamps if any(s is not None for s in stamps) else None


def _dispatch(engine, method: str, args: tuple):
    """Apply one command to one in-worker engine."""
    if method == "process_batch":
        (documents,) = args
        return encode_match_batch(
            engine.process_batch(documents), _stamps_of(documents)
        )
    if method == "process_one":
        (document,) = args
        return encode_match_batch(
            [engine.process_document(document)], _stamps_of([document])
        )
    if method == "register":
        qid, query = args
        engine.register_query(query, qid=qid)
        return None
    if method == "deregister":
        (qid,) = args
        engine.deregister_query(qid)
        return None
    if method == "prune":
        (min_timestamp,) = args
        return engine.prune(min_timestamp)
    if method == "stats":
        return engine.stats()
    if method == "metrics":
        return engine.metrics_snapshot()
    if method == "output_document":
        (wire,) = args
        return engine.output_document(decode_match(wire))
    if method == "recover_catalog":
        from repro.storage.recovery import recover_engine_catalog

        return recover_engine_catalog(engine)
    if method == "registry_refcounts":
        from repro.storage.recovery import engine_registry_refcounts

        return engine_registry_refcounts(engine)
    if method == "recover_state":
        from repro.storage.recovery import docid_floor, restore_engine_state

        restore_engine_state(engine)
        return docid_floor(engine)
    raise ValueError(f"unknown shard-worker command {method!r}")


def _wire_documents(payload: bytes, cache: list, transport: dict) -> list:
    """Decode one wire payload, reusing the last decode when bytes repeat.

    A worker hosting several shards receives the *same* payload once per
    co-hosted shard (the broker encodes once and fans the bytes out per
    shard, not per worker); the one-slot cache collapses those to a single
    decode.  Sharing the decoded documents across co-hosted engines is
    safe: the engines treat inbound documents as read-only (the only
    mutation, batch docid interning, is idempotent).
    """
    transport["payload_loads"] += 1
    transport["payload_bytes"] += len(payload)
    if cache[0] == payload:
        return cache[1]
    start = perf_counter()
    documents = decode_document_batch(pickle.loads(payload))
    transport["decodes"] += 1
    transport["decode_ms"] += (perf_counter() - start) * 1000.0
    cache[0] = payload
    cache[1] = documents
    return documents


def _portable(exc: BaseException) -> BaseException:
    """An exception safe to send back over the pipe (degrade if unpicklable)."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def _shard_worker_main(
    conn,
    config_bytes: bytes,
    shard_ids: Sequence[int],
    storage: str,
    storage_path: Optional[str],
    durability: str,
) -> None:
    """Entry point of one worker process: build the engines, serve commands."""
    from repro.core.engine import make_engine
    from repro.storage import open_member_store

    engines = {}
    try:
        config = pickle.loads(config_bytes)
        for shard_id in shard_ids:
            store = open_member_store(
                storage, storage_path, f"shard-{shard_id}", durability
            )
            engines[shard_id] = make_engine(config=config, store=store)
    except BaseException as exc:
        conn.send((False, _portable(exc)))
        conn.close()
        return
    conn.send((True, "ready"))
    transport = {"decodes": 0, "decode_ms": 0.0, "payload_loads": 0, "payload_bytes": 0}
    wire_cache: list = [None, None]  # [payload bytes, decoded documents]
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        if message[0] == "__wire__":
            # Two-frame data plane: this control frame names the shard,
            # method and document selection; the payload bytes follow in
            # their own frame (see ShardWorkerGroup.send_wire).
            _sentinel, shard_id, method, indices = message
            try:
                payload = conn.recv_bytes()
            except (EOFError, OSError):
                break
            try:
                documents = _wire_documents(payload, wire_cache, transport)
                if indices is not None:
                    documents = [documents[i] for i in indices]
                engine = engines[shard_id]
                if method == "wire_one":
                    match_lists = [engine.process_document(documents[0])]
                else:
                    match_lists = engine.process_batch(documents)
                response = (True, encode_match_batch(match_lists, _stamps_of(documents)))
            except BaseException as exc:
                response = (False, _portable(exc))
        else:
            shard_id, method, args = message
            if method == "transport":
                response = (True, dict(transport))
            else:
                try:
                    response = (True, _dispatch(engines[shard_id], method, args))
                except BaseException as exc:
                    response = (False, _portable(exc))
        try:
            conn.send(response)
        except (BrokenPipeError, OSError):
            break
    for engine in engines.values():
        engine.close()
    conn.close()


# --------------------------------------------------------------------- #
# broker side
# --------------------------------------------------------------------- #
def _start_method() -> str:
    methods = multiprocessing.get_all_start_methods()
    # fork starts in milliseconds and inherits the loaded modules; spawn is
    # the portability fallback (the worker entry point is a module-level
    # function, so both work).
    return "fork" if "fork" in methods else methods[0]


class ShardWorkerGroup:
    """One worker process hosting the engines of one or more shards."""

    def __init__(
        self,
        config_bytes: bytes,
        shard_ids: Sequence[int],
        storage: str,
        storage_path: Optional[str],
        durability: str,
    ):
        ctx = multiprocessing.get_context(_start_method())
        parent_conn, child_conn = ctx.Pipe()
        self.shard_ids = tuple(shard_ids)
        self.process = ctx.Process(
            target=_shard_worker_main,
            args=(child_conn, config_bytes, list(shard_ids), storage, storage_path, durability),
            daemon=True,
            name="repro-shards-" + "-".join(str(s) for s in shard_ids),
        )
        self.process.start()
        # With the child's copy closed here, a dead worker turns recv() into
        # an immediate EOFError instead of a hang.
        child_conn.close()
        self._conn = parent_conn
        self._closed = False
        self.recv()  # readiness handshake; construction errors re-raise here

    def send(self, shard_id: int, method: str, args: tuple) -> None:
        try:
            self._conn.send((shard_id, method, args))
        except (BrokenPipeError, OSError) as exc:
            raise ShardWorkerError(
                f"shard worker {self.process.name!r} is gone "
                f"(exit code {self.process.exitcode}); {method!r} was not sent"
            ) from exc

    def send_wire(self, shard_id: int, method: str, indices, payload) -> None:
        """Send one two-frame data-plane request (control frame + raw bytes).

        ``payload`` is a bytes-like view of the already-encoded document
        batch; sending it with ``send_bytes`` writes the same buffer to the
        pipe without pickling it again, so a fan-out to N shards costs one
        encode and N buffer writes.
        """
        try:
            self._conn.send(("__wire__", shard_id, method, indices))
            self._conn.send_bytes(payload)
        except (BrokenPipeError, OSError, ValueError) as exc:
            raise ShardWorkerError(
                f"shard worker {self.process.name!r} is gone "
                f"(exit code {self.process.exitcode}); {method!r} was not sent"
            ) from exc

    def recv(self):
        try:
            ok, payload = self._conn.recv()
        except (EOFError, OSError) as exc:
            raise ShardWorkerError(
                f"shard worker {self.process.name!r} died "
                f"(exit code {self.process.exitcode}) before responding"
            ) from exc
        if not ok:
            if isinstance(payload, BaseException):
                raise payload
            raise ShardWorkerError(str(payload))
        return payload

    def call(self, shard_id: int, method: str, *args):
        """One synchronous command round-trip (the control plane)."""
        self.send(shard_id, method, args)
        return self.recv()

    def close(self) -> None:
        """Shut the worker down (idempotent); terminate if it won't exit."""
        if self._closed:
            return
        self._closed = True
        try:
            if self.process.is_alive():
                self._conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        try:
            self._conn.close()
        except OSError:
            pass
        self.process.join(timeout=10)
        if self.process.is_alive():  # pragma: no cover - defensive
            self.process.terminate()
            self.process.join(timeout=10)


class ProcessShardHandle:
    """The broker-side stand-in for an :class:`~repro.runtime.shard.EngineShard`.

    Same surface (``register``/``deregister``/``process_one``/
    ``process_batch``/``prune``/``stats``/``output_document``), delegating
    every call to the engine living in :attr:`channel`'s worker process.
    ``submit``/``collect`` expose the split halves of a call so
    :class:`~repro.runtime.executor.ProcessExecutor` can pipeline across
    workers; responses decode by the method name recorded at submit time
    (the channel is strictly FIFO with one request in flight).
    """

    def __init__(self, shard_id: int, group: ShardWorkerGroup):
        self.shard_id = shard_id
        self.channel = group
        self.qids: list[str] = []
        self._pending: list[str] = []

    # -- control plane -------------------------------------------------- #
    def register(self, qid: str, query) -> None:
        self.channel.call(self.shard_id, "register", qid, query)
        self.qids.append(qid)

    def deregister(self, qid: str) -> None:
        self.channel.call(self.shard_id, "deregister", qid)
        self.qids.remove(qid)

    def prune(self, min_timestamp: float) -> int:
        return self.channel.call(self.shard_id, "prune", min_timestamp)

    def stats(self):
        return self.channel.call(self.shard_id, "stats")

    def metrics_snapshot(self):
        """The worker engine's metrics snapshot (``None`` when disabled)."""
        return self.channel.call(self.shard_id, "metrics")

    def output_document(self, match: Match):
        return self.channel.call(self.shard_id, "output_document", encode_match(match))

    # -- recovery plane (see repro.storage.recovery) --------------------- #
    def recover_catalog(self):
        return self.channel.call(self.shard_id, "recover_catalog")

    def registry_refcounts(self):
        return self.channel.call(self.shard_id, "registry_refcounts")

    def recover_state(self):
        return self.channel.call(self.shard_id, "recover_state")

    # -- data plane ------------------------------------------------------ #
    def submit(self, method: str, args: tuple) -> None:
        if method == "wire_one" or method == "wire_batch":
            indices, payload = args
            self.channel.send_wire(self.shard_id, method, indices, payload)
        else:
            self.channel.send(self.shard_id, method, args)
        self._pending.append(method)

    def collect(self):
        method = self._pending.pop(0)
        payload = self.channel.recv()
        if method == "process_one" or method == "wire_one":
            return decode_match_batch(payload)[0]
        if method == "process_batch" or method == "wire_batch":
            return decode_match_batch(payload)
        return payload

    def process_one(self, document) -> list[Match]:
        if not self.qids:
            return []
        self.submit("process_one", (document,))
        return self.collect()

    def process_batch(self, documents) -> list[list[Match]]:
        if not self.qids:
            return [[] for _ in documents]
        self.submit("process_batch", (documents,))
        return self.collect()

    @property
    def num_queries(self) -> int:
        return len(self.qids)

    def close(self) -> None:
        """Nothing to do per shard; the broker closes the worker groups."""

    def __repr__(self) -> str:
        return (
            f"<ProcessShardHandle {self.shard_id} queries={self.num_queries} "
            f"worker={self.channel.process.name!r}>"
        )
