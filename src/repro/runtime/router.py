"""Relevance-aware fan-out routing: which shards need this document at all.

The sharded broker replicates documents because *some* subscription might
pair the current document with an earlier one — but a document that cannot
bind any variable of any query on a shard can neither match there now (its
right-block witness atoms would be empty) nor contribute left-block state
for a later match (its left-block atoms would be empty too).  Shipping it
to that shard only costs dispatch overhead and dead ``RdocTS`` rows.

:class:`ShardRouter` lifts the Stage-1 relevance idea
(:class:`~repro.core.relevance.RelevanceIndex`, paper Section 4.4) up one
level.  Per join subscription it posts two members under the owning shard:

* the query's reduced *right*-block variables — all bound means the
  document could complete a match on that shard right now, and
* the query's reduced *left*-block variables — all bound means the
  document could become the stored half of a future match there.

Routing then asks ``relevant(bound)`` with the set of variables the
document binds, computed by one shared NFA run
(:meth:`~repro.xpath.evaluator.XPathEvaluator.match_variables`) over the
router's own evaluator — its own :class:`~repro.xscl.normalize.VariableCatalog`
too, which is safe because canonical names are a pure function of
``(stream, absolute path)``: the router's names are internally consistent
even if a shard's catalog (fed only its own queries) numbers collisions
differently.

One widening keeps this *exactly* faithful to what each shard's Stage 1
would produce: the evaluator's structural-edge witnesses treat a
descendant variable with no NFA binding of its own as bound through its
ancestor (``evaluate`` accepts any edge target when ``desc_bound`` is
empty), and the processors' relevance check counts those edge-bound
variables.  The router therefore widens the NFA-bound set with every
registered edge's descendant whose ancestor is NFA-bound.  One level is
exhaustive: an edge anchored at a variable with no NFA binding of its own
yields no witness pairs, so edge-bound-ness never propagates further down.

The routed shard set is thus a superset of the shards where the document
produces witnesses a query could consume — routing changes which shards
*see* a document, never the match set.  Cancellation removes both members
(and, refcounted, the variables/edges), so retracted templates stop
attracting documents.
"""

from __future__ import annotations

from typing import Hashable, Union

from repro.core.relevance import RelevanceIndex
from repro.templates.join_graph import JoinGraph, Side
from repro.templates.minor import reduce_join_graph
from repro.xmlmodel.document import XmlDocument
from repro.xpath.evaluator import Stage1Registrations, XPathEvaluator
from repro.xscl.ast import XsclQuery
from repro.xscl.normalize import VariableCatalog, canonicalize_query
from repro.xscl.parser import parse_query

__all__ = ["ShardRouter"]


class ShardRouter:
    """A variable→shard-set inverted index over the registered join queries."""

    def __init__(self) -> None:
        self._catalog = VariableCatalog()
        self._evaluator = XPathEvaluator()
        self._registrations = Stage1Registrations()
        self._index = RelevanceIndex()
        # live ancestor -> descendants of its registered structural edges
        # (the bound-set widening; entries leave when their last edge dies)
        self._edge_children: dict[str, set[str]] = {}
        self._num_queries = 0
        self.documents_routed = 0
        self.shards_dispatched = 0
        self.shards_skipped = 0

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def register(
        self, subscription_id: str, query: Union[str, XsclQuery], shard_id: Hashable
    ) -> None:
        """Index one join subscription under its owning shard."""
        if isinstance(query, str):
            query = parse_query(query)
        canonical = canonicalize_query(query, self._catalog)
        reduced = reduce_join_graph(JoinGraph.from_query(canonical))
        patterns = {
            Side.LEFT: canonical.left.pattern,
            Side.RIGHT: canonical.right.pattern,
        }
        variables: list[str] = []
        left_vars: list[str] = []
        right_vars: list[str] = []
        for side, var in reduced.nodes:
            pattern = patterns[side]
            self._evaluator.register_variable(
                var, pattern.stream, pattern.absolute_path_of(var)
            )
            variables.append(var)
            (left_vars if side is Side.LEFT else right_vars).append(var)
        edges: list[tuple[str, str]] = []
        for (_, p_var), (_, c_var) in reduced.structural_edges:
            edges.append((p_var, c_var))
            self._edge_children.setdefault(p_var, set()).add(c_var)
        self._registrations.record(subscription_id, variables, edges)
        # Two members per query: "could match now" (right block) and "could
        # seed a future match" (left block).  A symmetric JOIN needs no
        # extra members — its ::swap twin's blocks are these two, swapped.
        self._index.add(shard_id, right_vars, member=(subscription_id, "rhs"))
        self._index.add(shard_id, left_vars, member=(subscription_id, "lhs"))
        self._num_queries += 1

    def cancel(self, subscription_id: str) -> bool:
        """Un-route a retracted subscription; returns whether it was indexed."""
        removed = self._index.remove((subscription_id, "rhs"))
        self._index.remove((subscription_id, "lhs"))
        dead_vars, dead_edges = self._registrations.withdraw(subscription_id)
        for ancestor, descendant in dead_edges:
            children = self._edge_children.get(ancestor)
            if children is not None:
                children.discard(descendant)
                if not children:
                    del self._edge_children[ancestor]
        if dead_vars:
            self._evaluator.deregister(variables=dead_vars)
        if removed:
            self._num_queries -= 1
        return removed

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def route(self, document: XmlDocument) -> set:
        """The shards hosting at least one query this document can bind."""
        bound = self._evaluator.match_variables(document)
        if bound and self._edge_children:
            widened = set(bound)
            for variable in bound:
                children = self._edge_children.get(variable)
                if children:
                    widened.update(children)
            bound = widened
        return self._index.relevant(bound)

    def account(self, dispatched: int, candidates: int) -> None:
        """Fold one routed document into the skip counters."""
        self.documents_routed += 1
        self.shards_dispatched += dispatched
        self.shards_skipped += candidates - dispatched

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def num_queries(self) -> int:
        """Number of join subscriptions currently indexed."""
        return self._num_queries

    def stats(self) -> dict:
        """Routing counters and index shape for the broker's stats view."""
        return {
            "queries": self._num_queries,
            "variables": self._index.num_variables,
            "documents_routed": self.documents_routed,
            "shards_dispatched": self.shards_dispatched,
            "shards_skipped": self.shards_skipped,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ShardRouter queries={self._num_queries} "
            f"skipped={self.shards_skipped}/{self.shards_dispatched + self.shards_skipped}>"
        )
