"""Shard executors: how per-shard work is scheduled.

The sharded broker expresses every publish as *one task per shard* and hands
the task list to a :class:`ShardExecutor`.  Executors differ only in how the
tasks run; all of them return the results in shard order, so downstream
merging is deterministic regardless of scheduling.

* :class:`SerialExecutor` — runs tasks in a plain loop on the calling
  thread.  Fully deterministic, zero scheduling overhead; the default and
  the reference for equivalence tests.
* :class:`ThreadedExecutor` — a :class:`concurrent.futures.ThreadPoolExecutor`
  with one worker per shard.  Under CPython's GIL the pure-Python engines
  gain little wall-clock from threads, but the executor exercises the real
  concurrent dispatch path and keeps the door open to process pools: the
  shard tasks are self-contained closures over (shard, document batch), so a
  ``ProcessPoolExecutor`` variant only needs picklable shards.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Optional, Sequence, TypeVar, Union

T = TypeVar("T")
R = TypeVar("R")


class ShardExecutor:
    """Base class: run one task per shard, return results in shard order."""

    #: Keyword under which the executor is selectable (``executor=...``).
    name = "base"

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """Apply ``fn`` to every item; results are ordered like ``items``."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any worker resources (idempotent)."""

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialExecutor(ShardExecutor):
    """In-process, in-order execution (deterministic; used by the tests)."""

    name = "serial"

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        return [fn(item) for item in items]


class ThreadedExecutor(ShardExecutor):
    """Thread-pool execution with one worker per shard by default."""

    name = "threads"

    def __init__(self, max_workers: Optional[int] = None):
        self._max_workers = max_workers
        self._pool: Optional[ThreadPoolExecutor] = None

    def _ensure_pool(self, num_tasks: int) -> ThreadPoolExecutor:
        if self._pool is None:
            workers = self._max_workers if self._max_workers is not None else max(num_tasks, 1)
            self._pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-shard"
            )
        return self._pool

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        pool = self._ensure_pool(len(items))
        futures = [pool.submit(fn, item) for item in items]
        return [future.result() for future in futures]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


#: Keyword -> executor class.
EXECUTORS = {
    SerialExecutor.name: SerialExecutor,
    ThreadedExecutor.name: ThreadedExecutor,
}


def make_executor(
    spec: Union[str, ShardExecutor], max_workers: Optional[int] = None
) -> ShardExecutor:
    """Resolve an executor keyword (or pass through an instance)."""
    if isinstance(spec, ShardExecutor):
        return spec
    if spec == ThreadedExecutor.name:
        return ThreadedExecutor(max_workers=max_workers)
    cls = EXECUTORS.get(spec)
    if cls is None:
        raise ValueError(f"unknown executor {spec!r}; choose one of {sorted(EXECUTORS)}")
    return cls()
