"""Shard executors: how per-shard work is scheduled.

The sharded broker expresses every publish as *one task per (dispatched)
shard* and hands the task list to a :class:`ShardExecutor`.  Executors
differ only in how the tasks run; all of them return the results in task
order, so downstream merging is deterministic regardless of scheduling.

* :class:`SerialExecutor` — runs tasks in a plain loop on the calling
  thread.  Fully deterministic, zero scheduling overhead; the default and
  the reference for equivalence tests.
* :class:`ThreadedExecutor` — a :class:`concurrent.futures.ThreadPoolExecutor`
  with one worker per shard.  Under CPython's GIL the pure-Python engines
  gain little wall-clock from threads, but the executor exercises the real
  concurrent dispatch path.
* :class:`ProcessExecutor` — dispatches to shards living in long-lived
  worker processes (:mod:`repro.runtime.process`): true CPU parallelism.
  It relies on the :meth:`ShardExecutor.invoke` call form — named methods
  plus picklable arguments instead of closures — and pipelines the calls:
  every worker's request is written before any response is read, with at
  most one request in flight per worker channel (so a pipe cannot fill in
  both directions and deadlock).

The ``REPRO_EXECUTOR`` environment variable overrides the *default*
executor keyword, mirroring the ``REPRO_STORAGE`` hook: it lets CI replay
whole test suites on another executor without touching the tests, while
configs that select an executor explicitly (a non-default keyword or an
instance) are never overridden.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Optional, Sequence, Tuple, TypeVar, Union

T = TypeVar("T")
R = TypeVar("R")

#: One shard-method call: (target shard, method name, positional arguments).
ShardCall = Tuple[Any, str, tuple]


def _apply_call(call: ShardCall):
    target, method, args = call
    return getattr(target, method)(*args)


class ShardExecutor:
    """Base class: run one task per shard, return results in task order."""

    #: Keyword under which the executor is selectable (``executor=...``).
    name = "base"

    def configure(self, num_shards: int) -> None:
        """Tell the executor the session's shard count (sizing hint).

        Called once by the broker before any dispatch, so pool-based
        executors can provision for the full topology instead of guessing
        from the first task list (which routing may have thinned out).
        """

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """Apply ``fn`` to every item; results are ordered like ``items``."""
        raise NotImplementedError

    def invoke(self, calls: Sequence[ShardCall]) -> list:
        """Run ``(shard, method name, args)`` calls; results in call order.

        The closure-free twin of :meth:`map`: naming the method instead of
        capturing it lets process-backed executors ship the call over a
        pipe.  In-process executors simply apply each call.
        """
        return self.map(_apply_call, calls)

    def close(self) -> None:
        """Release any worker resources (idempotent)."""

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialExecutor(ShardExecutor):
    """In-process, in-order execution (deterministic; used by the tests)."""

    name = "serial"

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        return [fn(item) for item in items]


class ThreadedExecutor(ShardExecutor):
    """Thread-pool execution with one worker per shard by default."""

    name = "threads"

    def __init__(self, max_workers: Optional[int] = None, num_shards: Optional[int] = None):
        self._max_workers = max_workers
        self._num_shards = num_shards
        self._pool: Optional[ThreadPoolExecutor] = None

    def configure(self, num_shards: int) -> None:
        self._num_shards = num_shards

    def _ensure_pool(self, num_tasks: int) -> ThreadPoolExecutor:
        if self._pool is None:
            # Size from the configured shard count, not from the first task
            # list: routing can thin the first publish down to a handful of
            # shards, and a pool frozen at that size would under-provision
            # every later full fan-out.
            workers = self._max_workers or self._num_shards or max(num_tasks, 1)
            self._pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-shard"
            )
        return self._pool

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        pool = self._ensure_pool(len(items))
        futures = [pool.submit(fn, item) for item in items]
        return [future.result() for future in futures]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ProcessExecutor(ShardExecutor):
    """Pipelined dispatch to process-resident shards.

    The executor itself is a thin scheduler: the worker processes are
    owned by the broker (one :class:`~repro.runtime.process.ShardWorkerGroup`
    per worker, created at construction so registrations can replay into
    them).  :meth:`invoke` targets
    :class:`~repro.runtime.process.ProcessShardHandle` objects, writing one
    request per worker channel before reading any response; while the
    parent collects channel A's response, every other worker is already
    computing.  Only one request is kept in flight per channel so the
    request and response directions of one pipe can never both fill up
    (the classic pipeline deadlock).
    """

    name = "processes"

    def __init__(self, max_workers: Optional[int] = None):
        self._max_workers = max_workers

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        # Control-plane fallback (closures cannot cross a pipe): the data
        # plane goes through invoke().
        return [fn(item) for item in items]

    def invoke(self, calls: Sequence[ShardCall]) -> list:
        results: list = [None] * len(calls)
        waiting: dict[Any, list[tuple[int, ShardCall]]] = {}
        order: list[Any] = []
        for index, call in enumerate(calls):
            channel = getattr(call[0], "channel", call[0])
            if channel not in waiting:
                waiting[channel] = []
                order.append(channel)
            waiting[channel].append((index, call))
        active: dict[Any, tuple[int, Any]] = {}
        for channel in order:
            index, (target, method, args) = waiting[channel].pop(0)
            target.submit(method, args)
            active[channel] = (index, target)
        while active:
            for channel in order:
                entry = active.pop(channel, None)
                if entry is None:
                    continue
                index, target = entry
                results[index] = target.collect()
                if waiting[channel]:
                    index, (target, method, args) = waiting[channel].pop(0)
                    target.submit(method, args)
                    active[channel] = (index, target)
        return results


#: Keyword -> executor class.
EXECUTORS = {
    SerialExecutor.name: SerialExecutor,
    ThreadedExecutor.name: ThreadedExecutor,
    ProcessExecutor.name: ProcessExecutor,
}


def executor_env_override(spec: Union[str, ShardExecutor]) -> Union[str, ShardExecutor]:
    """Apply the ``REPRO_EXECUTOR`` environment override to an executor spec.

    Only the *default* keyword (``"serial"``) is overridden — mirroring the
    ``REPRO_STORAGE`` rule that explicitly-selected backends are never
    swapped out from under a test.  Executor instances and non-default
    keywords pass through untouched, so a test that needs in-process
    engines (e.g. for fault injection) opts out by passing
    ``executor=SerialExecutor()``.
    """
    override = os.environ.get("REPRO_EXECUTOR")
    if not override or spec != SerialExecutor.name:
        return spec
    if override not in EXECUTORS:
        raise ValueError(
            f"REPRO_EXECUTOR={override!r} is not a known executor; "
            f"choose one of {sorted(EXECUTORS)}"
        )
    return override


def make_executor(
    spec: Union[str, ShardExecutor],
    max_workers: Optional[int] = None,
    num_shards: Optional[int] = None,
) -> ShardExecutor:
    """Resolve an executor keyword (or pass through an instance).

    ``num_shards`` is forwarded as the sizing hint (see
    :meth:`ShardExecutor.configure`); instances are configured in place.
    """
    if isinstance(spec, ShardExecutor):
        if num_shards is not None:
            spec.configure(num_shards)
        return spec
    if spec == ThreadedExecutor.name:
        return ThreadedExecutor(max_workers=max_workers, num_shards=num_shards)
    if spec == ProcessExecutor.name:
        return ProcessExecutor(max_workers=max_workers)
    cls = EXECUTORS.get(spec)
    if cls is None:
        raise ValueError(f"unknown executor {spec!r}; choose one of {sorted(EXECUTORS)}")
    return cls()
