"""The sharded broker: N independent engine shards behind one broker API.

:class:`ShardedBroker` is a drop-in replacement for
:class:`repro.pubsub.Broker` that partitions join subscriptions across
several independent Stage 1 + Stage 2 engines:

* **Subscriptions are partitioned** by a :class:`~repro.runtime.partition.Partitioner`
  that keeps all queries of one template (same CQT) on the same shard, so
  the paper's template sharing is preserved inside every shard.
* **Documents are routed**: by default a
  :class:`~repro.runtime.router.ShardRouter` dispatches each published
  document only to the shards hosting templates it can bind (a
  variable→shard-set inverted index maintained on subscribe/cancel);
  ``route_dispatch=False`` falls back to replicating every document to
  every shard.  Routing is a pure dispatch optimization — the match set is
  identical either way, because a document no query on a shard can bind
  produces no consumable witnesses there.
* **Shard tasks are scheduled** by a pluggable
  :class:`~repro.runtime.executor.ShardExecutor`: in the calling thread
  (``"serial"``), on a thread pool (``"threads"``), or — for true CPU
  parallelism — against engines living in long-lived worker processes
  (``"processes"``, see :mod:`repro.runtime.process`).  In the process
  runtime documents cross as pickled batches and matches return as compact
  tuples re-materialized here, so callbacks and delivery sinks always fire
  in the parent process.
* **Results are merged** in shard order: matches are unioned (shards own
  disjoint query ids, and every shard assigns the same timestamps because
  the broker stamps documents centrally before the fan-out), statistics via
  :func:`repro.core.engine.merge_engine_stats`, costs by per-phase summing.

Filter (single-block) subscriptions are evaluated once at the front end by
a shared Stage 1 evaluator, exactly like the unsharded broker.

Batched ingestion (:meth:`ShardedBroker.publish_many`) dispatches one task
per shard for a whole batch of documents — routed per document into
per-shard sub-batches — amortizing executor handoff over the batch; the
intended path for high-rate streams.

Construction goes through :class:`~repro.config.RuntimeConfig` (the blessed
entry point is :func:`repro.open_broker` with ``shards > 1``); the
historical per-knob keyword arguments still work but warn.
"""

from __future__ import annotations

import pickle
from time import perf_counter
from typing import Iterable, Optional, Sequence, Union

from repro.config import RuntimeConfig, coerce_config, metrics_enabled
from repro.core.engine import EngineStats, make_engine, merge_engine_stats
from repro.core.results import Match
from repro.metrics import MetricsRegistry, merge_snapshots
from repro.pubsub.filters import FilterFrontEnd
from repro.pubsub.stream import StreamRegistry
from repro.pubsub.subscription import Callback, Subscription, SubscriptionResult
from repro.runtime.executor import executor_env_override, make_executor
from repro.runtime.partition import make_partitioner
from repro.runtime.process import ProcessShardHandle, ShardWorkerGroup
from repro.runtime.router import ShardRouter
from repro.runtime.wire import WireBuffer, encode_document_batch
from repro.runtime.shard import EngineShard
from repro.storage import SubscriptionRecord, open_member_store, resolve_storage
from repro.storage.recovery import config_snapshot
from repro.xmlmodel.document import XmlDocument
from repro.xmlmodel.parser import parse_document
from repro.xscl.ast import XsclQuery
from repro.xscl.parser import parse_query
from repro.xscl.render import render_query


class ShardedBroker:
    """A publish/subscribe broker running N parallel engine shards.

    Parameters
    ----------
    config:
        A :class:`~repro.config.RuntimeConfig`; ``shards``, ``partitioner``,
        ``executor``, ``max_workers`` and ``route_dispatch`` select the
        runtime topology, the remaining fields configure every shard engine
        identically.  The historical keyword arguments are accepted with a
        :class:`DeprecationWarning`; purely-legacy construction keeps the
        historical default of two shards.
    """

    def __init__(self, config: Union[RuntimeConfig, str, None] = None, **legacy):
        legacy_default_shards = (
            not isinstance(config, RuntimeConfig) and legacy.get("shards") is None
        )
        config = coerce_config(config, legacy, owner="ShardedBroker")
        if legacy_default_shards:
            # Historical signature default: ShardedBroker(...) meant 2 shards.
            # Applied after coercion so a bare ShardedBroker() does not warn
            # about keyword arguments the caller never passed.
            config = config.replace(shards=2)
        config.validate_outputs()
        store_documents = config.resolve_store_documents(follow_construct_outputs=True)

        self.config = config
        self.engine_name = config.engine
        self.indexing = config.indexing
        self.construct_outputs = config.construct_outputs
        self.auto_timestamp = config.auto_timestamp
        # The broker stamps documents centrally (one clock for all shards)
        # so that every shard sees identical timestamps; per-engine
        # auto-stamping would let shard clocks drift on streams mixing
        # stamped and unstamped documents.
        shard_config = config.replace(
            auto_timestamp=False, store_documents=store_documents
        )
        # Durable storage: one registry store for the broker plus one state
        # store per shard ("memory" attaches nothing anywhere).
        self.storage, self.storage_path = resolve_storage(config)
        self._store = open_member_store(
            self.storage, self.storage_path, "broker", config.durability
        )
        executor_spec = executor_env_override(config.executor)
        self._executor = make_executor(
            executor_spec, max_workers=config.max_workers, num_shards=config.shards
        )
        self._worker_groups: list[ShardWorkerGroup] = []
        if self._executor.name == "processes":
            self.shards = self._spawn_process_shards(shard_config)
        else:
            self.shards = [
                EngineShard(
                    shard_id,
                    make_engine(
                        config=shard_config,
                        store=open_member_store(
                            self.storage,
                            self.storage_path,
                            f"shard-{shard_id}",
                            config.durability,
                        ),
                    ),
                )
                for shard_id in range(config.shards)
            ]
        # Encode-once transport (process runtime only): each published
        # document/batch is serialized exactly once into the reusable wire
        # buffer and the same bytes go to every routed shard, so transport
        # cost is O(bytes), not O(shards x pickle).
        self._wire_enabled = self._executor.name == "processes"
        self._wire_buffer = WireBuffer()
        self._transport = {
            "encodes": 0,
            "documents_encoded": 0,
            "encode_ms": 0.0,
            "wire_bytes": 0,
            "shard_sends": 0,
            "shipped_bytes": 0,
        }
        self._partitioner = make_partitioner(config.partitioner, config.shards)
        self._router = ShardRouter() if config.route_dispatch else None
        self.streams = StreamRegistry(history_size=config.stream_history)
        self._subscriptions: dict[str, Subscription] = {}
        self._shard_of: dict[str, Union[EngineShard, ProcessShardHandle]] = {}
        self._filters = FilterFrontEnd()
        self._sub_counter = 1
        self._reg_seq = 0
        self._clock_value = 0
        self._num_published = 0
        self._closed = False
        # Observability (RuntimeConfig.metrics / REPRO_METRICS): the broker
        # registry holds publish latency and delivery lag; each shard engine
        # keeps its own per-stage registry (in its worker process, for the
        # "processes" runtime) and all of them merge in stats()["metrics"].
        self.metrics = MetricsRegistry() if metrics_enabled(config) else None
        if self._store is not None:
            self._store.set_meta("config", config_snapshot(config))

    def _spawn_process_shards(self, shard_config: RuntimeConfig) -> list[ProcessShardHandle]:
        """Start the worker processes and return one handle per shard.

        The worker engines are built from the pickled shard config
        (executor and partitioner are broker-level concerns, so they are
        normalized to plain keywords first); shards are assigned to
        ``min(shards, max_workers)`` workers round-robin.
        """
        worker_config = shard_config.replace(executor="serial", partitioner="hash")
        try:
            config_bytes = pickle.dumps(worker_config)
        except Exception as exc:
            raise ValueError(
                "executor='processes' builds the shard engines in worker "
                "processes, which requires a picklable RuntimeConfig; "
                f"this one does not pickle: {exc}"
            ) from exc
        num_shards = shard_config.shards
        num_workers = min(num_shards, shard_config.max_workers or num_shards)
        assignments = [
            [s for s in range(num_shards) if s % num_workers == w]
            for w in range(num_workers)
        ]
        group_of: dict[int, ShardWorkerGroup] = {}
        try:
            for shard_ids in assignments:
                group = ShardWorkerGroup(
                    config_bytes,
                    shard_ids,
                    self.storage,
                    self.storage_path,
                    shard_config.durability,
                )
                self._worker_groups.append(group)
                for shard_id in shard_ids:
                    group_of[shard_id] = group
        except BaseException:
            for group in self._worker_groups:
                group.close()
            raise
        return [
            ProcessShardHandle(shard_id, group_of[shard_id])
            for shard_id in range(num_shards)
        ]

    # ------------------------------------------------------------------ #
    # subscriptions
    # ------------------------------------------------------------------ #
    def subscribe(
        self,
        query: Union[str, XsclQuery],
        callback: Optional[Callback] = None,
        window_symbols: Optional[dict[str, float]] = None,
        subscription_id: Optional[str] = None,
        sink=None,
    ) -> Subscription:
        """Register a subscription and return its :class:`Subscription` handle.

        Join subscriptions are placed on one engine shard by the partitioner
        (and indexed by the fan-out router, when enabled); filter
        subscriptions stay on the broker's shared front-end evaluator.
        ``sink`` attaches an additional delivery sink, as on
        :meth:`repro.pubsub.Broker.subscribe`.
        """
        if isinstance(query, str):
            query = parse_query(query, window_symbols=window_symbols)
        sid = subscription_id if subscription_id is not None else self._next_sid()
        if sid in self._subscriptions:
            raise ValueError(f"subscription id {sid!r} already exists")
        subscription = Subscription(
            subscription_id=sid,
            query=query,
            callback=callback,
            sink=sink,
            result_limit=self.config.result_limit,
        )

        if query.is_join_query:
            shard = self.shards[self._partitioner.shard_for(query)]
            shard.register(sid, query)
            self._shard_of[sid] = shard
            if self._router is not None:
                self._router.register(sid, query, shard.shard_id)
        else:
            self._filters.register(sid, subscription)
        self._subscriptions[sid] = subscription
        subscription._retract = self.cancel
        if self._store is not None:
            self._persist_subscription(sid, query)
        return subscription

    def _next_sid(self) -> str:
        sid = f"sub{self._sub_counter}"
        self._sub_counter += 1
        return sid

    def _persist_subscription(self, sid: str, query: XsclQuery) -> None:
        """Record one registration (with its shard placement) durably."""
        shard = self._shard_of.get(sid)
        self._reg_seq += 1
        self._store.save_subscription(
            SubscriptionRecord(
                seq=self._reg_seq,
                subscription_id=sid,
                query_text=render_query(query),
                kind="join" if query.is_join_query else "filter",
                shard=shard.shard_id if shard is not None else None,
            )
        )
        self._store.set_meta("sub_counter", self._sub_counter)

    def _restore_subscription(self, record, query: XsclQuery) -> Subscription:
        """Re-register one persisted subscription on its *recorded* shard.

        Documents are partitioned by the router but subscriptions by the
        partitioner, so each shard's persisted join state reflects the
        queries it owned; replay must honor the recorded placement rather
        than re-running the partitioner (a load-sensitive strategy could
        choose differently after churn).  The partitioner's template map
        and load accounting are restored alongside, so post-recovery
        placements stay cohesive — and the router is rebuilt through the
        same indexing path as a live subscribe.
        """
        subscription = Subscription(
            subscription_id=record.subscription_id,
            query=query,
            result_limit=self.config.result_limit,
        )
        if query.is_join_query:
            shard = self.shards[record.shard]
            self._partitioner.restore_assignment(query, record.shard)
            shard.register(record.subscription_id, query)
            self._shard_of[record.subscription_id] = shard
            if self._router is not None:
                self._router.register(record.subscription_id, query, shard.shard_id)
        else:
            self._filters.register(record.subscription_id, subscription)
        self._subscriptions[record.subscription_id] = subscription
        subscription._retract = self.cancel
        return subscription

    def cancel(self, subscription_id: str) -> bool:
        """Retract a subscription from its owning shard and reclaim state.

        Same contract as :meth:`repro.pubsub.Broker.cancel`: the engine-side
        query registration (templates, relevance postings, compiled plans,
        reclaimable join state) disappears from the owning shard, the
        router's postings disappear (so retracted templates stop attracting
        documents), the partitioner's load accounting is released, and the
        handle is kept (cancelled) so the id is never silently reused.
        """
        subscription = self._subscriptions.get(subscription_id)
        if subscription is None or subscription.cancelled:
            return False
        shard = self._shard_of.pop(subscription_id, None)
        if shard is not None:
            shard.deregister(subscription_id)
            self._partitioner.release(subscription.query)
            if self._router is not None:
                self._router.cancel(subscription_id)
        else:
            self._filters.cancel(subscription_id)
        subscription._mark_cancelled()
        if self._store is not None:
            self._store.remove_subscription(subscription_id)
        return True

    def unsubscribe(self, subscription_id: str) -> None:
        """Retract a subscription (alias of :meth:`cancel`; see :meth:`mute`)."""
        self.cancel(subscription_id)

    def mute(self, subscription_id: str) -> None:
        """Deactivate a subscription without retracting it (old ``unsubscribe``)."""
        subscription = self._subscriptions.get(subscription_id)
        if subscription is not None:
            subscription.pause()

    def subscription(self, subscription_id: str) -> Subscription:
        """Return a subscription handle by id."""
        return self._subscriptions[subscription_id]

    @property
    def subscriptions(self) -> list[Subscription]:
        """All subscriptions (cancelled ones included), in registration order."""
        return list(self._subscriptions.values())

    @property
    def num_shards(self) -> int:
        """Number of engine shards."""
        return len(self.shards)

    def shard_of(self, subscription_id: str) -> Optional[int]:
        """The shard id owning a join subscription (``None`` for filters)."""
        shard = self._shard_of.get(subscription_id)
        return shard.shard_id if shard is not None else None

    # ------------------------------------------------------------------ #
    # publishing
    # ------------------------------------------------------------------ #
    def _dispatch_targets(self, document: XmlDocument, candidates: list) -> list:
        """The shards one document must reach (routing, when enabled).

        ``candidates`` are the shards with at least one subscription (an
        empty shard skips processing regardless — Stage 1 witnesses are
        computed at arrival time, so a document processed before a query
        registers can never join with it).
        """
        if self._router is None:
            return candidates
        relevant = self._router.route(document)
        targets = [shard for shard in candidates if shard.shard_id in relevant]
        self._router.account(len(targets), len(candidates))
        return targets

    def publish(
        self,
        document: Union[str, XmlDocument],
        timestamp: Optional[float] = None,
        stream: Optional[str] = None,
    ) -> list[SubscriptionResult]:
        """Publish one document and deliver all resulting matches.

        The direct single-document path: one ``process_one`` task per
        routed shard, skipping the batch assembly, per-batch hooks and
        per-document result nesting that :meth:`publish_many` pays — the
        latency path for interactive publishes, while high-rate streams
        should batch through :meth:`publish_many`.
        """
        document = self._prepare(document, timestamp, stream)
        self._persist_clock()
        candidates = [shard for shard in self.shards if shard.qids]
        targets = self._dispatch_targets(document, candidates)
        if self._wire_enabled and targets:
            per_shard = self._invoke_wire(
                [(shard, None) for shard in targets], [document], "wire_one"
            )
        else:
            per_shard = self._executor.invoke(
                [(shard, "process_one", (document,)) for shard in targets]
            )
        filter_results = list(self._filters.deliver(document))
        deliveries: list[SubscriptionResult] = list(filter_results)
        metrics = self.metrics
        stamp = document.publish_stamp if metrics is not None else None
        self._record_filter_lag(filter_results, stamp)
        for matches in per_shard:
            deliveries.extend(self._deliver_matches(matches, stamp))
        if metrics is not None:
            metrics.histogram("publish_latency").record(perf_counter() - stamp)
            metrics.counter("documents_published").inc()
            metrics.counter("results_delivered").inc(len(deliveries))
        return deliveries

    def publish_many(
        self,
        documents: Iterable[Union[str, XmlDocument]],
        timestamp: Optional[float] = None,
        stream: Optional[str] = None,
    ) -> list[SubscriptionResult]:
        """Publish a batch of documents with one fan-out per shard.

        The whole batch is prepared (parsed, stamped, recorded on its
        streams) up front and routed per document into per-shard
        sub-batches; each shard then processes its sub-batch in one task,
        so the per-document dispatch overhead is paid once per batch per
        shard.  Deliveries are returned in arrival order (per document:
        filter deliveries first, then join matches in shard order).
        """
        batch = [self._prepare(document, timestamp, stream) for document in documents]
        if not batch:
            return []
        self._persist_clock()

        candidates = [shard for shard in self.shards if shard.qids]
        if self._router is None:
            assignments = [(shard, range(len(batch))) for shard in candidates]
        else:
            indices: dict[int, list[int]] = {
                shard.shard_id: [] for shard in candidates
            }
            for index, document in enumerate(batch):
                targets = self._dispatch_targets(document, candidates)
                for shard in targets:
                    indices[shard.shard_id].append(index)
            assignments = [
                (shard, indices[shard.shard_id])
                for shard in candidates
                if indices[shard.shard_id]
            ]
        if self._wire_enabled and assignments:
            # One encode for the whole batch; each shard names its document
            # selection as indices into the shared payload (None = all).
            per_call = self._invoke_wire(
                [
                    (
                        shard,
                        None
                        if len(doc_indices) == len(batch)
                        else list(doc_indices),
                    )
                    for shard, doc_indices in assignments
                ],
                batch,
                "wire_batch",
            )
        else:
            calls = []
            for shard, doc_indices in assignments:
                sub_batch = (
                    batch
                    if len(doc_indices) == len(batch)
                    else [batch[i] for i in doc_indices]
                )
                calls.append((shard, "process_batch", (sub_batch,)))
            per_call = self._executor.invoke(calls)

        # Scatter the per-sub-batch results back to per-document, keeping
        # shard order within each document (``assignments`` iterates
        # ``candidates``, which preserves shard order).
        matches_by_doc: list[list[Match]] = [[] for _ in batch]
        for (shard, doc_indices), rows in zip(assignments, per_call):
            for index, matches in zip(doc_indices, rows):
                matches_by_doc[index].extend(matches)

        # Filters are evaluated in the merge loop (they do not depend on the
        # shard results) so subscriber callbacks fire in the same per-document
        # order as the unsharded broker: filters for document i, then its
        # join matches, then document i+1.
        deliveries: list[SubscriptionResult] = []
        metrics = self.metrics
        for index, document in enumerate(batch):
            filter_results = self._filters.deliver(document)
            deliveries.extend(filter_results)
            if metrics is None:
                deliveries.extend(self._deliver_matches(matches_by_doc[index]))
            else:
                stamp = document.publish_stamp
                self._record_filter_lag(filter_results, stamp)
                deliveries.extend(
                    self._deliver_matches(matches_by_doc[index], stamp)
                )
        if metrics is not None:
            metrics.histogram("publish_batch_latency").record(
                perf_counter() - batch[0].publish_stamp
            )
            metrics.counter("documents_published").inc(len(batch))
            metrics.counter("results_delivered").inc(len(deliveries))
        return deliveries

    def publish_stream(
        self, documents: Iterable[Union[str, XmlDocument]]
    ) -> list[SubscriptionResult]:
        """Publish a sequence of documents (batched); returns all deliveries."""
        return self.publish_many(documents)

    def _invoke_wire(self, assignments, batch: Sequence[XmlDocument], method: str):
        """Encode ``batch`` once and fan the same bytes out to every shard.

        ``assignments`` pairs each target shard with its document selection
        (indices into the batch, or ``None`` for all).  The payload is a
        view into the reusable wire buffer, released once every send has
        been written.
        """
        transport = self._transport
        start = perf_counter()
        payload = self._wire_buffer.pack(encode_document_batch(batch))
        transport["encodes"] += 1
        transport["documents_encoded"] += len(batch)
        transport["encode_ms"] += (perf_counter() - start) * 1000.0
        transport["wire_bytes"] += len(payload)
        transport["shard_sends"] += len(assignments)
        transport["shipped_bytes"] += len(payload) * len(assignments)
        try:
            return self._executor.invoke(
                [(shard, method, (indices, payload)) for shard, indices in assignments]
            )
        finally:
            payload.release()

    def _prepare(
        self,
        document: Union[str, XmlDocument],
        timestamp: Optional[float],
        stream: Optional[str],
    ) -> XmlDocument:
        if isinstance(document, str):
            document = parse_document(document)
        if self.metrics is not None:
            document.publish_stamp = perf_counter()
        if stream is not None:
            document.stream = stream
        if timestamp is not None:
            document.timestamp = float(timestamp)
        elif self.auto_timestamp and document.timestamp == 0.0:
            self._clock_value += 1
            document.timestamp = float(self._clock_value)
        self.streams.get_or_create(document.stream).record(document)
        self._num_published += 1
        return document

    def _persist_clock(self) -> None:
        """Persist the central timestamp clock (once per publish call).

        Stamps must keep increasing across a restart — a recovered clock
        behind the persisted state would assign duplicate timestamps and
        break window semantics.
        """
        if self._store is not None:
            self._store.set_meta("clock", self._clock_value)
            self._store.set_meta("num_published", self._num_published)

    def _deliver_matches(
        self, matches: Sequence[Match], publish_stamp: Optional[float] = None
    ) -> list[SubscriptionResult]:
        metrics = self.metrics
        deliveries: list[SubscriptionResult] = []
        for match in matches:
            subscription = self._subscriptions.get(match.qid)
            if subscription is None or not subscription.active:
                continue
            output = self.output_document(match) if self.construct_outputs else None
            result = SubscriptionResult(
                subscription_id=match.qid, match=match, output=output
            )
            subscription.deliver(result)
            deliveries.append(result)
            if metrics is not None:
                # Matches decoded from a worker process carry the stamp the
                # parent put on the outbound document; locally-processed
                # matches fall back to the per-call stamp.
                stamp = match.publish_stamp or publish_stamp
                if stamp is not None:
                    metrics.record_delivery_lag(match.qid, perf_counter() - stamp)
        return deliveries

    def _record_filter_lag(self, results, stamp) -> None:
        """Record delivery lag for one document's filter-path deliveries."""
        if stamp is None or not results:
            return
        now = perf_counter()
        for result in results:
            self.metrics.record_delivery_lag(result.subscription_id, now - stamp)

    def output_document(self, match: Match) -> XmlDocument:
        """Construct the output XML document of a match (on its owning shard)."""
        shard = self._shard_of.get(match.qid)
        if shard is None:
            raise KeyError(f"no shard owns query id {match.qid!r}")
        return shard.output_document(match)

    # ------------------------------------------------------------------ #
    # state management and stats
    # ------------------------------------------------------------------ #
    def prune(self, min_timestamp: float) -> int:
        """Prune every shard's join state; returns total documents removed.

        (Per shard, not distinct documents: a document surviving on one
        shard and removed on another counts once.)
        """
        return sum(shard.prune(min_timestamp) for shard in self.shards)

    def merged_engine_stats(self) -> EngineStats:
        """All shards' engine statistics merged into one."""
        return merge_engine_stats([shard.stats() for shard in self.shards])

    def transport_stats(self) -> dict:
        """Encode-once transport counters (broker side + merged workers).

        Broker side: ``encodes`` / ``documents_encoded`` / ``encode_ms``
        count each batch's single serialization, ``wire_bytes`` the encoded
        payload bytes, and ``shard_sends`` / ``shipped_bytes`` the fan-out
        (same bytes written once per routed shard).  Worker side (summed
        across workers, like ``stats()["routing"]``): ``payload_loads`` /
        ``payload_bytes`` count received frames and ``decodes`` /
        ``decode_ms`` the actual decodes — fewer than the loads whenever
        co-hosted shards shared one payload.  All zero outside the process
        runtime.
        """
        merged = dict(self._transport)
        merged.update(
            {"decodes": 0, "decode_ms": 0.0, "payload_loads": 0, "payload_bytes": 0}
        )
        for group in self._worker_groups:
            worker = group.call(group.shard_ids[0], "transport")
            for key, value in worker.items():
                merged[key] += value
        merged["encode_ms"] = round(merged["encode_ms"], 3)
        merged["decode_ms"] = round(merged["decode_ms"], 3)
        return merged

    def stats(self) -> dict:
        """Broker statistics: streams, subscriptions, routing, merged + per-shard engines."""
        return {
            "engine": self.engine_name,
            "indexing": self.indexing,
            "storage": self.storage,
            "shards": self.num_shards,
            "executor": self._executor.name,
            "workers": len(self._worker_groups) or None,
            "streams": self.streams.stats(),
            "num_subscriptions": len(self._subscriptions),
            "num_filter_subscriptions": self._filters.num_subscriptions,
            "num_cancelled_subscriptions": sum(
                1 for s in self._subscriptions.values() if s.cancelled
            ),
            "num_documents_published": self._num_published,
            "routing": self._router.stats() if self._router is not None else None,
            "transport": self.transport_stats(),
            "engine_stats": self.merged_engine_stats().__dict__,
            "per_shard": [
                {"shard": shard.shard_id, **shard.stats().__dict__}
                for shard in self.shards
            ],
            "partition": self._partitioner.stats(),
            "metrics": self.metrics_snapshot(),
        }

    def metrics_snapshot(self) -> Optional[dict]:
        """Merged metrics snapshot (broker + every shard), or ``None`` when off.

        In the ``"processes"`` runtime each shard's snapshot is fetched from
        its worker over the control pipe; all snapshots merge into one view
        with the broker's own publish-latency and delivery-lag series.
        """
        if self.metrics is None:
            return None
        snapshots = [self.metrics.snapshot()]
        snapshots.extend(shard.metrics_snapshot() for shard in self.shards)
        return merge_snapshots(snapshots)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """End the session (idempotent): sinks, shards, workers, registry, executor.

        Every subscription's sinks are flushed and closed (a
        :class:`~repro.pubsub.sinks.BatchingSink` holding a partial batch
        delivers it here); one sink raising does not prevent the remaining
        subscriptions, shards, workers or stores from closing — the first
        error is re-raised once cleanup completes.
        """
        if self._closed:
            return
        self._closed = True
        first_error: Optional[BaseException] = None
        for subscription in self._subscriptions.values():
            try:
                subscription.close_sinks()
            except BaseException as exc:  # noqa: BLE001 - must keep closing
                if first_error is None:
                    first_error = exc
        for shard in self.shards:
            shard.close()
        for group in self._worker_groups:
            group.close()
        if self._store is not None:
            self._store.close()
        self._executor.close()
        if first_error is not None:
            raise first_error

    def __enter__(self) -> "ShardedBroker":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"<ShardedBroker engine={self.engine_name!r} shards={self.num_shards} "
            f"executor={self._executor.name!r} "
            f"subscriptions={len(self._subscriptions)}>"
        )
