"""The sharded parallel runtime: scale-out of the broker across engine shards.

The paper's engine is a single shared pipeline; this package is the layer
that takes it from one core to many.  It partitions join subscriptions
across N independent :class:`~repro.runtime.shard.EngineShard` instances
(template-cohesively, so the CQT sharing of Section 4 survives inside every
shard), fans each published document out to all shards through a pluggable
executor, and merges matches, statistics and cost breakdowns back into one
broker-level view.

* :class:`~repro.runtime.sharded_broker.ShardedBroker` — the drop-in broker
  (also reachable as ``repro.pubsub.Broker(..., shards=N)``).
* :mod:`~repro.runtime.partition` — hash-by-template and least-loaded
  placement strategies.
* :mod:`~repro.runtime.executor` — serial (deterministic), thread-pool and
  process-pipelined execution of the per-shard tasks.
* :mod:`~repro.runtime.process` — the process runtime: engines living in
  long-lived worker processes behind pipe-command shard handles.
* :mod:`~repro.runtime.router` — relevance-aware fan-out routing: documents
  are dispatched only to the shards hosting templates they can bind.
"""

from repro.runtime.executor import (
    EXECUTORS,
    ProcessExecutor,
    SerialExecutor,
    ShardExecutor,
    ThreadedExecutor,
    executor_env_override,
    make_executor,
)
from repro.runtime.process import ProcessShardHandle, ShardWorkerError, ShardWorkerGroup
from repro.runtime.router import ShardRouter
from repro.runtime.partition import (
    PARTITIONERS,
    HashTemplatePartitioner,
    LeastLoadedPartitioner,
    Partitioner,
    make_partitioner,
    template_key,
)
from repro.runtime.shard import EngineShard
from repro.runtime.sharded_broker import ShardedBroker

__all__ = [
    "ShardedBroker",
    "EngineShard",
    "Partitioner",
    "HashTemplatePartitioner",
    "LeastLoadedPartitioner",
    "PARTITIONERS",
    "make_partitioner",
    "template_key",
    "ShardExecutor",
    "SerialExecutor",
    "ThreadedExecutor",
    "ProcessExecutor",
    "EXECUTORS",
    "make_executor",
    "executor_env_override",
    "ProcessShardHandle",
    "ShardWorkerGroup",
    "ShardWorkerError",
    "ShardRouter",
]
