"""Run the full experiment suite and print every table.

Usage::

    python -m repro.bench                # every experiment, default scale
    python -m repro.bench fig08 table3   # a subset
"""

from __future__ import annotations

import sys
import time

from repro.bench.experiments import ALL_EXPERIMENTS
from repro.bench.reporting import format_table


def main(argv: list[str]) -> int:
    names = argv if argv else list(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; available: {list(ALL_EXPERIMENTS)}")
        return 2
    for name in names:
        start = time.perf_counter()
        rows = ALL_EXPERIMENTS[name]()
        elapsed = time.perf_counter() - start
        print(format_table(rows, title=f"== {name} (ran in {elapsed:.1f}s) =="))
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
