"""Low-level benchmark runners.

The technical benchmark (Section 6.1) measures only Stage 2: the witness
relations of the two fixed documents are constructed directly and the
timed quantity is the evaluation of the conjunctive queries — per template
for MMQJP, per query for Sequential.  The RSS benchmark (Section 6.3)
streams documents through the full two-stage engines and reports
throughput.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.config import RuntimeConfig
from repro.core.engine import make_engine
from repro.core.materialize import ViewCache
from repro.core.processor import MMQJPJoinProcessor, SequentialJoinProcessor
from repro.core.state import JoinState
from repro.runtime.sharded_broker import ShardedBroker
from repro.templates.registry import TemplateRegistry
from repro.workloads.synthetic import (
    DeltaScalingData,
    PlanScalingData,
    StateScalingData,
    TechnicalBenchmarkData,
    build_technical_benchmark_data,
)
from repro.xmlmodel.document import XmlDocument
from repro.xmlmodel.schema import DocumentSchema
from repro.xscl.ast import XsclQuery

#: Approach identifiers used throughout the harness and the benchmarks.
APPROACH_MMQJP = "mmqjp"
APPROACH_MMQJP_VM = "mmqjp-vm"
APPROACH_SEQUENTIAL = "sequential"
ALL_APPROACHES = (APPROACH_MMQJP, APPROACH_MMQJP_VM, APPROACH_SEQUENTIAL)


@dataclass
class ApproachResult:
    """Timing result of one approach on one workload configuration."""

    approach: str
    num_queries: int
    elapsed_ms: float
    num_matches: int
    num_templates: Optional[int] = None
    breakdown_ms: dict[str, float] = field(default_factory=dict)
    extra: dict[str, float] = field(default_factory=dict)

    def as_row(self) -> dict:
        """Flatten to a reporting row."""
        row = {
            "approach": self.approach,
            "num_queries": self.num_queries,
            "elapsed_ms": round(self.elapsed_ms, 3),
            "num_matches": self.num_matches,
        }
        if self.num_templates is not None:
            row["num_templates"] = self.num_templates
        for phase, ms in self.breakdown_ms.items():
            row[f"{phase}_ms"] = round(ms, 3)
        row.update(self.extra)
        return row


# --------------------------------------------------------------------------- #
# registration helpers
# --------------------------------------------------------------------------- #
def register_mmqjp(queries: Sequence[XsclQuery]) -> TemplateRegistry:
    """Register a (canonically named) query workload with a fresh template registry."""
    registry = TemplateRegistry()
    for i, query in enumerate(queries):
        registry.add_query(f"q{i}", query)
    return registry


def register_sequential(
    queries: Sequence[XsclQuery], state=None, **knobs
) -> SequentialJoinProcessor:
    """Register a query workload with a fresh sequential processor.

    ``knobs`` are forwarded to :class:`SequentialJoinProcessor`
    (``plan_cache``, ``prune_dispatch``, ``delta_join``, ...), so every
    benchmark constructs the baseline through this one path.
    """
    processor = SequentialJoinProcessor(state=state, **knobs)
    for i, query in enumerate(queries):
        processor.add_query(f"q{i}", query)
    return processor


def _time_probe_loop(processor, probes) -> tuple[float, int, frozenset]:
    """The timed quantity shared by the scaling benchmarks.

    Processes (and folds into the state) every probe document in order;
    returns ``(elapsed seconds, total matches, frozen match-key set)``.
    """
    start = time.perf_counter()
    match_keys: set[tuple] = set()
    num_matches = 0
    for witness in probes:
        matches = processor.process(witness)
        processor.maintain_state(witness)
        num_matches += len(matches)
        match_keys.update(m.key() for m in matches)
    elapsed = time.perf_counter() - start
    return elapsed, num_matches, frozenset(match_keys)


# --------------------------------------------------------------------------- #
# the technical benchmark (Section 6.1 / 6.2)
# --------------------------------------------------------------------------- #
def run_technical_benchmark(
    schema: DocumentSchema,
    queries: Sequence[XsclQuery],
    approaches: Sequence[str] = (APPROACH_MMQJP, APPROACH_SEQUENTIAL),
    view_cache_size: Optional[int] = None,
    data: Optional[TechnicalBenchmarkData] = None,
) -> list[ApproachResult]:
    """Join the two fixed benchmark documents under every requested approach.

    Only the join processing (``process`` call) is timed; registration and
    witness construction are excluded, matching the paper's measurement.
    """
    data = data if data is not None else build_technical_benchmark_data(schema)
    results: list[ApproachResult] = []

    for approach in approaches:
        if approach == APPROACH_SEQUENTIAL:
            processor = register_sequential(queries, state=data.fresh_state())
            start = time.perf_counter()
            matches = processor.process(data.witness)
            elapsed = (time.perf_counter() - start) * 1000.0
            results.append(
                ApproachResult(
                    approach=approach,
                    num_queries=len(queries),
                    elapsed_ms=elapsed,
                    num_matches=len(matches),
                    breakdown_ms=processor.costs.as_milliseconds(),
                )
            )
        elif approach in (APPROACH_MMQJP, APPROACH_MMQJP_VM):
            registry = register_mmqjp(queries)
            view_cache = None
            if approach == APPROACH_MMQJP_VM and view_cache_size is not None:
                view_cache = ViewCache(max_entries=view_cache_size)
            processor = MMQJPJoinProcessor(
                registry,
                state=data.fresh_state(),
                use_view_materialization=(approach == APPROACH_MMQJP_VM),
                view_cache=view_cache,
            )
            start = time.perf_counter()
            matches = processor.process(data.witness)
            elapsed = (time.perf_counter() - start) * 1000.0
            results.append(
                ApproachResult(
                    approach=approach,
                    num_queries=len(queries),
                    elapsed_ms=elapsed,
                    num_matches=len(matches),
                    num_templates=registry.num_templates,
                    breakdown_ms=processor.costs.as_milliseconds(),
                )
            )
        else:
            raise ValueError(f"unknown approach {approach!r}")
    return results


# --------------------------------------------------------------------------- #
# the RSS stream benchmark (Section 6.3)
# --------------------------------------------------------------------------- #
def run_rss_throughput(
    queries: Sequence[XsclQuery],
    documents: Iterable[XmlDocument],
    approach: str,
    view_cache_size: Optional[int] = 4096,
    indexing: str = "eager",
) -> ApproachResult:
    """Stream feed items through a full two-stage engine and report throughput.

    The registration phase is excluded from the timing; the streaming phase
    (Stage 1 + Stage 2 + state maintenance for every item) is included.
    Throughput in events/second is reported in ``extra["events_per_second"]``.
    """
    documents = list(documents)
    engine = make_engine(
        config=RuntimeConfig(
            engine=approach,
            view_cache_size=view_cache_size,
            store_documents=False,
            auto_timestamp=False,
            indexing=indexing,
        )
    )
    for i, query in enumerate(queries):
        engine.register_query(query, qid=f"q{i}")

    start = time.perf_counter()
    total_matches = 0
    for document in documents:
        total_matches += len(engine.process_document(document))
    elapsed = time.perf_counter() - start

    throughput = len(documents) / elapsed if elapsed > 0 else float("inf")
    return ApproachResult(
        approach=approach,
        num_queries=len(queries),
        elapsed_ms=elapsed * 1000.0,
        num_matches=total_matches,
        num_templates=getattr(engine, "num_templates", None),
        breakdown_ms=engine.costs.as_milliseconds(),
        extra={"events_per_second": round(throughput, 2), "num_events": len(documents)},
    )


# --------------------------------------------------------------------------- #
# the state-scaling benchmark (incremental indexed join state)
# --------------------------------------------------------------------------- #
def run_state_scaling(
    queries: Sequence[XsclQuery],
    data: StateScalingData,
    approach: str = APPROACH_MMQJP,
    indexing: str = "eager",
) -> tuple[ApproachResult, frozenset]:
    """Per-document join cost against a large preloaded state.

    The state documents are loaded directly (the technical-benchmark path),
    so the timing isolates exactly the per-document Stage 2 work the
    incremental indexing targets: the probe documents are processed — and
    merged into the state — one after another against ``num_state_docs``
    retained documents.  Per-document throughput is reported in
    ``extra["docs_per_second"]``; the second return value is the frozen set
    of match keys, which must be identical across every ``indexing`` mode,
    engine and shard count (the benchmark and CI smoke assert this).
    """
    state = JoinState(indexing=indexing)
    data.load_state(state)
    # delta_join is pinned off: this benchmark isolates the indexing knob
    # (the PR-2 measurement); the delta-scaling benchmark owns delta_join.
    if approach == APPROACH_SEQUENTIAL:
        processor = register_sequential(queries, state=state, delta_join=False)
        num_templates = None
    elif approach == APPROACH_MMQJP:
        registry = register_mmqjp(queries)
        processor = MMQJPJoinProcessor(registry, state=state, delta_join=False)
        num_templates = registry.num_templates
    else:
        raise ValueError(f"unsupported state-scaling approach {approach!r}")

    elapsed, num_matches, match_keys = _time_probe_loop(processor, data.probes)

    throughput = len(data.probes) / elapsed if elapsed > 0 else float("inf")
    result = ApproachResult(
        approach=f"{approach}-{indexing}",
        num_queries=len(queries),
        elapsed_ms=elapsed * 1000.0,
        num_matches=num_matches,
        num_templates=num_templates,
        breakdown_ms=processor.costs.as_milliseconds(),
        extra={
            "indexing": indexing,
            "num_state_docs": len(data.state_docs),
            "num_probe_docs": len(data.probes),
            "docs_per_second": round(throughput, 3),
        },
    )
    return result, match_keys


# --------------------------------------------------------------------------- #
# the plan-scaling benchmark (compiled plans + relevance-pruned dispatch)
# --------------------------------------------------------------------------- #
def run_plan_scaling(
    queries: Sequence[XsclQuery],
    data: PlanScalingData,
    approach: str = APPROACH_MMQJP,
    indexing: str = "eager",
    plan_cache: bool = True,
    prune_dispatch: bool = True,
    columnar: bool = True,
    registry: Optional[TemplateRegistry] = None,
) -> tuple[ApproachResult, frozenset]:
    """Per-document join cost on the topic-sharded relevance workload.

    Identical in shape to :func:`run_state_scaling` — the probes are
    processed and merged against a preloaded state and only that loop is
    timed — but over the :class:`~repro.workloads.synthetic.PlanScalingData`
    workload, where each probe is relevant to ≈ ``1 / num_topics`` of the
    registered templates.  ``plan_cache=False, prune_dispatch=False``
    reproduces the pre-compiled-plan behavior (the PR-2 baseline); the
    returned match-key set must be identical across every knob combination,
    engine and shard count.

    Registration (template matching) is excluded from the timing, so a
    prebuilt ``registry`` over the same ``queries`` may be passed to share
    that cost across knob configurations (MMQJP only).
    """
    state = JoinState(indexing=indexing)
    data.load_state(state)
    # delta_join is pinned off: this benchmark isolates plan_cache ×
    # prune_dispatch against the PR-2 baseline; the delta-scaling benchmark
    # owns delta_join.
    if approach == APPROACH_SEQUENTIAL:
        processor = register_sequential(
            queries,
            state=state,
            plan_cache=plan_cache,
            prune_dispatch=prune_dispatch,
            delta_join=False,
            columnar=columnar,
        )
        num_templates = None
    elif approach == APPROACH_MMQJP:
        if registry is None:
            registry = register_mmqjp(queries)
        processor = MMQJPJoinProcessor(
            registry,
            state=state,
            plan_cache=plan_cache,
            prune_dispatch=prune_dispatch,
            delta_join=False,
            columnar=columnar,
        )
        num_templates = registry.num_templates
    else:
        raise ValueError(f"unsupported plan-scaling approach {approach!r}")

    elapsed, num_matches, match_keys = _time_probe_loop(processor, data.probes)

    throughput = len(data.probes) / elapsed if elapsed > 0 else float("inf")
    label = "compiled" if plan_cache else "plan-per-call"
    if prune_dispatch:
        label += "+pruned"
    extra = {
        "plan_cache": plan_cache,
        "prune_dispatch": prune_dispatch,
        "columnar": processor.columnar,
        "indexing": indexing,
        "num_topics": data.num_topics,
        "num_state_docs": len(data.state_docs),
        "num_probe_docs": len(data.probes),
        "docs_per_second": round(throughput, 3),
    }
    if isinstance(processor, MMQJPJoinProcessor):
        extra["templates_skipped"] = processor.templates_skipped
    if processor.plan_cache is not None:
        extra.update(
            {f"plan_{k}": v for k, v in processor.plan_cache.stats().items()}
        )
    result = ApproachResult(
        approach=f"{approach}-{label}",
        num_queries=len(queries),
        elapsed_ms=elapsed * 1000.0,
        num_matches=num_matches,
        num_templates=num_templates,
        breakdown_ms=processor.costs.as_milliseconds(),
        extra=extra,
    )
    return result, match_keys


# --------------------------------------------------------------------------- #
# the delta-scaling benchmark (delta-driven Stage-2 joins)
# --------------------------------------------------------------------------- #
def run_delta_scaling(
    queries: Sequence[XsclQuery],
    data: DeltaScalingData,
    approach: str = APPROACH_MMQJP,
    indexing: str = "eager",
    plan_cache: bool = True,
    prune_dispatch: bool = True,
    delta_join: bool = True,
    columnar: bool = True,
    registry: Optional[TemplateRegistry] = None,
) -> tuple[ApproachResult, frozenset]:
    """Per-document join cost on the growing-state / fixed-delta workload.

    Identical in shape to :func:`run_plan_scaling`, but over
    :class:`~repro.workloads.synthetic.DeltaScalingData`: the retained state
    grows while the delta-connected state (and the probes) stay fixed, so
    ``delta_join=False`` pays per-document cost proportional to the total
    value-matching state and ``delta_join=True`` only to the alive slice.
    The returned match-key set must be identical across every knob
    combination, engine and shard count.
    """
    state = JoinState(indexing=indexing)
    data.load_state(state)
    if approach == APPROACH_SEQUENTIAL:
        processor = register_sequential(
            queries,
            state=state,
            plan_cache=plan_cache,
            prune_dispatch=prune_dispatch,
            delta_join=delta_join,
            columnar=columnar,
        )
        num_templates = None
    elif approach == APPROACH_MMQJP:
        if registry is None:
            registry = register_mmqjp(queries)
        processor = MMQJPJoinProcessor(
            registry,
            state=state,
            plan_cache=plan_cache,
            prune_dispatch=prune_dispatch,
            delta_join=delta_join,
            columnar=columnar,
        )
        num_templates = registry.num_templates
    else:
        raise ValueError(f"unsupported delta-scaling approach {approach!r}")

    elapsed, num_matches, match_keys = _time_probe_loop(processor, data.probes)

    throughput = len(data.probes) / elapsed if elapsed > 0 else float("inf")
    extra = {
        "delta_join": delta_join,
        "plan_cache": plan_cache,
        "prune_dispatch": prune_dispatch,
        "columnar": processor.columnar,
        "indexing": indexing,
        "num_state_docs": len(data.state_docs),
        "num_alive_docs": data.num_alive_docs,
        "num_probe_docs": len(data.probes),
        "docs_per_second": round(throughput, 3),
        "ms_per_doc": round(elapsed * 1000.0 / max(1, len(data.probes)), 4),
    }
    extra.update({f"delta_{k}": v for k, v in processor.delta_stats.items()})
    result = ApproachResult(
        approach=f"{approach}-delta-{'on' if delta_join else 'off'}",
        num_queries=len(queries),
        elapsed_ms=elapsed * 1000.0,
        num_matches=num_matches,
        num_templates=num_templates,
        breakdown_ms=processor.costs.as_milliseconds(),
        extra=extra,
    )
    return result, match_keys


# --------------------------------------------------------------------------- #
# the sharded-runtime throughput benchmark
# --------------------------------------------------------------------------- #
def _routing_extra(broker: ShardedBroker) -> dict:
    """Routing counters of one finished run, flattened for reporting.

    ``pct_shards_skipped`` is the fraction of (document, candidate shard)
    dispatches the router pruned; ``num_active_shards`` counts the shards
    that owned at least one subscription (an all-on-one-shard placement
    gives routing nothing to skip, so gates key off this).
    """
    stats = broker.stats()
    routing = stats.get("routing")
    extra: dict = {
        "route_dispatch": routing is not None,
        "workers": stats.get("workers") or 0,
        "num_active_shards": sum(1 for shard in broker.shards if shard.qids),
    }
    if routing is not None:
        considered = routing["shards_dispatched"] + routing["shards_skipped"]
        extra["shards_skipped"] = routing["shards_skipped"]
        extra["pct_shards_skipped"] = round(
            100.0 * routing["shards_skipped"] / considered if considered else 0.0, 2
        )
    return extra


def run_sharded_rss_throughput(
    queries: Sequence[XsclQuery],
    documents: Iterable[XmlDocument],
    shards: int,
    approach: str = APPROACH_MMQJP,
    partitioner: str = "hash",
    executor: str = "serial",
    route_dispatch: bool = True,
    max_workers: Optional[int] = None,
    batch_size: Optional[int] = None,
    view_cache_size: Optional[int] = 4096,
    indexing: str = "eager",
) -> ApproachResult:
    """Stream feed items through a :class:`~repro.runtime.ShardedBroker`.

    Subscription registration is excluded from the timing; the streaming
    phase uses batched ingestion (``publish_many``), dispatching the stream
    in batches of ``batch_size`` documents (the whole stream at once when
    ``None``).  The result's ``approach`` is tagged
    ``"<engine>-sharded<N>-<executor>"`` and the shard/executor/partitioner/
    routing configuration is reported in ``extra``.
    """
    documents = list(documents)
    broker = ShardedBroker(
        RuntimeConfig(
            engine=approach,
            view_cache_size=view_cache_size,
            construct_outputs=False,
            shards=shards,
            partitioner=partitioner,
            executor=executor,
            route_dispatch=route_dispatch,
            max_workers=max_workers,
            store_documents=False,
            auto_timestamp=False,
            indexing=indexing,
        )
    )
    try:
        for i, query in enumerate(queries):
            broker.subscribe(query, subscription_id=f"q{i}")

        if batch_size is None or batch_size >= len(documents):
            batches = [documents]
        else:
            batches = [
                documents[i : i + batch_size]
                for i in range(0, len(documents), batch_size)
            ]

        start = time.perf_counter()
        total_matches = 0
        for batch in batches:
            total_matches += len(broker.publish_many(batch))
        elapsed = time.perf_counter() - start

        stats = broker.merged_engine_stats()
        routing_extra = _routing_extra(broker)
    finally:
        broker.close()

    throughput = len(documents) / elapsed if elapsed > 0 else float("inf")
    return ApproachResult(
        approach=f"{approach}-sharded{shards}-{executor}",
        num_queries=len(queries),
        elapsed_ms=elapsed * 1000.0,
        num_matches=total_matches,
        num_templates=stats.num_templates,
        breakdown_ms=dict(stats.costs),
        extra={
            "events_per_second": round(throughput, 2),
            "num_events": len(documents),
            "shards": shards,
            "partitioner": partitioner,
            "executor": executor,
            "batch_size": batch_size if batch_size is not None else len(documents),
            **routing_extra,
        },
    )


# --------------------------------------------------------------------------- #
# the parallel-scaling benchmark (process shards + relevance routing)
# --------------------------------------------------------------------------- #
def run_parallel_topic_throughput(
    queries: Sequence[XsclQuery],
    documents: Iterable[XmlDocument],
    shards: int,
    approach: str = APPROACH_MMQJP,
    executor: str = "serial",
    route_dispatch: bool = True,
    max_workers: Optional[int] = None,
    batch_size: Optional[int] = None,
    indexing: str = "eager",
) -> tuple[ApproachResult, frozenset]:
    """Stream a topic-sharded document workload through a sharded broker.

    The end-to-end measurement of the parallel runtime: topic-disjoint
    templates spread across shards, and every document both probes the
    retained same-topic state and becomes state itself (both query-block
    roles), so routing decisions affect correctness if they are wrong —
    which is why the runner also returns the frozen match-key set, asserted
    identical across every executor × shards × routing cell by the
    benchmark.  ``extra`` reports ``ms_per_doc`` (the scaling quantity) and
    the routing counters (``pct_shards_skipped``).
    """
    documents = list(documents)
    broker = ShardedBroker(
        RuntimeConfig(
            engine=approach,
            construct_outputs=False,
            shards=shards,
            executor=executor,
            route_dispatch=route_dispatch,
            max_workers=max_workers,
            store_documents=False,
            auto_timestamp=False,
            indexing=indexing,
        )
    )
    try:
        for i, query in enumerate(queries):
            broker.subscribe(query, subscription_id=f"q{i}")

        if batch_size is None or batch_size >= len(documents):
            batches = [documents]
        else:
            batches = [
                documents[i : i + batch_size]
                for i in range(0, len(documents), batch_size)
            ]

        match_keys: set[tuple] = set()
        start = time.perf_counter()
        num_matches = 0
        for batch in batches:
            deliveries = broker.publish_many(batch)
            num_matches += len(deliveries)
            match_keys.update(d.match.key() for d in deliveries)
        elapsed = time.perf_counter() - start

        stats = broker.merged_engine_stats()
        routing_extra = _routing_extra(broker)
    finally:
        broker.close()

    throughput = len(documents) / elapsed if elapsed > 0 else float("inf")
    result = ApproachResult(
        approach=f"{approach}-parallel{shards}-{executor}",
        num_queries=len(queries),
        elapsed_ms=elapsed * 1000.0,
        num_matches=num_matches,
        num_templates=stats.num_templates,
        breakdown_ms=dict(stats.costs),
        extra={
            "events_per_second": round(throughput, 2),
            "ms_per_doc": round(elapsed * 1000.0 / max(1, len(documents)), 4),
            "num_events": len(documents),
            "shards": shards,
            "executor": executor,
            "max_workers": max_workers,
            "batch_size": batch_size if batch_size is not None else len(documents),
            **routing_extra,
        },
    )
    return result, frozenset(match_keys)
