"""Experiment harness reproducing every table and figure of the paper's evaluation.

* :mod:`~repro.bench.harness` — low-level runners: register a query workload
  with each approach (MMQJP, MMQJP + view materialization, Sequential) and
  time its join processing.
* :mod:`~repro.bench.experiments` — one function per paper table/figure
  (``table3``, ``fig08`` ... ``fig16``) plus the ablation studies listed in
  DESIGN.md.  Each returns a list of row dictionaries.
* :mod:`~repro.bench.reporting` — plain-text/CSV rendering of those rows.

``python -m repro.bench`` runs the full suite at a laptop-friendly scale and
prints every table (used to fill EXPERIMENTS.md).
"""

from repro.bench.harness import (
    ApproachResult,
    run_technical_benchmark,
    run_rss_throughput,
    run_plan_scaling,
    run_parallel_topic_throughput,
    run_sharded_rss_throughput,
    register_mmqjp,
    register_sequential,
)
from repro.bench import experiments
from repro.bench.reporting import format_table, rows_to_csv, rows_to_json

__all__ = [
    "ApproachResult",
    "run_technical_benchmark",
    "run_rss_throughput",
    "run_plan_scaling",
    "run_parallel_topic_throughput",
    "run_sharded_rss_throughput",
    "register_mmqjp",
    "register_sequential",
    "experiments",
    "format_table",
    "rows_to_csv",
    "rows_to_json",
]
