"""One function per paper table/figure, plus the ablation studies.

Every function returns a list of row dictionaries ready for
:func:`repro.bench.reporting.format_table`.  The default parameter values
are scaled so that the whole suite completes in minutes on a laptop with the
pure-Python engine; pass larger values (e.g. ``num_queries_list`` up to
100000) to approach the paper's original scale.  The *shapes* the paper
reports — who wins, by roughly what factor, where curves flatten — are
preserved at the default scale; see EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from repro.bench.harness import (
    APPROACH_MMQJP,
    APPROACH_MMQJP_VM,
    APPROACH_SEQUENTIAL,
    register_mmqjp,
    run_plan_scaling,
    run_rss_throughput,
    run_sharded_rss_throughput,
    run_state_scaling,
    run_technical_benchmark,
)
from repro.core.processor import MMQJPJoinProcessor
from repro.templates.enumerate import template_count_table
from repro.templates.join_graph import JoinGraph
from repro.templates.registry import TemplateRegistry
from repro.workloads.querygen import QueryWorkloadConfig, generate_queries
from repro.workloads.rss import RssStreamConfig, generate_rss_queries, generate_rss_stream
from repro.workloads.synthetic import (
    build_state_scaling_data,
    build_technical_benchmark_data,
)
from repro.xmlmodel.schema import three_level_schema, two_level_schema

# Default parameter values of Table 5.
DEFAULT_NUM_QUERIES = 1000
DEFAULT_NUM_LEAVES = 6
DEFAULT_ZIPF = 0.8


# --------------------------------------------------------------------------- #
# Table 3
# --------------------------------------------------------------------------- #
def table3(max_value_joins: int = 4) -> list[dict]:
    """Table 3: number of query templates vs. number of value joins."""
    return template_count_table(max_value_joins)


# --------------------------------------------------------------------------- #
# Figures 8-10: simple (two-level) document schema
# --------------------------------------------------------------------------- #
def _simple_workload(num_queries: int, num_leaves: int, zipf: float, seed: int = 7):
    schema = two_level_schema(num_leaves)
    queries = generate_queries(
        QueryWorkloadConfig(
            schema=schema, num_queries=num_queries, zipf_theta=zipf, seed=seed
        )
    )
    return schema, queries


def fig08(
    num_queries_list: Sequence[int] = (10, 100, 1000, 5000),
    num_leaves: int = DEFAULT_NUM_LEAVES,
    zipf: float = DEFAULT_ZIPF,
) -> list[dict]:
    """Figure 8: simple schema, total conjunctive-query time vs. number of queries."""
    rows = []
    for num_queries in num_queries_list:
        schema, queries = _simple_workload(num_queries, num_leaves, zipf)
        for result in run_technical_benchmark(schema, queries):
            row = result.as_row()
            row["figure"] = "fig08"
            rows.append(row)
    return rows


def fig09(
    num_leaves_list: Sequence[int] = (4, 6, 8, 10, 12),
    num_queries: int = DEFAULT_NUM_QUERIES,
    zipf: float = DEFAULT_ZIPF,
) -> list[dict]:
    """Figure 9: simple schema, time vs. number of leaf nodes in the schema."""
    rows = []
    for num_leaves in num_leaves_list:
        schema, queries = _simple_workload(num_queries, num_leaves, zipf)
        for result in run_technical_benchmark(schema, queries):
            row = result.as_row()
            row["figure"] = "fig09"
            row["num_leaves"] = num_leaves
            rows.append(row)
    return rows


def fig10(
    zipf_list: Sequence[float] = (0.0, 0.4, 0.8, 1.2, 1.6),
    num_queries: int = DEFAULT_NUM_QUERIES,
    num_leaves: int = DEFAULT_NUM_LEAVES,
) -> list[dict]:
    """Figure 10: simple schema, time vs. the Zipf parameter."""
    rows = []
    for zipf in zipf_list:
        schema, queries = _simple_workload(num_queries, num_leaves, zipf)
        for result in run_technical_benchmark(schema, queries):
            row = result.as_row()
            row["figure"] = "fig10"
            row["zipf"] = zipf
            rows.append(row)
    return rows


# --------------------------------------------------------------------------- #
# Figures 11-13: complex (three-level) document schema
# --------------------------------------------------------------------------- #
def _complex_workload(num_queries: int, max_value_joins: int, zipf: float, seed: int = 7):
    schema = three_level_schema(branching=4)
    queries = generate_queries(
        QueryWorkloadConfig(
            schema=schema,
            num_queries=num_queries,
            zipf_theta=zipf,
            max_value_joins=max_value_joins,
            seed=seed,
        )
    )
    return schema, queries


def fig11(
    num_queries_list: Sequence[int] = (10, 100, 1000, 5000),
    max_value_joins: int = 4,
    zipf: float = DEFAULT_ZIPF,
) -> list[dict]:
    """Figure 11: complex schema, time vs. number of queries."""
    rows = []
    for num_queries in num_queries_list:
        schema, queries = _complex_workload(num_queries, max_value_joins, zipf)
        for result in run_technical_benchmark(schema, queries):
            row = result.as_row()
            row["figure"] = "fig11"
            rows.append(row)
    return rows


def fig12(
    max_value_joins_list: Sequence[int] = (2, 3, 4, 5),
    num_queries: int = DEFAULT_NUM_QUERIES,
    zipf: float = DEFAULT_ZIPF,
) -> list[dict]:
    """Figure 12: complex schema, time vs. the maximum number of value joins per query."""
    rows = []
    for max_value_joins in max_value_joins_list:
        schema, queries = _complex_workload(num_queries, max_value_joins, zipf)
        for result in run_technical_benchmark(schema, queries):
            row = result.as_row()
            row["figure"] = "fig12"
            row["max_value_joins"] = max_value_joins
            rows.append(row)
    return rows


def fig13(
    zipf_list: Sequence[float] = (0.0, 0.4, 0.8, 1.2, 1.6),
    num_queries: int = DEFAULT_NUM_QUERIES,
    max_value_joins: int = 4,
) -> list[dict]:
    """Figure 13: complex schema, time vs. the Zipf parameter."""
    rows = []
    for zipf in zipf_list:
        schema, queries = _complex_workload(num_queries, max_value_joins, zipf)
        for result in run_technical_benchmark(schema, queries):
            row = result.as_row()
            row["figure"] = "fig13"
            row["zipf"] = zipf
            rows.append(row)
    return rows


# --------------------------------------------------------------------------- #
# Figures 14-15: view materialization cost breakdown
# --------------------------------------------------------------------------- #
def _viewmat_rows(figure: str, schema, queries) -> list[dict]:
    rows = []
    results = run_technical_benchmark(
        schema, queries, approaches=(APPROACH_MMQJP, APPROACH_MMQJP_VM)
    )
    for result in results:
        row = {
            "figure": figure,
            "approach": result.approach,
            "num_queries": result.num_queries,
            "num_templates": result.num_templates,
            "total_ms": round(result.elapsed_ms, 3),
            "conjunctive_query_ms": round(result.breakdown_ms.get("conjunctive_query", 0.0), 3),
            "rvj_ms": round(result.breakdown_ms.get("rvj", 0.0), 3),
            "rl_ms": round(result.breakdown_ms.get("rl", 0.0), 3),
            "rr_ms": round(result.breakdown_ms.get("rr", 0.0), 3),
            "num_matches": result.num_matches,
        }
        rows.append(row)
    return rows


def fig14(num_queries: int = 20000, num_leaves: int = DEFAULT_NUM_LEAVES, zipf: float = DEFAULT_ZIPF) -> list[dict]:
    """Figure 14: view materialization cost breakdown on the simple schema."""
    schema, queries = _simple_workload(num_queries, num_leaves, zipf)
    return _viewmat_rows("fig14", schema, queries)


def fig15(num_queries: int = 20000, max_value_joins: int = 4, zipf: float = DEFAULT_ZIPF) -> list[dict]:
    """Figure 15: view materialization cost breakdown on the complex schema."""
    schema, queries = _complex_workload(num_queries, max_value_joins, zipf)
    return _viewmat_rows("fig15", schema, queries)


# --------------------------------------------------------------------------- #
# Figure 16: RSS stream throughput
# --------------------------------------------------------------------------- #
def fig16(
    num_queries_list: Sequence[int] = (10, 100, 1000, 5000),
    num_items: int = 300,
    zipf: float = DEFAULT_ZIPF,
    approaches: Sequence[str] = (APPROACH_MMQJP_VM, APPROACH_MMQJP, APPROACH_SEQUENTIAL),
    max_sequential_queries: Optional[int] = 1000,
) -> list[dict]:
    """Figure 16: join-processing throughput (events/second) on the simulated RSS stream.

    ``max_sequential_queries`` caps the query counts at which the Sequential
    baseline is run (it becomes prohibitively slow far earlier than MMQJP,
    which is precisely the point of the figure).
    """
    stream_config = RssStreamConfig(num_items=num_items)
    documents = list(generate_rss_stream(stream_config))
    rows = []
    for num_queries in num_queries_list:
        queries = generate_rss_queries(num_queries, zipf_theta=zipf)
        for approach in approaches:
            if (
                approach == APPROACH_SEQUENTIAL
                and max_sequential_queries is not None
                and num_queries > max_sequential_queries
            ):
                continue
            result = run_rss_throughput(queries, documents, approach)
            row = result.as_row()
            row["figure"] = "fig16"
            rows.append(row)
    return rows


# --------------------------------------------------------------------------- #
# Sharded runtime: throughput vs. shard count (beyond the paper)
# --------------------------------------------------------------------------- #
def sharded_throughput(
    shard_counts: Sequence[int] = (1, 2, 4),
    executors: Sequence[str] = ("serial", "threads"),
    partitioner: str = "hash",
    num_queries: int = 400,
    num_items: int = 150,
    zipf: float = DEFAULT_ZIPF,
) -> list[dict]:
    """RSS-stream throughput of the sharded runtime vs. shard count.

    The first row is the unsharded MMQJP engine as the baseline; the
    remaining rows sweep shard counts for each executor.  Every
    configuration must (and does — the equivalence tests enforce it) report
    the same number of matches.
    """
    documents = list(generate_rss_stream(RssStreamConfig(num_items=num_items)))
    queries = generate_rss_queries(num_queries, zipf_theta=zipf)

    rows = []
    baseline = run_rss_throughput(queries, documents, APPROACH_MMQJP)
    row = baseline.as_row()
    row["figure"] = "sharded_throughput"
    rows.append(row)

    for executor in executors:
        for shards in shard_counts:
            result = run_sharded_rss_throughput(
                queries,
                documents,
                shards=shards,
                approach=APPROACH_MMQJP,
                partitioner=partitioner,
                executor=executor,
            )
            row = result.as_row()
            row["figure"] = "sharded_throughput"
            rows.append(row)
    return rows


# --------------------------------------------------------------------------- #
# State scaling: incremental indexed join state (beyond the paper)
# --------------------------------------------------------------------------- #
def state_scaling(
    state_sizes: Sequence[int] = (100, 300, 1000),
    num_queries_list: Sequence[int] = (50, 200),
    indexing_modes: Sequence[str] = ("eager", "lazy", "off"),
    num_probe_docs: int = 5,
    max_value_joins: int = 4,
    zipf: float = DEFAULT_ZIPF,
) -> list[dict]:
    """Per-document join throughput vs. retained state size and indexing mode.

    With ``indexing="off"`` (the snapshot-rehashing baseline) the
    per-document cost grows with templates × total state; the eager and
    lazy incremental-index modes keep it proportional to the matching
    witnesses.  Every configuration is checked for exact match-set
    equivalence against the ``off`` baseline; a mismatch raises.
    """
    schema = three_level_schema(branching=4)
    rows = []
    for num_queries in num_queries_list:
        queries = generate_queries(
            QueryWorkloadConfig(
                schema=schema,
                num_queries=num_queries,
                zipf_theta=zipf,
                max_value_joins=max_value_joins,
                window=float("inf"),
                seed=7,
            )
        )
        for num_state_docs in state_sizes:
            data = build_state_scaling_data(
                schema, num_state_docs, num_probe_docs=num_probe_docs
            )
            off_result, baseline_keys = run_state_scaling(queries, data, indexing="off")
            baseline_dps = off_result.extra["docs_per_second"]
            for indexing in indexing_modes:
                if indexing == "off":
                    result, keys = off_result, baseline_keys
                else:
                    result, keys = run_state_scaling(queries, data, indexing=indexing)
                if keys != baseline_keys:
                    raise AssertionError(
                        f"match-set mismatch: indexing={indexing!r} disagrees with "
                        f"'off' at {num_state_docs} state docs / {num_queries} queries"
                    )
                row = result.as_row()
                row["figure"] = "state_scaling"
                if baseline_dps:
                    row["speedup_vs_off"] = round(
                        result.extra["docs_per_second"] / baseline_dps, 2
                    )
                rows.append(row)
    return rows


# --------------------------------------------------------------------------- #
# Plan scaling: compiled plans + relevance-pruned dispatch (beyond the paper)
# --------------------------------------------------------------------------- #
def plan_scaling(
    num_queries_list: Sequence[int] = (250, 1000),
    num_topics_list: Sequence[int] = (4, 10),
    num_state_docs: int = 200,
    num_probe_docs: int = 5,
    json_path: Optional[str] = None,
) -> list[dict]:
    """Per-document join throughput vs. registry size and relevance fraction.

    The workload is topic-sharded (each document is relevant to
    ``1 / num_topics`` of the templates); the four knob combinations of
    ``plan_cache`` × ``prune_dispatch`` are timed, with ``False/False``
    reproducing the pre-compiled-plan (PR-2) behavior as the baseline.
    Every configuration is checked for exact match-set equivalence against
    that baseline; a mismatch raises.  With ``json_path`` the rows are also
    written through :func:`repro.bench.reporting.rows_to_json`.
    """
    from repro.bench.reporting import rows_to_json
    from repro.workloads.querygen import generate_topic_queries
    from repro.workloads.synthetic import build_plan_scaling_data, topic_schemas

    rows = []
    for num_topics in num_topics_list:
        schemas = topic_schemas(num_topics)
        data = build_plan_scaling_data(
            schemas, num_state_docs, num_probe_docs=num_probe_docs
        )
        for num_queries in num_queries_list:
            queries = generate_topic_queries(
                schemas, num_queries, window=float("inf"), seed=7
            )
            registry = register_mmqjp(queries)
            baseline, baseline_keys = run_plan_scaling(
                queries, data, plan_cache=False, prune_dispatch=False,
                registry=registry,
            )
            baseline_dps = baseline.extra["docs_per_second"]
            for plan_cache, prune_dispatch in (
                (False, False), (True, False), (False, True), (True, True)
            ):
                if not plan_cache and not prune_dispatch:
                    result, keys = baseline, baseline_keys
                else:
                    result, keys = run_plan_scaling(
                        queries, data, plan_cache=plan_cache,
                        prune_dispatch=prune_dispatch, registry=registry,
                    )
                if keys != baseline_keys:
                    raise AssertionError(
                        f"match-set mismatch: plan_cache={plan_cache} "
                        f"prune_dispatch={prune_dispatch} disagrees with the "
                        f"baseline at {num_queries} queries / {num_topics} topics"
                    )
                row = result.as_row()
                row["figure"] = "plan_scaling"
                row["relevance_fraction"] = round(1.0 / num_topics, 3)
                if baseline_dps:
                    row["speedup_vs_baseline"] = round(
                        result.extra["docs_per_second"] / baseline_dps, 2
                    )
                rows.append(row)
    if json_path is not None:
        rows_to_json(rows, path=json_path, meta={"experiment": "plan_scaling"})
    return rows


# --------------------------------------------------------------------------- #
# Delta scaling: delta-driven Stage-2 joins (beyond the paper)
# --------------------------------------------------------------------------- #
def delta_scaling(
    state_sizes: Sequence[int] = (100, 400, 1600),
    num_queries: int = 120,
    num_alive_docs: int = 16,
    num_probe_docs: int = 8,
    value_pool: int = 16,
    json_path: Optional[str] = None,
) -> list[dict]:
    """Per-document join throughput vs. state size at a fixed delta size.

    The workload grows the retained state while holding the delta-connected
    slice (alive documents) constant: the dead tail value-matches every
    probe but fails the structural joins.  ``delta_join=False`` (the PR-4
    full-state path) pays per-document cost proportional to the
    value-matching state; ``delta_join=True`` semi-join-reduces the state
    relations outward from the witness delta first, so its cost tracks the
    alive slice.  Every configuration is checked for exact match-set
    equivalence against the ``delta_join=False`` baseline; a mismatch
    raises.  With ``json_path`` the rows are also written through
    :func:`repro.bench.reporting.rows_to_json`.
    """
    import random

    from repro.bench.harness import run_delta_scaling
    from repro.bench.reporting import rows_to_json
    from repro.workloads.querygen import generate_query
    from repro.workloads.synthetic import build_delta_scaling_data
    from repro.xmlmodel.schema import two_level_schema

    schema = two_level_schema(6)
    rng = random.Random(7)
    queries = [
        generate_query(schema, (i % 2) + 1, rng, window=float("inf"))
        for i in range(num_queries)
    ]
    registry = register_mmqjp(queries)

    rows = []
    for num_state_docs in state_sizes:
        data = build_delta_scaling_data(
            schema,
            num_state_docs,
            num_alive_docs=num_alive_docs,
            num_probe_docs=num_probe_docs,
            value_pool=value_pool,
        )
        baseline, baseline_keys = run_delta_scaling(
            queries, data, delta_join=False, registry=registry
        )
        baseline_dps = baseline.extra["docs_per_second"]
        for delta_join in (False, True):
            if delta_join:
                result, keys = run_delta_scaling(
                    queries, data, delta_join=True, registry=registry
                )
                if keys != baseline_keys:
                    raise AssertionError(
                        f"match-set mismatch: delta_join=True disagrees with "
                        f"the full-state baseline at {num_state_docs} state docs"
                    )
            else:
                result = baseline
            row = result.as_row()
            row["figure"] = "delta_scaling"
            if baseline_dps:
                row["speedup_vs_full_state"] = round(
                    result.extra["docs_per_second"] / baseline_dps, 2
                )
            rows.append(row)
    if json_path is not None:
        rows_to_json(rows, path=json_path, meta={"experiment": "delta_scaling"})
    return rows


# --------------------------------------------------------------------------- #
# Ablation studies (DESIGN.md Section 5)
# --------------------------------------------------------------------------- #
def ablation_graph_minor(
    num_queries: int = 2000, max_value_joins: int = 4, zipf: float = DEFAULT_ZIPF
) -> list[dict]:
    """Template sharing with vs. without the graph-minor reduction.

    Without the reduction, templates are isomorphism classes of the full
    join graphs, so far fewer queries share one — more conjunctive queries
    must be evaluated per document.
    """
    schema, queries = _complex_workload(num_queries, max_value_joins, zipf)
    data = build_technical_benchmark_data(schema)
    rows = []
    for use_minor in (True, False):
        registry = TemplateRegistry(use_graph_minor=use_minor)
        for i, query in enumerate(queries):
            registry.add_query(f"q{i}", query)
        processor = MMQJPJoinProcessor(registry, state=data.fresh_state())
        start = time.perf_counter()
        matches = processor.process(data.witness)
        elapsed = (time.perf_counter() - start) * 1000.0
        rows.append(
            {
                "ablation": "graph_minor",
                "graph_minor": use_minor,
                "num_queries": num_queries,
                "num_templates": registry.num_templates,
                "elapsed_ms": round(elapsed, 3),
                "num_matches": len(matches),
            }
        )
    return rows


def ablation_view_cache(
    cache_sizes: Sequence[Optional[int]] = (None, 16, 64, 256, 1024),
    num_queries: int = 500,
    num_items: int = 200,
) -> list[dict]:
    """View-cache size sweep on the RSS stream (``None`` = no caching)."""
    documents = list(generate_rss_stream(RssStreamConfig(num_items=num_items)))
    queries = generate_rss_queries(num_queries)
    rows = []
    for cache_size in cache_sizes:
        result = run_rss_throughput(
            queries, documents, APPROACH_MMQJP_VM, view_cache_size=cache_size
        )
        row = result.as_row()
        row["ablation"] = "view_cache"
        row["cache_size"] = cache_size if cache_size is not None else 0
        rows.append(row)
    return rows


def ablation_witness_representation(
    num_queries_list: Sequence[int] = (10, 100, 1000, 5000),
    num_leaves: int = DEFAULT_NUM_LEAVES,
    zipf: float = DEFAULT_ZIPF,
) -> list[dict]:
    """Witness storage: shared binary edges vs. per-query flat tuples.

    The shared representation stores one row per (variable pair, node pair)
    of the *document*; the flat alternative would store one row per query
    per combination of its variable bindings.  The ratio quantifies why the
    paper's shredded representation is what makes massive sharing possible.
    """
    schema = two_level_schema(num_leaves)
    data = build_technical_benchmark_data(schema)
    shared_rows = len(data.rbin_rows) + len(data.rvar_rows)
    rows = []
    for num_queries in num_queries_list:
        queries = generate_queries(
            QueryWorkloadConfig(schema=schema, num_queries=num_queries, zipf_theta=zipf)
        )
        flat_rows = 0
        for query in queries:
            graph = JoinGraph.from_query(query)
            # One flat tuple per document per query: every bound variable has
            # exactly one binding in the benchmark documents.
            flat_rows += len(graph.nodes)
        rows.append(
            {
                "ablation": "witness_representation",
                "num_queries": num_queries,
                "shared_rows": shared_rows,
                "flat_rows": flat_rows,
                "ratio": round(flat_rows / shared_rows, 2) if shared_rows else 0.0,
            }
        )
    return rows


def ablation_window(
    windows: Sequence[float] = (5.0, 20.0, 80.0, float("inf")),
    num_queries: int = 500,
    num_items: int = 200,
) -> list[dict]:
    """Window length sweep: how state growth affects throughput.

    With finite windows the engine prunes old documents from the join state;
    the infinite window of the paper's Section 6.3 keeps everything.
    """
    documents = list(generate_rss_stream(RssStreamConfig(num_items=num_items)))
    rows = []
    for window in windows:
        queries = generate_rss_queries(num_queries, window=window)
        result = run_rss_throughput(queries, documents, APPROACH_MMQJP)
        row = result.as_row()
        row["ablation"] = "window"
        row["window"] = window
        rows.append(row)
    return rows


# --------------------------------------------------------------------------- #
# run everything
# --------------------------------------------------------------------------- #
ALL_EXPERIMENTS = {
    "table3": table3,
    "fig08": fig08,
    "fig09": fig09,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
    "fig15": fig15,
    "fig16": fig16,
    "sharded_throughput": sharded_throughput,
    "state_scaling": state_scaling,
    "plan_scaling": plan_scaling,
    "delta_scaling": delta_scaling,
    "ablation_graph_minor": ablation_graph_minor,
    "ablation_view_cache": ablation_view_cache,
    "ablation_witness_representation": ablation_witness_representation,
    "ablation_window": ablation_window,
}


def run_all(names: Optional[Sequence[str]] = None) -> dict[str, list[dict]]:
    """Run the requested experiments (all by default) and return their rows."""
    selected = names if names is not None else list(ALL_EXPERIMENTS)
    out: dict[str, list[dict]] = {}
    for name in selected:
        out[name] = ALL_EXPERIMENTS[name]()
    return out
