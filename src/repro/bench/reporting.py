"""Plain-text, CSV and JSON rendering of experiment rows."""

from __future__ import annotations

import csv
import io
import json
from typing import Optional, Sequence


def _columns(rows: Sequence[dict]) -> list[str]:
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    return columns


def format_table(rows: Sequence[dict], title: str = "") -> str:
    """Render rows as an aligned plain-text table (one line per row)."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = _columns(rows)
    cells = [[str(row.get(c, "")) for c in columns] for row in rows]
    widths = [max(len(c), *(len(line[i]) for line in cells)) for i, c in enumerate(columns)]

    def render_line(values: list[str]) -> str:
        return "  ".join(v.ljust(widths[i]) for i, v in enumerate(values)).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(render_line(list(columns)))
    lines.append(render_line(["-" * w for w in widths]))
    lines.extend(render_line(line) for line in cells)
    return "\n".join(lines)


def rows_to_json(
    rows: Sequence[dict],
    path: str | None = None,
    meta: Optional[dict] = None,
) -> str:
    """Render rows as a JSON document; optionally also write it to ``path``.

    The document is ``{"meta": {...}, "rows": [...]}`` — ``meta`` carries
    run-level context (experiment name, scale, commit) so benchmark result
    files like ``BENCH_plan_scaling.json`` are self-describing and the perf
    trajectory can be tracked across PRs.  Non-finite floats are rendered as
    strings (``"inf"``) so the output is strict JSON.
    """

    def _jsonable(value):
        if isinstance(value, float) and (value != value or value in (float("inf"), float("-inf"))):
            return repr(value)
        return value

    document = {
        "meta": dict(meta) if meta else {},
        "rows": [{k: _jsonable(v) for k, v in row.items()} for row in rows],
    }
    text = json.dumps(document, indent=2, sort_keys=False) + "\n"
    if path is not None:
        with open(path, "w") as handle:
            handle.write(text)
    return text


def rows_to_csv(rows: Sequence[dict], path: str | None = None) -> str:
    """Render rows as CSV text; optionally also write them to ``path``."""
    columns = _columns(rows)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=columns, lineterminator="\n")
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    text = buffer.getvalue()
    if path is not None:
        with open(path, "w", newline="") as handle:
            handle.write(text)
    return text
