"""Relational operators over :class:`~repro.relational.relation.Relation`.

All operators are pure functions returning new relations.  Joins are hash
joins; semantics are bag semantics unless stated otherwise (mirroring what a
SQL engine would produce without DISTINCT).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Optional, Sequence

from repro.relational import columnar
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema, SchemaError


def _id_domain(values, dictionary) -> Optional[frozenset]:
    """Translate a value set to an id domain; ``None`` = use the row path.

    Values the dictionary has never interned cannot occur in any synced
    column and are simply dropped; an *unhashable* value defeats interning
    altogether (and could still compare equal to a row value), so the
    caller must fall back to value-space comparison.
    """
    out = set()
    get_id = dictionary.get_id
    for v in values:
        vid = get_id(v)
        if vid is None:
            try:
                hash(v)
            except TypeError:
                return None
            continue
        out.add(vid)
    return frozenset(out)


# --------------------------------------------------------------------------- #
# unary operators
# --------------------------------------------------------------------------- #
def select(relation: Relation, predicate: Callable[[dict[str, object]], bool]) -> Relation:
    """Selection σ: keep rows satisfying ``predicate`` (called on a row dict)."""
    return relation.where(predicate)


def select_eq(relation: Relation, attribute: str, value) -> Relation:
    """Selection with a single equality condition ``attribute = value``."""
    i = relation.schema.index_of(attribute)
    out = Relation(relation.schema, name=relation.name)
    out.rows = [row for row in relation.rows if row[i] == value]
    return out


def project(relation: Relation, attributes: Sequence[str], distinct: bool = False) -> Relation:
    """Projection π onto ``attributes`` (in the given order).

    With ``distinct=True`` duplicate projected rows are removed (set semantics).
    """
    idx = relation.schema.indexes_of(attributes)
    out = Relation(RelationSchema(attributes), name=relation.name)
    if distinct:
        seen: set[tuple] = set()
        for row in relation.rows:
            t = tuple(row[i] for i in idx)
            if t not in seen:
                seen.add(t)
                out.rows.append(t)
    else:
        out.rows = [tuple(row[i] for i in idx) for row in relation.rows]
    return out


def rename(relation: Relation, mapping: dict[str, str], name: str | None = None) -> Relation:
    """Rename attributes according to ``mapping`` (ρ)."""
    out = Relation(relation.schema.rename(mapping), name=name if name is not None else relation.name)
    out.rows = list(relation.rows)
    return out


def distinct(relation: Relation) -> Relation:
    """Duplicate elimination δ."""
    return relation.distinct()


# --------------------------------------------------------------------------- #
# set / bag operators
# --------------------------------------------------------------------------- #
def union(left: Relation, right: Relation, distinct_rows: bool = False) -> Relation:
    """Bag union (``UNION ALL``), or set union with ``distinct_rows=True``."""
    if left.schema != right.schema:
        raise SchemaError(f"union over incompatible schemas {left.schema} vs {right.schema}")
    out = Relation(left.schema, name=left.name)
    out.rows = list(left.rows) + list(right.rows)
    return out.distinct() if distinct_rows else out


def difference(left: Relation, right: Relation) -> Relation:
    """Set difference (rows of ``left`` not present in ``right``)."""
    if left.schema != right.schema:
        raise SchemaError(f"difference over incompatible schemas {left.schema} vs {right.schema}")
    right_rows = set(right.rows)
    out = Relation(left.schema, name=left.name)
    out.rows = [row for row in left.rows if row not in right_rows]
    return out


def intersection(left: Relation, right: Relation) -> Relation:
    """Set intersection."""
    if left.schema != right.schema:
        raise SchemaError(f"intersection over incompatible schemas {left.schema} vs {right.schema}")
    right_rows = set(right.rows)
    out = Relation(left.schema, name=left.name)
    seen: set[tuple] = set()
    for row in left.rows:
        if row in right_rows and row not in seen:
            seen.add(row)
            out.rows.append(row)
    return out


def cartesian(left: Relation, right: Relation, name: str = "") -> Relation:
    """Cartesian product ×.  Attribute names must not collide."""
    schema = left.schema.concat(right.schema)
    out = Relation(schema, name=name)
    out.rows = [l + r for l in left.rows for r in right.rows]
    return out


# --------------------------------------------------------------------------- #
# joins
# --------------------------------------------------------------------------- #
def _build_hash(relation: Relation, key_idx: Sequence[int]) -> dict[tuple, list[tuple]]:
    table: dict[tuple, list[tuple]] = defaultdict(list)
    for row in relation.rows:
        table[tuple(row[i] for i in key_idx)].append(row)
    return table


def equi_join(
    left: Relation,
    right: Relation,
    on: Sequence[tuple[str, str]],
    name: str = "",
) -> Relation:
    """Equi hash join on pairs of attributes ``on = [(left_attr, right_attr), ...]``.

    The result schema is the concatenation of both schemas; right attributes
    that would collide with a left attribute name are suffixed with ``_r``.
    """
    if not on:
        return cartesian(left, right, name=name)
    left_idx = left.schema.indexes_of([a for a, _ in on])
    right_idx = right.schema.indexes_of([b for _, b in on])

    right_attrs = []
    for a in right.schema.attributes:
        right_attrs.append(a + "_r" if a in left.schema else a)
    schema = RelationSchema(left.schema.attributes + tuple(right_attrs))

    # Build the hash table on the smaller input.
    out = Relation(schema, name=name)
    if len(left) <= len(right):
        table = _build_hash(left, left_idx)
        for rrow in right.rows:
            key = tuple(rrow[i] for i in right_idx)
            for lrow in table.get(key, ()):
                out.rows.append(lrow + rrow)
    else:
        table = _build_hash(right, right_idx)
        for lrow in left.rows:
            key = tuple(lrow[i] for i in left_idx)
            for rrow in table.get(key, ()):
                out.rows.append(lrow + rrow)
    return out


def natural_join(left: Relation, right: Relation, name: str = "") -> Relation:
    """Natural join ⋈ on all shared attribute names.

    Shared attributes appear once in the output (taken from the left input).
    """
    shared = [a for a in left.schema.attributes if a in right.schema]
    if not shared:
        return cartesian(left, right, name=name)
    left_idx = left.schema.indexes_of(shared)
    right_idx = right.schema.indexes_of(shared)
    right_rest = [a for a in right.schema.attributes if a not in left.schema]
    right_rest_idx = right.schema.indexes_of(right_rest)

    schema = RelationSchema(left.schema.attributes + tuple(right_rest))
    out = Relation(schema, name=name)
    table = _build_hash(right, right_idx)
    for lrow in left.rows:
        key = tuple(lrow[i] for i in left_idx)
        for rrow in table.get(key, ()):
            out.rows.append(lrow + tuple(rrow[i] for i in right_rest_idx))
    return out


def semijoin_in(
    relation: Relation,
    column: int,
    values,
    extra: Sequence[tuple[int, object]] = (),
    index=None,
    name: str | None = None,
) -> Relation:
    """Restrict ``relation`` to rows whose ``column`` value is in ``values``.

    The delta-reduction primitive of the semi-join pass: ``values`` is a
    (small) set of values reachable from the current document's witness
    relations, and ``extra`` is a sequence of further ``(column, value set)``
    membership constraints applied to every candidate row.

    With ``index`` (a :class:`~repro.relational.index.HashIndex` keyed on
    exactly ``(column,)``), candidate rows are gathered by probing one
    bucket per value, so the cost is proportional to the *matching* rows
    plus ``len(values)`` — never to ``len(relation)``.  Without an index the
    relation is scanned once.  Duplicate rows keep their multiplicity (bag
    semantics), so joining against the reduced relation yields exactly the
    rows the full relation would have contributed.
    """
    out = Relation(relation.schema, name=name if name is not None else relation.name)
    rows = out.rows
    if index is None and columnar.HAVE_NUMPY:
        store = relation.column_store()
        if store is not None:
            constraints = [(column, _id_domain(values, store.dictionary))]
            for c, allowed in extra:
                constraints.append((c, _id_domain(allowed, store.dictionary)))
            if all(dom is not None for _c, dom in constraints):
                if all(dom for _c, dom in constraints):
                    positions = columnar.select_positions(
                        store.columns(), len(store), constraints
                    )
                    base_rows = relation.rows
                    rows.extend(base_rows[i] for i in positions.tolist())
                return out
    if index is not None:
        lookup_key = index.lookup_key
        if extra:
            for value in values:
                for row in lookup_key((value,)):
                    if all(row[c] in allowed for c, allowed in extra):
                        rows.append(row)
        else:
            for value in values:
                rows.extend(lookup_key((value,)))
        return out
    if extra:
        for row in relation.rows:
            if row[column] in values and all(
                row[c] in allowed for c, allowed in extra
            ):
                rows.append(row)
    else:
        for row in relation.rows:
            if row[column] in values:
                rows.append(row)
    return out


def column_value_set(
    relation: Relation,
    column: int,
    const_checks: Sequence[tuple[int, object]] = (),
) -> frozenset:
    """The distinct values of one column, optionally under constant checks.

    Seeds the variable domains of the semi-join reduction pass: for a delta
    (witness) atom, the values its variable can take are exactly the
    column's values over the rows satisfying the atom's constants.
    """
    if columnar.HAVE_NUMPY:
        store = relation.column_store()
        if store is not None:
            constraints = []
            usable = True
            for c, v in const_checks:
                dom = _id_domain((v,), store.dictionary)
                if dom is None:
                    usable = False  # unhashable constant: value-space scan
                    break
                if not dom:
                    return frozenset()  # the constant occurs nowhere
                constraints.append((c, dom))
            if usable:
                cols = store.columns()
                if constraints:
                    positions = columnar.select_positions(
                        cols, len(store), constraints
                    )
                    ids = columnar.distinct_ids(cols[column], positions)
                else:
                    ids = columnar.distinct_ids(cols[column])
                value_of = store.dictionary.value_of
                return frozenset(value_of(i) for i in ids)
    if const_checks:
        return frozenset(
            row[column]
            for row in relation.rows
            if all(row[c] == v for c, v in const_checks)
        )
    return frozenset(row[column] for row in relation.rows)


def semijoin(left: Relation, right: Relation, on: Sequence[tuple[str, str]]) -> Relation:
    """Left semi join ⋉: rows of ``left`` that have at least one match in ``right``."""
    left_idx = left.schema.indexes_of([a for a, _ in on])
    right_idx = right.schema.indexes_of([b for _, b in on])
    keys = {tuple(row[i] for i in right_idx) for row in right.rows}
    out = Relation(left.schema, name=left.name)
    out.rows = [row for row in left.rows if tuple(row[i] for i in left_idx) in keys]
    return out


def antijoin(left: Relation, right: Relation, on: Sequence[tuple[str, str]]) -> Relation:
    """Left anti join ▷: rows of ``left`` with no match in ``right``."""
    left_idx = left.schema.indexes_of([a for a, _ in on])
    right_idx = right.schema.indexes_of([b for _, b in on])
    keys = {tuple(row[i] for i in right_idx) for row in right.rows}
    out = Relation(left.schema, name=left.name)
    out.rows = [row for row in left.rows if tuple(row[i] for i in left_idx) not in keys]
    return out


def group_count(relation: Relation, by: Sequence[str], count_attr: str = "count") -> Relation:
    """Group by ``by`` attributes and count rows per group."""
    idx = relation.schema.indexes_of(by)
    counts: dict[tuple, int] = defaultdict(int)
    for row in relation.rows:
        counts[tuple(row[i] for i in idx)] += 1
    out = Relation(RelationSchema(list(by) + [count_attr]), name=relation.name)
    for key, cnt in counts.items():
        out.rows.append(key + (cnt,))
    return out
