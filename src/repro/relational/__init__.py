"""In-memory relational engine substrate.

The MMQJP Join Processor (paper Section 4) maps multi-query join processing
into a relational framework.  The original system used Microsoft SQL Server
2005 as the back end; this package provides a from-scratch, in-memory
replacement with exactly the pieces the paper needs:

* :class:`~repro.relational.schema.RelationSchema` and
  :class:`~repro.relational.relation.Relation` — named, typed-by-convention
  relations over Python tuples.
* :mod:`~repro.relational.operators` — selection, projection, natural and
  equi hash joins, semi/anti joins, set operations.
* :class:`~repro.relational.index.HashIndex` — live hash indexes on
  attribute subsets, maintained incrementally by their owning relation;
  used by the join pipeline, witness lookup and the view cache.
* :class:`~repro.relational.relation.PartitionedRelation` — a relation
  whose rows are grouped by a partition attribute (``docid`` for the join
  state) so pruning drops whole documents at once.
* :class:`~repro.relational.database.Database` — a tiny catalog of named
  relations (the join state lives here) — and
  :class:`~repro.relational.database.IndexedDatabase`, the index-aware
  evaluation environment of the incremental join pipeline.
* :mod:`~repro.relational.conjunctive` — Datalog-style conjunctive queries
  and their evaluator; the per-template queries ``CQT`` of Section 4.4 are
  instances of :class:`~repro.relational.conjunctive.ConjunctiveQuery`.
* :mod:`~repro.relational.plan` — compiled query plans: a
  :class:`~repro.relational.plan.CompiledPlan` freezes the greedy join
  order and all per-step join metadata so repeated evaluations (the MMQJP
  hot loop) are pure probe loops; :class:`~repro.relational.plan.PlanCache`
  re-optimizes a plan only when the stable relations' statistics drift.
* :mod:`~repro.relational.sql` — renders conjunctive queries as SQL text,
  mirroring the paper's "XSCL translator" that emitted SQL Server queries.
"""

from repro.relational.schema import RelationSchema, SchemaError
from repro.relational.relation import Relation, PartitionedRelation
from repro.relational.index import HashIndex
from repro.relational.database import Database, IndexedDatabase, INDEXING_MODES
from repro.relational.terms import Var, Const, term
from repro.relational.conjunctive import Atom, ConjunctiveQuery, evaluate_conjunctive
from repro.relational.plan import CompiledPlan, PlanCache, compile_plan
from repro.relational import operators
from repro.relational.sql import render_sql

__all__ = [
    "RelationSchema",
    "SchemaError",
    "Relation",
    "PartitionedRelation",
    "HashIndex",
    "Database",
    "IndexedDatabase",
    "INDEXING_MODES",
    "Var",
    "Const",
    "term",
    "Atom",
    "ConjunctiveQuery",
    "evaluate_conjunctive",
    "CompiledPlan",
    "PlanCache",
    "compile_plan",
    "operators",
    "render_sql",
]
