"""Conjunctive (Datalog-style) queries and their evaluator.

The paper expresses the per-template multi-query join ``CQT`` (Section 4.4)
as a Datalog rule over the witness relations and the template relation
``RT``.  This module provides:

* :class:`Atom` — a positional atom ``R(t1, ..., tn)`` whose terms are
  :class:`~repro.relational.terms.Var` or
  :class:`~repro.relational.terms.Const`.
* :class:`ConjunctiveQuery` — a head atom plus a body (a list of atoms).
* :func:`evaluate_conjunctive` — a hash-join based evaluator with a simple
  size-driven greedy join order (or the caller-provided order).
* :class:`DeltaProgram` / :class:`DeltaContext` — the delta-driven
  (semi-join reduction) evaluation pass: before the main join runs, every
  *stable* (state/``RT``) atom's relation is restricted to the rows
  reachable from the current document's witness relations via the query's
  join keys, so join cost is proportional to the delta-connected state
  rather than the total state.

The evaluator treats repeated variables within and across atoms as equality
constraints, exactly like Datalog.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

from repro.relational import columnar
from repro.relational.operators import column_value_set, semijoin_in
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema, SchemaError
from repro.relational.terms import Const, Var, term


@dataclass(frozen=True)
class Atom:
    """A positional atom ``relation(term_1, ..., term_n)``.

    ``terms`` correspond positionally to the relation's schema attributes.
    """

    relation: str
    terms: tuple

    def __init__(self, relation: str, terms: Sequence):
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "terms", tuple(term(t) for t in terms))

    @property
    def variables(self) -> list[Var]:
        """The variables occurring in this atom (with repetitions)."""
        return [t for t in self.terms if isinstance(t, Var)]

    def __repr__(self) -> str:
        inner = ", ".join(repr(t) for t in self.terms)
        return f"{self.relation}({inner})"


@dataclass
class ConjunctiveQuery:
    """A conjunctive query ``head :- body``.

    ``head_schema`` names the output attributes; ``head_terms`` say what to
    put in each output column (a body variable or a constant).
    """

    head_name: str
    head_schema: Sequence[str]
    head_terms: Sequence
    body: list[Atom] = field(default_factory=list)
    distinct: bool = True

    def __post_init__(self) -> None:
        self.head_schema = tuple(self.head_schema)
        self.head_terms = tuple(term(t) for t in self.head_terms)
        if len(self.head_schema) != len(self.head_terms):
            raise SchemaError("head schema and head terms must have the same arity")

    def add_atom(self, relation: str, terms: Sequence) -> Atom:
        """Append an atom to the body and return it."""
        atom = Atom(relation, terms)
        self.body.append(atom)
        return atom

    @property
    def variables(self) -> set[str]:
        """Names of all variables used in the body."""
        out: set[str] = set()
        for atom in self.body:
            out.update(v.name for v in atom.variables)
        return out

    def __repr__(self) -> str:
        head = f"{self.head_name}({', '.join(self.head_schema)})"
        body = ", ".join(repr(a) for a in self.body)
        return f"{head} :- {body}"


# --------------------------------------------------------------------------- #
# evaluation
# --------------------------------------------------------------------------- #
def _atom_matches(atom: Atom, relation: Relation) -> None:
    if len(atom.terms) != len(relation.schema):
        raise SchemaError(
            f"atom {atom!r} has arity {len(atom.terms)} but relation "
            f"{relation.name or atom.relation!r} has arity {len(relation.schema)}"
        )


def _estimate_fanout(atom: Atom, relation: Relation, bound: set[str]) -> float:
    """Estimate how many rows of ``relation`` match one partial solution.

    The estimate is ``|R| / prod(ndv(column))`` over the columns that are
    already constrained (by a constant or an already-bound variable) —  the
    textbook independence/uniformity assumption.  It only needs per-column
    distinct counts, so the join order can be chosen before any evaluation.
    """
    rows = len(relation)
    if rows == 0:
        return 0.0
    denominator = 1.0
    for column, term in enumerate(atom.terms):
        constrained = isinstance(term, Const) or (
            isinstance(term, Var) and term.name in bound
        )
        if constrained:
            denominator *= max(1, relation.distinct_count(column))
    return rows / denominator


def _choose_order(
    body: Sequence[Atom], relations: Mapping[str, Relation]
) -> list[Atom]:
    """Greedy join order by minimum estimated fan-out.

    At each step the atom expected to multiply the intermediate result the
    least is chosen (ties broken by relation size, then body position).
    This keeps the per-template conjunctive queries from exploding on
    workloads where the value join alone is unselective: the template
    relation ``RT`` is pulled in as soon as enough of its columns are bound
    to make it selective, which then constrains the remaining witness atoms.
    """
    remaining = list(body)
    if not remaining:
        return []
    ordered: list[Atom] = []
    bound: set[str] = set()

    while remaining:
        def cost(atom: Atom) -> tuple:
            relation = relations[atom.relation]
            return (
                _estimate_fanout(atom, relation, bound),
                len(relation),
                body.index(atom),
            )

        nxt = min(remaining, key=cost)
        ordered.append(nxt)
        remaining.remove(nxt)
        bound.update(v.name for v in nxt.variables)
    return ordered


def _analyze_atom(
    atom: Atom, var_pos: Mapping[str, int]
) -> tuple[
    list[tuple[int, object]],
    list[tuple[int, int]],
    list[tuple[int, str]],
    list[tuple[int, int]],
]:
    """Classify an atom's columns against the already-bound variables.

    Returns ``(const_checks, join_cols, new_vars, within_atom_eq)`` where
    ``const_checks`` pairs a column with its required constant, ``join_cols``
    pairs a column with the solution position of its (bound) variable,
    ``new_vars`` pairs a column with the fresh variable it binds, and
    ``within_atom_eq`` records equal-column constraints for repeated fresh
    variables.  Shared by the per-call evaluator below and the plan compiler
    (:mod:`repro.relational.plan`), which precomputes this once per query.
    """
    const_checks: list[tuple[int, object]] = []
    join_cols: list[tuple[int, int]] = []      # (column in row, position in solution)
    new_vars: list[tuple[int, str]] = []       # (column in row, new variable name)
    within_atom_eq: list[tuple[int, int]] = [] # equal columns for repeated new vars
    seen_new: dict[str, int] = {}

    for col, t in enumerate(atom.terms):
        if isinstance(t, Const):
            const_checks.append((col, t.value))
        else:
            name = t.name
            if name in var_pos:
                join_cols.append((col, var_pos[name]))
            elif name in seen_new:
                within_atom_eq.append((col, seen_new[name]))
            else:
                seen_new[name] = col
                new_vars.append((col, name))
    return const_checks, join_cols, new_vars, within_atom_eq


# --------------------------------------------------------------------------- #
# delta-driven evaluation: semi-join reduction outward from the witness delta
# --------------------------------------------------------------------------- #
class DeltaContext:
    """Per-document memoization and statistics for delta-driven evaluation.

    One context is created per published document (by the processors) and
    shared across every template/query evaluated for that document.  The
    reductions computed by the semi-join pass are keyed on the *identity* of
    the source relation and of the value-domain sets involved, so templates
    whose bodies chain through the same witness relations reuse each other's
    reductions — the per-document reduction cost is paid once per distinct
    reduction, not once per template.

    Counters: ``reductions_computed`` / ``reductions_reused`` count distinct
    and memo-served reductions, ``rows_scanned`` counts state rows (plus
    index probes) examined while reducing, and ``rows_kept`` counts the rows
    that survived — the delta-connected state the main joins then run over.
    """

    __slots__ = (
        "_values",
        "_reductions",
        "_meets",
        "_domain_arrays",
        "_pins",
        "reductions_computed",
        "reductions_reused",
        "rows_scanned",
        "rows_kept",
    )

    def __init__(self) -> None:
        self._values: dict[tuple, frozenset] = {}
        self._reductions: dict[tuple, Relation] = {}
        self._meets: dict[tuple, frozenset] = {}
        self._domain_arrays: dict[int, object] = {}
        # Memo keys use id(); pinning the keyed objects guarantees a
        # recycled id can never alias a collected relation or domain set.
        self._pins: list = []
        self.reductions_computed = 0
        self.reductions_reused = 0
        self.rows_scanned = 0
        self.rows_kept = 0

    # ------------------------------------------------------------------ #
    # domains
    # ------------------------------------------------------------------ #
    def column_values(
        self,
        relation: Relation,
        column: int,
        const_checks: tuple = (),
        dictionary=None,
    ) -> frozenset:
        """Memoized distinct values of one column (under constant checks).

        With ``dictionary`` (columnar mode) the domain is a frozenset of
        interned *ids* instead of raw values; id-space and value-space
        entries are memoized under distinct keys, so a program that falls
        back to the row path never observes an id-space domain (and vice
        versa).
        """
        try:
            key = (dictionary is not None, id(relation), column, const_checks)
            cached = self._values.get(key)
        except TypeError:  # unhashable constant: compute without memoizing
            if dictionary is not None:
                return self._column_ids(relation, column, const_checks, dictionary)
            return column_value_set(relation, column, const_checks)
        if cached is None:
            if dictionary is not None:
                cached = self._column_ids(relation, column, const_checks, dictionary)
            else:
                cached = column_value_set(relation, column, const_checks)
            self._values[key] = cached
            self._pins.append(relation)
        return cached

    def _column_ids(
        self, relation: Relation, column: int, const_checks: tuple, dictionary
    ) -> frozenset:
        """Distinct interned ids of one column (columnar mode)."""
        store = relation.column_store()
        if store is not None:
            constraints = []
            for col, value in const_checks:
                vid = dictionary.get_id(value)
                if vid is None:
                    return frozenset()  # the constant never occurs anywhere
                constraints.append((col, frozenset((vid,))))
            cols = store.columns()
            if constraints:
                positions = columnar.select_positions(
                    cols, len(store), constraints, self._domain_arrays
                )
                return columnar.distinct_ids(cols[column], positions)
            return columnar.distinct_ids(cols[column])
        # Defensive row fallback (a sidecar vanished mid-run): still id-space.
        id_of = dictionary.id_of
        return frozenset(
            id_of(v) for v in column_value_set(relation, column, const_checks)
        )

    def _domain_arr(self, domain: frozenset):
        """Memoized sorted-array form of an id domain (numpy mode only)."""
        if not columnar.HAVE_NUMPY or len(domain) <= 1:
            return None
        arr = self._domain_arrays.get(id(domain))
        if arr is None:
            arr = columnar.domain_array(domain)
            self._domain_arrays[id(domain)] = arr
            self._pins.append(domain)
        return arr

    def meet(self, a: Optional[frozenset], b: Optional[frozenset]) -> Optional[frozenset]:
        """Intersection of two domains, preserving object identity when possible.

        Identity preservation matters: reduction memo keys are built from
        domain-set identities, so returning the original object whenever the
        intersection changes nothing keeps equal reductions shareable across
        templates.
        """
        if a is None:
            return b
        if b is None or a is b:
            return a
        key = (id(a), id(b))
        cached = self._meets.get(key)
        if cached is None:
            cached = a & b
            if cached == a:
                cached = a
            elif cached == b:
                cached = b
            self._meets[key] = cached
            self._pins.append((a, b))
        return cached

    # ------------------------------------------------------------------ #
    # reductions
    # ------------------------------------------------------------------ #
    def reduce(
        self,
        name: str,
        base: Relation,
        const_checks: tuple,
        constraints: tuple,
        index_for=None,
        dictionary=None,
    ) -> Optional[Relation]:
        """Restrict ``base`` to the rows satisfying every constraint.

        ``constraints`` is a tuple of ``(column, domain frozenset)``
        membership constraints; ``const_checks`` contributes singleton
        domains.  Returns ``None`` when there is nothing to restrict by.
        The probe runs over the most selective column — through a
        persistent single-column index when ``index_for`` provides one —
        so the cost is proportional to the matching rows, not ``|base|``.

        With ``dictionary`` (columnar mode) the domains are id-space and
        the restriction runs as batch mask/selection kernels over the
        base's packed id columns; the output relation carries a derived
        columnar sidecar so later passes (and the plan executor) stay in
        id space without re-interning.
        """
        if not const_checks and not constraints:
            return None
        try:
            sig = (
                dictionary is not None,
                id(base),
                const_checks,
                tuple((c, id(d)) for c, d in constraints),
            )
            cached = self._reductions.get(sig)
        except TypeError:  # unhashable constant: compute without memoizing
            sig, cached = None, None
        if cached is not None:
            self.reductions_reused += 1
            return cached

        if dictionary is not None:
            out = self._reduce_columnar(name, base, const_checks, constraints, dictionary)
        else:
            out = self._reduce_rows(name, base, const_checks, constraints, index_for)
        if out is None:
            return None
        if sig is not None:
            self._reductions[sig] = out
            self._pins.append(base)
            self._pins.extend(d for _c, d in constraints)
        return out

    def _reduce_rows(
        self, name: str, base: Relation, const_checks: tuple, constraints: tuple, index_for
    ) -> Optional[Relation]:
        """The row-path restriction (PR-5 behavior, columnar off)."""
        try:
            candidates = [(col, frozenset((value,))) for col, value in const_checks]
        except TypeError:
            # An unhashable constant cannot participate in set-membership
            # semi-joins; leave the atom unreduced (the main join still
            # applies the constant check by equality).
            return None
        candidates.extend(constraints)
        candidates.sort(key=lambda cv: len(cv[1]))
        probe_col, probe_dom = candidates[0]
        extra = tuple(candidates[1:])
        index = None
        if index_for is not None and len(probe_dom) < max(8, len(base)):
            index = index_for(name, (probe_col,))
        out = semijoin_in(base, probe_col, probe_dom, extra=extra, index=index, name=name)
        self.reductions_computed += 1
        if index is not None:
            self.rows_scanned += len(out) + len(probe_dom)
        else:
            self.rows_scanned += len(base)
        self.rows_kept += len(out)
        return out

    def _reduce_columnar(
        self, name: str, base: Relation, const_checks: tuple, constraints: tuple, dictionary
    ) -> Relation:
        """Batch restriction over packed id columns (columnar mode)."""
        out = Relation(base.schema, name=name)
        id_constraints: Optional[list] = []
        for col, value in const_checks:
            vid = dictionary.get_id(value)
            if vid is None:
                id_constraints = None  # constant unseen anywhere: empty result
                break
            id_constraints.append((col, frozenset((vid,))))
        self.reductions_computed += 1
        if id_constraints is None:
            self.rows_scanned += len(base)
            return out
        for _col, dom in constraints:
            self._domain_arr(dom)  # pre-register the sorted-array forms
        id_constraints.extend(constraints)
        store = base.column_store()
        if store is not None:
            cols = store.columns()
            n = len(store)
            positions = None
            np_mod = columnar._np
            if np_mod is not None and id_constraints:
                # Indexed probe over the most selective domain (the same
                # strategy the row path uses through HashIndex): cost is
                # proportional to the matching rows, not |base|.
                probe_col, probe_dom = min(
                    id_constraints, key=lambda cv: len(cv[1])
                )
                if not probe_dom:
                    positions = np_mod.empty(0, dtype=np_mod.int64)
                elif len(probe_dom) < max(8, n >> 3):
                    arr = self._domain_arr(probe_dom)
                    if arr is None:
                        arr = columnar.domain_array(probe_dom)
                    hit = store.probe((probe_col,), [arr])
                    if hit is not None:
                        row_pos = hit[1]
                        rest = list(id_constraints)
                        rest.remove((probe_col, probe_dom))
                        if len(row_pos) and rest:
                            mask = None
                            for c, dom in rest:
                                vals = cols[c][row_pos]
                                if len(dom) == 1:
                                    m = vals == next(iter(dom))
                                else:
                                    d_arr = self._domain_arr(dom)
                                    if d_arr is None:
                                        d_arr = columnar.domain_array(dom)
                                    m = np_mod.isin(vals, d_arr)
                                mask = m if mask is None else (mask & m)
                            row_pos = row_pos[mask]
                        positions = np_mod.sort(row_pos)
                        self.rows_scanned += len(positions) + len(probe_dom)
            if positions is None:
                positions = columnar.select_positions(
                    cols, n, id_constraints, self._domain_arrays
                )
                self.rows_scanned += n
            pos_list = positions.tolist() if hasattr(positions, "tolist") else positions
            base_rows = base.rows
            out.rows = [base_rows[i] for i in pos_list]
            if columnar.HAVE_NUMPY:
                derived = [c[positions] for c in cols]
            else:
                derived = [
                    columnar.array("q", (c[i] for i in pos_list)) for c in cols
                ]
            out._attach_store(
                columnar.ColumnStore.from_columns(derived, dictionary, out._stamp())
            )
        else:
            # Defensive row fallback (sidecar vanished mid-run): id-space
            # membership via the dictionary, row at a time.
            get_id = dictionary.get_id
            rows = []
            for row in base.rows:
                for col, dom in id_constraints:
                    rid = get_id(row[col])
                    if rid is None or rid not in dom:
                        break
                else:
                    rows.append(row)
            out.rows = rows
            self.rows_scanned += len(base)
        self.rows_kept += len(out.rows)
        return out

    def stats(self) -> dict[str, int]:
        """The reduction counters as a dict (folded into processor stats)."""
        return {
            "reductions_computed": self.reductions_computed,
            "reductions_reused": self.reductions_reused,
            "rows_scanned": self.rows_scanned,
            "rows_kept": self.rows_kept,
        }


class _DeltaAtom:
    """Reduction metadata of one body atom (frozen at program build time)."""

    __slots__ = ("position", "name", "stable", "const_checks", "var_cols")

    def __init__(self, position: int, atom: Atom, stable: bool):
        self.position = position
        self.name = atom.relation
        self.stable = stable
        consts: list[tuple[int, object]] = []
        var_cols: list[tuple[int, str]] = []
        for col, t in enumerate(atom.terms):
            if isinstance(t, Const):
                consts.append((col, t.value))
            else:
                var_cols.append((col, t.name))
        self.const_checks = tuple(consts)
        self.var_cols = tuple(var_cols)


class DeltaProgram:
    """A frozen semi-join reduction program for one conjunctive-query body.

    Built once per query (by :func:`build_delta_program`, or by the plan
    compiler) and executed once per document per query through
    :meth:`reduce`: variable domains are seeded from the delta (ephemeral
    witness) atoms, then every stable atom is restricted to the rows whose
    join-key values fall inside those domains — most selective atom first,
    with two propagation passes so a reduction discovered late (e.g. the
    structural ``Rbin`` rows surviving the template's variable names)
    tightens the atoms reduced before it (e.g. ``Rdoc``'s value-matched
    rows shrink to the structurally alive documents).
    """

    __slots__ = ("num_atoms", "_delta", "_stable")

    def __init__(self, atoms: Sequence[_DeltaAtom]):
        self.num_atoms = len(atoms)
        self._delta = tuple(a for a in atoms if not a.stable)
        self._stable = tuple(a for a in atoms if a.stable)

    @property
    def reducible(self) -> bool:
        """Whether there is both a delta side and a stable side to reduce."""
        return bool(self._delta) and bool(self._stable)

    @staticmethod
    def _estimate(atom: _DeltaAtom, base: Relation, domains: Mapping[str, frozenset]):
        """Estimated reduced cardinality (``None`` when unconstrained)."""
        est = float(len(base))
        constrained = False
        for col, _value in atom.const_checks:
            constrained = True
            est /= max(1, base.distinct_count(col))
        for col, var in atom.var_cols:
            dom = domains.get(var)
            if dom is None:
                continue
            constrained = True
            est *= min(1.0, len(dom) / max(1, base.distinct_count(col)))
        return est if constrained else None

    def reduce(
        self, relations: Mapping[str, Relation], ctx: DeltaContext
    ) -> Optional[list[Optional[Relation]]]:
        """Reduced relations by body position (``None`` entries = unreduced)."""
        if not self.reducible:
            return None
        lookup = relations.get if hasattr(relations, "get") else relations.__getitem__
        index_for = getattr(relations, "index_for", None)

        delta_rels: list[tuple[_DeltaAtom, Relation]] = []
        for atom in self._delta:
            relation = lookup(atom.name)
            if relation is None:
                return None  # the evaluator raises the proper error
            delta_rels.append((atom, relation))

        originals: dict[int, Relation] = {}
        for atom in self._stable:
            relation = lookup(atom.name)
            if relation is None:
                return None
            originals[atom.position] = relation

        # Columnar (id-space) mode is all-or-nothing per run: every atom's
        # relation must expose a live sidecar over the environment's shared
        # dictionary, otherwise the whole pass runs in value space.  Mixing
        # would compare ids against raw values and silently drop rows.
        dictionary = getattr(relations, "columnar_dictionary", None)
        if dictionary is not None:
            all_stored = all(
                rel.column_store() is not None for _a, rel in delta_rels
            ) and all(rel.column_store() is not None for rel in originals.values())
            if not all_stored:
                dictionary = None
        if dictionary is not None:
            index_for = None  # id-space probes never touch the hash indexes

        domains: dict[str, Optional[frozenset]] = {}
        for atom, relation in delta_rels:
            for col, var in atom.var_cols:
                domains[var] = ctx.meet(
                    domains.get(var),
                    ctx.column_values(
                        relation, col, atom.const_checks, dictionary=dictionary
                    ),
                )

        reduced: dict[int, Relation] = {}
        sigs: dict[int, tuple] = {}
        for _pass in range(2):
            remaining = list(self._stable)
            while remaining:
                best = None
                best_est = None
                for atom in remaining:
                    base = reduced.get(atom.position, originals[atom.position])
                    est = self._estimate(atom, base, domains)
                    if est is not None and (best_est is None or est < best_est):
                        best, best_est = atom, est
                if best is None:
                    break  # every remaining atom is unconstrained (this pass)
                remaining.remove(best)
                pos = best.position
                base = reduced.get(pos, originals[pos])
                constraints = tuple(
                    (col, domains[var])
                    for col, var in best.var_cols
                    if domains.get(var) is not None
                )
                sig = tuple((c, id(d)) for c, d in constraints)
                if sigs.get(pos) == sig:
                    continue  # nothing tightened since this atom's last reduction
                sigs[pos] = sig
                out = ctx.reduce(
                    best.name,
                    base,
                    best.const_checks,
                    constraints,
                    index_for if pos not in reduced else None,
                    dictionary=dictionary,
                )
                if out is None:
                    continue
                reduced[pos] = out
                for col, var in best.var_cols:
                    domains[var] = ctx.meet(
                        domains.get(var),
                        ctx.column_values(out, col, dictionary=dictionary),
                    )
        if not reduced:
            return None
        return [reduced.get(i) for i in range(self.num_atoms)]


def build_delta_program(
    body: Sequence[Atom], relations: Mapping[str, Relation]
) -> Optional[DeltaProgram]:
    """Build the semi-join reduction program of ``body``, or ``None``.

    Requires an evaluation environment that distinguishes stable (state /
    ``RT``) bindings from ephemeral per-document ones via ``is_stable``
    (:class:`~repro.relational.database.IndexedDatabase`); a plain mapping
    has no delta to reduce against.
    """
    is_stable = getattr(relations, "is_stable", None)
    if is_stable is None:
        return None
    program = DeltaProgram(
        [
            _DeltaAtom(position, atom, bool(is_stable(atom.relation)))
            for position, atom in enumerate(body)
        ]
    )
    return program if program.reducible else None


def _join_atom(
    solutions: list[tuple],
    var_order: list[str],
    atom: Atom,
    relation: Relation,
    index_for=None,
) -> tuple[list[tuple], list[str]]:
    """Join the current solution set with one atom (hash join).

    ``index_for(relation_name, key_columns)`` — when provided, e.g. by an
    :class:`~repro.relational.database.IndexedDatabase` — may return a
    persistent, incrementally maintained hash index on the atom's key
    columns (join columns plus constant columns).  With an index, each
    partial solution probes the prebuilt buckets directly, so per-call work
    scales with the *matching* rows; without one, the relation is hashed
    per call (ad-hoc relations such as the current document's witnesses).
    """
    var_pos = {v: i for i, v in enumerate(var_order)}
    const_checks, join_cols, new_vars, within_atom_eq = _analyze_atom(atom, var_pos)

    new_var_order = var_order + [name for _, name in new_vars]
    new_solutions: list[tuple] = []
    new_var_cols = tuple(c for c, _ in new_vars)

    # Persistent-index path: probe a live index keyed on the join columns
    # followed by the constant columns; only the within-atom equality of
    # repeated fresh variables still needs a per-row check.
    key_cols = tuple(c for c, _ in join_cols) + tuple(c for c, _ in const_checks)
    index = index_for(atom.relation, key_cols) if (index_for and key_cols) else None
    if index is not None:
        const_suffix = tuple(v for _, v in const_checks)
        if not var_order and not join_cols:
            # First atom: one lookup on the constant key serves every base.
            rows = index.lookup_key(const_suffix)
            if within_atom_eq:
                rows = [r for r in rows if all(r[c] == r[c2] for c, c2 in within_atom_eq)]
            base = solutions if solutions else [()]
            for sol in base:
                for row in rows:
                    new_solutions.append(sol + tuple(row[c] for c in new_var_cols))
            return new_solutions, new_var_order
        for sol in solutions:
            key = tuple(sol[pos] for _, pos in join_cols) + const_suffix
            for row in index.lookup_key(key):
                if within_atom_eq and not all(
                    row[c] == row[c2] for c, c2 in within_atom_eq
                ):
                    continue
                new_solutions.append(sol + tuple(row[c] for c in new_var_cols))
        return new_solutions, new_var_order

    # Ad-hoc path: hash the relation rows by the join-key columns.
    buckets: dict[tuple, list[tuple]] = {}
    for row in relation.rows:
        ok = all(row[c] == v for c, v in const_checks)
        if ok:
            ok = all(row[c] == row[c2] for c, c2 in within_atom_eq)
        if not ok:
            continue
        key = tuple(row[c] for c, _ in join_cols)
        buckets.setdefault(key, []).append(row)

    if not var_order and not join_cols:
        # First atom (or a cartesian step against an empty binding set).
        base = solutions if solutions else [()]
        for sol in base:
            for rows in buckets.values():
                for row in rows:
                    new_solutions.append(sol + tuple(row[c] for c in new_var_cols))
        return new_solutions, new_var_order

    for sol in solutions:
        key = tuple(sol[pos] for _, pos in join_cols)
        for row in buckets.get(key, ()):
            new_solutions.append(sol + tuple(row[c] for c in new_var_cols))
    return new_solutions, new_var_order


def evaluate_conjunctive(
    query: ConjunctiveQuery,
    relations: Mapping[str, Relation],
    order: str | Sequence[Atom] = "greedy",
    delta: Optional[DeltaContext] = None,
) -> Relation:
    """Evaluate ``query`` against ``relations`` and return the head relation.

    Parameters
    ----------
    query:
        The conjunctive query to evaluate.
    relations:
        A mapping (or :class:`~repro.relational.database.Database`) from
        relation name to :class:`Relation`.
    order:
        ``"greedy"`` (default) for the built-in size-driven greedy join
        order, ``"given"`` to join atoms in the order they appear in the
        body, or an explicit sequence of the body's atoms.
    delta:
        A :class:`DeltaContext` enables delta-driven evaluation: the stable
        (state/``RT``) atoms' relations are first semi-join-reduced to the
        rows reachable from the ephemeral (witness) atoms, and the main
        join probes those reduced relations.  The result set is identical
        — reduction only removes rows that cannot participate in any
        solution — which the equivalence tests assert.

    When ``relations`` is an
    :class:`~repro.relational.database.IndexedDatabase`, atoms over its
    indexed relations are joined by probing persistent hash indexes instead
    of rehashing the relation per call.
    """
    lookup = relations.get if hasattr(relations, "get") else relations.__getitem__
    index_for = getattr(relations, "index_for", None)

    def rel_of(atom: Atom) -> Relation:
        rel = lookup(atom.relation)
        if rel is None:
            raise SchemaError(f"unknown relation {atom.relation!r} in conjunctive query")
        _atom_matches(atom, rel)
        return rel

    rel_map = {atom.relation: rel_of(atom) for atom in query.body}

    atom_overrides: dict[int, Relation] = {}
    if delta is not None:
        program = build_delta_program(query.body, relations)
        if program is not None:
            reduced = program.reduce(relations, delta)
            if reduced:
                atom_overrides = {
                    id(atom): rel
                    for atom, rel in zip(query.body, reduced)
                    if rel is not None
                }

    # The greedy order should see the statistics the join will actually
    # run over: substitute each name's smallest reduced relation.
    order_map = rel_map
    if atom_overrides:
        order_map = dict(rel_map)
        for atom in query.body:
            override = atom_overrides.get(id(atom))
            if override is not None and len(override) < len(order_map[atom.relation]):
                order_map[atom.relation] = override

    if isinstance(order, str):
        if order == "greedy":
            ordered = _choose_order(query.body, order_map)
        elif order == "given":
            ordered = list(query.body)
        else:
            raise ValueError(f"unknown join order strategy {order!r}")
    else:
        ordered = list(order)
        if sorted(map(id, ordered)) != sorted(map(id, query.body)):
            raise ValueError("explicit order must be a permutation of the query body")

    solutions: list[tuple] = []
    var_order: list[str] = []
    for atom in ordered:
        override = atom_overrides.get(id(atom))
        relation = override if override is not None else rel_map[atom.relation]
        solutions, var_order = _join_atom(
            solutions,
            var_order,
            atom,
            relation,
            None if override is not None else index_for,
        )
        if not solutions:
            break

    # Project the head.
    var_pos = {v: i for i, v in enumerate(var_order)}
    out = Relation(RelationSchema(query.head_schema), name=query.head_name)
    if not ordered:
        # Empty body: the head is a single row of constants (if all terms are consts).
        if all(isinstance(t, Const) for t in query.head_terms):
            out.rows.append(tuple(t.value for t in query.head_terms))
        return out
    if not solutions:
        # Some atom had no matching rows; the result is empty regardless of
        # which head variables happened to be bound before the evaluation
        # short-circuited.
        return out

    head_cols: list = []
    for t in query.head_terms:
        if isinstance(t, Const):
            head_cols.append(("const", t.value))
        else:
            if t.name not in var_pos:
                raise SchemaError(f"head variable {t.name!r} is not bound by the body")
            head_cols.append(("var", var_pos[t.name]))

    seen: set[tuple] = set()
    for sol in solutions:
        row = tuple(v if kind == "const" else sol[v] for kind, v in head_cols)
        if query.distinct:
            if row in seen:
                continue
            seen.add(row)
        out.rows.append(row)
    return out
