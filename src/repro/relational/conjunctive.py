"""Conjunctive (Datalog-style) queries and their evaluator.

The paper expresses the per-template multi-query join ``CQT`` (Section 4.4)
as a Datalog rule over the witness relations and the template relation
``RT``.  This module provides:

* :class:`Atom` — a positional atom ``R(t1, ..., tn)`` whose terms are
  :class:`~repro.relational.terms.Var` or
  :class:`~repro.relational.terms.Const`.
* :class:`ConjunctiveQuery` — a head atom plus a body (a list of atoms).
* :func:`evaluate_conjunctive` — a hash-join based evaluator with a simple
  size-driven greedy join order (or the caller-provided order).

The evaluator treats repeated variables within and across atoms as equality
constraints, exactly like Datalog.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema, SchemaError
from repro.relational.terms import Const, Var, term


@dataclass(frozen=True)
class Atom:
    """A positional atom ``relation(term_1, ..., term_n)``.

    ``terms`` correspond positionally to the relation's schema attributes.
    """

    relation: str
    terms: tuple

    def __init__(self, relation: str, terms: Sequence):
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "terms", tuple(term(t) for t in terms))

    @property
    def variables(self) -> list[Var]:
        """The variables occurring in this atom (with repetitions)."""
        return [t for t in self.terms if isinstance(t, Var)]

    def __repr__(self) -> str:
        inner = ", ".join(repr(t) for t in self.terms)
        return f"{self.relation}({inner})"


@dataclass
class ConjunctiveQuery:
    """A conjunctive query ``head :- body``.

    ``head_schema`` names the output attributes; ``head_terms`` say what to
    put in each output column (a body variable or a constant).
    """

    head_name: str
    head_schema: Sequence[str]
    head_terms: Sequence
    body: list[Atom] = field(default_factory=list)
    distinct: bool = True

    def __post_init__(self) -> None:
        self.head_schema = tuple(self.head_schema)
        self.head_terms = tuple(term(t) for t in self.head_terms)
        if len(self.head_schema) != len(self.head_terms):
            raise SchemaError("head schema and head terms must have the same arity")

    def add_atom(self, relation: str, terms: Sequence) -> Atom:
        """Append an atom to the body and return it."""
        atom = Atom(relation, terms)
        self.body.append(atom)
        return atom

    @property
    def variables(self) -> set[str]:
        """Names of all variables used in the body."""
        out: set[str] = set()
        for atom in self.body:
            out.update(v.name for v in atom.variables)
        return out

    def __repr__(self) -> str:
        head = f"{self.head_name}({', '.join(self.head_schema)})"
        body = ", ".join(repr(a) for a in self.body)
        return f"{head} :- {body}"


# --------------------------------------------------------------------------- #
# evaluation
# --------------------------------------------------------------------------- #
def _atom_matches(atom: Atom, relation: Relation) -> None:
    if len(atom.terms) != len(relation.schema):
        raise SchemaError(
            f"atom {atom!r} has arity {len(atom.terms)} but relation "
            f"{relation.name or atom.relation!r} has arity {len(relation.schema)}"
        )


def _estimate_fanout(atom: Atom, relation: Relation, bound: set[str]) -> float:
    """Estimate how many rows of ``relation`` match one partial solution.

    The estimate is ``|R| / prod(ndv(column))`` over the columns that are
    already constrained (by a constant or an already-bound variable) —  the
    textbook independence/uniformity assumption.  It only needs per-column
    distinct counts, so the join order can be chosen before any evaluation.
    """
    rows = len(relation)
    if rows == 0:
        return 0.0
    denominator = 1.0
    for column, term in enumerate(atom.terms):
        constrained = isinstance(term, Const) or (
            isinstance(term, Var) and term.name in bound
        )
        if constrained:
            denominator *= max(1, relation.distinct_count(column))
    return rows / denominator


def _choose_order(
    body: Sequence[Atom], relations: Mapping[str, Relation]
) -> list[Atom]:
    """Greedy join order by minimum estimated fan-out.

    At each step the atom expected to multiply the intermediate result the
    least is chosen (ties broken by relation size, then body position).
    This keeps the per-template conjunctive queries from exploding on
    workloads where the value join alone is unselective: the template
    relation ``RT`` is pulled in as soon as enough of its columns are bound
    to make it selective, which then constrains the remaining witness atoms.
    """
    remaining = list(body)
    if not remaining:
        return []
    ordered: list[Atom] = []
    bound: set[str] = set()

    while remaining:
        def cost(atom: Atom) -> tuple:
            relation = relations[atom.relation]
            return (
                _estimate_fanout(atom, relation, bound),
                len(relation),
                body.index(atom),
            )

        nxt = min(remaining, key=cost)
        ordered.append(nxt)
        remaining.remove(nxt)
        bound.update(v.name for v in nxt.variables)
    return ordered


def _analyze_atom(
    atom: Atom, var_pos: Mapping[str, int]
) -> tuple[
    list[tuple[int, object]],
    list[tuple[int, int]],
    list[tuple[int, str]],
    list[tuple[int, int]],
]:
    """Classify an atom's columns against the already-bound variables.

    Returns ``(const_checks, join_cols, new_vars, within_atom_eq)`` where
    ``const_checks`` pairs a column with its required constant, ``join_cols``
    pairs a column with the solution position of its (bound) variable,
    ``new_vars`` pairs a column with the fresh variable it binds, and
    ``within_atom_eq`` records equal-column constraints for repeated fresh
    variables.  Shared by the per-call evaluator below and the plan compiler
    (:mod:`repro.relational.plan`), which precomputes this once per query.
    """
    const_checks: list[tuple[int, object]] = []
    join_cols: list[tuple[int, int]] = []      # (column in row, position in solution)
    new_vars: list[tuple[int, str]] = []       # (column in row, new variable name)
    within_atom_eq: list[tuple[int, int]] = [] # equal columns for repeated new vars
    seen_new: dict[str, int] = {}

    for col, t in enumerate(atom.terms):
        if isinstance(t, Const):
            const_checks.append((col, t.value))
        else:
            name = t.name
            if name in var_pos:
                join_cols.append((col, var_pos[name]))
            elif name in seen_new:
                within_atom_eq.append((col, seen_new[name]))
            else:
                seen_new[name] = col
                new_vars.append((col, name))
    return const_checks, join_cols, new_vars, within_atom_eq


def _join_atom(
    solutions: list[tuple],
    var_order: list[str],
    atom: Atom,
    relation: Relation,
    index_for=None,
) -> tuple[list[tuple], list[str]]:
    """Join the current solution set with one atom (hash join).

    ``index_for(relation_name, key_columns)`` — when provided, e.g. by an
    :class:`~repro.relational.database.IndexedDatabase` — may return a
    persistent, incrementally maintained hash index on the atom's key
    columns (join columns plus constant columns).  With an index, each
    partial solution probes the prebuilt buckets directly, so per-call work
    scales with the *matching* rows; without one, the relation is hashed
    per call (ad-hoc relations such as the current document's witnesses).
    """
    var_pos = {v: i for i, v in enumerate(var_order)}
    const_checks, join_cols, new_vars, within_atom_eq = _analyze_atom(atom, var_pos)

    new_var_order = var_order + [name for _, name in new_vars]
    new_solutions: list[tuple] = []
    new_var_cols = tuple(c for c, _ in new_vars)

    # Persistent-index path: probe a live index keyed on the join columns
    # followed by the constant columns; only the within-atom equality of
    # repeated fresh variables still needs a per-row check.
    key_cols = tuple(c for c, _ in join_cols) + tuple(c for c, _ in const_checks)
    index = index_for(atom.relation, key_cols) if (index_for and key_cols) else None
    if index is not None:
        const_suffix = tuple(v for _, v in const_checks)
        if not var_order and not join_cols:
            # First atom: one lookup on the constant key serves every base.
            rows = index.lookup_key(const_suffix)
            if within_atom_eq:
                rows = [r for r in rows if all(r[c] == r[c2] for c, c2 in within_atom_eq)]
            base = solutions if solutions else [()]
            for sol in base:
                for row in rows:
                    new_solutions.append(sol + tuple(row[c] for c in new_var_cols))
            return new_solutions, new_var_order
        for sol in solutions:
            key = tuple(sol[pos] for _, pos in join_cols) + const_suffix
            for row in index.lookup_key(key):
                if within_atom_eq and not all(
                    row[c] == row[c2] for c, c2 in within_atom_eq
                ):
                    continue
                new_solutions.append(sol + tuple(row[c] for c in new_var_cols))
        return new_solutions, new_var_order

    # Ad-hoc path: hash the relation rows by the join-key columns.
    buckets: dict[tuple, list[tuple]] = {}
    for row in relation.rows:
        ok = all(row[c] == v for c, v in const_checks)
        if ok:
            ok = all(row[c] == row[c2] for c, c2 in within_atom_eq)
        if not ok:
            continue
        key = tuple(row[c] for c, _ in join_cols)
        buckets.setdefault(key, []).append(row)

    if not var_order and not join_cols:
        # First atom (or a cartesian step against an empty binding set).
        base = solutions if solutions else [()]
        for sol in base:
            for rows in buckets.values():
                for row in rows:
                    new_solutions.append(sol + tuple(row[c] for c in new_var_cols))
        return new_solutions, new_var_order

    for sol in solutions:
        key = tuple(sol[pos] for _, pos in join_cols)
        for row in buckets.get(key, ()):
            new_solutions.append(sol + tuple(row[c] for c in new_var_cols))
    return new_solutions, new_var_order


def evaluate_conjunctive(
    query: ConjunctiveQuery,
    relations: Mapping[str, Relation],
    order: str | Sequence[Atom] = "greedy",
) -> Relation:
    """Evaluate ``query`` against ``relations`` and return the head relation.

    Parameters
    ----------
    query:
        The conjunctive query to evaluate.
    relations:
        A mapping (or :class:`~repro.relational.database.Database`) from
        relation name to :class:`Relation`.
    order:
        ``"greedy"`` (default) for the built-in size-driven greedy join
        order, ``"given"`` to join atoms in the order they appear in the
        body, or an explicit sequence of the body's atoms.

    When ``relations`` is an
    :class:`~repro.relational.database.IndexedDatabase`, atoms over its
    indexed relations are joined by probing persistent hash indexes instead
    of rehashing the relation per call.
    """
    lookup = relations.get if hasattr(relations, "get") else relations.__getitem__
    index_for = getattr(relations, "index_for", None)

    def rel_of(atom: Atom) -> Relation:
        rel = lookup(atom.relation)
        if rel is None:
            raise SchemaError(f"unknown relation {atom.relation!r} in conjunctive query")
        _atom_matches(atom, rel)
        return rel

    rel_map = {atom.relation: rel_of(atom) for atom in query.body}

    if isinstance(order, str):
        if order == "greedy":
            ordered = _choose_order(query.body, rel_map)
        elif order == "given":
            ordered = list(query.body)
        else:
            raise ValueError(f"unknown join order strategy {order!r}")
    else:
        ordered = list(order)
        if sorted(map(id, ordered)) != sorted(map(id, query.body)):
            raise ValueError("explicit order must be a permutation of the query body")

    solutions: list[tuple] = []
    var_order: list[str] = []
    for atom in ordered:
        relation = rel_map[atom.relation]
        solutions, var_order = _join_atom(solutions, var_order, atom, relation, index_for)
        if not solutions:
            break

    # Project the head.
    var_pos = {v: i for i, v in enumerate(var_order)}
    out = Relation(RelationSchema(query.head_schema), name=query.head_name)
    if not ordered:
        # Empty body: the head is a single row of constants (if all terms are consts).
        if all(isinstance(t, Const) for t in query.head_terms):
            out.rows.append(tuple(t.value for t in query.head_terms))
        return out
    if not solutions:
        # Some atom had no matching rows; the result is empty regardless of
        # which head variables happened to be bound before the evaluation
        # short-circuited.
        return out

    head_cols: list = []
    for t in query.head_terms:
        if isinstance(t, Const):
            head_cols.append(("const", t.value))
        else:
            if t.name not in var_pos:
                raise SchemaError(f"head variable {t.name!r} is not bound by the body")
            head_cols.append(("var", var_pos[t.name]))

    seen: set[tuple] = set()
    for sol in solutions:
        row = tuple(v if kind == "const" else sol[v] for kind, v in head_cols)
        if query.distinct:
            if row in seen:
                continue
            seen.add(row)
        out.rows.append(row)
    return out
