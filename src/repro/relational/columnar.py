"""Columnar relation storage: interned value ids + packed column vectors.

The row-oriented :class:`~repro.relational.relation.Relation` keeps
``list[tuple]`` as its canonical storage — every probe walks Python tuples
and pays per-object interpreter tax.  This module provides the *columnar
sidecar* that the ``columnar`` runtime knob switches on:

* :class:`ValueDictionary` interns arbitrary (hashable) values to dense
  integer ids shared by every relation of one evaluation environment, so a
  value join becomes an integer comparison and cross-relation joins stay in
  one id space.
* :class:`ColumnStore` mirrors a relation's rows as per-column
  ``array('q')`` id vectors.  It is synchronized *lazily* against the
  relation's mutation stamp ``(version, len(rows), deletes)``: appends since
  the last sync are encoded incrementally, anything else (deletes, clears,
  wholesale row replacement) triggers a rebuild.  Non-columnar
  configurations never pay a cent — the sidecar is only touched by columnar
  fast paths.
* :class:`GroupIndex` groups a store's rows by a packed multi-column key
  (stable order) for batch hash-probe joins: probing N keys is one
  ``searchsorted`` instead of N dict lookups, and the matched row positions
  expand via ``repeat``/``cumsum`` arithmetic.

``numpy`` is an *optional* accelerator (the ``repro[fast]`` extra).  When it
is missing — or ``REPRO_NO_NUMPY=1`` forces the fallback at import time —
columns stay pure-``array`` vectors: the selection kernels
(:func:`select_positions`, :func:`distinct_ids`) run as tight loops over
machine ints, and the fully vectorized join kernels report unavailable so
callers fall back to the row path.  Either way the match sets are identical;
only the constant factor changes.
"""

from __future__ import annotations

import os
from array import array
from typing import Iterable, Optional, Sequence

__all__ = [
    "HAVE_NUMPY",
    "ValueDictionary",
    "ColumnStore",
    "GroupIndex",
    "select_positions",
    "distinct_ids",
    "domain_array",
]

if os.environ.get("REPRO_NO_NUMPY") == "1":
    _np = None
else:  # pragma: no branch
    try:
        import numpy as _np
    except ImportError:  # pragma: no cover - exercised via REPRO_NO_NUMPY leg
        _np = None

HAVE_NUMPY = _np is not None

#: Packed multi-column keys must stay well inside int64.
_PACK_LIMIT = 1 << 62


class ValueDictionary:
    """Bidirectional value ↔ dense-int interning shared by an environment.

    One dictionary spans *all* relations of an evaluation environment (not
    one per column): equi-joins compare ids across relations, so both sides
    must agree on the encoding.  Ids are dense and append-only; values are
    never evicted (the dictionary lives as long as its environment, like the
    join state itself).
    """

    __slots__ = ("_ids", "_values")

    def __init__(self) -> None:
        self._ids: dict = {}
        self._values: list = []

    def id_of(self, value) -> int:
        """Intern ``value``, returning its dense id (stable across calls)."""
        i = self._ids.get(value)
        if i is None:
            i = len(self._values)
            self._ids[value] = i
            self._values.append(value)
        return i

    def get_id(self, value) -> Optional[int]:
        """The id of ``value`` if already interned, else ``None``."""
        try:
            return self._ids.get(value)
        except TypeError:  # unhashable query constant
            return None

    def value_of(self, i: int):
        """The value interned as id ``i``."""
        return self._values[i]

    def __len__(self) -> int:
        return len(self._values)

    @property
    def values(self) -> list:
        """The id → value table (index ``i`` holds the value of id ``i``)."""
        return self._values

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ValueDictionary {len(self._values)} values>"


class GroupIndex:
    """Rows of a :class:`ColumnStore` grouped by a packed key (numpy only).

    ``positions`` lists row positions sorted by key with the *original row
    order preserved within each key* (stable sort), so batch probes yield
    rows in exactly the order the row-path hash probe would.
    """

    __slots__ = ("bases", "unique_keys", "starts", "counts", "positions", "built_n")

    def __init__(self, bases, unique_keys, starts, counts, positions):
        self.bases = bases
        self.unique_keys = unique_keys
        self.starts = starts
        self.counts = counts
        self.positions = positions
        #: Number of store rows this index covers; rows appended since the
        #: build are probed separately (see :meth:`ColumnStore.probe`).
        self.built_n = 0

    def pack_probe(self, probe_cols):
        """Pack probe-side id columns with the build-side bases.

        Returns ``(packed, valid)``: probe values outside a build-side
        column's id range cannot match any row, so they are masked invalid
        and packed as 0 (keeping the packing inside the build-side range —
        no overflow regardless of how the dictionary grew since build).
        """
        packed = None
        valid = None
        for col, base in zip(probe_cols, self.bases):
            inside = col < base
            col = _np.where(inside, col, 0)
            valid = inside if valid is None else (valid & inside)
            packed = col if packed is None else packed * base + col
        return packed, valid

    def probe(self, probe_cols):
        """Batch hash-probe: one packed key per probe row.

        Returns ``(probe_idx, row_pos)`` — parallel arrays pairing each
        probing row index with each matched store row position, probe-major
        with store rows in original order (the row-path loop order).
        """
        packed, valid = self.pack_probe(probe_cols)
        uniques = self.unique_keys
        if len(uniques) == 0 or len(packed) == 0:
            empty = _np.empty(0, dtype=_np.int64)
            return empty, empty
        slot = _np.searchsorted(uniques, packed)
        slot[slot == len(uniques)] = 0
        hit = valid & (uniques[slot] == packed)
        counts = _np.where(hit, self.counts[slot], 0)
        starts = _np.where(hit, self.starts[slot], 0)
        return self.expand(starts, counts)

    def expand(self, starts, counts):
        """Expand per-probe ``(start, count)`` runs into match pairs."""
        total = int(counts.sum())
        if total == 0:
            empty = _np.empty(0, dtype=_np.int64)
            return empty, empty
        probe_idx = _np.repeat(_np.arange(len(counts), dtype=_np.int64), counts)
        offsets = _np.repeat(_np.cumsum(counts) - counts, counts)
        intra = _np.arange(total, dtype=_np.int64) - offsets
        row_pos = self.positions[_np.repeat(starts, counts) + intra]
        return probe_idx, row_pos


def _build_group(cols) -> Optional[GroupIndex]:
    """Group row positions by the packed key over ``cols`` (numpy arrays)."""
    if not cols:
        return None
    bases = []
    span = 1
    for col in cols:
        base = int(col.max()) + 1 if len(col) else 1
        bases.append(base)
        span *= base
        if span > _PACK_LIMIT:
            return None  # packed key would overflow int64 — use the row path
    packed = None
    for col, base in zip(cols, bases):
        packed = col if packed is None else packed * base + col
    order = _np.argsort(packed, kind="stable")
    sorted_keys = packed[order]
    n = len(sorted_keys)
    if n == 0:
        empty = _np.empty(0, dtype=_np.int64)
        return GroupIndex(bases, empty, empty, empty, empty)
    head = _np.empty(n, dtype=bool)
    head[0] = True
    _np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=head[1:])
    starts = _np.flatnonzero(head)
    counts = _np.diff(_np.append(starts, n))
    return GroupIndex(bases, sorted_keys[starts], starts, counts, order)


class ColumnStore:
    """Columnar sidecar of one relation: per-column interned id vectors.

    The relation's ``rows`` list stays canonical; the store mirrors it as
    ``array('q')`` vectors over a shared :class:`ValueDictionary` and is
    brought up to date by :meth:`sync` against the relation's mutation stamp
    (append-only growth encodes only the new suffix).  A store whose rows
    contain unhashable values marks itself ``disabled`` — callers fall back
    to the row path for that relation.
    """

    __slots__ = (
        "dictionary",
        "stamp",
        "disabled",
        "_cols",
        "_n",
        "_views",
        "_groups",
    )

    def __init__(self, num_columns: int, dictionary: ValueDictionary):
        self.dictionary = dictionary
        self.stamp = None
        self.disabled = False
        self._cols = [array("q") for _ in range(num_columns)]
        self._n = 0
        self._views = None
        self._groups: dict = {}

    @classmethod
    def from_columns(cls, cols: Sequence, dictionary: ValueDictionary, stamp):
        """A frozen store over precomputed id columns (reduced relations)."""
        store = cls(0, dictionary)
        store._cols = None  # frozen: no backing buffers, no resync
        store._views = list(cols)
        store._n = len(cols[0]) if cols else 0
        store.stamp = stamp
        return store

    def __len__(self) -> int:
        return self._n

    def sync(self, rows: Sequence[tuple], stamp) -> bool:
        """Bring the id columns up to date with ``rows``; False = disabled.

        ``stamp`` is the relation's ``(version, num_rows, deletes)``: a
        grown row count with the delete counter unchanged is an append-only
        delta (encode the suffix), anything else rebuilds from scratch.
        """
        old = self.stamp
        if stamp == old:
            return True
        if self._cols is None:  # frozen store: its relation must not mutate
            self.disabled = True
            return False
        # Drop our own numpy views first: they alias the ``array`` buffers
        # and would otherwise pin them against the mutations below.  Group
        # indexes survive append-only growth (they are built over a row
        # prefix and probe the suffix separately) but not a rebuild.
        self._views = None
        n = len(rows)
        if old is not None and stamp[2] == old[2] and n >= self._n and stamp[0] >= old[0]:
            new_rows = rows[self._n:] if n > self._n else ()
        else:
            self._groups.clear()
            for c, col in enumerate(self._cols):
                try:
                    del col[:]
                except BufferError:  # a caller retained a view: new buffer
                    self._cols[c] = array("q")
            self._n = 0
            new_rows = rows
        if new_rows:
            id_of = self.dictionary.id_of
            try:
                # Encode before touching the columns, so a TypeError cannot
                # leave them partially extended.
                encoded = [
                    [id_of(row[c]) for row in new_rows]
                    for c in range(len(self._cols))
                ]
            except TypeError:  # unhashable row value: cannot intern
                self.disabled = True
                return False
            for c, ids in enumerate(encoded):
                try:
                    self._cols[c].extend(ids)
                except BufferError:  # a caller retained a view: copy + extend
                    fresh = array("q", self._cols[c])
                    fresh.extend(ids)
                    self._cols[c] = fresh
            self._n = n
        self.stamp = stamp
        return True

    def columns(self):
        """Per-column id vectors: numpy int64 views (zero-copy) or arrays.

        The numpy views alias the backing ``array('q')`` buffers and are
        invalidated by the next sync — use within one evaluation, never
        retain across documents.
        """
        views = self._views
        if views is not None:
            return views
        if _np is None:
            self._views = self._cols
            return self._cols
        views = [
            _np.frombuffer(col, dtype=_np.int64)
            if len(col)
            else _np.empty(0, dtype=_np.int64)
            for col in self._cols
        ]
        self._views = views
        return views

    def group(self, key_cols: tuple) -> Optional[GroupIndex]:
        """The (memoized) group index over ``key_cols``; None = unavailable.

        A cached index stays valid across append-only growth: it covers the
        first ``built_n`` rows and :meth:`probe` scans the appended suffix
        separately, so steady-state ingestion never pays the O(n log n)
        rebuild per document.  Once the suffix outgrows a quarter of the
        indexed prefix (min 64 rows) the index is rebuilt over all rows.
        """
        if _np is None:
            return None
        cached = self._groups.get(key_cols, False)
        if cached is not False:
            if cached is None:
                return None  # packed key overflowed at last build
            suffix = self._n - cached.built_n
            if suffix <= max(64, cached.built_n >> 2):
                return cached
        cols = self.columns()
        gi = _build_group([cols[c] for c in key_cols])
        if gi is not None:
            gi.built_n = self._n
        self._groups[key_cols] = gi
        return gi

    def probe(self, key_cols: tuple, probe_cols):
        """Batch-probe rows keyed on ``key_cols``; ``None`` = unavailable.

        Combines the memoized :class:`GroupIndex` probe over the indexed
        prefix with a vectorized equality scan of the appended suffix, and
        restores the row-path match order (probe-major, store rows in
        original position order) with one stable sort.
        """
        gi = self.group(key_cols)
        if gi is None:
            return None
        built = gi.built_n
        suffix = self._n - built
        if suffix and len(probe_cols[0]) * suffix > (1 << 23):
            # A huge probe batch against a stale index: rebuild instead of
            # materializing a probes × suffix comparison matrix.
            cols = self.columns()
            gi = _build_group([cols[c] for c in key_cols])
            if gi is None:
                return None
            gi.built_n = self._n
            self._groups[key_cols] = gi
            built, suffix = self._n, 0
        probe_idx, row_pos = gi.probe(probe_cols)
        if suffix:
            cols = self.columns()
            mask = None
            for c, pc in zip(key_cols, probe_cols):
                m = pc[:, None] == cols[c][built:][None, :]
                mask = m if mask is None else (mask & m)
            extra_probe, extra_pos = _np.nonzero(mask)
            if len(extra_probe):
                probe_idx = _np.concatenate([probe_idx, extra_probe])
                row_pos = _np.concatenate([row_pos, extra_pos + built])
                order = _np.argsort(probe_idx, kind="stable")
                probe_idx = probe_idx[order]
                row_pos = row_pos[order]
        return probe_idx, row_pos


# --------------------------------------------------------------------------- #
# selection kernels (numpy-vectorized with pure-``array`` fallbacks)
# --------------------------------------------------------------------------- #
def domain_array(domain: frozenset):
    """A sorted int64 array of an id domain (numpy mode; callers memoize)."""
    if _np is None:
        return None
    out = _np.fromiter(domain, dtype=_np.int64, count=len(domain))
    out.sort()
    return out


def _isin(col, domain: frozenset, domain_arr):
    """Membership mask of ``col`` in an id domain (numpy mode)."""
    if len(domain) == 1:
        return col == next(iter(domain))
    return _np.isin(col, domain_arr if domain_arr is not None else domain_array(domain))


def select_positions(columns, num_rows: int, constraints, domain_arrays=None):
    """Positions of rows satisfying every ``(column, id-domain)`` constraint.

    ``columns`` are the store's id vectors; ``constraints`` pairs column
    indices with frozensets of admissible ids.  Returns a list of ints (the
    row-path order — ascending positions).  ``domain_arrays`` optionally
    maps ``id(domain)`` → presorted int64 array (a per-document memo).
    """
    if not constraints:
        return range(num_rows)
    if _np is not None:
        mask = None
        for col_index, domain in constraints:
            arr = domain_arrays.get(id(domain)) if domain_arrays else None
            m = _isin(columns[col_index], domain, arr)
            mask = m if mask is None else (mask & m)
        return _np.flatnonzero(mask)
    # pure-``array`` fallback: tight loop over machine ints
    checks = [(columns[c], domain) for c, domain in constraints]
    out = []
    for i in range(num_rows):
        for col, domain in checks:
            if col[i] not in domain:
                break
        else:
            out.append(i)
    return out


def distinct_ids(column, positions=None) -> frozenset:
    """The distinct ids of ``column`` (restricted to ``positions`` if given)."""
    if _np is not None and not isinstance(column, array):
        if positions is not None:
            column = column[positions]
        if len(column) <= 128:  # small columns: set-build beats np.unique
            return frozenset(column.tolist())
        return frozenset(_np.unique(column).tolist())
    if positions is None:
        return frozenset(column)
    return frozenset(column[i] for i in positions)
