"""Catalogs of named relations.

The MMQJP join state (``Rbin``, ``Rdoc``, ``RdocTS``) and the per-template
relations (``RT``) live in a :class:`Database`, mirroring how the paper keeps
them as SQL Server tables.  :class:`IndexedDatabase` is the evaluation
environment of the incremental join pipeline: a mapping from relation names
to relations that additionally resolves an atom's join-key columns against
persistent, incrementally maintained hash indexes.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Optional, Sequence

from repro.relational.index import HashIndex
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema, SchemaError

#: Indexing modes of :class:`IndexedDatabase` (and everything layered on it:
#: the join state, the engines, the brokers).
INDEXING_MODES = ("eager", "lazy", "off")


class Database:
    """A named collection of relations."""

    def __init__(self) -> None:
        self._relations: dict[str, Relation] = {}

    def create(self, name: str, schema: RelationSchema | Sequence[str]) -> Relation:
        """Create an empty relation called ``name``; error if it already exists."""
        if name in self._relations:
            raise SchemaError(f"relation {name!r} already exists")
        rel = Relation(schema, name=name)
        self._relations[name] = rel
        return rel

    def create_or_replace(self, name: str, relation: Relation) -> Relation:
        """Register ``relation`` under ``name``, replacing any existing one."""
        relation.name = name
        self._relations[name] = relation
        return relation

    def get(self, name: str) -> Relation:
        """Return the relation called ``name`` (KeyError-style SchemaError if missing)."""
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"unknown relation {name!r}") from None

    def drop(self, name: str) -> None:
        """Remove the relation called ``name`` if present."""
        self._relations.pop(name, None)

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[str]:
        return iter(self._relations)

    def names(self) -> list[str]:
        """All registered relation names."""
        return list(self._relations)

    def total_rows(self) -> int:
        """Total number of stored rows across all relations (for stats/tests)."""
        return sum(len(r) for r in self._relations.values())


class IndexedDatabase:
    """An evaluation environment with persistent per-relation hash indexes.

    Looks like a mapping from relation names to :class:`Relation` (so
    :func:`~repro.relational.conjunctive.evaluate_conjunctive` accepts it
    directly) and additionally answers :meth:`index_for`, which the
    evaluator calls to resolve an atom's join-key columns:

    * Relations bound as **indexed** (the long-lived join state and the
      per-template ``RT`` relations) answer with a live
      :class:`~repro.relational.index.HashIndex`, built and memoized once
      per (relation, key columns) and maintained incrementally under
      inserts and prunes.
    * Relations bound as **ephemeral** (the current document's witnesses and
      the per-document materialized views) answer ``None``, making the
      evaluator fall back to its per-call hashing.

    ``indexing="off"`` answers ``None`` for everything, reproducing the
    snapshot-rehashing behavior exactly (the ablation/equivalence baseline);
    ``"eager"`` updates indexes inline on every mutation; ``"lazy"`` lets
    them go stale and rebuilds on first use after a mutation.

    With ``columnar=True`` the environment owns one shared
    :class:`~repro.relational.columnar.ValueDictionary` and every bound
    relation gets a columnar sidecar interning through it (one id space, so
    cross-relation joins compare ids directly); the vectorized fast paths
    in the plan executor and the delta-reduction passes detect the
    dictionary via :attr:`columnar_dictionary` and fall back to the row
    path wherever a sidecar is unavailable.
    """

    def __init__(
        self,
        indexing: str = "eager",
        columnar: bool = False,
        dictionary=None,
    ):
        if indexing not in INDEXING_MODES:
            raise ValueError(
                f"unknown indexing mode {indexing!r}; choose one of {INDEXING_MODES}"
            )
        self.indexing = indexing
        if columnar:
            from repro.relational.columnar import ValueDictionary

            self.columnar_dictionary = (
                dictionary if dictionary is not None else ValueDictionary()
            )
        else:
            self.columnar_dictionary = None
        self._relations: dict[str, Relation] = {}
        self._indexed: set[str] = set()
        self._stable: set[str] = set()

    @property
    def columnar(self) -> bool:
        """Whether this environment interns values for columnar evaluation."""
        return self.columnar_dictionary is not None

    # ------------------------------------------------------------------ #
    # binding
    # ------------------------------------------------------------------ #
    def bind(self, name: str, relation: Relation, indexed: bool = False) -> Relation:
        """Bind ``relation`` under ``name`` (replacing any previous binding).

        With ``indexed=True`` (and indexing not ``"off"``) the relation's
        join keys are served from persistent indexes and its maintenance
        mode is aligned with this environment's indexing mode.  Relations
        requested as indexed are additionally remembered as **stable**
        (regardless of the indexing mode): they are long-lived and mutate
        incrementally, so compiled query plans may key their stats epoch on
        them — as opposed to the ephemeral per-document bindings.
        """
        self._relations[name] = relation
        if self.columnar_dictionary is not None:
            relation.enable_columnar(self.columnar_dictionary)
        if indexed:
            self._stable.add(name)
        else:
            self._stable.discard(name)
        if indexed and self.indexing != "off":
            self._indexed.add(name)
            relation.index_maintenance = "lazy" if self.indexing == "lazy" else "eager"
        else:
            self._indexed.discard(name)
        return relation

    def bind_all(self, relations: Mapping[str, Relation], indexed: bool = False) -> None:
        """Bind many relations at once."""
        for name, relation in relations.items():
            self.bind(name, relation, indexed=indexed)

    def unbind(self, name: str) -> None:
        """Remove a binding if present."""
        self._relations.pop(name, None)
        self._indexed.discard(name)
        self._stable.discard(name)

    # ------------------------------------------------------------------ #
    # mapping protocol (what the evaluator needs)
    # ------------------------------------------------------------------ #
    def get(self, name: str, default: Optional[Relation] = None) -> Optional[Relation]:
        """Return the relation bound under ``name`` (or ``default``)."""
        return self._relations.get(name, default)

    def __getitem__(self, name: str) -> Relation:
        return self._relations[name]

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[str]:
        return iter(self._relations)

    def __len__(self) -> int:
        return len(self._relations)

    def names(self) -> list[str]:
        """All bound relation names."""
        return list(self._relations)

    def is_indexed(self, name: str) -> bool:
        """Whether ``name`` is served from persistent indexes."""
        return name in self._indexed

    def is_stable(self, name: str) -> bool:
        """Whether ``name`` is a long-lived (state/``RT``) binding.

        Compiled plans track their stats epoch over stable relations only;
        ephemeral per-document bindings (witnesses, materialized views) must
        not invalidate a plan just because a new document arrived.
        """
        return name in self._stable

    # ------------------------------------------------------------------ #
    # index resolution
    # ------------------------------------------------------------------ #
    def index_for(self, name: str, key_columns: Sequence) -> Optional[HashIndex]:
        """A live index on ``key_columns`` of relation ``name``, or ``None``.

        ``None`` (unknown/ephemeral relation, or indexing ``"off"``) tells
        the evaluator to hash the relation per call instead.
        """
        if name not in self._indexed:
            return None
        return self._relations[name].index_on(key_columns)
