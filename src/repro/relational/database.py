"""A minimal catalog of named relations.

The MMQJP join state (``Rbin``, ``Rdoc``, ``RdocTS``) and the per-template
relations (``RT``) live in a :class:`Database`, mirroring how the paper keeps
them as SQL Server tables.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema, SchemaError


class Database:
    """A named collection of relations."""

    def __init__(self) -> None:
        self._relations: dict[str, Relation] = {}

    def create(self, name: str, schema: RelationSchema | Sequence[str]) -> Relation:
        """Create an empty relation called ``name``; error if it already exists."""
        if name in self._relations:
            raise SchemaError(f"relation {name!r} already exists")
        rel = Relation(schema, name=name)
        self._relations[name] = rel
        return rel

    def create_or_replace(self, name: str, relation: Relation) -> Relation:
        """Register ``relation`` under ``name``, replacing any existing one."""
        relation.name = name
        self._relations[name] = relation
        return relation

    def get(self, name: str) -> Relation:
        """Return the relation called ``name`` (KeyError-style SchemaError if missing)."""
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"unknown relation {name!r}") from None

    def drop(self, name: str) -> None:
        """Remove the relation called ``name`` if present."""
        self._relations.pop(name, None)

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[str]:
        return iter(self._relations)

    def names(self) -> list[str]:
        """All registered relation names."""
        return list(self._relations)

    def total_rows(self) -> int:
        """Total number of stored rows across all relations (for stats/tests)."""
        return sum(len(r) for r in self._relations.values())
