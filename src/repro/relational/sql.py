"""Render conjunctive queries as SQL text.

The paper's prototype translated XSCL queries into SQL and shipped them to
SQL Server.  We evaluate conjunctive queries in-process instead, but this
module preserves the translator so a user can inspect (or export) the SQL
that corresponds to each query template.
"""

from __future__ import annotations

from repro.relational.conjunctive import Atom, ConjunctiveQuery
from repro.relational.terms import Const, Var


def _sql_literal(value) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, (int, float)):
        if value == float("inf"):
            return "'infinity'"
        return str(value)
    text = str(value).replace("'", "''")
    return f"'{text}'"


def render_sql(
    query: ConjunctiveQuery,
    schemas: dict[str, list[str]] | None = None,
) -> str:
    """Render ``query`` as a SQL ``SELECT`` statement.

    Parameters
    ----------
    query:
        The conjunctive query to render.
    schemas:
        Optional mapping from relation name to its attribute names.  When
        omitted, positional pseudo-columns ``c0, c1, ...`` are used.

    Returns
    -------
    str
        A SQL statement of the form ``SELECT ... FROM R AS t0, ... WHERE ...``.
    """
    aliases: list[tuple[str, Atom]] = []
    for i, atom in enumerate(query.body):
        aliases.append((f"t{i}", atom))

    def column(alias: str, atom: Atom, position: int) -> str:
        if schemas and atom.relation in schemas:
            return f"{alias}.{schemas[atom.relation][position]}"
        return f"{alias}.c{position}"

    # Where clauses: variable co-occurrence + constants.
    first_occurrence: dict[str, str] = {}
    conditions: list[str] = []
    for alias, atom in aliases:
        for pos, t in enumerate(atom.terms):
            col = column(alias, atom, pos)
            if isinstance(t, Const):
                conditions.append(f"{col} = {_sql_literal(t.value)}")
            elif isinstance(t, Var):
                if t.name in first_occurrence:
                    conditions.append(f"{col} = {first_occurrence[t.name]}")
                else:
                    first_occurrence[t.name] = col

    select_items: list[str] = []
    for out_name, t in zip(query.head_schema, query.head_terms):
        if isinstance(t, Const):
            select_items.append(f"{_sql_literal(t.value)} AS {out_name}")
        else:
            if t.name not in first_occurrence:
                raise ValueError(f"head variable {t.name!r} is not bound in the body")
            select_items.append(f"{first_occurrence[t.name]} AS {out_name}")

    distinct = "DISTINCT " if query.distinct else ""
    from_clause = ", ".join(f"{atom.relation} AS {alias}" for alias, atom in aliases)
    sql = f"SELECT {distinct}{', '.join(select_items)}\nFROM {from_clause}"
    if conditions:
        sql += "\nWHERE " + "\n  AND ".join(conditions)
    return sql
