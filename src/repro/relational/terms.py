"""Terms used in conjunctive-query atoms: variables and constants."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Var:
    """A logical variable in a conjunctive query (identified by name)."""

    name: str

    def __repr__(self) -> str:
        return f"?{self.name}"


@dataclass(frozen=True)
class Const:
    """A constant value in a conjunctive query."""

    value: object

    def __repr__(self) -> str:
        return repr(self.value)


def term(value) -> Var | Const:
    """Coerce a value into a term.

    Strings starting with ``"?"`` become variables named by the remainder;
    existing :class:`Var`/:class:`Const` instances pass through; everything
    else becomes a constant.
    """
    if isinstance(value, (Var, Const)):
        return value
    if isinstance(value, str) and value.startswith("?") and len(value) > 1:
        return Var(value[1:])
    return Const(value)
