"""Relations: a schema plus a bag of tuples.

Relations are deliberately simple — a list of plain Python tuples — because
the join state of the MMQJP engine (``Rbin``, ``Rdoc``, ``RdocTS`` and the
per-document witness relations) is rebuilt and scanned constantly; plain
tuples keep that cheap and keep hashing (for joins and distinct) trivial.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

from repro.relational.schema import RelationSchema, SchemaError


class Relation:
    """A named relation: a :class:`RelationSchema` and a bag of tuples.

    Tuples are stored in insertion order.  Duplicate tuples are allowed
    (bag semantics); use :meth:`distinct` for set semantics.

    Parameters
    ----------
    schema:
        The relation schema, or a sequence of attribute names.
    rows:
        Optional initial rows.  Each row must have the schema's arity.
    name:
        Optional relation name used in error messages and SQL rendering.
    """

    __slots__ = ("schema", "rows", "name", "_ndv_cache")

    def __init__(
        self,
        schema: RelationSchema | Sequence[str],
        rows: Iterable[Sequence] = (),
        name: str = "",
    ):
        if not isinstance(schema, RelationSchema):
            schema = RelationSchema(schema)
        self.schema = schema
        self.name = name
        self.rows: list[tuple] = []
        self._ndv_cache: dict[int, tuple[int, int]] = {}
        for row in rows:
            self.insert(row)

    # ------------------------------------------------------------------ #
    # basic container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def __eq__(self, other: object) -> bool:
        """Two relations are equal when schema and the *set* of rows agree."""
        if isinstance(other, Relation):
            return self.schema == other.schema and sorted(
                map(repr, self.rows)
            ) == sorted(map(repr, other.rows))
        return NotImplemented

    def __hash__(self):  # pragma: no cover - relations are mutable
        raise TypeError("Relation objects are mutable and unhashable")

    def __repr__(self) -> str:
        label = self.name or "Relation"
        return f"<{label}{list(self.schema.attributes)} with {len(self.rows)} rows>"

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def insert(self, row: Sequence) -> None:
        """Append a single row (validated against the schema arity)."""
        t = tuple(row)
        if len(t) != len(self.schema):
            raise SchemaError(
                f"row arity {len(t)} does not match schema arity {len(self.schema)} "
                f"for relation {self.name or '<anonymous>'}"
            )
        self.rows.append(t)

    def insert_many(self, rows: Iterable[Sequence]) -> None:
        """Append many rows."""
        for row in rows:
            self.insert(row)

    def insert_dict(self, values: dict[str, object]) -> None:
        """Append a row given as an attribute-name → value mapping."""
        try:
            row = tuple(values[a] for a in self.schema.attributes)
        except KeyError as exc:
            raise SchemaError(f"missing attribute {exc.args[0]!r} in row values") from None
        self.rows.append(row)

    def clear(self) -> None:
        """Remove all rows."""
        self.rows.clear()

    def extend(self, other: "Relation") -> None:
        """Append all rows of ``other`` (schemas must match exactly)."""
        if other.schema != self.schema:
            raise SchemaError(
                f"cannot extend relation with schema {self.schema} "
                f"from relation with schema {other.schema}"
            )
        self.rows.extend(other.rows)

    # ------------------------------------------------------------------ #
    # row access helpers
    # ------------------------------------------------------------------ #
    def column(self, attribute: str) -> list:
        """Return the values of one column, in row order."""
        i = self.schema.index_of(attribute)
        return [row[i] for row in self.rows]

    def row_dicts(self) -> Iterator[dict[str, object]]:
        """Iterate rows as attribute-name → value dictionaries."""
        attrs = self.schema.attributes
        for row in self.rows:
            yield dict(zip(attrs, row))

    def value(self, row: Sequence, attribute: str):
        """Return the value of ``attribute`` within ``row``."""
        return row[self.schema.index_of(attribute)]

    def distinct_count(self, column_index: int) -> int:
        """Number of distinct values in one column (cached per row count).

        Used by the conjunctive-query optimizer to estimate join fan-out.
        The cache entry is invalidated whenever the row count changes, which
        is sufficient for the append-only relations the engine maintains.
        """
        cached = self._ndv_cache.get(column_index)
        if cached is not None and cached[0] == len(self.rows):
            return cached[1]
        count = len({row[column_index] for row in self.rows})
        self._ndv_cache[column_index] = (len(self.rows), count)
        return count

    # ------------------------------------------------------------------ #
    # derived relations (non-mutating)
    # ------------------------------------------------------------------ #
    def copy(self, name: str | None = None) -> "Relation":
        """Return a shallow copy (rows are immutable tuples, so this is safe)."""
        out = Relation(self.schema, name=name if name is not None else self.name)
        out.rows = list(self.rows)
        return out

    def distinct(self, name: str | None = None) -> "Relation":
        """Return a copy with duplicate rows removed (first occurrence kept)."""
        seen: set[tuple] = set()
        out = Relation(self.schema, name=name if name is not None else self.name)
        for row in self.rows:
            if row not in seen:
                seen.add(row)
                out.rows.append(row)
        return out

    def where(self, predicate: Callable[[dict[str, object]], bool]) -> "Relation":
        """Return the rows for which ``predicate`` (on a row dict) is true."""
        attrs = self.schema.attributes
        out = Relation(self.schema, name=self.name)
        for row in self.rows:
            if predicate(dict(zip(attrs, row))):
                out.rows.append(row)
        return out

    def sorted_rows(self) -> list[tuple]:
        """Return the rows sorted by their repr (stable, type-agnostic order)."""
        return sorted(self.rows, key=repr)

    @classmethod
    def empty_like(cls, other: "Relation", name: str | None = None) -> "Relation":
        """Return an empty relation with the same schema as ``other``."""
        return cls(other.schema, name=name if name is not None else other.name)
