"""Relations: a schema plus a bag of tuples, with live hash indexes.

Relations are deliberately simple — a list of plain Python tuples — because
the join state of the MMQJP engine (``Rbin``, ``Rdoc``, ``RdocTS`` and the
per-document witness relations) is scanned and probed constantly; plain
tuples keep that cheap and keep hashing (for joins and distinct) trivial.

Two features support the incremental join pipeline:

* Every relation carries a **mutation counter** and an attached registry of
  :class:`~repro.relational.index.HashIndex` objects (:meth:`Relation.index_on`).
  Indexes are built once per key-column set and then maintained under
  mutations — eagerly (updated inline on every insert/drop) or lazily
  (rebuilt on first use after a mutation), per the relation's
  ``index_maintenance`` mode.
* :class:`PartitionedRelation` additionally groups its rows by one
  partition attribute (``docid`` for the join-state relations), so that
  window pruning can drop all rows of a document in one dictionary pop
  (:meth:`PartitionedRelation.drop_partitions`) instead of rewriting the
  whole row list, and maintains per-column distinct-value counters so the
  join-order optimizer's NDV estimates are O(1) instead of a full column
  scan.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Iterable, Iterator, Sequence

from repro.relational.schema import RelationSchema, SchemaError

#: Index-maintenance modes accepted by :class:`Relation`.
INDEX_MAINTENANCE_MODES = ("eager", "lazy")


class Relation:
    """A named relation: a :class:`RelationSchema` and a bag of tuples.

    Tuples are stored in insertion order.  Duplicate tuples are allowed
    (bag semantics); use :meth:`distinct` for set semantics.

    Parameters
    ----------
    schema:
        The relation schema, or a sequence of attribute names.
    rows:
        Optional initial rows.  Each row must have the schema's arity.
    name:
        Optional relation name used in error messages and SQL rendering.
    index_maintenance:
        ``"eager"`` (default) keeps attached indexes up to date on every
        mutation; ``"lazy"`` lets them go stale and rebuilds them on the
        next :meth:`index_on` call.
    """

    __slots__ = (
        "schema",
        "rows",
        "name",
        "index_maintenance",
        "_ndv_cache",
        "_version",
        "_deletes",
        "_indexes",
        "_colstore",
    )

    def __init__(
        self,
        schema: RelationSchema | Sequence[str],
        rows: Iterable[Sequence] = (),
        name: str = "",
        index_maintenance: str = "eager",
    ):
        if not isinstance(schema, RelationSchema):
            schema = RelationSchema(schema)
        if index_maintenance not in INDEX_MAINTENANCE_MODES:
            raise ValueError(
                f"unknown index maintenance mode {index_maintenance!r}; "
                f"choose one of {INDEX_MAINTENANCE_MODES}"
            )
        self.schema = schema
        self.name = name
        self.index_maintenance = index_maintenance
        self._ndv_cache: dict[int, tuple[tuple[int, int], int]] = {}
        self._version = 0
        self._deletes = 0
        self._indexes: dict[tuple[int, ...], "HashIndex"] = {}
        self._colstore = None
        self.rows: list[tuple] = []
        for row in rows:
            self.insert(row)

    # ------------------------------------------------------------------ #
    # basic container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __bool__(self) -> bool:
        return len(self) > 0

    def __eq__(self, other: object) -> bool:
        """Two relations are equal when schema and the *multiset* of rows agree.

        Rows compare by value (a :class:`collections.Counter` over the row
        tuples), not by their ``repr`` — the historical repr-sort was
        O(n log n), allocated a rendering of every row, and made equality
        depend on how values print rather than on what they are.
        """
        if isinstance(other, Relation):
            if self.schema != other.schema or len(self.rows) != len(other.rows):
                return False
            return Counter(self.rows) == Counter(other.rows)
        return NotImplemented

    def __hash__(self):  # pragma: no cover - relations are mutable
        raise TypeError("Relation objects are mutable and unhashable")

    def __repr__(self) -> str:
        label = self.name or "Relation"
        return f"<{label}{list(self.schema.attributes)} with {len(self)} rows>"

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def insert(self, row: Sequence) -> None:
        """Append a single row (validated against the schema arity)."""
        t = tuple(row)
        if len(t) != len(self.schema):
            raise SchemaError(
                f"row arity {len(t)} does not match schema arity {len(self.schema)} "
                f"for relation {self.name or '<anonymous>'}"
            )
        self._append(t)

    def insert_many(self, rows: Iterable[Sequence]) -> None:
        """Append many rows."""
        for row in rows:
            self.insert(row)

    def insert_dict(self, values: dict[str, object]) -> None:
        """Append a row given as an attribute-name → value mapping."""
        try:
            row = tuple(values[a] for a in self.schema.attributes)
        except KeyError as exc:
            raise SchemaError(f"missing attribute {exc.args[0]!r} in row values") from None
        self._append(row)

    def clear(self) -> None:
        """Remove all rows."""
        self.rows.clear()
        self._version += 1
        self._deletes += 1
        for index in self._indexes.values():
            index.clear()
            index.version = self._version

    def extend(self, other: "Relation") -> None:
        """Append all rows of ``other`` (schemas must match exactly)."""
        if other.schema != self.schema:
            raise SchemaError(
                f"cannot extend relation with schema {self.schema} "
                f"from relation with schema {other.schema}"
            )
        for row in other.rows:
            self._append(row)

    def _append(self, t: tuple) -> None:
        """Append one validated tuple, keeping indexes and counters current."""
        self.rows.append(t)
        self._row_added(t)

    def delete_rows(self, predicate: Callable[[tuple], bool]) -> int:
        """Delete every row for which ``predicate`` (on the raw tuple) is true.

        Returns the number of rows removed.  Eagerly maintained indexes
        that were in sync before the deletion are updated inline (bucket
        removals proportional to the rows deleted); stale or lazily
        maintained indexes keep relying on the version bump to rebuild on
        next use.  A deletion that removes nothing leaves the version (and
        every derived artifact) untouched.
        """
        kept: list[tuple] = []
        gone: list[tuple] = []
        for row in self.rows:
            (gone if predicate(row) else kept).append(row)
        if not gone:
            return 0
        self.rows = kept
        self._ndv_cache.clear()
        previous = self._version
        self._version += 1
        self._deletes += 1
        if self._indexes and self.index_maintenance == "eager":
            for index in self._indexes.values():
                if index.version == previous:
                    index.remove_rows(gone)
                    index.version = self._version
        return len(gone)

    def delete_row(self, row: Sequence) -> bool:
        """Delete one row by exact value; returns whether a row was removed.

        The point-deletion fast path for callers that can reconstruct the
        tuple they inserted (e.g. the template registry retracting one
        query's ``RT`` tuple): ``list.remove`` runs the equality scan in C
        and stops at the first hit, where :meth:`delete_rows` evaluates a
        Python predicate on every row.  Only the first occurrence of a
        duplicated row is removed.  Bookkeeping matches :meth:`delete_rows`.
        """
        t = tuple(row)
        try:
            self.rows.remove(t)
        except ValueError:
            return False
        self._ndv_cache.clear()
        previous = self._version
        self._version += 1
        self._deletes += 1
        if self._indexes and self.index_maintenance == "eager":
            for index in self._indexes.values():
                if index.version == previous:
                    index.remove_rows([t])
                    index.version = self._version
        return True

    def swap_delete_at(self, position: int) -> tuple:
        """Delete the row at ``position`` by swapping the last row into it.

        O(1) point deletion for callers that track row positions (the
        template registry keeps a qid → position map over each ``RT``).
        Returns the removed row; afterwards the previously-last row — if
        any remains — occupies ``position``, so the caller must update its
        position map for that row.  Row *order* is not preserved.
        Bookkeeping matches :meth:`delete_rows`.
        """
        rows = self.rows
        t = rows[position]
        last = rows.pop()
        if position < len(rows):
            rows[position] = last
        self._ndv_cache.clear()
        previous = self._version
        self._version += 1
        self._deletes += 1
        if self._indexes and self.index_maintenance == "eager":
            for index in self._indexes.values():
                if index.version == previous:
                    index.remove_row(t)
                    index.version = self._version
        return t

    def _row_added(self, t: tuple) -> None:
        previous = self._version
        self._version += 1
        if self._indexes and self.index_maintenance == "eager":
            for index in self._indexes.values():
                # Only indexes that were in sync before this mutation are
                # updated inline; an already-stale index (e.g. after a
                # wholesale ``rows`` assignment, or built under lazy
                # maintenance) stays stale so index_on() rebuilds it.
                if index.version == previous:
                    index.add_row(t)
                    index.version = self._version

    # ------------------------------------------------------------------ #
    # live indexes
    # ------------------------------------------------------------------ #
    def _resolve_columns(self, columns: Sequence) -> tuple[int, ...]:
        return tuple(
            self.schema.index_of(c) if isinstance(c, str) else int(c) for c in columns
        )

    def index_on(self, columns: Sequence) -> "HashIndex":
        """Return the live hash index on ``columns`` (names or positions).

        The index is built on first use, memoized per key-column set, and
        maintained under subsequent mutations: inline under ``"eager"``
        maintenance, or by rebuilding here once the relation has changed
        under ``"lazy"`` maintenance.
        """
        from repro.relational.index import HashIndex

        key_cols = self._resolve_columns(columns)
        index = self._indexes.get(key_cols)
        if index is None:
            index = HashIndex(self, key_cols)
            index.version = self._version
            self._indexes[key_cols] = index
        elif index.version != self._version:
            index.rebuild(self.rows)
            index.version = self._version
        return index

    @property
    def num_indexes(self) -> int:
        """Number of attached live indexes (stats/tests)."""
        return len(self._indexes)

    # ------------------------------------------------------------------ #
    # the columnar sidecar (see repro.relational.columnar)
    # ------------------------------------------------------------------ #
    def enable_columnar(self, dictionary) -> None:
        """Attach a columnar sidecar interning through ``dictionary``.

        Idempotent per dictionary; binding the same relation into a
        different columnar environment re-homes the sidecar.  The sidecar
        is synchronized lazily by :meth:`column_store` — enabling it costs
        nothing until a columnar fast path asks for the columns.
        """
        from repro.relational.columnar import ColumnStore

        store = self._colstore
        if store is None or store.dictionary is not dictionary:
            self._colstore = ColumnStore(len(self.schema), dictionary)

    def column_store(self):
        """The synced columnar sidecar, or ``None`` when unavailable.

        Returns ``None`` when no sidecar is attached (non-columnar
        environments) or when it disabled itself (unhashable row values).
        The validity stamp is ``(version, len(rows), deletes)`` — the same
        trick the NDV cache uses to also catch direct ``rows``
        manipulation by legacy callers.
        """
        store = self._colstore
        if store is None or store.disabled:
            return None
        rows = self.rows
        stamp = (self._version, len(rows), self._deletes)
        if store.stamp != stamp and not store.sync(rows, stamp):
            return None
        return store

    def _attach_store(self, store) -> None:
        """Adopt a precomputed (frozen) sidecar — derived-relation path."""
        self._colstore = store

    def _stamp(self) -> tuple[int, int, int]:
        """The mutation stamp sidecars validate against."""
        return (self._version, len(self.rows), self._deletes)

    @property
    def version(self) -> int:
        """The mutation counter (bumped on every insert/drop/clear).

        Consumers that cache derived artifacts — live indexes, NDV counts,
        compiled query plans — key their validity checks on this counter.
        """
        return self._version

    # ------------------------------------------------------------------ #
    # row access helpers
    # ------------------------------------------------------------------ #
    def column(self, attribute: str) -> list:
        """Return the values of one column, in row order."""
        i = self.schema.index_of(attribute)
        return [row[i] for row in self.rows]

    def row_dicts(self) -> Iterator[dict[str, object]]:
        """Iterate rows as attribute-name → value dictionaries."""
        attrs = self.schema.attributes
        for row in self.rows:
            yield dict(zip(attrs, row))

    def value(self, row: Sequence, attribute: str):
        """Return the value of ``attribute`` within ``row``."""
        return row[self.schema.index_of(attribute)]

    def distinct_count(self, column_index: int) -> int:
        """Number of distinct values in one column (cached per mutation).

        Used by the conjunctive-query optimizer to estimate join fan-out.
        The cache entry is keyed on the relation's mutation counter (plus
        the row count, to also catch legacy direct ``rows`` manipulation),
        so it survives any mix of inserts and prunes — a prune followed by
        equal-size inserts invalidates it where a row-count key would not.
        """
        stamp = (self._version, len(self.rows))
        cached = self._ndv_cache.get(column_index)
        if cached is not None and cached[0] == stamp:
            return cached[1]
        store = self._colstore
        if (
            store is not None
            and not store.disabled
            and store.stamp == (stamp[0], stamp[1], self._deletes)
        ):
            # Columnar fast path over an already-synced sidecar (a derived
            # reduced relation, typically) — no new interning is forced.
            from repro.relational.columnar import distinct_ids

            count = len(distinct_ids(store.columns()[column_index]))
        else:
            count = len({row[column_index] for row in self.rows})
        self._ndv_cache[column_index] = (stamp, count)
        return count

    # ------------------------------------------------------------------ #
    # derived relations (non-mutating)
    # ------------------------------------------------------------------ #
    def copy(self, name: str | None = None) -> "Relation":
        """Return a shallow copy (rows are immutable tuples, so this is safe)."""
        out = Relation(self.schema, name=name if name is not None else self.name)
        out.rows = list(self.rows)
        return out

    def distinct(self, name: str | None = None) -> "Relation":
        """Return a copy with duplicate rows removed (first occurrence kept)."""
        seen: set[tuple] = set()
        out = Relation(self.schema, name=name if name is not None else self.name)
        for row in self.rows:
            if row not in seen:
                seen.add(row)
                out.rows.append(row)
        return out

    def where(self, predicate: Callable[[dict[str, object]], bool]) -> "Relation":
        """Return the rows for which ``predicate`` (on a row dict) is true."""
        attrs = self.schema.attributes
        out = Relation(self.schema, name=self.name)
        for row in self.rows:
            if predicate(dict(zip(attrs, row))):
                out.rows.append(row)
        return out

    def sorted_rows(self) -> list[tuple]:
        """Return the rows sorted by their repr (stable, type-agnostic order)."""
        return sorted(self.rows, key=repr)

    @classmethod
    def empty_like(cls, other: "Relation", name: str | None = None) -> "Relation":
        """Return an empty relation with the same schema as ``other``."""
        return cls(other.schema, name=name if name is not None else other.name)


class PartitionedRelation(Relation):
    """A relation whose rows are additionally grouped by one partition attribute.

    The join-state relations are partitioned on ``docid``: all rows of one
    previously processed document form one partition, so window pruning can
    drop entire documents in one dictionary pop per document
    (:meth:`drop_partitions`) instead of filtering every row.  The flat
    ``rows`` list is kept in sync incrementally on inserts and re-stitched
    lazily from the surviving partitions after a drop, so steady-state
    processing (which reads the state through the live indexes) never pays
    for pruned rows again.

    Per-column distinct-value counters back :meth:`distinct_count` in O(1)
    once a column has been asked about, surviving any interleaving of
    inserts and partition drops.
    """

    __slots__ = (
        "partition_attribute",
        "_pcol",
        "_partitions",
        "_flat",
        "_flat_dirty",
        "_size",
        "_ndv_counters",
    )

    def __init__(
        self,
        schema: RelationSchema | Sequence[str],
        rows: Iterable[Sequence] = (),
        name: str = "",
        partition_attribute: str = "docid",
        index_maintenance: str = "eager",
    ):
        if not isinstance(schema, RelationSchema):
            schema = RelationSchema(schema)
        self.partition_attribute = partition_attribute
        self._pcol = schema.index_of(partition_attribute)
        self._partitions: dict[object, list[tuple]] = {}
        self._flat: list[tuple] = []
        self._flat_dirty = False
        self._size = 0
        self._ndv_counters: dict[int, dict[object, int]] = {}
        super().__init__(schema, rows, name, index_maintenance=index_maintenance)

    # ------------------------------------------------------------------ #
    # the flat row view
    # ------------------------------------------------------------------ #
    @property
    def rows(self) -> list[tuple]:
        if self._flat_dirty:
            flat: list[tuple] = []
            for part in self._partitions.values():
                flat.extend(part)
            self._flat = flat
            self._flat_dirty = False
        return self._flat

    @rows.setter
    def rows(self, new_rows: list[tuple]) -> None:
        # Wholesale replacement (base-class init and legacy callers): rebuild
        # the partitions; attached indexes catch up on their next use via the
        # version bump.
        self._partitions = {}
        self._flat = []
        self._flat_dirty = False
        self._size = 0
        self._ndv_counters = {}
        self._version += 1
        self._deletes += 1
        for t in new_rows:
            self._partitions.setdefault(t[self._pcol], []).append(t)
            self._flat.append(t)
            self._size += 1

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[tuple]:
        if self._flat_dirty:
            for part in self._partitions.values():
                yield from part
        else:
            yield from self._flat

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def _append(self, t: tuple) -> None:
        key = t[self._pcol]
        part = self._partitions.get(key)
        if part is None:
            part = self._partitions[key] = []
        part.append(t)
        if not self._flat_dirty:
            self._flat.append(t)
        self._size += 1
        for col, counter in self._ndv_counters.items():
            v = t[col]
            counter[v] = counter.get(v, 0) + 1
        self._row_added(t)

    def clear(self) -> None:
        self._partitions.clear()
        self._flat = []
        self._flat_dirty = False
        self._size = 0
        self._ndv_counters = {}
        self._version += 1
        self._deletes += 1
        for index in self._indexes.values():
            index.clear()
            index.version = self._version

    def delete_rows(self, predicate: Callable[[tuple], bool]) -> int:
        """Delete matching rows across all partitions; returns rows removed.

        Mirrors :meth:`Relation.delete_rows` on the partitioned layout:
        partitions emptied by the deletion are dropped and the flat view is
        re-stitched lazily.  NDV counters are decremented per deleted row
        (O(removed), like :meth:`drop_partitions`) instead of being thrown
        away, and eagerly maintained in-sync indexes are updated inline —
        a probe right after a retraction no longer pays a full rebuild.
        """
        removed = 0
        gone: list[tuple] = []
        emptied: list[object] = []
        for key, part in self._partitions.items():
            kept: list[tuple] = []
            for row in part:
                (gone if predicate(row) else kept).append(row)
            if len(kept) != len(part):
                removed += len(part) - len(kept)
                if kept:
                    self._partitions[key] = kept
                else:
                    emptied.append(key)
        if not removed:
            return 0
        for key in emptied:
            del self._partitions[key]
        self._size -= removed
        self._flat_dirty = True
        previous = self._version
        self._version += 1
        self._deletes += 1
        if self._ndv_counters:
            for row in gone:
                for col, counter in self._ndv_counters.items():
                    v = row[col]
                    left = counter[v] - 1
                    if left:
                        counter[v] = left
                    else:
                        del counter[v]
        if self._indexes and self.index_maintenance == "eager":
            for index in self._indexes.values():
                if index.version == previous:
                    index.remove_rows(gone)
                    index.version = self._version
        return removed

    def swap_delete_at(self, position: int) -> tuple:
        """Unsupported: flat-view positions are unstable under partitioning."""
        raise TypeError(
            "PartitionedRelation does not support positional deletion; "
            "use delete_row or drop_partitions"
        )

    def delete_row(self, row: Sequence) -> bool:
        """Delete one row by exact value (partition-local scan).

        Mirrors :meth:`Relation.delete_row`: only the row's own partition is
        scanned (``list.remove`` in C), bookkeeping matches
        :meth:`delete_rows`.
        """
        t = tuple(row)
        key = t[self._pcol]
        part = self._partitions.get(key)
        if part is None:
            return False
        try:
            part.remove(t)
        except ValueError:
            return False
        if not part:
            del self._partitions[key]
        self._size -= 1
        self._flat_dirty = True
        previous = self._version
        self._version += 1
        self._deletes += 1
        for col, counter in self._ndv_counters.items():
            v = t[col]
            left = counter[v] - 1
            if left:
                counter[v] = left
            else:
                del counter[v]
        if self._indexes and self.index_maintenance == "eager":
            for index in self._indexes.values():
                if index.version == previous:
                    index.remove_rows([t])
                    index.version = self._version
        return True

    def drop_partitions(self, keys: Iterable[object]) -> int:
        """Drop every row of the given partitions; returns rows removed.

        The cost is proportional to the rows *dropped* (plus, for eagerly
        maintained indexes, their bucket updates); surviving rows are not
        touched.  The flat ``rows`` view is re-stitched lazily on its next
        access.
        """
        dropped: list[list[tuple]] = []
        removed = 0
        for key in keys:
            part = self._partitions.pop(key, None)
            if part:
                dropped.append(part)
                removed += len(part)
        if not removed:
            return 0
        self._size -= removed
        self._flat_dirty = True
        previous = self._version
        self._version += 1
        self._deletes += 1
        if self._ndv_counters:
            for part in dropped:
                for row in part:
                    for col, counter in self._ndv_counters.items():
                        v = row[col]
                        left = counter[v] - 1
                        if left:
                            counter[v] = left
                        else:
                            del counter[v]
        if self._indexes and self.index_maintenance == "eager":
            for index in self._indexes.values():
                if index.version != previous:
                    continue  # stale already; index_on() will rebuild it
                for part in dropped:
                    index.remove_rows(part)
                index.version = self._version
        return removed

    # ------------------------------------------------------------------ #
    # partition access and statistics
    # ------------------------------------------------------------------ #
    def partition_keys(self) -> list[object]:
        """All partition keys currently present."""
        return list(self._partitions)

    def partition(self, key: object) -> list[tuple]:
        """The rows of one partition (empty list if absent)."""
        return list(self._partitions.get(key, ()))

    @property
    def num_partitions(self) -> int:
        """Number of non-empty partitions."""
        return len(self._partitions)

    def distinct_count(self, column_index: int) -> int:
        """O(1) NDV from an incrementally maintained per-column counter."""
        counter = self._ndv_counters.get(column_index)
        if counter is None:
            counter = {}
            for part in self._partitions.values():
                for row in part:
                    v = row[column_index]
                    counter[v] = counter.get(v, 0) + 1
            self._ndv_counters[column_index] = counter
        return len(counter)
