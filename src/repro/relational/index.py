"""Hash indexes over relations.

The view cache of Section 5 (slices of ``RL`` keyed on string value) and the
witness lookup paths both need fast equality lookup on one or more
attributes; :class:`HashIndex` provides that.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Sequence

from repro.relational.relation import Relation


class HashIndex:
    """A hash index mapping key-attribute values to the rows containing them.

    The index is a snapshot: it indexes the rows present in the relation when
    it is built (or when :meth:`add_row` is called).  It does not observe
    later mutations of the underlying relation.

    Parameters
    ----------
    relation:
        The relation to index.
    attributes:
        The key attributes (order matters for composite keys).
    """

    __slots__ = ("schema", "attributes", "_key_idx", "_buckets")

    def __init__(self, relation: Relation, attributes: Sequence[str]):
        self.schema = relation.schema
        self.attributes = tuple(attributes)
        self._key_idx = relation.schema.indexes_of(attributes)
        self._buckets: dict[tuple, list[tuple]] = defaultdict(list)
        for row in relation.rows:
            self._buckets[self._key(row)].append(row)

    def _key(self, row: Sequence) -> tuple:
        return tuple(row[i] for i in self._key_idx)

    def add_row(self, row: Sequence) -> None:
        """Index an additional row (the caller keeps relation/index in sync)."""
        self._buckets[self._key(tuple(row))].append(tuple(row))

    def lookup(self, *key_values) -> list[tuple]:
        """Return the rows whose key attributes equal ``key_values``."""
        return self._buckets.get(tuple(key_values), [])

    def lookup_relation(self, *key_values, name: str = "") -> Relation:
        """Like :meth:`lookup`, but wrap the result in a :class:`Relation`."""
        out = Relation(self.schema, name=name)
        out.rows = list(self.lookup(*key_values))
        return out

    def keys(self) -> Iterable[tuple]:
        """All distinct key values present in the index."""
        return self._buckets.keys()

    def __contains__(self, key: tuple) -> bool:
        if not isinstance(key, tuple):
            key = (key,)
        return key in self._buckets

    def __len__(self) -> int:
        return len(self._buckets)
