"""Hash indexes over relations.

The view cache of Section 5 (slices of ``RL`` keyed on string value), the
witness lookup paths, and the incremental join pipeline all need fast
equality lookup on one or more attributes; :class:`HashIndex` provides that.

Indexes are **live** when obtained through
:meth:`~repro.relational.relation.Relation.index_on`: the owning relation
registers them and keeps them current under inserts, partition drops and
clears — inline under ``"eager"`` maintenance, or by calling
:meth:`rebuild` on the next use under ``"lazy"`` maintenance.  The
``version`` attribute records the relation mutation counter the index was
last synchronized with; the relation uses it to decide whether a rebuild is
needed.

A :class:`HashIndex` constructed directly (not via ``index_on``) is a
snapshot of the rows present at construction time; the caller keeps it in
sync manually via :meth:`add_row` / :meth:`remove_row`, as the view cache
does.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Sequence

from repro.relational.relation import Relation


class HashIndex:
    """A hash index mapping key-attribute values to the rows containing them.

    Parameters
    ----------
    relation:
        The relation to index.
    attributes:
        The key attributes — names or column positions (order matters for
        composite keys).
    """

    __slots__ = ("schema", "attributes", "version", "_key_idx", "_buckets")

    def __init__(self, relation: Relation, attributes: Sequence):
        self.schema = relation.schema
        self._key_idx = tuple(
            relation.schema.index_of(a) if isinstance(a, str) else int(a)
            for a in attributes
        )
        self.attributes = tuple(relation.schema.attributes[i] for i in self._key_idx)
        self.version = 0
        self._buckets: dict[tuple, list[tuple]] = defaultdict(list)
        self.rebuild(relation.rows)

    def _key(self, row: Sequence) -> tuple:
        return tuple(row[i] for i in self._key_idx)

    # ------------------------------------------------------------------ #
    # maintenance
    # ------------------------------------------------------------------ #
    def add_row(self, row: Sequence) -> None:
        """Index an additional row."""
        self._buckets[self._key(tuple(row))].append(tuple(row))

    def remove_row(self, row: Sequence) -> None:
        """Drop one occurrence of ``row`` from its bucket (no-op if absent)."""
        t = tuple(row)
        bucket = self._buckets.get(self._key(t))
        if bucket is None:
            return
        try:
            bucket.remove(t)
        except ValueError:
            return
        if not bucket:
            del self._buckets[self._key(t)]

    def remove_rows(self, rows: Iterable[Sequence]) -> None:
        """Drop many rows (used when a relation partition is pruned).

        Rows are grouped by bucket first, so every touched bucket is
        rewritten at most once.  When a partition attribute is part of the
        key (e.g. the ``(docid, node2)`` state indexes), a pruned
        partition's buckets die wholesale and the cost is proportional to
        the rows dropped; otherwise it is bounded by the sizes of the
        buckets the dropped rows share.
        """
        by_key: dict[tuple, list[tuple]] = {}
        for row in rows:
            t = tuple(row)
            by_key.setdefault(self._key(t), []).append(t)
        for key, doomed in by_key.items():
            bucket = self._buckets.get(key)
            if bucket is None:
                continue
            if len(doomed) >= len(bucket):
                del self._buckets[key]
                continue
            counts: dict[tuple, int] = {}
            for t in doomed:
                counts[t] = counts.get(t, 0) + 1
            kept = []
            for t in bucket:
                left = counts.get(t, 0)
                if left:
                    counts[t] = left - 1
                else:
                    kept.append(t)
            if kept:
                self._buckets[key] = kept
            else:
                del self._buckets[key]

    def clear(self) -> None:
        """Drop every bucket."""
        self._buckets.clear()

    def rebuild(self, rows: Iterable[Sequence]) -> None:
        """Re-index from scratch (lazy maintenance catching up after mutations)."""
        buckets: dict[tuple, list[tuple]] = defaultdict(list)
        for row in rows:
            buckets[self._key(row)].append(tuple(row))
        self._buckets = buckets

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #
    def lookup(self, *key_values) -> list[tuple]:
        """Return the rows whose key attributes equal ``key_values``."""
        return self._buckets.get(tuple(key_values), [])

    def lookup_key(self, key: tuple) -> list[tuple]:
        """Like :meth:`lookup`, but the key is already a tuple (hot path)."""
        return self._buckets.get(key, [])

    def lookup_relation(self, *key_values, name: str = "") -> Relation:
        """Like :meth:`lookup`, but wrap the result in a :class:`Relation`."""
        out = Relation(self.schema, name=name)
        out.rows = list(self.lookup(*key_values))
        return out

    def keys(self) -> Iterable[tuple]:
        """All distinct key values present in the index."""
        return self._buckets.keys()

    def __contains__(self, key: tuple) -> bool:
        if not isinstance(key, tuple):
            key = (key,)
        return key in self._buckets

    def __len__(self) -> int:
        return len(self._buckets)
