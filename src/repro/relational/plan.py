"""Compiled query plans: plan a conjunctive query once, probe many times.

:func:`~repro.relational.conjunctive.evaluate_conjunctive` re-derives the
greedy join order and every atom's join metadata (constant checks, join-key
columns, fresh-variable projections) on *every* call.  That is fine for
ad-hoc queries, but the MMQJP hot loop evaluates the same per-template
conjunctive queries for every incoming document — with massively many
registered queries, the planning and term introspection dominate the actual
probing.

This module compiles a :class:`~repro.relational.conjunctive.ConjunctiveQuery`
into a :class:`CompiledPlan`:

* a **fixed join order** chosen once by the same greedy fan-out heuristic,
* fully precomputed per-step metadata (:class:`PlanStep`) — probe-key
  columns, constant keys, solution positions, fresh-column projections and
  within-atom equality checks, and
* precomputed **head projection** operations and the output schema object,

so that :meth:`CompiledPlan.execute` is a tight probe loop with zero
planning, schema lookup or term introspection per call.  The step's
``key_cols`` are ordered exactly like the per-call evaluator's (join columns
first, then constant columns), so compiled plans share the same persistent
:class:`~repro.relational.index.HashIndex` objects through
:meth:`~repro.relational.database.IndexedDatabase.index_for`.

A plan's join order is only a heuristic — the *result set* is identical for
any order — but it should track the statistics it was optimized against.
:class:`PlanCache` therefore keys each cached plan on the query's identity
plus a **stats epoch** over the stable (state/``RT``) relations the body
references: the epoch check is O(atoms) using the relations' existing
mutation counters (:attr:`~repro.relational.relation.Relation.version`) as a
fast path, and a plan is re-optimized only when a stable relation's
cardinality drifts across a power-of-two bucket — not on every insert, and
never because the per-document witness relations changed.
"""

from __future__ import annotations

from itertools import repeat
from typing import Mapping, Optional, Sequence

from repro.relational import columnar
from repro.relational.conjunctive import (
    Atom,
    ConjunctiveQuery,
    DeltaContext,
    _analyze_atom,
    _atom_matches,
    _choose_order,
    build_delta_program,
)
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema, SchemaError
from repro.relational.terms import Const


def _lookup_of(relations: Mapping[str, Relation]):
    return relations.get if hasattr(relations, "get") else relations.__getitem__


#: Default cap on intermediate-solution growth when executing a *cached*
#: plan.  A frozen join order is only a heuristic: a later document's
#: witness statistics can be skewed enough that the frozen order builds a
#: huge intermediate a fresh plan would avoid.  Exceeding the budget raises
#: :class:`PlanBudgetExceeded`, and the cache reacts by re-planning against
#: the *current* statistics and re-executing (classic reactive
#: re-optimization) — so the worst case is bounded near the plan-per-call
#: evaluator's cost instead of being exponential.
DEFAULT_GROWTH_LIMIT = 100_000


class PlanBudgetExceeded(Exception):
    """Raised when a budgeted execution grows past its solution limit."""


class PlanStep:
    """One precompiled join step: everything :meth:`CompiledPlan.execute` needs.

    Attributes
    ----------
    relation_name:
        Name of the atom's relation, resolved against the evaluation
        environment at execution time (witness relations are rebound per
        document).
    key_cols:
        Probe-key columns for :meth:`IndexedDatabase.index_for` — join
        columns followed by constant columns, matching the per-call
        evaluator so persistent indexes are shared.
    const_checks / const_key:
        ``(column, value)`` constant constraints, and the values alone (the
        key suffix for index probes).
    join_cols / join_positions:
        Columns joined against already-bound variables, and those variables'
        positions in the partial-solution tuple.
    new_var_cols:
        Columns whose values extend the solution tuple (fresh variables).
    within_eq:
        Equal-column pairs for fresh variables repeated within the atom.
    """

    __slots__ = (
        "relation_name",
        "key_cols",
        "const_checks",
        "const_key",
        "join_cols",
        "join_positions",
        "new_var_cols",
        "within_eq",
    )

    def __init__(self, atom: Atom, var_pos: dict[str, int]):
        const_checks, join_cols, new_vars, within_eq = _analyze_atom(atom, var_pos)
        self.relation_name = atom.relation
        self.const_checks = tuple(const_checks)
        self.const_key = tuple(v for _, v in const_checks)
        self.join_cols = tuple(c for c, _ in join_cols)
        self.join_positions = tuple(p for _, p in join_cols)
        self.new_var_cols = tuple(c for c, _ in new_vars)
        self.within_eq = tuple(within_eq)
        self.key_cols = self.join_cols + tuple(c for c, _ in const_checks)
        for _, name in new_vars:
            var_pos[name] = len(var_pos)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PlanStep {self.relation_name} key={self.key_cols} "
            f"new={self.new_var_cols}>"
        )


class CompiledPlan:
    """A conjunctive query compiled to a fixed join order with frozen metadata.

    Build plans with :func:`compile_plan` (or let a :class:`PlanCache` do
    it); :meth:`execute` evaluates the plan against an evaluation
    environment and returns the head relation — always the exact same
    result set as :func:`~repro.relational.conjunctive.evaluate_conjunctive`
    on the same environment, since the join order only affects cost.
    """

    __slots__ = (
        "query",
        "steps",
        "head_name",
        "head_schema",
        "head_ops",
        "head_error",
        "const_row",
        "distinct",
        "_stable_stats",
        "delta_program",
        "_body_to_step",
    )

    def __init__(
        self,
        query: ConjunctiveQuery,
        steps: Sequence[PlanStep],
        head_ops: Optional[tuple],
        head_error: Optional[str],
        stable_stats: dict[str, list],
        delta_program=None,
        body_to_step: tuple = (),
    ):
        self.query = query
        self.steps = tuple(steps)
        self.head_name = query.head_name
        self.head_schema = RelationSchema(query.head_schema)
        self.head_ops = head_ops
        self.head_error = head_error
        self.distinct = query.distinct
        # Empty body: the head is a single constant row (matching the
        # per-call evaluator), or empty if any head term is a variable.
        self.const_row: Optional[tuple] = None
        if not self.steps and all(isinstance(t, Const) for t in query.head_terms):
            self.const_row = tuple(t.value for t in query.head_terms)
        # name -> [version, size bucket] of every stable body relation.
        self._stable_stats = stable_stats
        # The precompiled semi-join reduction program (delta-driven
        # evaluation) and the body-position -> step-index permutation that
        # maps its output onto this plan's frozen join order.
        self.delta_program = delta_program
        self._body_to_step = body_to_step

    # ------------------------------------------------------------------ #
    # stats-epoch validity
    # ------------------------------------------------------------------ #
    def is_current(self, relations: Mapping[str, Relation]) -> bool:
        """Whether the plan's stats epoch still matches ``relations``.

        Unchanged mutation counters short-circuit to ``True``; a changed
        counter only invalidates the plan when the relation's cardinality
        crossed a power-of-two bucket since compilation (statistics drift
        worth re-optimizing for, per the precomputation-for-updates idea).
        """
        lookup = _lookup_of(relations)
        for name, stat in self._stable_stats.items():
            relation = lookup(name)
            if relation is None:
                return False
            version = relation.version
            if version == stat[0]:
                continue
            bucket = len(relation).bit_length()
            if bucket != stat[1]:
                return False
            stat[0] = version  # same magnitude: refresh the fast path
        return True

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def reduced_step_relations(
        self, relations: Mapping[str, Relation], delta: DeltaContext
    ) -> Optional[list]:
        """Per-step reduced relations from the semi-join pass, or ``None``.

        Runs the precompiled :class:`~repro.relational.conjunctive.DeltaProgram`
        against the current environment and remaps its body-ordered output
        onto this plan's frozen step order, ready to be passed to
        :meth:`execute` as ``step_relations``.
        """
        if self.delta_program is None:
            return None
        reduced = self.delta_program.reduce(relations, delta)
        if not reduced:
            return None
        step_relations: list = [None] * len(self.steps)
        for position, relation in enumerate(reduced):
            if relation is not None:
                step_relations[self._body_to_step[position]] = relation
        return step_relations

    def execute(
        self,
        relations: Mapping[str, Relation],
        growth_limit: Optional[int] = None,
        step_relations: Optional[Sequence] = None,
    ) -> Relation:
        """Evaluate the plan against ``relations`` and return the head relation.

        ``growth_limit`` (used by :class:`PlanCache` for cached plans)
        raises :class:`PlanBudgetExceeded` as soon as any step's
        intermediate solution set exceeds the limit, so a frozen order that
        turns pathological on the current statistics can be abandoned and
        re-planned instead of running to completion.

        ``step_relations`` (from :meth:`reduced_step_relations`) substitutes
        a delta-reduced relation for individual steps; reduced steps run on
        the ad-hoc path — the reduced relation is delta-sized, so hashing it
        per call costs what one index probe pass would.
        """
        out = Relation(self.head_schema, name=self.head_name)
        if not self.steps:
            if self.const_row is not None:
                out.rows.append(self.const_row)
            return out

        dictionary = getattr(relations, "columnar_dictionary", None)
        if dictionary is not None and columnar.HAVE_NUMPY:
            result = self._execute_columnar(
                relations, dictionary, growth_limit, step_relations, out
            )
            if result is not None:
                return result

        lookup = _lookup_of(relations)
        index_for = getattr(relations, "index_for", None)
        limited = growth_limit is not None
        solutions: list[tuple] = [()]
        for step_index, step in enumerate(self.steps):
            override = (
                step_relations[step_index] if step_relations is not None else None
            )
            new_vars = step.new_var_cols
            eq = step.within_eq
            positions = step.join_positions
            index = (
                index_for(step.relation_name, step.key_cols)
                if (override is None and index_for is not None and step.key_cols)
                else None
            )
            new_solutions: list[tuple] = []
            if index is not None:
                # Persistent-index path: probe prebuilt buckets directly.
                const_key = step.const_key
                lookup_key = index.lookup_key
                if positions:
                    for sol in solutions:
                        if limited and len(new_solutions) > growth_limit:
                            raise PlanBudgetExceeded(self._budget_message(step))
                        key = tuple(sol[p] for p in positions) + const_key
                        for row in lookup_key(key):
                            if eq and not all(row[a] == row[b] for a, b in eq):
                                continue
                            new_solutions.append(
                                sol + tuple(row[c] for c in new_vars)
                            )
                else:
                    rows = lookup_key(const_key)
                    if eq:
                        rows = [
                            r for r in rows if all(r[a] == r[b] for a, b in eq)
                        ]
                    if limited and len(solutions) * len(rows) > growth_limit:
                        raise PlanBudgetExceeded(self._budget_message(step))
                    extensions = [tuple(r[c] for c in new_vars) for r in rows]
                    for sol in solutions:
                        for extension in extensions:
                            new_solutions.append(sol + extension)
            else:
                # Ad-hoc path (ephemeral witness/view relations, and
                # delta-reduced state relations): hash the relation's rows
                # per call, keyed on the join columns.
                relation = override if override is not None else lookup(step.relation_name)
                if relation is None:
                    raise SchemaError(
                        f"unknown relation {step.relation_name!r} in compiled plan"
                    )
                consts = step.const_checks
                join_cols = step.join_cols
                buckets: dict[tuple, list[tuple]] = {}
                for row in relation.rows:
                    if consts and not all(row[c] == v for c, v in consts):
                        continue
                    if eq and not all(row[a] == row[b] for a, b in eq):
                        continue
                    key = tuple(row[c] for c in join_cols)
                    bucket = buckets.get(key)
                    if bucket is None:
                        buckets[key] = bucket = []
                    bucket.append(row)
                if positions:
                    for sol in solutions:
                        if limited and len(new_solutions) > growth_limit:
                            raise PlanBudgetExceeded(self._budget_message(step))
                        key = tuple(sol[p] for p in positions)
                        for row in buckets.get(key, ()):
                            new_solutions.append(
                                sol + tuple(row[c] for c in new_vars)
                            )
                else:
                    matched = buckets.get((), ())
                    if limited and len(solutions) * len(matched) > growth_limit:
                        raise PlanBudgetExceeded(self._budget_message(step))
                    extensions = [tuple(r[c] for c in new_vars) for r in matched]
                    for sol in solutions:
                        for extension in extensions:
                            new_solutions.append(sol + extension)
            solutions = new_solutions
            if not solutions:
                return out

        if self.head_ops is None:
            # Mirrors the per-call evaluator: the unbound-head error is only
            # raised when there are solutions to project.
            raise SchemaError(self.head_error)
        rows = out.rows
        if self.distinct:
            seen: set[tuple] = set()
            for sol in solutions:
                row = tuple(v if const else sol[v] for const, v in self.head_ops)
                if row not in seen:
                    seen.add(row)
                    rows.append(row)
        else:
            for sol in solutions:
                rows.append(tuple(v if const else sol[v] for const, v in self.head_ops))
        return out

    def _execute_columnar(
        self,
        relations: Mapping[str, Relation],
        dictionary,
        growth_limit: Optional[int],
        step_relations: Optional[Sequence],
        out: Relation,
    ) -> Optional[Relation]:
        """Vectorized execution over packed id columns, or ``None``.

        The partial-solution table is a list of per-variable int64 id
        arrays; each step batch-probes a memoized
        :class:`~repro.relational.columnar.GroupIndex` over the step
        relation's id columns and the matches expand through
        ``repeat``/``cumsum`` arithmetic instead of a per-solution Python
        loop.  Returns ``None`` when any step lacks a usable sidecar or a
        packed probe key cannot be formed — the caller falls back to the
        row path *before* ``out`` is touched, so a fallback never leaks a
        partial result.  The same growth budget applies as on the row path
        (totals are checked per step, so a breach can trigger at slightly
        different points; :class:`PlanCache` re-plans either way).
        """
        np = columnar._np
        lookup = _lookup_of(relations)
        resolved = []
        for step_index, step in enumerate(self.steps):
            override = (
                step_relations[step_index] if step_relations is not None else None
            )
            relation = override if override is not None else lookup(step.relation_name)
            if relation is None:
                raise SchemaError(
                    f"unknown relation {step.relation_name!r} in compiled plan"
                )
            store = relation.column_store()
            if store is None or store.dictionary is not dictionary:
                return None
            resolved.append(store)

        limited = growth_limit is not None
        sols: list = []  # one int64 id array per bound variable
        num_sols = 1     # starts at the single empty solution
        for step, store in zip(self.steps, resolved):
            cols = store.columns()
            const_ids: list[int] = []
            for _col, value in step.const_checks:
                cid = dictionary.get_id(value)
                if cid is None:
                    try:
                        hash(value)
                    except TypeError:
                        return None  # unhashable constant: row-path equality
                    return out  # the constant occurs nowhere in this state
                const_ids.append(cid)
            eq = step.within_eq
            positions = step.join_positions
            if positions:
                probe_cols = [sols[p] for p in positions]
                probe_cols.extend(
                    np.full(num_sols, cid, dtype=np.int64) for cid in const_ids
                )
                hit = store.probe(step.key_cols, probe_cols)
                if hit is None:
                    return None  # packed key would overflow int64: row path
                probe_idx, row_pos = hit
                if eq and len(row_pos):
                    mask = None
                    for a, b in eq:
                        m = cols[a][row_pos] == cols[b][row_pos]
                        mask = m if mask is None else (mask & m)
                    probe_idx, row_pos = probe_idx[mask], row_pos[mask]
                if limited and len(row_pos) > growth_limit:
                    raise PlanBudgetExceeded(self._budget_message(step))
                sols = [col[probe_idx] for col in sols]
                sols.extend(cols[c][row_pos] for c in step.new_var_cols)
                num_sols = len(row_pos)
            else:
                if const_ids:
                    constraints = [
                        (col, frozenset((cid,)))
                        for (col, _v), cid in zip(step.const_checks, const_ids)
                    ]
                    matched = columnar.select_positions(cols, len(store), constraints)
                else:
                    matched = np.arange(len(store), dtype=np.int64)
                if eq and len(matched):
                    mask = None
                    for a, b in eq:
                        m = cols[a][matched] == cols[b][matched]
                        mask = m if mask is None else (mask & m)
                    matched = matched[mask]
                r = len(matched)
                if limited and num_sols * r > growth_limit:
                    raise PlanBudgetExceeded(self._budget_message(step))
                sols = [np.repeat(col, r) for col in sols]
                sols.extend(
                    np.tile(cols[c][matched], num_sols) for c in step.new_var_cols
                )
                num_sols *= r
            if not num_sols:
                return out

        if self.head_ops is None:
            raise SchemaError(self.head_error)
        rows = out.rows
        if not self.head_ops:  # zero-arity head: same dedup as the row path
            if self.distinct:
                rows.append(())
            else:
                rows.extend(() for _ in range(num_sols))
            return out
        values = dictionary.values
        columns = []
        for const, v in self.head_ops:
            if const:
                columns.append(repeat(v, num_sols))
            else:
                columns.append([values[i] for i in sols[v].tolist()])
        if self.distinct:
            seen: set[tuple] = set()
            for row in zip(*columns):
                if row not in seen:
                    seen.add(row)
                    rows.append(row)
        else:
            rows.extend(zip(*columns))
        return out

    def _budget_message(self, step: PlanStep) -> str:
        return (
            f"{self.head_name}: intermediate solutions exceeded the growth "
            f"limit while joining {step.relation_name}"
        )

    @property
    def join_order(self) -> tuple[str, ...]:
        """The relation names in compiled join order (introspection/tests)."""
        return tuple(step.relation_name for step in self.steps)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CompiledPlan {self.head_name} order={self.join_order}>"


def compile_plan(
    query: ConjunctiveQuery, relations: Mapping[str, Relation]
) -> CompiledPlan:
    """Compile ``query`` against the statistics of ``relations``.

    The greedy join order and all per-step metadata are fixed here; the
    returned plan can be executed against any later state of the same
    environment (the result set never depends on the order — only the cost
    does, which is what :meth:`CompiledPlan.is_current` tracks).
    """
    lookup = _lookup_of(relations)
    rel_map: dict[str, Relation] = {}
    for atom in query.body:
        relation = lookup(atom.relation)
        if relation is None:
            raise SchemaError(
                f"unknown relation {atom.relation!r} in conjunctive query"
            )
        _atom_matches(atom, relation)
        rel_map[atom.relation] = relation

    ordered = _choose_order(query.body, rel_map)
    var_pos: dict[str, int] = {}
    steps = [PlanStep(atom, var_pos) for atom in ordered]

    head_ops: Optional[tuple] = None
    head_error: Optional[str] = None
    if ordered:
        ops = []
        for t in query.head_terms:
            if isinstance(t, Const):
                ops.append((True, t.value))
            elif t.name in var_pos:
                ops.append((False, var_pos[t.name]))
            else:
                head_error = f"head variable {t.name!r} is not bound by the body"
                break
        else:
            head_ops = tuple(ops)

    is_stable = getattr(relations, "is_stable", None)
    stable_stats: dict[str, list] = {}
    for name, relation in rel_map.items():
        if is_stable is not None and not is_stable(name):
            continue
        stable_stats[name] = [relation.version, len(relation).bit_length()]

    delta_program = build_delta_program(query.body, relations)
    step_index_of = {id(atom): index for index, atom in enumerate(ordered)}
    body_to_step = tuple(step_index_of[id(atom)] for atom in query.body)

    return CompiledPlan(
        query,
        steps,
        head_ops,
        head_error,
        stable_stats,
        delta_program=delta_program,
        body_to_step=body_to_step,
    )


class PlanCache:
    """A cache of compiled plans keyed on query identity and stats epoch.

    One cache per processor: plans are compiled against that processor's
    evaluation environment.  ``hits`` / ``misses`` / ``replans`` /
    ``aborts`` count, respectively, executions of a still-current plan,
    first-time compilations, re-optimizations forced by stats-epoch drift,
    and cached executions abandoned mid-flight because the frozen order
    blew past ``growth_limit`` on the current statistics (each abort also
    re-plans and re-executes, so results are never lost).
    """

    def __init__(self, growth_limit: Optional[int] = DEFAULT_GROWTH_LIMIT) -> None:
        self._entries: dict[int, tuple[ConjunctiveQuery, CompiledPlan]] = {}
        self.growth_limit = growth_limit
        self.hits = 0
        self.misses = 0
        self.replans = 0
        self.aborts = 0

    def _current_plan(
        self, query: ConjunctiveQuery, relations: Mapping[str, Relation]
    ) -> tuple[CompiledPlan, bool]:
        """``(plan, cached)`` — ``cached`` when a still-current plan was reused.

        The cache keys on object identity (and keeps a strong reference, so
        a recycled ``id`` can never alias a dead query): the registry and
        the sequential processor hold one long-lived ``ConjunctiveQuery``
        per template/query, which is exactly the sharing this exploits.
        """
        key = id(query)
        entry = self._entries.get(key)
        if entry is not None and entry[0] is query:
            plan = entry[1]
            if plan.is_current(relations):
                self.hits += 1
                return plan, True
            self.replans += 1
        else:
            self.misses += 1
        plan = compile_plan(query, relations)
        self._entries[key] = (query, plan)
        return plan, False

    def plan_for(
        self, query: ConjunctiveQuery, relations: Mapping[str, Relation]
    ) -> CompiledPlan:
        """The current plan for ``query``, compiling or re-planning as needed."""
        return self._current_plan(query, relations)[0]

    def evaluate(
        self,
        query: ConjunctiveQuery,
        relations: Mapping[str, Relation],
        delta: Optional[DeltaContext] = None,
    ) -> Relation:
        """Evaluate ``query`` through the cache (plan, probe, adapt).

        Cached plans run under the growth budget; on a budget breach the
        plan is re-optimized against the *current* statistics and
        re-executed — a fresh plan already carries the best order the
        optimizer can produce for the current statistics, so fresh plans
        (and the post-abort re-execution) run unbudgeted.

        With a :class:`~repro.relational.conjunctive.DeltaContext` the
        plan's precompiled semi-join reduction runs first and the join
        probes the reduced state relations (delta-driven evaluation); the
        result set is identical either way.
        """
        plan, cached = self._current_plan(query, relations)
        step_relations = (
            plan.reduced_step_relations(relations, delta) if delta is not None else None
        )
        if cached:
            try:
                return plan.execute(
                    relations,
                    growth_limit=self.growth_limit,
                    step_relations=step_relations,
                )
            except PlanBudgetExceeded:
                self.aborts += 1
                plan = compile_plan(query, relations)
                self._entries[id(query)] = (query, plan)
                step_relations = (
                    plan.reduced_step_relations(relations, delta)
                    if delta is not None
                    else None
                )
        return plan.execute(relations, step_relations=step_relations)

    def invalidate(self, query: ConjunctiveQuery) -> bool:
        """Drop the cached plan of ``query`` (query retraction path).

        Returns ``True`` when an entry was removed.  The next evaluation of
        the same query object recompiles against the then-current
        statistics.
        """
        entry = self._entries.get(id(query))
        if entry is not None and entry[0] is query:
            del self._entries[id(query)]
            return True
        return False

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict[str, int]:
        """Hit/miss/replan/abort counters plus the number of cached plans."""
        return {
            "plans": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "replans": self.replans,
            "aborts": self.aborts,
        }
