"""Relation schemas: ordered, named attributes.

A :class:`RelationSchema` is an immutable, ordered sequence of attribute
names.  Attribute order matters because tuples are stored as plain Python
tuples; the schema provides the mapping from attribute name to position.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence


class SchemaError(ValueError):
    """Raised for malformed schemas or schema mismatches between relations."""


class RelationSchema:
    """An ordered list of attribute names describing a relation's columns.

    Parameters
    ----------
    attributes:
        Attribute names, in column order.  Names must be non-empty strings
        and unique within the schema.

    Examples
    --------
    >>> s = RelationSchema(["docid", "node", "strVal"])
    >>> s.index_of("node")
    1
    >>> len(s)
    3
    """

    __slots__ = ("_attributes", "_positions")

    def __init__(self, attributes: Sequence[str]):
        attrs = tuple(attributes)
        if not attrs:
            raise SchemaError("a relation schema needs at least one attribute")
        positions: dict[str, int] = {}
        for i, name in enumerate(attrs):
            if not isinstance(name, str) or not name:
                raise SchemaError(f"attribute name must be a non-empty string, got {name!r}")
            if name in positions:
                raise SchemaError(f"duplicate attribute name {name!r}")
            positions[name] = i
        self._attributes = attrs
        self._positions = positions

    @property
    def attributes(self) -> tuple[str, ...]:
        """The attribute names, in column order."""
        return self._attributes

    def index_of(self, attribute: str) -> int:
        """Return the column position of ``attribute``.

        Raises :class:`SchemaError` if the attribute is not part of the schema.
        """
        try:
            return self._positions[attribute]
        except KeyError:
            raise SchemaError(
                f"attribute {attribute!r} not in schema {self._attributes}"
            ) from None

    def indexes_of(self, attributes: Iterable[str]) -> tuple[int, ...]:
        """Return the column positions of several attributes, in the given order."""
        return tuple(self.index_of(a) for a in attributes)

    def __contains__(self, attribute: object) -> bool:
        return attribute in self._positions

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[str]:
        return iter(self._attributes)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RelationSchema):
            return self._attributes == other._attributes
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._attributes)

    def __repr__(self) -> str:
        return f"RelationSchema({list(self._attributes)!r})"

    def project(self, attributes: Sequence[str]) -> "RelationSchema":
        """Return a new schema containing only ``attributes`` (in that order)."""
        for a in attributes:
            self.index_of(a)
        return RelationSchema(attributes)

    def rename(self, mapping: dict[str, str]) -> "RelationSchema":
        """Return a new schema with attributes renamed according to ``mapping``.

        Attributes not present in ``mapping`` keep their names.
        """
        return RelationSchema([mapping.get(a, a) for a in self._attributes])

    def concat(self, other: "RelationSchema") -> "RelationSchema":
        """Return the schema of the concatenation (e.g. a cartesian product).

        Raises :class:`SchemaError` on attribute name collisions.
        """
        return RelationSchema(self._attributes + other.attributes)
