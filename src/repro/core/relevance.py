"""Relevance-pruned dispatch: from bound Stage-1 variables to the work to do.

The paper's central scaling claim is that per-document work must grow with
the queries *relevant* to the event, not with the total registry.  Stage 1
already tells us exactly which (canonical) variables the current document
bound; every conjunctive query whose right-hand-side (current-document)
variables are not all among them is guaranteed to evaluate to the empty
relation, because each RHS variable's name is constrained by an ``RbinW`` /
``RvarW`` (or ``RR`` / ``RRvar``) atom that can have no matching witness
row.

:class:`RelevanceIndex` is the inverted index the processors consult per
document: *members* (one per registered query, keyed by a caller-chosen
*member key* — the query id — and grouped under a caller-chosen *group* —
the template id for MMQJP, the query id for the Sequential baseline) are
posted under each of their required RHS variables, and
:meth:`RelevanceIndex.relevant` returns the groups with at least one member
whose required variables are all bound.  The per-document cost is
proportional to the postings of the *bound* variables (≈ the relevant
queries), never to the total registry.

Members are individually removable (:meth:`RelevanceIndex.remove`): when a
subscription is cancelled its postings disappear, so the index shrinks with
the registry instead of accumulating dead queries forever.

The sharded runtime reuses the same structure one level up:
:class:`~repro.runtime.router.ShardRouter` posts each join subscription's
block variables under its owning *shard*, turning the broker's document
fan-out into a relevance query — only the shards hosting templates the
document can bind are dispatched to.
"""

from __future__ import annotations

import itertools
from typing import Hashable, Iterable, Optional

__all__ = ["RelevanceIndex"]


class RelevanceIndex:
    """Inverted index from required (RHS) variables to dispatch groups."""

    def __init__(self) -> None:
        # member key -> (group, required variable set); excludes always-on members
        self._members: dict[Hashable, tuple[Hashable, frozenset]] = {}
        # variable -> member keys of the members requiring it
        self._postings: dict[str, set[Hashable]] = {}
        # member key -> group, for members requiring nothing (always dispatched)
        self._always: dict[Hashable, Hashable] = {}
        self._anon = itertools.count()

    def add(
        self,
        group: Hashable,
        required_vars: Iterable[str],
        member: Optional[Hashable] = None,
    ) -> Hashable:
        """Register one member of ``group`` requiring ``required_vars``.

        ``member`` is the key under which the posting can later be removed
        (the processors pass the query id); an anonymous key is minted when
        omitted.  A member with no required variables makes its group
        unconditionally relevant (defensive: canonical join queries always
        bind at least one RHS variable).  Returns the member key.
        """
        if member is None:
            member = ("anon", next(self._anon))
        if member in self._members or member in self._always:
            raise ValueError(f"relevance member {member!r} is already registered")
        required = frozenset(required_vars)
        if not required:
            self._always[member] = group
            return member
        self._members[member] = (group, required)
        for variable in required:
            self._postings.setdefault(variable, set()).add(member)
        return member

    def remove(self, member: Hashable) -> bool:
        """Remove one member's postings (subscription retraction path).

        Returns ``True`` when the member was present.  Unknown members are
        tolerated: a query cancelled before the processor's incremental
        sync ever indexed it simply has nothing to remove.
        """
        if member in self._always:
            del self._always[member]
            return True
        entry = self._members.pop(member, None)
        if entry is None:
            return False
        for variable in entry[1]:
            postings = self._postings.get(variable)
            if postings is not None:
                postings.discard(member)
                if not postings:
                    del self._postings[variable]
        return True

    def has_member(self, member: Hashable) -> bool:
        """Whether ``member`` currently has postings in the index."""
        return member in self._members or member in self._always

    def relevant(self, bound_variables: set[str]) -> set[Hashable]:
        """Groups with at least one member whose requirements are all bound."""
        relevant = set(self._always.values())
        if not self._members or not bound_variables:
            return relevant
        candidates: set[Hashable] = set()
        postings = self._postings
        for variable in bound_variables:
            members = postings.get(variable)
            if members:
                candidates.update(members)
        members_map = self._members
        for member in candidates:
            group, required = members_map[member]
            if group not in relevant and required <= bound_variables:
                relevant.add(group)
        return relevant

    @property
    def num_members(self) -> int:
        """Number of registered members (queries)."""
        return len(self._members) + len(self._always)

    @property
    def num_variables(self) -> int:
        """Number of variables with at least one posting (index width)."""
        return len(self._postings)

    @property
    def num_groups(self) -> int:
        """Number of distinct dispatch groups."""
        return len(
            {group for group, _ in self._members.values()} | set(self._always.values())
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RelevanceIndex members={self.num_members} "
            f"vars={len(self._postings)}>"
        )
