"""Relevance-pruned dispatch: from bound Stage-1 variables to the work to do.

The paper's central scaling claim is that per-document work must grow with
the queries *relevant* to the event, not with the total registry.  Stage 1
already tells us exactly which (canonical) variables the current document
bound; every conjunctive query whose right-hand-side (current-document)
variables are not all among them is guaranteed to evaluate to the empty
relation, because each RHS variable's name is constrained by an ``RbinW`` /
``RvarW`` (or ``RR`` / ``RRvar``) atom that can have no matching witness
row.

:class:`RelevanceIndex` is the inverted index the processors consult per
document: *members* (one per registered query, keyed by a caller-chosen
*group* — the template id for MMQJP, the query id for the Sequential
baseline) are posted under each of their required RHS variables, and
:meth:`RelevanceIndex.relevant` returns the groups with at least one member
whose required variables are all bound.  The per-document cost is
proportional to the postings of the *bound* variables (≈ the relevant
queries), never to the total registry.
"""

from __future__ import annotations

from typing import Hashable, Iterable


class RelevanceIndex:
    """Inverted index from required (RHS) variables to dispatch groups."""

    def __init__(self) -> None:
        # member index -> (group, required variable set)
        self._members: list[tuple[Hashable, frozenset]] = []
        # variable -> indexes of the members requiring it
        self._postings: dict[str, list[int]] = {}
        # groups with a member requiring nothing: always dispatched
        self._always: set[Hashable] = set()

    def add(self, group: Hashable, required_vars: Iterable[str]) -> None:
        """Register one member of ``group`` requiring ``required_vars``.

        A member with no required variables makes its group unconditionally
        relevant (defensive: canonical join queries always bind at least one
        RHS variable).
        """
        required = frozenset(required_vars)
        if not required:
            self._always.add(group)
            return
        member = len(self._members)
        self._members.append((group, required))
        for variable in required:
            self._postings.setdefault(variable, []).append(member)

    def relevant(self, bound_variables: set[str]) -> set[Hashable]:
        """Groups with at least one member whose requirements are all bound."""
        relevant = set(self._always)
        if not self._members or not bound_variables:
            return relevant
        candidates: set[int] = set()
        postings = self._postings
        for variable in bound_variables:
            members = postings.get(variable)
            if members:
                candidates.update(members)
        members = self._members
        for index in candidates:
            group, required = members[index]
            if group not in relevant and required <= bound_variables:
                relevant.add(group)
        return relevant

    @property
    def num_members(self) -> int:
        """Number of registered members (queries)."""
        return len(self._members) + len(self._always)

    @property
    def num_groups(self) -> int:
        """Number of distinct dispatch groups."""
        return len({group for group, _ in self._members} | self._always)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RelevanceIndex members={self.num_members} "
            f"vars={len(self._postings)}>"
        )
