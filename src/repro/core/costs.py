"""Per-phase cost accounting.

Figures 14 and 15 of the paper break the total join-processing time into the
costs of computing ``Rvj``, ``RL``, ``RR`` and of evaluating the conjunctive
queries.  :class:`CostBreakdown` accumulates wall-clock time per named phase
so the benchmark harness can reproduce those stacked bars.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterable


@dataclass
class CostBreakdown:
    """Accumulated wall-clock seconds per named processing phase.

    With a :class:`repro.metrics.MetricsRegistry` attached
    (:meth:`attach_metrics`), every measured span is additionally recorded
    into the registry's ``stage:<phase>`` histogram — the same
    instrumentation points then yield latency *distributions*
    (p50/p95/p99/max per span) on top of the accumulated totals.  Without
    one attached (the default), :meth:`add` pays a single ``None`` check.
    """

    seconds: dict[str, float] = field(default_factory=dict)
    metrics: object = field(default=None, repr=False, compare=False)

    def attach_metrics(self, registry) -> None:
        """Mirror subsequent measurements into ``registry`` (None detaches)."""
        self.metrics = registry

    def add(self, phase: str, elapsed: float) -> None:
        """Add ``elapsed`` seconds to ``phase``."""
        self.seconds[phase] = self.seconds.get(phase, 0.0) + elapsed
        if self.metrics is not None:
            self.metrics.histogram("stage:" + phase).record(elapsed)

    @contextmanager
    def measure(self, phase: str):
        """Context manager timing a block of code into ``phase``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(phase, time.perf_counter() - start)

    def merge(self, other: "CostBreakdown") -> "CostBreakdown":
        """Accumulate another breakdown into this one (returns self)."""
        for phase, secs in other.seconds.items():
            self.add(phase, secs)
        return self

    @classmethod
    def combined(cls, breakdowns: "Iterable[CostBreakdown]") -> "CostBreakdown":
        """A fresh breakdown accumulating several others (e.g. one per shard)."""
        total = cls()
        for breakdown in breakdowns:
            total.merge(breakdown)
        return total

    @property
    def total(self) -> float:
        """Total seconds across all phases."""
        return sum(self.seconds.values())

    def get(self, phase: str) -> float:
        """Seconds recorded for ``phase`` (0.0 when absent)."""
        return self.seconds.get(phase, 0.0)

    def reset(self) -> None:
        """Clear all recorded costs."""
        self.seconds.clear()

    def as_milliseconds(self) -> dict[str, float]:
        """The breakdown converted to milliseconds (rounded to 3 decimals)."""
        return {phase: round(secs * 1000.0, 3) for phase, secs in self.seconds.items()}

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v * 1000:.1f}ms" for k, v in sorted(self.seconds.items()))
        return f"<CostBreakdown {parts}>"
