"""Two-stage query-processing engines over XML documents.

:class:`MMQJPEngine` wires together Stage 1 (the shared
:class:`~repro.xpath.evaluator.XPathEvaluator`) and Stage 2 (the
:class:`~repro.core.processor.MMQJPJoinProcessor`), maintains the join state
and (optionally) the original documents so that output XML documents can be
constructed.  :class:`SequentialEngine` offers the identical interface on
top of the one-query-at-a-time baseline, so the two can be compared — and
checked for result equivalence — on any workload.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Union

from repro.core.costs import CostBreakdown
from repro.core.materialize import ViewCache
from repro.core.processor import MMQJPJoinProcessor, SequentialJoinProcessor
from repro.core.results import Match, build_output_document
from repro.core.state import JoinState
from repro.core.witnesses import WitnessRelations
from repro.templates.registry import TemplateRegistry
from repro.xmlmodel.document import XmlDocument
from repro.xmlmodel.parser import parse_document
from repro.xpath.evaluator import XPathEvaluator
from repro.xscl.ast import INFINITE_WINDOW, JoinOperator, JoinSpec, ValueJoinPredicate, XsclQuery
from repro.xscl.normalize import VariableCatalog, canonicalize_query
from repro.xscl.parser import parse_query
from repro.templates.join_graph import Side

#: Suffix used internally for the mirrored registration of symmetric JOIN queries.
_SWAP_SUFFIX = "::swap"

#: Engine selection keywords accepted by :func:`make_engine` (and the brokers).
ENGINES = ("mmqjp", "mmqjp-vm", "sequential")


@dataclass
class EngineStats:
    """Summary statistics of an engine."""

    num_queries: int
    num_templates: Optional[int]
    num_documents_processed: int
    num_matches: int
    state_documents: int
    costs: dict[str, float] = field(default_factory=dict)


def merge_engine_stats(stats: Sequence[EngineStats], fanout: bool = True) -> EngineStats:
    """Merge per-engine statistics into one aggregate :class:`EngineStats`.

    Query and match counts are summed (shards own disjoint query sets), and
    the per-phase costs are accumulated.  With ``fanout=True`` (the sharded
    runtime's fan-out model, where every engine processes every document)
    ``num_documents_processed`` and ``state_documents`` take the maximum
    across engines instead of the sum, so they keep counting *documents*
    rather than (document, shard) pairs.
    """
    if not stats:
        return EngineStats(0, None, 0, 0, 0, {})
    doc_agg = max if fanout else sum
    templates = [s.num_templates for s in stats if s.num_templates is not None]
    costs: dict[str, float] = {}
    for s in stats:
        for phase, ms in s.costs.items():
            costs[phase] = round(costs.get(phase, 0.0) + ms, 3)
    return EngineStats(
        num_queries=sum(s.num_queries for s in stats),
        num_templates=sum(templates) if templates else None,
        num_documents_processed=doc_agg(s.num_documents_processed for s in stats),
        num_matches=sum(s.num_matches for s in stats),
        state_documents=doc_agg(s.state_documents for s in stats),
        costs=costs,
    )


class _BaseEngine:
    """Shared machinery of the MMQJP and Sequential engines."""

    def __init__(
        self,
        store_documents: bool = True,
        auto_timestamp: bool = True,
        auto_prune: bool = True,
    ):
        self.evaluator = XPathEvaluator()
        self.catalog = VariableCatalog()
        self.store_documents = store_documents
        self.auto_timestamp = auto_timestamp
        self.auto_prune = auto_prune
        self.documents: dict[str, XmlDocument] = {}
        self._qid_counter = itertools.count(1)
        self._clock = itertools.count(1)
        self._registered: dict[str, XsclQuery] = {}
        self._root_vars: dict[str, tuple[Optional[str], Optional[str]]] = {}
        self._max_finite_window = 0.0
        self._has_infinite_window = False
        self.num_documents_processed = 0
        self.num_matches = 0

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def register_query(
        self,
        query: Union[str, XsclQuery],
        qid: Optional[str] = None,
        window_symbols: Optional[dict[str, float]] = None,
    ) -> str:
        """Register an XSCL query (text or AST) and return its query id."""
        if isinstance(query, str):
            query = parse_query(query, window_symbols=window_symbols)
        if not query.is_join_query:
            raise ValueError(
                "the join engines process inter-document (join) queries; "
                "use repro.pubsub.Broker for single-block filter subscriptions"
            )
        qid = qid if qid is not None else f"q{next(self._qid_counter)}"
        if qid in self._registered:
            raise ValueError(f"query id {qid!r} is already registered")

        canonical = canonicalize_query(query, self.catalog)
        self._registered[qid] = canonical
        self._root_vars[qid] = (
            canonical.left.root_variable,
            canonical.right.root_variable if canonical.right else None,
        )

        window = canonical.join.window
        if window == INFINITE_WINDOW:
            self._has_infinite_window = True
        else:
            self._max_finite_window = max(self._max_finite_window, window)

        self._register_with_processor(qid, canonical)
        if canonical.join.operator is JoinOperator.JOIN:
            self._register_with_processor(qid + _SWAP_SUFFIX, _swap_query(canonical))
        return qid

    def register_queries(self, queries: Iterable[Union[str, XsclQuery]]) -> list[str]:
        """Register many queries; returns their query ids."""
        return [self.register_query(q) for q in queries]

    def _register_with_processor(self, qid: str, query: XsclQuery) -> None:
        raise NotImplementedError

    def _register_stage1(self, query: XsclQuery, reduced) -> None:
        """Register the reduced graph's variables and edges with the XPath Evaluator."""
        patterns = {Side.LEFT: query.left.pattern, Side.RIGHT: query.right.pattern}
        for side, var in reduced.nodes:
            pattern = patterns[side]
            self.evaluator.register_variable(var, pattern.stream, pattern.absolute_path_of(var))
        for (p_side, p_var), (c_side, c_var) in reduced.structural_edges:
            pattern = patterns[p_side]
            self.evaluator.register_edge(
                p_var, c_var, pattern.relative_path_between(p_var, c_var)
            )

    # ------------------------------------------------------------------ #
    # document processing
    # ------------------------------------------------------------------ #
    def process_document(
        self,
        document: Union[str, XmlDocument],
        timestamp: Optional[float] = None,
    ) -> list[Match]:
        """Run both stages on one incoming document and return its matches."""
        if isinstance(document, str):
            document = parse_document(document)
        if timestamp is not None:
            document.timestamp = float(timestamp)
        elif self.auto_timestamp and document.timestamp == 0.0:
            document.timestamp = float(next(self._clock))

        witnesses = self.evaluator.evaluate(document)
        relations = WitnessRelations.from_witnesses(witnesses)
        raw_matches = self._processor().process(relations)
        self._processor().maintain_state(relations)
        self._after_state_maintenance(document)

        if self.store_documents:
            self.documents[document.docid] = document

        matches = self._normalize_matches(raw_matches)
        self.num_documents_processed += 1
        self.num_matches += len(matches)
        return matches

    def process_stream(self, documents: Iterable[Union[str, XmlDocument]]) -> list[Match]:
        """Process a sequence of documents; returns all matches in arrival order."""
        out: list[Match] = []
        for document in documents:
            out.extend(self.process_document(document))
        return out

    def _processor(self):
        raise NotImplementedError

    def _after_state_maintenance(self, document: XmlDocument) -> None:
        """Window-based pruning of state (only when every window is finite)."""
        if not self.auto_prune:
            return
        if self._has_infinite_window or self._max_finite_window <= 0:
            return
        self.prune(document.timestamp - self._max_finite_window)

    def prune(self, min_timestamp: float) -> int:
        """Drop state (and stored documents) older than ``min_timestamp``.

        Called automatically after every document when ``auto_prune`` is on
        and all registered windows are finite; exposed publicly so brokers
        can prune on demand (e.g. with ``auto_prune=False``).  Returns the
        number of documents removed from the join state.
        """
        removed = self._prune(min_timestamp)
        if removed and self.store_documents:
            alive = self._processor().state.document_ids()
            self.documents = {d: doc for d, doc in self.documents.items() if d in alive}
        return removed

    def _prune(self, min_timestamp: float) -> int:
        return self._processor().prune_state(min_timestamp)

    def _normalize_matches(self, matches: list[Match]) -> list[Match]:
        """Strip the internal swap suffix and de-duplicate symmetric JOIN matches."""
        out: list[Match] = []
        seen: set[tuple] = set()
        for match in matches:
            if match.qid.endswith(_SWAP_SUFFIX):
                match = Match(
                    qid=match.qid[: -len(_SWAP_SUFFIX)],
                    lhs_docid=match.rhs_docid,
                    rhs_docid=match.lhs_docid,
                    lhs_timestamp=match.rhs_timestamp,
                    rhs_timestamp=match.lhs_timestamp,
                    lhs_bindings=match.rhs_bindings,
                    rhs_bindings=match.lhs_bindings,
                    window=match.window,
                )
            if match.key() not in seen:
                seen.add(match.key())
                out.append(match)
        return out

    # ------------------------------------------------------------------ #
    # results and stats
    # ------------------------------------------------------------------ #
    def output_document(self, match: Match) -> XmlDocument:
        """Construct the output XML document of a match (default SELECT semantics).

        Requires ``store_documents=True`` (the default).
        """
        if match.lhs_docid not in self.documents or match.rhs_docid not in self.documents:
            raise KeyError(
                "output construction needs the original documents; "
                "the engine was created with store_documents=False or the "
                "documents were pruned"
            )
        lhs_root, rhs_root = self._root_vars.get(match.qid, (None, None))
        return build_output_document(
            match,
            self.documents[match.lhs_docid],
            self.documents[match.rhs_docid],
            lhs_root_variable=lhs_root,
            rhs_root_variable=rhs_root,
        )

    @property
    def registered_queries(self) -> dict[str, XsclQuery]:
        """The registered (canonicalized) queries by query id."""
        return dict(self._registered)

    @property
    def num_queries(self) -> int:
        """Number of registered queries."""
        return len(self._registered)

    @property
    def costs(self) -> CostBreakdown:
        """The processor's accumulated cost breakdown."""
        return self._processor().costs

    @property
    def indexing(self) -> str:
        """The join-state indexing mode (``"eager"`` / ``"lazy"`` / ``"off"``)."""
        return self._processor().indexing

    @property
    def plan_cache(self):
        """The processor's compiled-plan cache (``None`` when disabled)."""
        return self._processor().plan_cache

    @property
    def prune_dispatch(self) -> bool:
        """Whether relevance-pruned dispatch is enabled."""
        return self._processor().relevance is not None

    def stats(self) -> EngineStats:
        """Summary statistics for dashboards, examples and tests."""
        return EngineStats(
            num_queries=self.num_queries,
            num_templates=getattr(self, "num_templates", None),
            num_documents_processed=self.num_documents_processed,
            num_matches=self.num_matches,
            state_documents=self._processor().state.num_documents,
            costs=self.costs.as_milliseconds(),
        )


def _swap_query(query: XsclQuery) -> XsclQuery:
    """Mirror a symmetric JOIN query (blocks and predicate orientation swapped)."""
    swapped_predicates = tuple(
        ValueJoinPredicate(p.right_var, p.left_var) for p in query.join.predicates
    )
    return XsclQuery(
        left=query.right,
        right=query.left,
        join=JoinSpec(
            operator=query.join.operator,
            predicates=swapped_predicates,
            window=query.join.window,
        ),
        select=query.select,
        publish=query.publish,
        name=query.name,
        text=query.text,
    )


class MMQJPEngine(_BaseEngine):
    """The paper's system: shared Stage 1 plus template-based Stage 2.

    Parameters
    ----------
    use_view_materialization:
        Evaluate the per-template conjunctive queries over the materialized
        views ``RL`` / ``RR`` (Section 5) instead of the raw witness relations.
    view_cache_size:
        When view materialization is on, cache up to this many ``RL`` slices
        keyed on string value (``None`` disables the cache; pass ``0`` is
        invalid).  Implies ``use_view_materialization=True``.
    store_documents:
        Keep processed documents so output XML can be constructed.
    auto_timestamp:
        Assign monotonically increasing timestamps to documents that arrive
        with timestamp 0.
    auto_prune:
        Prune the join state by window horizon after every document (only
        effective while every registered window is finite).
    indexing:
        Join-state index maintenance: ``"eager"`` (default) keeps the
        persistent join indexes current on every merge/prune, ``"lazy"``
        rebuilds them on first use after a mutation, ``"off"`` disables
        them (per-call hashing, the pre-incremental behavior).
    plan_cache:
        Evaluate the per-template conjunctive queries through compiled,
        cached plans (default).  ``False`` re-plans on every call
        (ablation/equivalence baseline).
    prune_dispatch:
        Skip templates irrelevant to the current document — none of their
        member queries has all RHS variables bound (default).  ``False``
        visits every template.
    """

    def __init__(
        self,
        use_view_materialization: bool = False,
        view_cache_size: Optional[int] = None,
        store_documents: bool = True,
        auto_timestamp: bool = True,
        auto_prune: bool = True,
        indexing: str = "eager",
        plan_cache: bool = True,
        prune_dispatch: bool = True,
    ):
        super().__init__(
            store_documents=store_documents,
            auto_timestamp=auto_timestamp,
            auto_prune=auto_prune,
        )
        self.registry = TemplateRegistry()
        view_cache = None
        if view_cache_size is not None:
            use_view_materialization = True
            view_cache = ViewCache(max_entries=view_cache_size)
        self.processor = MMQJPJoinProcessor(
            registry=self.registry,
            state=JoinState(indexing=indexing),
            use_view_materialization=use_view_materialization,
            view_cache=view_cache,
            plan_cache=plan_cache,
            prune_dispatch=prune_dispatch,
        )

    def _processor(self) -> MMQJPJoinProcessor:
        return self.processor

    def _register_with_processor(self, qid: str, query: XsclQuery) -> None:
        record = self.registry.add_query(qid, query)
        self._register_stage1(query, record.reduced)

    @property
    def num_templates(self) -> int:
        """Number of distinct query templates currently registered."""
        return self.registry.num_templates


class SequentialEngine(_BaseEngine):
    """The baseline: per-query join evaluation behind the same interface."""

    def __init__(
        self,
        store_documents: bool = True,
        auto_timestamp: bool = True,
        auto_prune: bool = True,
        indexing: str = "eager",
        plan_cache: bool = True,
        prune_dispatch: bool = True,
    ):
        super().__init__(
            store_documents=store_documents,
            auto_timestamp=auto_timestamp,
            auto_prune=auto_prune,
        )
        self.processor = SequentialJoinProcessor(
            state=JoinState(indexing=indexing),
            plan_cache=plan_cache,
            prune_dispatch=prune_dispatch,
        )

    def _processor(self) -> SequentialJoinProcessor:
        return self.processor

    def _register_with_processor(self, qid: str, query: XsclQuery) -> None:
        self.processor.add_query(qid, query)
        self._register_stage1(query, self.processor.reduced_graph(qid))


def make_engine(
    engine: str,
    view_cache_size: Optional[int] = None,
    store_documents: bool = True,
    auto_timestamp: bool = True,
    auto_prune: bool = True,
    indexing: str = "eager",
    plan_cache: bool = True,
    prune_dispatch: bool = True,
) -> _BaseEngine:
    """Construct an engine from its selection keyword (see :data:`ENGINES`).

    ``"mmqjp"`` is the paper's system, ``"mmqjp-vm"`` adds the Section 5
    view materialization (with an optional ``RL``-slice cache), and
    ``"sequential"`` is the one-query-at-a-time baseline.  ``indexing``
    selects the join-state index maintenance (``"eager"`` / ``"lazy"`` /
    ``"off"``; see :class:`~repro.core.state.JoinState`); ``plan_cache``
    and ``prune_dispatch`` toggle compiled query plans and relevance-pruned
    dispatch (both on by default; off reproduces the plan-per-call,
    visit-every-template behavior for ablation and equivalence runs).  This
    is the single factory used by :class:`repro.pubsub.Broker` and by every
    shard of :class:`repro.runtime.ShardedBroker`.
    """
    if engine == "mmqjp":
        return MMQJPEngine(
            store_documents=store_documents,
            auto_timestamp=auto_timestamp,
            auto_prune=auto_prune,
            indexing=indexing,
            plan_cache=plan_cache,
            prune_dispatch=prune_dispatch,
        )
    if engine == "mmqjp-vm":
        return MMQJPEngine(
            use_view_materialization=True,
            view_cache_size=view_cache_size,
            store_documents=store_documents,
            auto_timestamp=auto_timestamp,
            auto_prune=auto_prune,
            indexing=indexing,
            plan_cache=plan_cache,
            prune_dispatch=prune_dispatch,
        )
    if engine == "sequential":
        return SequentialEngine(
            store_documents=store_documents,
            auto_timestamp=auto_timestamp,
            auto_prune=auto_prune,
            indexing=indexing,
            plan_cache=plan_cache,
            prune_dispatch=prune_dispatch,
        )
    raise ValueError(f"unknown engine {engine!r}; choose one of {ENGINES}")
