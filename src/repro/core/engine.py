"""Two-stage query-processing engines over XML documents.

:class:`MMQJPEngine` wires together Stage 1 (the shared
:class:`~repro.xpath.evaluator.XPathEvaluator`) and Stage 2 (the
:class:`~repro.core.processor.MMQJPJoinProcessor`), maintains the join state
and (optionally) the original documents so that output XML documents can be
constructed.  :class:`SequentialEngine` offers the identical interface on
top of the one-query-at-a-time baseline, so the two can be compared — and
checked for result equivalence — on any workload.
"""

from __future__ import annotations

import itertools
import sys
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Union

from repro.config import ENGINES, RuntimeConfig, coerce_config, metrics_enabled, resolve_ingest
from repro.core.costs import CostBreakdown
from repro.core.materialize import ViewCache
from repro.metrics import MetricsRegistry
from repro.core.processor import MMQJPJoinProcessor, SequentialJoinProcessor
from repro.core.results import Match, build_output_document
from repro.core.state import JoinState
from repro.core.witnesses import WitnessRelations
from repro.templates.registry import TemplateRegistry
from repro.xmlmodel.document import XmlDocument, _next_docid
from repro.xmlmodel.parser import parse_document
from repro.xmlmodel.serialize import to_xml
from repro.xpath.evaluator import Stage1Registrations, XPathEvaluator
from repro.xscl.ast import INFINITE_WINDOW, JoinOperator, JoinSpec, ValueJoinPredicate, XsclQuery
from repro.xscl.normalize import VariableCatalog, canonicalize_query
from repro.xscl.parser import parse_query
from repro.templates.join_graph import Side

#: Suffix used internally for the mirrored registration of symmetric JOIN queries.
_SWAP_SUFFIX = "::swap"

# ENGINES is canonically defined in repro.config (imported above) and
# re-exported here for backward compatibility.


@dataclass
class EngineStats:
    """Summary statistics of an engine."""

    num_queries: int
    num_templates: Optional[int]
    num_documents_processed: int
    num_matches: int
    state_documents: int
    costs: dict[str, float] = field(default_factory=dict)


def merge_engine_stats(stats: Sequence[EngineStats], fanout: bool = True) -> EngineStats:
    """Merge per-engine statistics into one aggregate :class:`EngineStats`.

    Query and match counts are summed (shards own disjoint query sets), and
    the per-phase costs are accumulated.  With ``fanout=True`` (the sharded
    runtime's fan-out model, where every engine processes every document)
    ``num_documents_processed`` and ``state_documents`` take the maximum
    across engines instead of the sum, so they keep counting *documents*
    rather than (document, shard) pairs.
    """
    if not stats:
        return EngineStats(0, None, 0, 0, 0, {})
    doc_agg = max if fanout else sum
    templates = [s.num_templates for s in stats if s.num_templates is not None]
    costs: dict[str, float] = {}
    for s in stats:
        for phase, ms in s.costs.items():
            costs[phase] = round(costs.get(phase, 0.0) + ms, 3)
    return EngineStats(
        num_queries=sum(s.num_queries for s in stats),
        num_templates=sum(templates) if templates else None,
        num_documents_processed=doc_agg(s.num_documents_processed for s in stats),
        num_matches=sum(s.num_matches for s in stats),
        state_documents=doc_agg(s.state_documents for s in stats),
        costs=costs,
    )


class _BaseEngine:
    """Shared machinery of the MMQJP and Sequential engines."""

    def __init__(self, config: RuntimeConfig):
        self.config = config
        self.evaluator = XPathEvaluator()
        self.catalog = VariableCatalog()
        self.store_documents = config.resolve_store_documents()
        self.ingest = resolve_ingest(config)
        self.auto_timestamp = config.auto_timestamp
        self.auto_prune = config.auto_prune
        self.documents: dict[str, XmlDocument] = {}
        self._qid_counter = itertools.count(1)
        self._clock_value = 0
        # Optional durable state store (repro.storage); None — the default,
        # and always the case for storage="memory" — keeps the processing
        # path free of any storage cost.  Attached via attach_store().
        self.store = None
        self._catalog_watermark = 0
        self._registered: dict[str, XsclQuery] = {}
        self._root_vars: dict[str, tuple[Optional[str], Optional[str]]] = {}
        self._max_finite_window = 0.0
        self._has_infinite_window = False
        # Window refcounts backing the horizon: finite windows by value plus
        # an infinite-window count, so retraction adjusts the horizon in
        # O(1) (O(#distinct windows) when the largest loses its last user)
        # instead of rescanning every registered query.
        self._finite_window_counts: dict[float, int] = {}
        self._infinite_windows = 0
        # Stage 1 bookkeeping for retraction: per processor-registration key
        # (qid or its ::swap twin), the variables and edges it registered,
        # refcounted engine-wide.  Canonicalization shares variables across
        # equivalent queries, so a registration is only withdrawn from the
        # evaluator when its last user is gone.
        self._stage1 = Stage1Registrations()
        self.num_documents_processed = 0
        self.num_matches = 0
        # Observability (RuntimeConfig.metrics / REPRO_METRICS): engine-side
        # per-stage latency histograms.  None — the default — keeps the hot
        # path at a single attribute check per document.  The processor's
        # CostBreakdown mirrors its measured phases in (the subclasses
        # attach it once the processor exists).
        self.metrics = MetricsRegistry() if metrics_enabled(config) else None

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def register_query(
        self,
        query: Union[str, XsclQuery],
        qid: Optional[str] = None,
        window_symbols: Optional[dict[str, float]] = None,
    ) -> str:
        """Register an XSCL query (text or AST) and return its query id."""
        if isinstance(query, str):
            query = parse_query(query, window_symbols=window_symbols)
        if not query.is_join_query:
            raise ValueError(
                "the join engines process inter-document (join) queries; "
                "use repro.pubsub.Broker for single-block filter subscriptions"
            )
        qid = qid if qid is not None else f"q{next(self._qid_counter)}"
        if qid in self._registered:
            raise ValueError(f"query id {qid!r} is already registered")

        canonical = canonicalize_query(query, self.catalog)
        self._registered[qid] = canonical
        self._root_vars[qid] = (
            canonical.left.root_variable,
            canonical.right.root_variable if canonical.right else None,
        )

        self._track_window(canonical.join.window)

        self._register_with_processor(qid, canonical)
        if canonical.join.operator is JoinOperator.JOIN:
            self._register_with_processor(qid + _SWAP_SUFFIX, _swap_query(canonical))
        if self.store is not None:
            self._persist_registration()
        return qid

    def register_queries(self, queries: Iterable[Union[str, XsclQuery]]) -> list[str]:
        """Register many queries; returns their query ids."""
        return [self.register_query(q) for q in queries]

    def _register_with_processor(self, qid: str, query: XsclQuery) -> None:
        raise NotImplementedError

    def _register_stage1(self, key: str, query: XsclQuery, reduced) -> None:
        """Register the reduced graph's variables and edges with the XPath Evaluator.

        ``key`` is the processor-registration key (the qid, or its
        ``::swap`` twin for symmetric JOINs); the variables and edges
        registered under it are recorded and reference-counted so
        :meth:`deregister_query` can withdraw exactly this registration.
        """
        patterns = {Side.LEFT: query.left.pattern, Side.RIGHT: query.right.pattern}
        variables: list[str] = []
        edges: list[tuple[str, str]] = []
        for side, var in reduced.nodes:
            pattern = patterns[side]
            self.evaluator.register_variable(var, pattern.stream, pattern.absolute_path_of(var))
            variables.append(var)
        for (p_side, p_var), (c_side, c_var) in reduced.structural_edges:
            pattern = patterns[p_side]
            self.evaluator.register_edge(
                p_var, c_var, pattern.relative_path_between(p_var, c_var)
            )
            edges.append((p_var, c_var))
        self._stage1.record(key, variables, edges)

    # ------------------------------------------------------------------ #
    # retraction
    # ------------------------------------------------------------------ #
    def deregister_query(self, qid: str) -> None:
        """Retract a registered query, reclaiming every trace of it.

        The inverse of :meth:`register_query`: the query (and its mirrored
        ``::swap`` registration, for symmetric JOINs) is removed from the
        processor — template ``RT`` tuple, relevance-index postings and
        compiled plans included — its Stage 1 variables and edges are
        withdrawn from the shared evaluator once their last user is gone,
        the window-pruning horizon is recomputed, and join-state rows that
        can no longer contribute to any match are dropped.  When the last
        query is deregistered the engine's state returns to baseline: no
        state rows, no stored documents.  Raises :class:`KeyError` for
        unknown query ids.
        """
        canonical = self._registered.get(qid)
        if canonical is None:
            raise KeyError(f"query id {qid!r} is not registered")
        del self._registered[qid]
        self._root_vars.pop(qid, None)

        keys = [qid]
        if canonical.join.operator is JoinOperator.JOIN:
            keys.append(qid + _SWAP_SUFFIX)
        dead_vars: set[str] = set()
        dead_edges: set[tuple[str, str]] = set()
        for key in keys:
            self._deregister_with_processor(key)
            key_vars, key_edges = self._stage1.withdraw(key)
            dead_vars |= key_vars
            dead_edges |= key_edges
        if dead_vars or dead_edges:
            self.evaluator.deregister(variables=dead_vars, edges=dead_edges)

        self._release_window(canonical.join.window)
        if not self._registered:
            self._processor().clear_state()
            self.documents.clear()
            if self.store is not None:
                self.store.clear_state()
        elif dead_vars:
            self._processor().drop_variables(dead_vars)
            if self.store is not None:
                self.store.delete_variables(dead_vars)
        if self.store is not None:
            self._persist_registration()

    def _deregister_with_processor(self, qid: str) -> None:
        raise NotImplementedError

    def _track_window(self, window: float) -> None:
        """Fold one registered query's window into the auto-prune horizon."""
        if window == INFINITE_WINDOW:
            self._infinite_windows += 1
            self._has_infinite_window = True
        else:
            self._finite_window_counts[window] = (
                self._finite_window_counts.get(window, 0) + 1
            )
            if window > self._max_finite_window:
                self._max_finite_window = window

    def _release_window(self, window: float) -> None:
        """Withdraw one query's window from the auto-prune horizon (O(1) amortized)."""
        if window == INFINITE_WINDOW:
            self._infinite_windows -= 1
            self._has_infinite_window = self._infinite_windows > 0
            return
        left = self._finite_window_counts[window] - 1
        if left:
            self._finite_window_counts[window] = left
        else:
            del self._finite_window_counts[window]
            if window == self._max_finite_window:
                self._max_finite_window = max(self._finite_window_counts, default=0.0)

    # ------------------------------------------------------------------ #
    # document processing
    # ------------------------------------------------------------------ #
    def _prepare_document(
        self,
        document: Union[str, XmlDocument],
        timestamp: Optional[float],
    ) -> XmlDocument:
        """Parse and stamp one incoming document (shared by both entry points)."""
        if isinstance(document, str):
            document = parse_document(document)
        if timestamp is not None:
            document.timestamp = float(timestamp)
        elif self.auto_timestamp and document.timestamp == 0.0:
            self._clock_value += 1
            document.timestamp = float(self._clock_value)
        return document

    def _process_prepared(self, document: XmlDocument) -> list[Match]:
        """Run both stages on an already-prepared document."""
        if self.store is not None:
            return self._process_prepared_durable(document)
        metrics = self.metrics
        if metrics is None:
            witnesses = self.evaluator.evaluate(document)
            relations = WitnessRelations.from_witnesses(witnesses)
        else:
            with metrics.timer("stage:stage1"):
                witnesses = self.evaluator.evaluate(document)
                relations = WitnessRelations.from_witnesses(witnesses)
        raw_matches = self._processor().process(relations)
        self._processor().maintain_state(relations)
        self._after_state_maintenance(document.timestamp)

        if self.store_documents:
            self.documents[document.docid] = document

        matches = self._normalize_matches(raw_matches)
        self.num_documents_processed += 1
        self.num_matches += len(matches)
        return matches

    def _process_prepared_durable(self, document: XmlDocument) -> list[Match]:
        """The storage-backed twin of :meth:`_process_prepared`.

        Identical processing, wrapped in one store *epoch* per document: the
        merged state partitions, any in-epoch pruning, the serialized source
        document and the engine counters all land in a single atomic commit,
        so a crash at any point leaves either the whole document or none of
        it.  On failure the epoch is aborted — the in-memory state may then
        be ahead of the store, which is exactly the situation recovery
        resolves by rebuilding from the store alone.
        """
        store = self.store
        metrics = self.metrics
        if metrics is None:
            witnesses = self.evaluator.evaluate(document)
            relations = WitnessRelations.from_witnesses(witnesses)
        else:
            with metrics.timer("stage:stage1"):
                witnesses = self.evaluator.evaluate(document)
                relations = WitnessRelations.from_witnesses(witnesses)
        raw_matches = self._processor().process(relations)
        docid = document.docid
        store.begin_epoch(docid)
        try:
            self._processor().maintain_state(relations)
            store.upsert_rows(
                "Rbin", docid, [(docid,) + row for row in relations.rbinw.rows]
            )
            store.upsert_rows(
                "Rdoc", docid, [(docid,) + row for row in relations.rdocw.rows]
            )
            store.upsert_rows(
                "Rvar", docid, [(docid,) + row for row in relations.rvarw.rows]
            )
            store.upsert_rows("RdocTS", docid, list(relations.rdoctsw.rows))
            self._after_state_maintenance(document.timestamp)
            if self.store_documents:
                self.documents[docid] = document
                store.put_document(
                    docid, document.timestamp, document.stream,
                    to_xml(document, pretty=False),
                )
            matches = self._normalize_matches(raw_matches)
            self.num_documents_processed += 1
            self.num_matches += len(matches)
            store.set_meta(
                "engine_counters",
                {
                    "documents": self.num_documents_processed,
                    "matches": self.num_matches,
                    "clock": self._clock_value,
                },
            )
            if metrics is None:
                store.commit_epoch()
            else:
                with metrics.timer("stage:storage_commit"):
                    store.commit_epoch()
        except BaseException:
            store.abort_epoch()
            raise
        return matches

    def _stream_eligible(self) -> bool:
        """Whether text input can skip tree construction entirely.

        The streaming path produces witnesses, never a node tree — it is
        only equivalent when nothing downstream needs the document object:
        no stored documents (output construction) and no durable store
        (which persists the serialized source inside the epoch).
        """
        return self.ingest == "stream" and self.store is None and not self.store_documents

    def _stamp_timestamp(self, timestamp: Optional[float]) -> float:
        """Timestamp for a freshly-parsed text document (no carried stamp)."""
        if timestamp is not None:
            return float(timestamp)
        if self.auto_timestamp:
            self._clock_value += 1
            return float(self._clock_value)
        return 0.0

    def _process_streamed(
        self, text: str, docid: str, timestamp: float, stream: str
    ) -> list[Match]:
        """Run both stages on raw text via the single-pass witness scan."""
        metrics = self.metrics
        if metrics is None:
            witnesses = self.evaluator.evaluate_text(text, docid, timestamp, stream)
            relations = WitnessRelations.from_witnesses(witnesses)
        else:
            with metrics.timer("stage:stage1"):
                witnesses = self.evaluator.evaluate_text(text, docid, timestamp, stream)
                relations = WitnessRelations.from_witnesses(witnesses)
        raw_matches = self._processor().process(relations)
        self._processor().maintain_state(relations)
        self._after_state_maintenance(timestamp)
        matches = self._normalize_matches(raw_matches)
        self.num_documents_processed += 1
        self.num_matches += len(matches)
        return matches

    def process_text(
        self,
        text: str,
        timestamp: Optional[float] = None,
        stream: str = "S",
    ) -> list[Match]:
        """Process one document given as raw XML text.

        With ``ingest="stream"`` (and no document state to keep — see
        :meth:`_stream_eligible`) Stage 1 witnesses are produced in a single
        pass over the text without building a node tree; otherwise this is
        exactly ``process_document(parse_document(text, stream=...))``.
        Matches are identical either way.
        """
        if not self._stream_eligible():
            document = parse_document(text, stream=stream)
            return self._process_prepared(self._prepare_document(document, timestamp))
        return self._process_streamed(
            text, _next_docid(), self._stamp_timestamp(timestamp), stream
        )

    def process_document(
        self,
        document: Union[str, XmlDocument],
        timestamp: Optional[float] = None,
    ) -> list[Match]:
        """Run both stages on one incoming document and return its matches."""
        return self._process_prepared(self._prepare_document(document, timestamp))

    def process_batch(
        self,
        documents: Iterable[Union[str, XmlDocument]],
        timestamp: Optional[float] = None,
    ) -> list[list[Match]]:
        """Process a batch of documents; one match list per document.

        The batched ingestion fast path: the whole batch is parsed, stamped
        and docid-interned up front, and the processor's per-batch hooks
        (:meth:`~repro.core.processor.MMQJPJoinProcessor.begin_batch`)
        hoist fixed per-document costs — e.g. the relevance-index sync,
        which cannot change between a batch's documents — out of the loop.
        Documents are still evaluated and folded into the join state in
        arrival order, so the matches are exactly those of a
        :meth:`process_document` loop.
        """
        streaming = self._stream_eligible()
        # Text entries on the streaming path stay unparsed until processing;
        # stamping docids and timestamps up front keeps assignment order (and
        # hence auto-timestamps) identical to the all-tree batch.
        prepared: list[Union[XmlDocument, tuple[str, str, float]]] = []
        for document in documents:
            if streaming and isinstance(document, str):
                prepared.append(
                    (document, sys.intern(_next_docid()), self._stamp_timestamp(timestamp))
                )
                continue
            document = self._prepare_document(document, timestamp)
            if isinstance(document.docid, str):
                # Docids recur in every witness row, state partition key
                # and match: interning once per batch makes the hot-path
                # hashing and equality checks pointer comparisons.
                document.docid = sys.intern(document.docid)
            prepared.append(document)
        if not prepared:
            return []
        processor = self._processor()
        processor.begin_batch()
        try:
            return [
                self._process_streamed(item[0], item[1], item[2], "S")
                if type(item) is tuple
                else self._process_prepared(item)
                for item in prepared
            ]
        finally:
            processor.end_batch()

    def process_stream(self, documents: Iterable[Union[str, XmlDocument]]) -> list[Match]:
        """Process a sequence of documents; returns all matches in arrival order.

        Documents are processed one at a time — a lazy/unbounded iterable is
        consumed incrementally, and documents before a failing one are fully
        folded into the join state.  Use :meth:`process_batch` for the
        batched fast path over an already-materialized batch.
        """
        out: list[Match] = []
        for document in documents:
            out.extend(self.process_document(document))
        return out

    def _processor(self):
        raise NotImplementedError

    def _after_state_maintenance(self, timestamp: float) -> None:
        """Window-based pruning of state (only when every window is finite)."""
        if not self.auto_prune:
            return
        if self._has_infinite_window or self._max_finite_window <= 0:
            return
        self.prune(timestamp - self._max_finite_window)

    def prune(self, min_timestamp: float) -> int:
        """Drop state (and stored documents) older than ``min_timestamp``.

        Called automatically after every document when ``auto_prune`` is on
        and all registered windows are finite; exposed publicly so brokers
        can prune on demand (e.g. with ``auto_prune=False``).  Returns the
        number of documents removed from the join state.
        """
        stale: set[str] = set()
        if self.store is not None:
            stale = self._processor().state.stale_docids(min_timestamp)
        removed = self._prune(min_timestamp)
        if removed and self.store_documents:
            alive = self._processor().state.document_ids()
            self.documents = {d: doc for d, doc in self.documents.items() if d in alive}
        if stale:
            # Inside a document epoch this joins the epoch's transaction,
            # keeping the merge and its window-pruning atomic.
            self.store.delete_documents(stale)
        return removed

    def _prune(self, min_timestamp: float) -> int:
        return self._processor().prune_state(min_timestamp)

    def _normalize_matches(self, matches: list[Match]) -> list[Match]:
        """Strip the internal swap suffix and de-duplicate symmetric JOIN matches."""
        out: list[Match] = []
        seen: set[tuple] = set()
        for match in matches:
            if match.qid.endswith(_SWAP_SUFFIX):
                match = Match(
                    qid=match.qid[: -len(_SWAP_SUFFIX)],
                    lhs_docid=match.rhs_docid,
                    rhs_docid=match.lhs_docid,
                    lhs_timestamp=match.rhs_timestamp,
                    rhs_timestamp=match.lhs_timestamp,
                    lhs_bindings=match.rhs_bindings,
                    rhs_bindings=match.lhs_bindings,
                    window=match.window,
                )
            if match.key() not in seen:
                seen.add(match.key())
                out.append(match)
        return out

    # ------------------------------------------------------------------ #
    # durable storage
    # ------------------------------------------------------------------ #
    def attach_store(self, store) -> None:
        """Attach a :class:`~repro.storage.StateStore` to this engine.

        Subsequent registrations, document epochs, prunes and retractions
        are mirrored to the store.  Registrations made *before* the attach
        are persisted immediately, so programmatic register-then-attach use
        still recovers.
        """
        self.store = store
        if store is not None and self._registered:
            self._persist_registration()

    def _persist_catalog(self) -> None:
        """Persist canonical-name entries added since the last persist."""
        entries = self.catalog.entries()
        if len(entries) > self._catalog_watermark:
            self.store.save_catalog_entries(entries[self._catalog_watermark :])
            self._catalog_watermark = len(entries)

    def _persist_registration(self) -> None:
        """Persist registration-derived facts: catalog entries + template refcounts.

        The refcounts are stored as a sorted multiset (template ids are
        assigned in registration order and churn under cancel/resubscribe,
        so the ids themselves are not stable across a restart); recovery
        cross-checks the replayed registry against this multiset.
        """
        self._persist_catalog()
        registry = getattr(self, "registry", None)
        if registry is not None:
            self.store.set_meta(
                "template_refcounts", sorted(registry.template_sizes().values())
            )

    def close(self) -> None:
        """Flush and close the attached state store (idempotent; no-op without one)."""
        if self.store is not None:
            self.store.close()

    # ------------------------------------------------------------------ #
    # results and stats
    # ------------------------------------------------------------------ #
    def output_document(self, match: Match) -> XmlDocument:
        """Construct the output XML document of a match (default SELECT semantics).

        Requires ``store_documents=True`` (the default).
        """
        if match.lhs_docid not in self.documents or match.rhs_docid not in self.documents:
            raise KeyError(
                "output construction needs the original documents; "
                "the engine was created with store_documents=False or the "
                "documents were pruned"
            )
        lhs_root, rhs_root = self._root_vars.get(match.qid, (None, None))
        return build_output_document(
            match,
            self.documents[match.lhs_docid],
            self.documents[match.rhs_docid],
            lhs_root_variable=lhs_root,
            rhs_root_variable=rhs_root,
        )

    @property
    def registered_queries(self) -> dict[str, XsclQuery]:
        """The registered (canonicalized) queries by query id."""
        return dict(self._registered)

    @property
    def num_queries(self) -> int:
        """Number of registered queries."""
        return len(self._registered)

    @property
    def costs(self) -> CostBreakdown:
        """The processor's accumulated cost breakdown."""
        return self._processor().costs

    @property
    def indexing(self) -> str:
        """The join-state indexing mode (``"eager"`` / ``"lazy"`` / ``"off"``)."""
        return self._processor().indexing

    @property
    def plan_cache(self):
        """The processor's compiled-plan cache (``None`` when disabled)."""
        return self._processor().plan_cache

    @property
    def prune_dispatch(self) -> bool:
        """Whether relevance-pruned dispatch is enabled."""
        return self._processor().relevance is not None

    @property
    def delta_join(self) -> bool:
        """Whether delta-driven (semi-join reduced) evaluation is enabled."""
        return self._processor().delta_join

    @property
    def columnar(self) -> bool:
        """Whether columnar (interned-id vector) evaluation is enabled."""
        return self._processor().columnar

    def set_match_filter(self, match_filter) -> None:
        """Install a query-id match filter on the processor (or clear with None).

        The filter decides whether a query id's matches are worth
        materializing at all (e.g. the broker suppresses matches of paused
        or cancelled subscriptions before the Match objects are built).
        The internal ``::swap`` suffix of mirrored symmetric-JOIN
        registrations is stripped before the filter sees the id, so filters
        reason about public query ids only.
        """
        if match_filter is None:
            self._processor().set_match_filter(None)
            return

        def filter_with_swap(qid: str) -> bool:
            if qid.endswith(_SWAP_SUFFIX):
                qid = qid[: -len(_SWAP_SUFFIX)]
            return match_filter(qid)

        self._processor().set_match_filter(filter_with_swap)

    @property
    def delta_stats(self) -> dict[str, int]:
        """The processor's delta-reduction counters (all zero when off)."""
        return dict(self._processor().delta_stats)

    def metrics_snapshot(self) -> Optional[dict]:
        """Snapshot of this engine's metrics registry (``None`` when disabled).

        The brokers merge these with their own registries (and, in the
        process runtime, with snapshots fetched from the workers) into
        ``broker.stats()["metrics"]``.
        """
        return self.metrics.snapshot() if self.metrics is not None else None

    def stats(self) -> EngineStats:
        """Summary statistics for dashboards, examples and tests."""
        return EngineStats(
            num_queries=self.num_queries,
            num_templates=getattr(self, "num_templates", None),
            num_documents_processed=self.num_documents_processed,
            num_matches=self.num_matches,
            state_documents=self._processor().state.num_documents,
            costs=self.costs.as_milliseconds(),
        )


def _swap_query(query: XsclQuery) -> XsclQuery:
    """Mirror a symmetric JOIN query (blocks and predicate orientation swapped)."""
    swapped_predicates = tuple(
        ValueJoinPredicate(p.right_var, p.left_var) for p in query.join.predicates
    )
    return XsclQuery(
        left=query.right,
        right=query.left,
        join=JoinSpec(
            operator=query.join.operator,
            predicates=swapped_predicates,
            window=query.join.window,
        ),
        select=query.select,
        publish=query.publish,
        name=query.name,
        text=query.text,
    )


class MMQJPEngine(_BaseEngine):
    """The paper's system: shared Stage 1 plus template-based Stage 2.

    Parameters
    ----------
    config:
        A :class:`~repro.config.RuntimeConfig` carrying every knob
        (``indexing``, ``plan_cache``, ``prune_dispatch``, ``auto_prune``,
        ``auto_timestamp``, ``store_documents``, ``view_cache_size``).  The
        historical per-knob keywords are still accepted but emit a
        :class:`DeprecationWarning`.
    use_view_materialization:
        Evaluate the per-template conjunctive queries over the materialized
        views ``RL`` / ``RR`` (Section 5) instead of the raw witness
        relations.  Defaults to ``True`` when the config selects the
        ``"mmqjp-vm"`` engine or sets a ``view_cache_size``.
    """

    def __init__(
        self,
        config: Optional[RuntimeConfig] = None,
        use_view_materialization: Optional[bool] = None,
        **legacy,
    ):
        config = coerce_config(config, legacy, owner="MMQJPEngine")
        if use_view_materialization is None:
            use_view_materialization = (
                config.engine == "mmqjp-vm" or config.view_cache_size is not None
            )
        super().__init__(config)
        self.registry = TemplateRegistry()
        view_cache = None
        if use_view_materialization and config.view_cache_size is not None:
            view_cache = ViewCache(max_entries=config.view_cache_size)
        self.processor = MMQJPJoinProcessor(
            registry=self.registry,
            state=JoinState(indexing=config.indexing),
            use_view_materialization=use_view_materialization,
            view_cache=view_cache,
            config=config,
        )
        if self.metrics is not None:
            self.processor.costs.attach_metrics(self.metrics)

    def _processor(self) -> MMQJPJoinProcessor:
        return self.processor

    def _register_with_processor(self, qid: str, query: XsclQuery) -> None:
        record = self.registry.add_query(qid, query)
        self._register_stage1(qid, query, record.reduced)

    def _deregister_with_processor(self, qid: str) -> None:
        self.processor.remove_query(qid)

    @property
    def num_templates(self) -> int:
        """Number of distinct query templates currently registered."""
        return self.registry.num_templates


class SequentialEngine(_BaseEngine):
    """The baseline: per-query join evaluation behind the same interface.

    Accepts a :class:`~repro.config.RuntimeConfig` (or the legacy knob
    keywords, which warn) exactly like :class:`MMQJPEngine`.
    """

    def __init__(self, config: Optional[RuntimeConfig] = None, **legacy):
        config = coerce_config(config, legacy, owner="SequentialEngine")
        super().__init__(config)
        self.processor = SequentialJoinProcessor(
            state=JoinState(indexing=config.indexing),
            config=config,
        )
        if self.metrics is not None:
            self.processor.costs.attach_metrics(self.metrics)

    def _processor(self) -> SequentialJoinProcessor:
        return self.processor

    def _register_with_processor(self, qid: str, query: XsclQuery) -> None:
        self.processor.add_query(qid, query)
        self._register_stage1(qid, query, self.processor.reduced_graph(qid))

    def _deregister_with_processor(self, qid: str) -> None:
        self.processor.remove_query(qid)


def make_engine(
    engine: "str | RuntimeConfig | None" = None,
    config: Optional[RuntimeConfig] = None,
    store=None,
    **legacy,
) -> _BaseEngine:
    """Construct an engine from a :class:`~repro.config.RuntimeConfig`.

    The canonical form is ``make_engine(config)`` (or
    ``make_engine("mmqjp-vm", config)`` to override the selection keyword —
    see :data:`ENGINES`): ``"mmqjp"`` is the paper's system, ``"mmqjp-vm"``
    adds the Section 5 view materialization (with an optional ``RL``-slice
    cache), and ``"sequential"`` is the one-query-at-a-time baseline.  The
    historical per-knob keywords (``indexing=``, ``plan_cache=``, ...) are
    still accepted but emit a :class:`DeprecationWarning`.  This is the
    single factory used by :class:`repro.pubsub.Broker` and by every shard
    of :class:`repro.runtime.ShardedBroker`.

    ``store`` optionally attaches a :class:`~repro.storage.StateStore` (the
    brokers open one per engine when ``config.storage == "sqlite"``; each
    shard persists to its own database file, so the store cannot be derived
    from the shared config and is injected here instead).
    """
    if isinstance(engine, RuntimeConfig):
        if config is not None:
            raise TypeError("pass either a RuntimeConfig or an engine name first, not two configs")
        config, engine = engine, None
    config = coerce_config(config, legacy, owner="make_engine")
    if engine is not None:
        config = config.replace(engine=engine)
    if config.engine == "mmqjp":
        # The selection keyword decides view materialization: a plain
        # "mmqjp" ignores any view_cache_size (matching the historical
        # factory), "mmqjp-vm" enables it.
        built = MMQJPEngine(config, use_view_materialization=False)
    elif config.engine == "mmqjp-vm":
        built = MMQJPEngine(config, use_view_materialization=True)
    else:
        built = SequentialEngine(config)
    if store is not None:
        built.attach_store(store)
    return built
