"""The join state: witnesses of previously processed documents.

The state consists of the relations ``Rbin``, ``Rdoc``, ``Rvar`` and
``RdocTS`` (Section 3.1); Algorithm 2 of the paper maintains them by merging
in the current document's witnesses after it has been processed.  The state
additionally supports window-based pruning: documents older than the largest
registered window can never contribute to a future match and may be dropped.

The state relations are :class:`~repro.relational.relation.PartitionedRelation`
instances partitioned on ``docid``, so :meth:`JoinState.prune` drops whole
documents in one dictionary pop per document instead of rewriting every row
list, and they carry live hash indexes (see
:meth:`~repro.relational.relation.Relation.index_on`) maintained according
to the state's ``indexing`` mode:

* ``"eager"`` (default) — indexes are updated inline on every merge/prune,
* ``"lazy"`` — indexes go stale on mutation and are rebuilt on first use,
* ``"off"`` — no persistent indexes; every consumer falls back to
  per-call hashing (the pre-incremental behavior, kept for ablation and
  equivalence testing).
"""

from __future__ import annotations

from typing import Optional

from repro.core.witnesses import WitnessRelations
from repro.relational.database import INDEXING_MODES
from repro.relational.index import HashIndex
from repro.relational.relation import PartitionedRelation, Relation
from repro.templates.cqt import RELATION_SCHEMAS


class JoinState:
    """Witness relations of all previously processed documents."""

    def __init__(self, indexing: str = "eager") -> None:
        if indexing not in INDEXING_MODES:
            raise ValueError(
                f"unknown indexing mode {indexing!r}; choose one of {INDEXING_MODES}"
            )
        self.indexing = indexing
        maintenance = "lazy" if indexing == "lazy" else "eager"

        def _relation(name: str) -> PartitionedRelation:
            return PartitionedRelation(
                RELATION_SCHEMAS[name],
                name=name,
                partition_attribute="docid",
                index_maintenance=maintenance,
            )

        self.rbin = _relation("Rbin")
        self.rdoc = _relation("Rdoc")
        self.rvar = _relation("Rvar")
        self.rdocts = _relation("RdocTS")
        self._timestamps: dict[str, float] = {}

    # ------------------------------------------------------------------ #
    # Algorithm 2: maintain the join state
    # ------------------------------------------------------------------ #
    def merge(self, witnesses: WitnessRelations) -> None:
        """Merge the current document's witnesses into the state (Algorithm 2)."""
        docid = witnesses.docid
        for var1, var2, node1, node2 in witnesses.rbinw.rows:
            self.rbin.insert((docid, var1, var2, node1, node2))
        for node, value in witnesses.rdocw.rows:
            self.rdoc.insert((docid, node, value))
        for var, node in witnesses.rvarw.rows:
            self.rvar.insert((docid, var, node))
        for row in witnesses.rdoctsw.rows:
            self.rdocts.insert(row)
            self._timestamps[row[0]] = row[1]

    def insert_document_rows(
        self,
        docid: str,
        timestamp: float,
        rbin_rows: list[tuple],
        rdoc_rows: list[tuple],
        rvar_rows: list[tuple] | None = None,
    ) -> None:
        """Load one previous document's witnesses directly (technical benchmark path).

        Row tuples exclude the ``docid`` column; it is added here.
        """
        for row in rbin_rows:
            self.rbin.insert((docid,) + tuple(row))
        for row in rdoc_rows:
            self.rdoc.insert((docid,) + tuple(row))
        for row in rvar_rows or []:
            self.rvar.insert((docid,) + tuple(row))
        self.rdocts.insert((docid, timestamp))
        self._timestamps[docid] = timestamp

    def restore_rows(self, relation_name: str, rows: list[tuple]) -> None:
        """Load persisted full-schema rows of one state relation (recovery path).

        Rows carry the relation's complete schema, ``docid`` column
        included (unlike :meth:`insert_document_rows`, which prepends it).
        ``RdocTS`` rows additionally rebuild the timestamp map that drives
        window pruning.
        """
        relation = self.relations()[relation_name]
        for row in rows:
            relation.insert(tuple(row))
        if relation_name == "RdocTS":
            for docid, timestamp in rows:
                self._timestamps[docid] = timestamp

    # ------------------------------------------------------------------ #
    # pruning
    # ------------------------------------------------------------------ #
    def prune(self, min_timestamp: float) -> int:
        """Drop every document with ``timestamp < min_timestamp``.

        Returns the number of documents removed.  With a finite maximum
        window ``W`` the engine calls this with ``current_ts - W``.  Each
        state relation drops the stale documents' partitions wholesale, so
        the cost scales with the rows removed, not the rows retained.
        """
        return self.drop_documents(self.stale_docids(min_timestamp))

    def stale_docids(self, min_timestamp: float) -> set[str]:
        """Documents with ``timestamp < min_timestamp`` (what :meth:`prune` drops).

        Public accessor so the processors can learn which documents a prune
        is about to remove (e.g. to evict view-cache slices) without
        reaching into the state relations' rows; pair with
        :meth:`drop_documents` to avoid computing the set twice.
        """
        return {d for d, ts in self._timestamps.items() if ts < min_timestamp}

    def drop_variables(self, variables: set[str]) -> int:
        """Drop every witness row bound to one of ``variables``; returns rows removed.

        The retraction path: when the last query using a canonical variable
        is deregistered, its historical ``Rbin``/``Rvar`` rows can never
        contribute to a future match (no surviving query's ``RT`` tuple
        names the variable) and are reclaimed here.  ``Rdoc`` rows are
        node-keyed and may be shared across variables, so they are only
        reclaimed when their whole document is pruned or the state is
        cleared.
        """
        if not variables:
            return 0
        dead = set(variables)
        removed = self.rbin.delete_rows(lambda row: row[1] in dead or row[2] in dead)
        removed += self.rvar.delete_rows(lambda row: row[1] in dead)
        return removed

    def drop_documents(self, docids: set[str]) -> int:
        """Drop the given documents' partitions; returns documents removed."""
        if not docids:
            return 0
        for relation in (self.rbin, self.rdoc, self.rvar, self.rdocts):
            relation.drop_partitions(docids)
        for docid in docids:
            self._timestamps.pop(docid, None)
        return len(docids)

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #
    def timestamp_of(self, docid: str) -> float:
        """Timestamp of a previously processed document."""
        return self._timestamps[docid]

    def document_ids(self) -> set[str]:
        """Ids of all documents currently held in the state."""
        return set(self._timestamps)

    @property
    def num_documents(self) -> int:
        """Number of documents currently held in the state."""
        return len(self._timestamps)

    def relations(self) -> dict[str, Relation]:
        """The state relations keyed by their canonical names."""
        return {
            "Rbin": self.rbin,
            "Rdoc": self.rdoc,
            "Rvar": self.rvar,
            "RdocTS": self.rdocts,
        }

    def index_on(self, relation_name: str, columns) -> Optional[HashIndex]:
        """A live index on a state relation, or ``None`` with indexing ``"off"``.

        Consumers outside the conjunctive evaluator (e.g. the Section 5 view
        materialization) use this to share the state's persistent indexes,
        falling back to their own per-call hashing when it returns ``None``.
        """
        if self.indexing == "off":
            return None
        return self.relations()[relation_name].index_on(columns)

    def clear(self) -> None:
        """Remove all state (used between benchmark runs)."""
        self.rbin.clear()
        self.rdoc.clear()
        self.rvar.clear()
        self.rdocts.clear()
        self._timestamps.clear()

    def __repr__(self) -> str:
        return (
            f"<JoinState docs={self.num_documents} |Rbin|={len(self.rbin)} "
            f"|Rdoc|={len(self.rdoc)} |Rvar|={len(self.rvar)} "
            f"indexing={self.indexing!r}>"
        )
