"""Relational encoding of the current document's witnesses (Section 3.1).

``WitnessRelations`` holds the four relations produced for the document that
is currently being processed:

* ``RbinW (var1, var2, node1, node2)`` — structural-edge bindings,
* ``RdocW (node, strVal)`` — string values of bound nodes,
* ``RvarW (var, node)`` — unary variable bindings,
* ``RdocTSW (docid, timestamp)`` — the document's id and timestamp
  (a singleton relation).

They can be built from Stage 1 output
(:meth:`WitnessRelations.from_witnesses`) or constructed directly by the
technical benchmark, which bypasses the XPath Evaluator exactly as the paper
does in Section 6.1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.relational.relation import Relation
from repro.templates.cqt import RELATION_SCHEMAS
from repro.xpath.evaluator import DocumentWitnesses


@dataclass
class WitnessRelations:
    """The witness relations of the document currently being processed."""

    docid: str
    timestamp: float
    rbinw: Relation
    rdocw: Relation
    rvarw: Relation
    rdoctsw: Relation

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls, docid: str, timestamp: float) -> "WitnessRelations":
        """Empty witness relations for a document that matched nothing."""
        rbinw = Relation(RELATION_SCHEMAS["RbinW"], name="RbinW")
        rdocw = Relation(RELATION_SCHEMAS["RdocW"], name="RdocW")
        rvarw = Relation(RELATION_SCHEMAS["RvarW"], name="RvarW")
        rdoctsw = Relation(RELATION_SCHEMAS["RdocTSW"], name="RdocTSW")
        rdoctsw.insert((docid, timestamp))
        return cls(
            docid=docid,
            timestamp=timestamp,
            rbinw=rbinw,
            rdocw=rdocw,
            rvarw=rvarw,
            rdoctsw=rdoctsw,
        )

    @classmethod
    def from_witnesses(cls, witnesses: DocumentWitnesses) -> "WitnessRelations":
        """Encode Stage 1 output as relations."""
        out = cls.empty(witnesses.docid, witnesses.timestamp)
        for (var1, var2), pairs in sorted(witnesses.edge_pairs.items()):
            for node1, node2 in sorted(pairs):
                out.rbinw.insert((var1, var2, node1, node2))
        for node_id, value in sorted(witnesses.node_values.items()):
            out.rdocw.insert((node_id, value))
        for var, nodes in sorted(witnesses.var_nodes.items()):
            for node_id in sorted(nodes):
                out.rvarw.insert((var, node_id))
        return out

    @classmethod
    def from_rows(
        cls,
        docid: str,
        timestamp: float,
        rbinw_rows: list[tuple],
        rdocw_rows: list[tuple],
        rvarw_rows: list[tuple] | None = None,
    ) -> "WitnessRelations":
        """Build witness relations directly from rows (technical benchmark path)."""
        out = cls.empty(docid, timestamp)
        out.rbinw.insert_many(rbinw_rows)
        out.rdocw.insert_many(rdocw_rows)
        if rvarw_rows:
            out.rvarw.insert_many(rvarw_rows)
        return out

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def relations(self) -> dict[str, Relation]:
        """The relations keyed by their canonical names."""
        return {
            "RbinW": self.rbinw,
            "RdocW": self.rdocw,
            "RvarW": self.rvarw,
            "RdocTSW": self.rdoctsw,
        }

    @property
    def is_empty(self) -> bool:
        """True when no variable matched the current document."""
        return not (self.rbinw.rows or self.rdocw.rows or self.rvarw.rows)

    def bound_variables(self) -> set[str]:
        """Variables with at least one witness row for this document.

        The union over ``RvarW`` and both variable columns of ``RbinW`` —
        deliberately wider than Stage 1's
        :meth:`~repro.xpath.evaluator.DocumentWitnesses.bound_variables`
        (``RbinW`` may carry an edge whose descendant variable has no unary
        binding).  A query whose RHS variables are not all in this set
        cannot match the document: each RHS variable's name is constrained
        by an ``RbinW``/``RvarW`` atom with no matching row.  This is what
        relevance-pruned dispatch keys on.
        """
        bound = {row[0] for row in self.rvarw.rows}
        for var1, var2, _node1, _node2 in self.rbinw.rows:
            bound.add(var1)
            bound.add(var2)
        return bound

    def __repr__(self) -> str:
        return (
            f"<WitnessRelations doc={self.docid} ts={self.timestamp} "
            f"|RbinW|={len(self.rbinw)} |RdocW|={len(self.rdocw)} |RvarW|={len(self.rvarw)}>"
        )
