"""View materialization for the Join Processor (paper Section 5).

Instead of re-deriving, inside every template's conjunctive query, the join
of previous-document values with current-document values, the engine can
materialize once per document:

* ``Rvj (docid, node1, node2, strVal)`` — pairs of a previous-document node
  and a current-document node with equal string values,
* ``RL (docid, var1, var2, node1, node2, strVal)`` — ``Rvj`` joined with the
  structural-edge witnesses ``Rbin`` of previous documents,
* ``RR (var1, var2, node1, node2, strVal)`` — ``Rvj`` joined with the
  current document's ``RbinW``,
* ``RLvar`` / ``RRvar`` — the unary analogues over ``Rvar`` / ``RvarW``.

All templates' conjunctive queries are then evaluated over these shared
views, so the value-join work is done once instead of once per template.
The optional :class:`ViewCache` additionally caches *slices* of ``RL`` keyed
on string value (Algorithms 4 and 5), so that work done for previous
documents is remembered across the stream.
"""

from __future__ import annotations

from collections import OrderedDict, defaultdict
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.core.costs import CostBreakdown
from repro.core.state import JoinState
from repro.core.witnesses import WitnessRelations
from repro.relational.relation import Relation
from repro.templates.cqt import RELATION_SCHEMAS


class ViewCache:
    """An LRU cache of ``RL`` slices keyed on string value (Section 5).

    Each entry holds the rows of ``RL`` whose ``strVal`` equals the key.
    ``max_entries=None`` means an unbounded cache.
    """

    def __init__(self, max_entries: Optional[int] = None):
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be positive (or None for unbounded)")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, list[tuple]]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, value: str) -> Optional[list[tuple]]:
        """Return the cached ``RL`` rows for ``value`` (marking it recently used)."""
        rows = self._entries.get(value)
        if rows is None:
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(value)
        return rows

    def put(self, value: str, rows: list[tuple]) -> None:
        """Insert or replace the entry for ``value`` (evicting LRU entries if needed)."""
        self._entries[value] = list(rows)
        self._entries.move_to_end(value)
        while self.max_entries is not None and len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def append(self, value: str, rows: Iterable[tuple]) -> None:
        """Add rows to an existing entry (no-op if ``value`` is not cached)."""
        if value in self._entries:
            self._entries[value].extend(rows)

    def remove_documents(self, docids: set[str]) -> None:
        """Drop cached rows belonging to pruned documents."""
        for value, rows in list(self._entries.items()):
            kept = [row for row in rows if row[0] not in docids]
            if kept:
                self._entries[value] = kept
            else:
                del self._entries[value]

    def clear(self) -> None:
        """Drop every cached slice (query-retraction path; counters are kept)."""
        self._entries.clear()

    def __contains__(self, value: str) -> bool:
        return value in self._entries

    def __len__(self) -> int:
        return len(self._entries)


@dataclass
class MaterializedViews:
    """The materialized relations used by the Section 5 conjunctive queries."""

    rvj: Relation
    rl: Relation
    rr: Relation
    rlvar: Relation
    rrvar: Relation
    common_values: set[str]

    def relations(self) -> dict[str, Relation]:
        """The views keyed by their canonical relation names."""
        return {
            "Rvj": self.rvj,
            "RL": self.rl,
            "RR": self.rr,
            "RLvar": self.rlvar,
            "RRvar": self.rrvar,
        }


def compute_materialized_views(
    state: JoinState,
    witnesses: WitnessRelations,
    view_cache: Optional[ViewCache] = None,
    costs: Optional[CostBreakdown] = None,
) -> MaterializedViews:
    """Compute ``Rvj``, ``RL``, ``RR`` (and unary analogues) for the current document.

    Phase timings are recorded into ``costs`` under ``"rvj"``, ``"rl"`` and
    ``"rr"`` — the components shown in Figures 14 and 15.
    """
    costs = costs if costs is not None else CostBreakdown()

    # Rvj carries a docid column in this implementation so that node ids of
    # different previous documents cannot be confused; the paper's benchmark
    # only ever loads a single previous document, where the distinction does
    # not matter.
    rvj = Relation(RELATION_SCHEMAS["Rvj"], name="Rvj")
    rl = Relation(RELATION_SCHEMAS["RL"], name="RL")
    rr = Relation(RELATION_SCHEMAS["RR"], name="RR")
    rlvar = Relation(RELATION_SCHEMAS["RLvar"], name="RLvar")
    rrvar = Relation(RELATION_SCHEMAS["RRvar"], name="RRvar")

    if not witnesses.rdocw.rows:
        # A document without string-value witnesses can share no value with
        # the state: every view is empty, and probing (or building) the
        # state's Rdoc index would be wasted work.
        return MaterializedViews(
            rvj=rvj, rl=rl, rr=rr, rlvar=rlvar, rrvar=rrvar, common_values=set()
        )

    # ------------------------------------------------------------------ #
    # Rvj: semi-join on string values, then the value-pair relation.
    # ------------------------------------------------------------------ #
    with costs.measure("rvj"):
        current_by_value: dict[str, list[int]] = defaultdict(list)
        for node, value in witnesses.rdocw.rows:
            current_by_value[value].append(node)
        previous_by_value: dict[str, list[tuple[str, int]]] = defaultdict(list)
        rdoc_index = state.index_on("Rdoc", ("strVal",))
        if rdoc_index is not None:
            # Persistent index: only the current document's values are probed,
            # so the semi-join never scans the full Rdoc state.
            common_values = {v for v in current_by_value if v in rdoc_index}
            for value in common_values:
                for docid, node, _ in rdoc_index.lookup(value):
                    previous_by_value[value].append((docid, node))
        else:
            for docid, node, value in state.rdoc.rows:
                previous_by_value[value].append((docid, node))
            common_values = set(current_by_value) & set(previous_by_value)
        for value in common_values:
            for docid, prev_node in previous_by_value[value]:
                for cur_node in current_by_value[value]:
                    rvj.insert((docid, prev_node, cur_node, value))

    # ------------------------------------------------------------------ #
    # RL (and RLvar): previous-document bindings restricted to common values.
    # ------------------------------------------------------------------ #
    with costs.measure("rl"):
        if view_cache is None:
            _compute_rl_direct(state, common_values, previous_by_value, rl, rlvar)
        else:
            _compute_rl_cached(state, common_values, previous_by_value, rl, rlvar, view_cache)

    # ------------------------------------------------------------------ #
    # RR (and RRvar): current-document bindings restricted to common values.
    # ------------------------------------------------------------------ #
    with costs.measure("rr"):
        rbinw_by_leaf: dict[int, list[tuple]] = defaultdict(list)
        for row in witnesses.rbinw.rows:
            rbinw_by_leaf[row[3]].append(row)  # keyed on node2 (the leaf node)
        rvarw_by_node: dict[int, list[tuple]] = defaultdict(list)
        for row in witnesses.rvarw.rows:
            rvarw_by_node[row[1]].append(row)
        seen_rr: set[tuple] = set()
        seen_rrvar: set[tuple] = set()
        for value in common_values:
            for cur_node in current_by_value[value]:
                for var1, var2, node1, node2 in rbinw_by_leaf.get(cur_node, ()):
                    row = (var1, var2, node1, node2, value)
                    if row not in seen_rr:
                        seen_rr.add(row)
                        rr.insert(row)
                for var, node in rvarw_by_node.get(cur_node, ()):
                    row = (var, node, value)
                    if row not in seen_rrvar:
                        seen_rrvar.add(row)
                        rrvar.insert(row)

    return MaterializedViews(
        rvj=rvj, rl=rl, rr=rr, rlvar=rlvar, rrvar=rrvar, common_values=common_values
    )


def _rbin_leaf_lookup(state: JoinState):
    """Rbin rows by (docid, leaf node): shared live index, or a per-call hash."""
    index = state.index_on("Rbin", ("docid", "node2"))
    if index is not None:
        return index.lookup
    by_leaf: dict[tuple[str, int], list[tuple]] = defaultdict(list)
    for row in state.rbin.rows:
        by_leaf[(row[0], row[4])].append(row)
    return lambda docid, node: by_leaf.get((docid, node), ())


def _rvar_node_lookup(state: JoinState):
    """Rvar rows by (docid, node): shared live index, or a per-call hash."""
    index = state.index_on("Rvar", ("docid", "node"))
    if index is not None:
        return index.lookup
    by_node: dict[tuple[str, int], list[tuple]] = defaultdict(list)
    for row in state.rvar.rows:
        by_node[(row[0], row[2])].append(row)
    return lambda docid, node: by_node.get((docid, node), ())


def _compute_rl_direct(
    state: JoinState,
    common_values: set[str],
    previous_by_value: dict[str, list[tuple[str, int]]],
    rl: Relation,
    rlvar: Relation,
) -> None:
    """Compute RL/RLvar from scratch for every common string value."""
    rbin_of = _rbin_leaf_lookup(state)
    rvar_of = _rvar_node_lookup(state)
    for value in common_values:
        for docid, prev_node in previous_by_value[value]:
            for _, var1, var2, node1, node2 in rbin_of(docid, prev_node):
                rl.insert((docid, var1, var2, node1, node2, value))
            for _, var, node in rvar_of(docid, prev_node):
                rlvar.insert((docid, var, node, value))


def _compute_rl_cached(
    state: JoinState,
    common_values: set[str],
    previous_by_value: dict[str, list[tuple[str, int]]],
    rl: Relation,
    rlvar: Relation,
    view_cache: ViewCache,
) -> None:
    """Compute RL per string value, consulting (and filling) the view cache.

    ``RLvar`` is always recomputed — it is tiny compared to ``RL`` and keeping
    it out of the cache keeps Algorithm 5 identical to the paper.
    """
    rbin_of = None
    rvar_of = _rvar_node_lookup(state)

    for value in sorted(common_values):
        cached = view_cache.get(value)
        if cached is None:
            if rbin_of is None:
                rbin_of = _rbin_leaf_lookup(state)
            slice_rows: list[tuple] = []
            for docid, prev_node in previous_by_value[value]:
                for _, var1, var2, node1, node2 in rbin_of(docid, prev_node):
                    slice_rows.append((docid, var1, var2, node1, node2, value))
            view_cache.put(value, slice_rows)
            cached = slice_rows
        rl.insert_many(cached)
        for docid, prev_node in previous_by_value[value]:
            for _, var, node in rvar_of(docid, prev_node):
                rlvar.insert((docid, var, node, value))


def maintain_view_cache(
    view_cache: ViewCache,
    views: MaterializedViews,
    current_docid: str,
) -> None:
    """Algorithm 5: fold the current document's ``RR`` slices into the cached ``RL`` slices.

    Rows of ``RR`` become ``RL`` rows of the (now previous) current document,
    so future documents that share a string value reuse them without
    touching ``Rbin``.
    """
    by_value: dict[str, list[tuple]] = defaultdict(list)
    for var1, var2, node1, node2, value in views.rr.rows:
        by_value[value].append((current_docid, var1, var2, node1, node2, value))
    for value, rows in by_value.items():
        if value in view_cache:
            view_cache.append(value, rows)
        else:
            view_cache.put(value, rows)
