"""Query results: match records and output document construction (Algorithm 3).

A :class:`Match` records which query fired, which pair of documents produced
it and the node bindings of its variables.  When the engine keeps the
original documents around, :func:`build_output_document` constructs the
query's output XML document following the paper's default SELECT semantics:
a new root whose two children are the root element nodes matched by the two
query blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.xmlmodel.document import XmlDocument
from repro.xmlmodel.node import XmlNode


@dataclass(frozen=True)
class Match:
    """One query match (an output event of an inter-document query).

    Attributes
    ----------
    qid:
        Id of the matching query.
    lhs_docid / rhs_docid:
        The previous document (left block) and the current document (right
        block) forming the match.
    lhs_timestamp / rhs_timestamp:
        Their timestamps (the window constraint has already been checked).
    lhs_bindings / rhs_bindings:
        Variable → node-id bindings for the variables retained by the
        query's template.
    window:
        The query's window length.
    publish_stamp:
        Observability metadata (``RuntimeConfig(metrics=True)`` only): the
        ``time.perf_counter()`` reading taken when the triggering document
        entered the broker, carried through the processing pipeline — and
        across the process-runtime wire format — so delivery lag can be
        measured at the sink.  Excluded from equality, hashing and
        :meth:`key`, so match sets are identical with metrics on or off.
    """

    qid: str
    lhs_docid: str
    rhs_docid: str
    lhs_timestamp: float
    rhs_timestamp: float
    lhs_bindings: dict[str, int] = field(default_factory=dict, hash=False, compare=False)
    rhs_bindings: dict[str, int] = field(default_factory=dict, hash=False, compare=False)
    window: float = float("inf")
    publish_stamp: Optional[float] = field(
        default=None, hash=False, compare=False, repr=False
    )

    def key(self) -> tuple:
        """A hashable identity used for de-duplicating matches."""
        return (
            self.qid,
            self.lhs_docid,
            self.rhs_docid,
            tuple(sorted(self.lhs_bindings.items())),
            tuple(sorted(self.rhs_bindings.items())),
        )

    def __repr__(self) -> str:
        return (
            f"<Match {self.qid}: {self.lhs_docid}@{self.lhs_timestamp} -> "
            f"{self.rhs_docid}@{self.rhs_timestamp}>"
        )


def copy_subtree(node: XmlNode) -> XmlNode:
    """Deep-copy an element subtree (ids are reassigned by the new document)."""
    clone = XmlNode(node.tag, text=node.text, attributes=dict(node.attributes))
    for child in node.children:
        clone.append(copy_subtree(child))
    return clone


def build_output_document(
    match: Match,
    lhs_document: XmlDocument,
    rhs_document: XmlDocument,
    lhs_root_variable: Optional[str] = None,
    rhs_root_variable: Optional[str] = None,
    root_tag: str = "result",
) -> XmlDocument:
    """Construct the default-SELECT output document for ``match``.

    The output has a new root element with two subtrees: the subtree rooted
    at the node matched by the left block and the one matched by the right
    block.  When a block's root variable was spliced out of the query
    template (so its binding is unknown), the corresponding document root is
    used instead.
    """
    def block_root(document: XmlDocument, bindings: dict[str, int], var: Optional[str]) -> XmlNode:
        if var is not None and var in bindings:
            return document.node(bindings[var])
        return document.root

    lhs_node = block_root(lhs_document, match.lhs_bindings, lhs_root_variable)
    rhs_node = block_root(rhs_document, match.rhs_bindings, rhs_root_variable)

    root = XmlNode(root_tag, attributes={"qid": match.qid})
    root.append(copy_subtree(lhs_node))
    root.append(copy_subtree(rhs_node))
    return XmlDocument(
        root,
        docid=f"out:{match.qid}:{match.lhs_docid}:{match.rhs_docid}",
        timestamp=match.rhs_timestamp,
        stream="output",
    )
